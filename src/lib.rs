//! # Smoke
//!
//! A from-scratch Rust reproduction of **"Smoke: Fine-grained Lineage at
//! Interactive Speed"** (Psallidas & Wu, VLDB 2018): an in-memory query engine
//! that tightly integrates fine-grained lineage capture into its physical
//! operators and exploits knowledge of future lineage-consuming queries to
//! answer them at interactive latencies.
//!
//! This crate is a facade that re-exports the workspace crates:
//!
//! * [`storage`] — rid-addressable in-memory relations ([`smoke_storage`]);
//! * [`lineage`] — rid arrays / rid indexes / partitioned indexes
//!   ([`smoke_lineage`]);
//! * [`core`] — the lineage-instrumented query engine, baselines, and
//!   workload-aware optimizations ([`smoke_core`]);
//! * [`planner`] — the cost-based lineage-consumption query planner that
//!   unifies eager, lazy, pruned, and cube strategies behind the declarative
//!   `LineageQuery` API ([`smoke_planner`]);
//! * [`datagen`] — synthetic workload generators ([`smoke_datagen`]);
//! * [`apps`] — crossfilter and data-profiling applications built on lineage
//!   ([`smoke_apps`]);
//! * [`server`] — the concurrent serving layer: `Arc`-shared immutable
//!   snapshots behind a worker pool with admission control, a normalized-query
//!   result cache, and a length-prefixed JSON wire protocol
//!   ([`smoke_server`]).
//!
//! ```
//! use smoke::prelude::*;
//!
//! // Build a tiny relation, run an instrumented group-by, and trace lineage.
//! let rel = Relation::builder("sales")
//!     .column("region", DataType::Str)
//!     .column("amount", DataType::Float)
//!     .row(vec![Value::Str("east".into()), Value::Float(10.0)])
//!     .row(vec![Value::Str("west".into()), Value::Float(20.0)])
//!     .row(vec![Value::Str("east".into()), Value::Float(5.0)])
//!     .build()
//!     .unwrap();
//!
//! let mut db = Database::new();
//! db.register(rel).unwrap();
//!
//! let plan = PlanBuilder::scan("sales")
//!     .group_by(&["region"], vec![AggExpr::sum("amount", "total")])
//!     .build();
//! let result = Executor::new(CaptureMode::Inject).execute(&plan, &db).unwrap();
//!
//! // Backward lineage of the "east" group returns base rids 0 and 2.
//! let east = result.find_output(|row| row[0] == Value::Str("east".into())).unwrap();
//! assert_eq!(result.lineage.backward(&[east], "sales"), vec![0, 2]);
//! ```

#![warn(missing_docs)]

pub use smoke_apps as apps;
pub use smoke_core as core;
pub use smoke_datagen as datagen;
pub use smoke_lineage as lineage;
pub use smoke_planner as planner;
pub use smoke_server as server;
pub use smoke_storage as storage;

/// Commonly-used types, re-exported for convenience.
pub mod prelude {
    pub use smoke_core::{
        AggExpr, AggFunc, CaptureConfig, CaptureMode, Executor, Expr, LogicalPlan, PlanBuilder,
        QueryOutput,
    };
    pub use smoke_lineage::{LineageIndex, QueryLineage, Rid, RidArray, RidIndex};
    pub use smoke_planner::{
        Explain, LineagePlan, LineagePlanner, LineageQuery, LineageResult, RewriteInfo, Strategy,
    };
    pub use smoke_storage::{Column, DataType, Database, Field, Relation, Schema, Value};
}
