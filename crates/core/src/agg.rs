//! Aggregate functions and their incremental state.
//!
//! The paper's microbenchmark query computes several statistics per group
//! (`COUNT(*), SUM(v), SUM(v*v), SUM(sqrt(v)), MIN(v), MAX(v)`); all of these
//! are algebraic/distributive and can be maintained incrementally, which is
//! also what makes the group-by push-down optimization (§4.2) possible.

use smoke_storage::{DataType, Value};

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `SUM(col * col)`.
    SumSq,
    /// `SUM(sqrt(col))`.
    SumSqrt,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)`.
    Avg,
    /// `COUNT(DISTINCT col)` (used by the data-profiling application).
    CountDistinct,
}

/// An aggregate expression: a function over a column, with an output alias.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated column (ignored for `COUNT(*)`).
    pub column: Option<String>,
    /// Name of the output column.
    pub alias: String,
}

impl AggExpr {
    /// `COUNT(*) AS alias`.
    pub fn count(alias: impl Into<String>) -> Self {
        AggExpr {
            func: AggFunc::Count,
            column: None,
            alias: alias.into(),
        }
    }

    /// `SUM(column) AS alias`.
    pub fn sum(column: impl Into<String>, alias: impl Into<String>) -> Self {
        AggExpr {
            func: AggFunc::Sum,
            column: Some(column.into()),
            alias: alias.into(),
        }
    }

    /// `SUM(column * column) AS alias`.
    pub fn sum_sq(column: impl Into<String>, alias: impl Into<String>) -> Self {
        AggExpr {
            func: AggFunc::SumSq,
            column: Some(column.into()),
            alias: alias.into(),
        }
    }

    /// `SUM(sqrt(column)) AS alias`.
    pub fn sum_sqrt(column: impl Into<String>, alias: impl Into<String>) -> Self {
        AggExpr {
            func: AggFunc::SumSqrt,
            column: Some(column.into()),
            alias: alias.into(),
        }
    }

    /// `MIN(column) AS alias`.
    pub fn min(column: impl Into<String>, alias: impl Into<String>) -> Self {
        AggExpr {
            func: AggFunc::Min,
            column: Some(column.into()),
            alias: alias.into(),
        }
    }

    /// `MAX(column) AS alias`.
    pub fn max(column: impl Into<String>, alias: impl Into<String>) -> Self {
        AggExpr {
            func: AggFunc::Max,
            column: Some(column.into()),
            alias: alias.into(),
        }
    }

    /// `AVG(column) AS alias`.
    pub fn avg(column: impl Into<String>, alias: impl Into<String>) -> Self {
        AggExpr {
            func: AggFunc::Avg,
            column: Some(column.into()),
            alias: alias.into(),
        }
    }

    /// `COUNT(DISTINCT column) AS alias`.
    pub fn count_distinct(column: impl Into<String>, alias: impl Into<String>) -> Self {
        AggExpr {
            func: AggFunc::CountDistinct,
            column: Some(column.into()),
            alias: alias.into(),
        }
    }

    /// The output data type of this aggregate.
    pub fn output_type(&self) -> DataType {
        match self.func {
            AggFunc::Count | AggFunc::CountDistinct => DataType::Int,
            _ => DataType::Float,
        }
    }

    /// Creates a fresh accumulator for this aggregate.
    pub fn new_state(&self) -> AggState {
        match self.func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(0.0),
            AggFunc::SumSq => AggState::SumSq(0.0),
            AggFunc::SumSqrt => AggState::SumSqrt(0.0),
            AggFunc::Min => AggState::Min(f64::INFINITY),
            AggFunc::Max => AggState::Max(f64::NEG_INFINITY),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::CountDistinct => AggState::CountDistinct(std::collections::BTreeSet::new()),
        }
    }
}

/// Incremental aggregation state for one group and one aggregate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// Running count.
    Count(u64),
    /// Running sum.
    Sum(f64),
    /// Running sum of squares.
    SumSq(f64),
    /// Running sum of square roots.
    SumSqrt(f64),
    /// Running minimum.
    Min(f64),
    /// Running maximum.
    Max(f64),
    /// Running sum and count, finalized as the mean.
    Avg {
        /// Sum of observed values.
        sum: f64,
        /// Number of observed values.
        count: u64,
    },
    /// Distinct string keys observed.
    CountDistinct(std::collections::BTreeSet<String>),
}

impl AggState {
    /// Folds a numeric value into the state. `COUNT(*)` ignores the value.
    #[inline]
    pub fn update(&mut self, value: f64) {
        match self {
            AggState::Count(c) => *c += 1,
            AggState::Sum(s) => *s += value,
            AggState::SumSq(s) => *s += value * value,
            AggState::SumSqrt(s) => *s += value.abs().sqrt(),
            AggState::Min(m) => {
                if value < *m {
                    *m = value;
                }
            }
            AggState::Max(m) => {
                if value > *m {
                    *m = value;
                }
            }
            AggState::Avg { sum, count } => {
                *sum += value;
                *count += 1;
            }
            AggState::CountDistinct(_) => {
                // Numeric path: values folded via their canonical key.
                self.update_key(&format!("{value:?}"));
            }
        }
    }

    /// Folds a categorical key into a `COUNT(DISTINCT)` state (no-op for the
    /// numeric states, which should use [`AggState::update`]).
    #[inline]
    pub fn update_key(&mut self, key: &str) {
        if let AggState::CountDistinct(set) = self {
            if !set.contains(key) {
                set.insert(key.to_string());
            }
        }
    }

    /// Finalizes the state into an output value.
    pub fn finalize(&self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(*c as i64),
            AggState::Sum(s) | AggState::SumSq(s) | AggState::SumSqrt(s) => Value::Float(*s),
            AggState::Min(m) => Value::Float(if m.is_finite() { *m } else { 0.0 }),
            AggState::Max(m) => Value::Float(if m.is_finite() { *m } else { 0.0 }),
            AggState::Avg { sum, count } => {
                Value::Float(if *count > 0 { sum / *count as f64 } else { 0.0 })
            }
            AggState::CountDistinct(set) => Value::Int(set.len() as i64),
        }
    }

    /// Merges another state of the same kind into this one (used when
    /// combining partial aggregates, e.g. cube partitions).
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => *a += b,
            (AggState::SumSq(a), AggState::SumSq(b)) => *a += b,
            (AggState::SumSqrt(a), AggState::SumSqrt(b)) => *a += b,
            (AggState::Min(a), AggState::Min(b)) => *a = a.min(*b),
            (AggState::Max(a), AggState::Max(b)) => *a = a.max(*b),
            (AggState::Avg { sum: a, count: ac }, AggState::Avg { sum: b, count: bc }) => {
                *a += b;
                *ac += bc;
            }
            (AggState::CountDistinct(a), AggState::CountDistinct(b)) => {
                a.extend(b.iter().cloned());
            }
            (a, b) => panic!("cannot merge mismatched aggregate states {a:?} and {b:?}"),
        }
    }
}

/// The standard multi-statistic aggregate list used by the paper's group-by
/// microbenchmark (§6.1.1).
pub fn microbenchmark_aggs(value_column: &str) -> Vec<AggExpr> {
    vec![
        AggExpr::count("cnt"),
        AggExpr::sum(value_column, "sum_v"),
        AggExpr::sum_sq(value_column, "sum_v2"),
        AggExpr::sum_sqrt(value_column, "sum_sqrt_v"),
        AggExpr::min(value_column, "min_v"),
        AggExpr::max(value_column, "max_v"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_sum() {
        let mut c = AggExpr::count("c").new_state();
        let mut s = AggExpr::sum("v", "s").new_state();
        for v in [1.0, 2.0, 3.0] {
            c.update(v);
            s.update(v);
        }
        assert_eq!(c.finalize(), Value::Int(3));
        assert_eq!(s.finalize(), Value::Float(6.0));
    }

    #[test]
    fn min_max_avg() {
        let mut mn = AggExpr::min("v", "mn").new_state();
        let mut mx = AggExpr::max("v", "mx").new_state();
        let mut av = AggExpr::avg("v", "av").new_state();
        for v in [4.0, -1.0, 7.5] {
            mn.update(v);
            mx.update(v);
            av.update(v);
        }
        assert_eq!(mn.finalize(), Value::Float(-1.0));
        assert_eq!(mx.finalize(), Value::Float(7.5));
        assert_eq!(av.finalize(), Value::Float(3.5));
    }

    #[test]
    fn empty_states_finalize_to_neutral_values() {
        assert_eq!(
            AggExpr::min("v", "m").new_state().finalize(),
            Value::Float(0.0)
        );
        assert_eq!(
            AggExpr::avg("v", "a").new_state().finalize(),
            Value::Float(0.0)
        );
        assert_eq!(AggExpr::count("c").new_state().finalize(), Value::Int(0));
    }

    #[test]
    fn sum_sq_and_sqrt() {
        let mut sq = AggExpr::sum_sq("v", "sq").new_state();
        let mut sr = AggExpr::sum_sqrt("v", "sr").new_state();
        for v in [4.0, 9.0] {
            sq.update(v);
            sr.update(v);
        }
        assert_eq!(sq.finalize(), Value::Float(16.0 + 81.0));
        assert_eq!(sr.finalize(), Value::Float(2.0 + 3.0));
    }

    #[test]
    fn count_distinct_over_keys() {
        let mut cd = AggExpr::count_distinct("b", "cd").new_state();
        for k in ["x", "y", "x", "z"] {
            cd.update_key(k);
        }
        assert_eq!(cd.finalize(), Value::Int(3));
    }

    #[test]
    fn merge_combines_partial_states() {
        let mut a = AggExpr::sum("v", "s").new_state();
        a.update(1.0);
        let mut b = AggExpr::sum("v", "s").new_state();
        b.update(2.0);
        a.merge(&b);
        assert_eq!(a.finalize(), Value::Float(3.0));

        let mut a = AggExpr::avg("v", "a").new_state();
        a.update(2.0);
        let mut b = AggExpr::avg("v", "a").new_state();
        b.update(4.0);
        a.merge(&b);
        assert_eq!(a.finalize(), Value::Float(3.0));
    }

    #[test]
    fn microbenchmark_agg_list_matches_paper() {
        let aggs = microbenchmark_aggs("v");
        assert_eq!(aggs.len(), 6);
        assert_eq!(aggs[0].func, AggFunc::Count);
        assert_eq!(aggs[0].output_type(), DataType::Int);
        assert_eq!(aggs[1].output_type(), DataType::Float);
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn merge_rejects_mismatched_states() {
        let mut a = AggExpr::sum("v", "s").new_state();
        let b = AggExpr::count("c").new_state();
        a.merge(&b);
    }
}
