//! Nested-loop θ-joins and cross products with lineage capture
//! (paper Appendix F.6/F.7).
//!
//! θ-joins write their output serially, so lineage indexes can be written
//! serially in lock-step: backward lineage is one rid per side per output
//! record, forward lineage is 1-to-N per input record. Cross products do not
//! capture lineage at all — both directions are pure rid arithmetic over the
//! input cardinalities and are computed on demand.
//!
//! The θ-join predicate is bound **once** against the concatenated schema and
//! evaluated over `(left, right)` row pairs through column references — no
//! per-pair scratch relation, no per-pair rebinding. When the predicate is a
//! single comparison between one column per side, the inner loop runs
//! vectorized: for each left row, a column kernel compares the entire right
//! column against the left value and the matching pairs (which are the
//! backward lineage) are emitted from the resulting bitmap.

use std::time::Instant;

use smoke_lineage::{
    CaptureStats, InputLineage, LineageIndex, OperatorLineage, RidArray, RidIndex,
};
use smoke_storage::{KernelCmp, Relation, Rid, Schema};

use crate::error::Result;
use crate::expr::Expr;
use crate::ops::OpOutput;

/// Recognizes a θ-predicate of the form `column OP column` with one column
/// per side of the join. Returns `(left column, op, right column)` normalized
/// so a pair `(l, r)` matches iff `right.column(rcol)[r] OP left[l][lcol]`
/// (the operand order the per-left-row kernel evaluates).
fn column_cmp_split(
    predicate: &Expr,
    scratch: &Relation,
    split: usize,
) -> Option<(usize, KernelCmp, usize)> {
    let Expr::Cmp { op, left, right } = predicate else {
        return None;
    };
    let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) else {
        return None;
    };
    let ia = scratch.column_index(a).ok()?;
    let ib = scratch.column_index(b).ok()?;
    let op = crate::kernels::kernel_cmp(*op);
    if ia < split && ib >= split {
        // left[ia] OP right[ib]  ⟺  right[ib] OP.flip() left[ia]
        Some((ia, op.flip(), ib - split))
    } else if ib < split && ia >= split {
        // right[ia] OP left[ib]
        Some((ib, op, ia - split))
    } else {
        None
    }
}

/// Executes `left ⋈_θ right` with a nested loop, capturing Inject lineage when
/// `capture` is set.
pub fn theta_join(
    left: &Relation,
    right: &Relation,
    predicate: &Expr,
    capture: bool,
) -> Result<OpOutput> {
    let start = Instant::now();
    let joined_schema: Schema = left.schema().concat(right.schema(), right.name());
    // Bind once against the joined schema (an empty scratch relation resolves
    // the column positions); evaluation then reads cells straight from the
    // (left, right) pair.
    let scratch = Relation::empty("scratch", joined_schema.clone());
    let bound = predicate.bind(&scratch)?;

    let mut out_left: Vec<Rid> = Vec::new();
    let mut out_right: Vec<Rid> = Vec::new();

    if let Some((lcol, op, rcol)) = column_cmp_split(predicate, &scratch, left.schema().arity()) {
        let right_col = right.column(rcol);
        for l in 0..left.len() {
            let lv = left.value(l, lcol);
            let mask = smoke_storage::kernels::cmp_col_lit(right_col, op, &lv);
            mask.for_each_one(|r| {
                out_left.push(l as Rid);
                out_right.push(r as Rid);
            });
        }
    } else {
        for l in 0..left.len() {
            for r in 0..right.len() {
                if bound.eval_bool_concat(left, l, right, r)? {
                    out_left.push(l as Rid);
                    out_right.push(r as Rid);
                }
            }
        }
    }

    let mut columns = Vec::with_capacity(joined_schema.arity());
    for col in left.columns() {
        columns.push(col.gather(&out_left));
    }
    for col in right.columns() {
        columns.push(col.gather(&out_right));
    }
    let output = Relation::from_columns(
        format!("theta_join({},{})", left.name(), right.name()),
        joined_schema,
        columns,
    )?;
    let stats = CaptureStats {
        base_query: start.elapsed(),
        ..Default::default()
    };

    if !capture {
        return Ok(OpOutput::baseline(output, stats));
    }

    let mut a_fw = RidIndex::with_len(left.len());
    let mut b_fw = RidIndex::with_len(right.len());
    for (o, (&l, &r)) in out_left.iter().zip(&out_right).enumerate() {
        a_fw.append(l as usize, o as Rid);
        b_fw.append(r as usize, o as Rid);
    }
    let lineage = OperatorLineage::binary(
        InputLineage::new(
            LineageIndex::Array(RidArray::from_vec(out_left)),
            LineageIndex::Index(a_fw),
        ),
        InputLineage::new(
            LineageIndex::Array(RidArray::from_vec(out_right)),
            LineageIndex::Index(b_fw),
        ),
    );
    Ok(OpOutput {
        output,
        lineage,
        stats,
    })
}

/// Executes the cross product `left × right`. No lineage indexes are
/// materialized: use [`cross_product_backward`] / [`cross_product_forward`]
/// to compute lineage by rid arithmetic.
pub fn cross_product(left: &Relation, right: &Relation) -> Result<OpOutput> {
    let start = Instant::now();
    let joined_schema: Schema = left.schema().concat(right.schema(), right.name());
    let mut out_left: Vec<Rid> = Vec::with_capacity(left.len() * right.len());
    let mut out_right: Vec<Rid> = Vec::with_capacity(left.len() * right.len());
    for l in 0..left.len() {
        for r in 0..right.len() {
            out_left.push(l as Rid);
            out_right.push(r as Rid);
        }
    }
    let mut columns = Vec::with_capacity(joined_schema.arity());
    for col in left.columns() {
        columns.push(col.gather(&out_left));
    }
    for col in right.columns() {
        columns.push(col.gather(&out_right));
    }
    let output = Relation::from_columns(
        format!("cross({},{})", left.name(), right.name()),
        joined_schema,
        columns,
    )?;
    Ok(OpOutput::baseline(
        output,
        CaptureStats {
            base_query: start.elapsed(),
            ..Default::default()
        },
    ))
}

/// Backward lineage of a cross-product output rid: `(left rid, right rid)`.
pub fn cross_product_backward(output_rid: Rid, right_len: usize) -> (Rid, Rid) {
    let o = output_rid as usize;
    ((o / right_len) as Rid, (o % right_len) as Rid)
}

/// Forward lineage of a left (when `from_left`) or right input rid of a cross
/// product: the output rids it contributes to.
pub fn cross_product_forward(
    input_rid: Rid,
    from_left: bool,
    left_len: usize,
    right_len: usize,
) -> Vec<Rid> {
    if from_left {
        let start = input_rid as usize * right_len;
        (start..start + right_len).map(|o| o as Rid).collect()
    } else {
        (0..left_len)
            .map(|l| (l * right_len + input_rid as usize) as Rid)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_storage::{DataType, Value};

    fn left() -> Relation {
        let mut b = Relation::builder("L").column("a", DataType::Int);
        for v in [1, 5, 9] {
            b = b.row(vec![Value::Int(v)]);
        }
        b.build().unwrap()
    }

    fn right() -> Relation {
        let mut b = Relation::builder("R").column("b", DataType::Int);
        for v in [3, 6] {
            b = b.row(vec![Value::Int(v)]);
        }
        b.build().unwrap()
    }

    #[test]
    fn theta_join_with_inequality_predicate() {
        let pred = Expr::col("a").lt(Expr::col("b"));
        let out = theta_join(&left(), &right(), &pred, true).unwrap();
        // Pairs with a < b: (1,3), (1,6), (5,6).
        assert_eq!(out.output.len(), 3);
        assert_eq!(out.output.column(0).as_int(), &[1, 1, 5]);
        assert_eq!(out.output.column(1).as_int(), &[3, 6, 6]);
        // Lineage: output 2 = (left rid 1, right rid 1).
        assert_eq!(out.lineage.input(0).backward().lookup(2), vec![1]);
        assert_eq!(out.lineage.input(1).backward().lookup(2), vec![1]);
        // Forward: left rid 0 participates in outputs 0 and 1.
        assert_eq!(out.lineage.input(0).forward().lookup(0), vec![0, 1]);
        assert_eq!(out.lineage.input(1).forward().lookup(1), vec![1, 2]);
    }

    #[test]
    fn theta_join_baseline_has_no_lineage() {
        let pred = Expr::col("a").gt(Expr::col("b"));
        let out = theta_join(&left(), &right(), &pred, false).unwrap();
        assert_eq!(out.output.len(), 3); // (5,3), (9,3), (9,6)
        assert!(out.lineage.is_none());
    }

    #[test]
    fn theta_join_greater_pairs() {
        let pred = Expr::col("a").gt(Expr::col("b"));
        let out = theta_join(&left(), &right(), &pred, true).unwrap();
        assert_eq!(out.output.len(), 3);
        assert_eq!(out.output.column(0).as_int(), &[5, 9, 9]);
    }

    #[test]
    fn compound_predicate_falls_back_to_pair_evaluation() {
        // Not a single col-col comparison, so the bound-pair path runs.
        let pred = Expr::col("a")
            .lt(Expr::col("b"))
            .and(Expr::col("a").gt(Expr::lit(1)));
        let out = theta_join(&left(), &right(), &pred, true).unwrap();
        // Pairs with a < b and a > 1: only (5, 6).
        assert_eq!(out.output.len(), 1);
        assert_eq!(out.output.column(0).as_int(), &[5]);
        assert_eq!(out.output.column(1).as_int(), &[6]);
        assert_eq!(out.lineage.input(0).backward().lookup(0), vec![1]);
        assert_eq!(out.lineage.input(1).backward().lookup(0), vec![1]);
    }

    #[test]
    fn literal_comparison_order_is_respected() {
        // Literal-on-the-left comparison goes through the fallback too and
        // must agree with the kernelized equivalent.
        let pred_fallback = Expr::lit(5)
            .le(Expr::col("a"))
            .and(Expr::lit(1).lt(Expr::col("b")));
        let fast = Expr::col("a")
            .ge(Expr::lit(5))
            .and(Expr::col("b").gt(Expr::lit(1)));
        let a = theta_join(&left(), &right(), &pred_fallback, true).unwrap();
        let b = theta_join(&left(), &right(), &fast, true).unwrap();
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn cross_product_and_rid_arithmetic() {
        let out = cross_product(&left(), &right()).unwrap();
        assert_eq!(out.output.len(), 6);
        // Output rid 3 = left rid 1, right rid 1.
        assert_eq!(cross_product_backward(3, 2), (1, 1));
        assert_eq!(out.output.value(3, 0), Value::Int(5));
        assert_eq!(out.output.value(3, 1), Value::Int(6));
        // Forward lineage.
        assert_eq!(cross_product_forward(1, true, 3, 2), vec![2, 3]);
        assert_eq!(cross_product_forward(0, false, 3, 2), vec![0, 2, 4]);
    }
}
