//! Group-by aggregation with lineage capture (paper §3.2.3).
//!
//! The operator is decomposed into `γht` (build the hash table mapping
//! group-by values to intermediate aggregation state) and `γagg` (scan the
//! hash table, finalize aggregates, emit output records), mirroring query
//! compilers. Lineage is a backward rid index (output group → input rids) and
//! a forward rid array (input rid → output group).
//!
//! * **Inject** augments each group's intermediate state with an `i_rids` rid
//!   array during the build phase; `γagg` then moves those arrays into the
//!   backward index (data-structure *reuse*, principle P4).
//! * **Defer** stores only an output id per group during execution and builds
//!   the indexes in a separate pass that re-probes the (pinned) hash table;
//!   because group cardinalities are known by then, the indexes are allocated
//!   exactly and never resized.
//! * Cardinality hints (`Smoke-I+TC`) pre-allocate `i_rids` and eliminate the
//!   resize costs that otherwise dominate capture overhead.
//!
//! The workload-aware options of §4 (selection push-down, data skipping,
//! group-by push-down) are applied here because the final aggregation of an
//! SPJA block is where backward lineage for the query output is materialized.

use std::collections::HashMap;
use std::time::Instant;

use smoke_lineage::{
    CaptureStats, CsrBuilder, InputLineage, LineageIndex, OperatorLineage, PartitionedRidIndex,
    RidArray, RidIndex,
};
use smoke_storage::{Column, DataType, Relation, Rid, Value};

use crate::agg::{AggExpr, AggFunc, AggState};
use crate::error::{EngineError, Result};
use crate::instrument::{CaptureMode, CardinalityHints, DirectionFilter, WorkloadOptions};
use crate::key::{HashKey, KeyExtractor, KeyPart};
use crate::workload::{LineageCube, WorkloadArtifacts};

/// Options controlling group-by instrumentation.
#[derive(Debug, Clone, Default)]
pub struct GroupByOptions {
    /// Instrumentation paradigm.
    pub mode: CaptureMode,
    /// Lineage directions to capture.
    pub directions: DirectionFilter,
    /// Optional cardinality statistics (`Smoke-I+TC`).
    pub hints: Option<CardinalityHints>,
    /// Workload-aware push-down options.
    pub workload: WorkloadOptions,
}

impl GroupByOptions {
    /// Baseline: no capture.
    pub fn baseline() -> Self {
        GroupByOptions {
            mode: CaptureMode::Baseline,
            ..Default::default()
        }
    }

    /// `Smoke-I`.
    pub fn inject() -> Self {
        GroupByOptions {
            mode: CaptureMode::Inject,
            ..Default::default()
        }
    }

    /// `Smoke-D`.
    pub fn defer() -> Self {
        GroupByOptions {
            mode: CaptureMode::Defer,
            ..Default::default()
        }
    }

    /// `Smoke-I+TC`: Inject with true per-group cardinalities.
    pub fn inject_with_hints(hints: CardinalityHints) -> Self {
        GroupByOptions {
            mode: CaptureMode::Inject,
            hints: Some(hints),
            ..Default::default()
        }
    }
}

/// The result of an instrumented group-by aggregation.
#[derive(Debug, Clone)]
pub struct GroupByResult {
    /// Aggregated output relation (one row per group).
    pub output: Relation,
    /// Lineage w.r.t. the single input relation.
    pub lineage: OperatorLineage,
    /// Workload-aware artifacts (partitioned index / cube), if requested.
    pub artifacts: WorkloadArtifacts,
    /// Capture statistics.
    pub stats: CaptureStats,
}

struct GroupEntry {
    key_values: Vec<Value>,
    states: Vec<AggState>,
    i_rids: RidArray,
    count: u32,
    /// Rows that passed the selection push-down (== `count` without one);
    /// the exact backward cardinality the Defer pass allocates with.
    lineage_count: u32,
}

/// Sentinel in the dense group-id table for "no group assigned yet".
const NO_GROUP: u32 = u32::MAX;

/// The result of probing a [`KeyMode`] for one row: either the row's group
/// already exists, or a new group must be created for the returned key.
enum Probe {
    Hit(u32),
    Miss(HashKey),
}

/// Vectorized group-key lookup, specialised by the typed shape of the key
/// columns (paper §3.2.3's `γht`, hardware-conscious edition).
///
/// Single integer keys with a bounded domain use a dense gid table (one
/// array index per row instead of a hash); wide integer domains and integer
/// pairs hash the primitive key directly (no per-row [`HashKey`]
/// construction, no allocation for composite keys); everything else falls
/// back to the generic [`HashKey`] path.
enum KeyMode<'a> {
    DenseInt {
        keys: &'a [i64],
        min: i64,
        table: Vec<u32>,
    },
    HashInt {
        keys: &'a [i64],
        ht: HashMap<i64, u32>,
    },
    HashPair {
        keys: Vec<(i64, i64)>,
        ht: HashMap<(i64, i64), u32>,
    },
    Generic {
        ht: HashMap<HashKey, u32>,
    },
}

impl<'a> KeyMode<'a> {
    fn new(extractor: &KeyExtractor<'a>, n: usize) -> KeyMode<'a> {
        if let Some(keys) = smoke_storage::kernels::int_keys(extractor.columns()) {
            if let Some((min, max)) = smoke_storage::kernels::int_min_max(keys) {
                let width = max as i128 - min as i128 + 1;
                // The dense table pays 4 bytes per domain slot; cap it at a
                // small multiple of the input so sparse domains hash instead.
                if width <= 4 * n.max(256) as i128 {
                    return KeyMode::DenseInt {
                        keys,
                        min,
                        table: vec![NO_GROUP; width as usize],
                    };
                }
            }
            return KeyMode::HashInt {
                keys,
                ht: HashMap::new(),
            };
        }
        if let Some(keys) = smoke_storage::kernels::int_key_pairs(extractor.columns()) {
            return KeyMode::HashPair {
                keys,
                ht: HashMap::new(),
            };
        }
        KeyMode::Generic { ht: HashMap::new() }
    }

    /// Looks up the group of `rid`, or reports the key a new group needs.
    #[inline]
    fn probe(&self, rid: usize, extractor: &KeyExtractor) -> Probe {
        match self {
            KeyMode::DenseInt { keys, min, table } => match table[(keys[rid] - min) as usize] {
                NO_GROUP => Probe::Miss(HashKey::Int(keys[rid])),
                gid => Probe::Hit(gid),
            },
            KeyMode::HashInt { keys, ht } => match ht.get(&keys[rid]) {
                Some(&gid) => Probe::Hit(gid),
                None => Probe::Miss(HashKey::Int(keys[rid])),
            },
            KeyMode::HashPair { keys, ht } => match ht.get(&keys[rid]) {
                Some(&gid) => Probe::Hit(gid),
                None => {
                    let (a, b) = keys[rid];
                    Probe::Miss(HashKey::Composite(vec![KeyPart::Int(a), KeyPart::Int(b)]))
                }
            },
            KeyMode::Generic { ht } => {
                let key = extractor.key(rid);
                match ht.get(&key) {
                    Some(&gid) => Probe::Hit(gid),
                    None => Probe::Miss(key),
                }
            }
        }
    }

    /// Registers a freshly created group for `rid` (the second half of a
    /// [`Probe::Miss`]; only runs once per distinct group).
    fn record(&mut self, rid: usize, key: HashKey, gid: u32) {
        match self {
            KeyMode::DenseInt { keys, min, table } => {
                table[(keys[rid] - *min) as usize] = gid;
            }
            KeyMode::HashInt { keys, ht } => {
                ht.insert(keys[rid], gid);
            }
            KeyMode::HashPair { keys, ht } => {
                ht.insert(keys[rid], gid);
            }
            KeyMode::Generic { ht } => {
                ht.insert(key, gid);
            }
        }
    }

    /// The (existing) group of `rid`, used by the Defer re-probe pass.
    #[inline]
    fn lookup(&self, rid: usize, extractor: &KeyExtractor) -> u32 {
        match self.probe(rid, extractor) {
            Probe::Hit(gid) => gid,
            Probe::Miss(_) => unreachable!("defer pass re-probes only known keys"),
        }
    }
}

pub(crate) struct AggInputs<'a> {
    pub(crate) columns: Vec<Option<&'a Column>>,
}

impl<'a> AggInputs<'a> {
    pub(crate) fn resolve(input: &'a Relation, aggs: &[AggExpr]) -> Result<Self> {
        let mut columns = Vec::with_capacity(aggs.len());
        for agg in aggs {
            match &agg.column {
                Some(name) => {
                    let idx = input
                        .column_index(name)
                        .map_err(|_| EngineError::UnknownColumn(name.clone()))?;
                    columns.push(Some(input.column(idx)));
                }
                None => columns.push(None),
            }
        }
        Ok(AggInputs { columns })
    }

    #[inline]
    pub(crate) fn update(&self, states: &mut [AggState], aggs: &[AggExpr], rid: usize) {
        for (i, state) in states.iter_mut().enumerate() {
            match (&aggs[i].func, self.columns[i]) {
                (AggFunc::Count, _) => state.update(0.0),
                (AggFunc::CountDistinct, Some(col)) => {
                    state.update_key(&col.value(rid).group_key())
                }
                (_, Some(col)) => state.update(col.numeric(rid).unwrap_or(0.0)),
                (_, None) => state.update(0.0),
            }
        }
    }
}

/// Executes `SELECT keys, aggs FROM input GROUP BY keys` with the configured
/// instrumentation.
pub fn group_by(
    input: &Relation,
    keys: &[String],
    aggs: &[AggExpr],
    opts: &GroupByOptions,
) -> Result<GroupByResult> {
    let start = Instant::now();
    let n = input.len();
    let extractor = KeyExtractor::new(input, keys)?;
    let agg_inputs = AggInputs::resolve(input, aggs)?;

    let capture = opts.mode.captures();
    let capture_b = capture && opts.directions.backward();
    let capture_f = capture && opts.directions.forward();
    // For group-by there are only two paradigms; DeferForward degenerates to
    // Inject (it is join-specific).
    let inject = matches!(opts.mode, CaptureMode::Inject | CaptureMode::DeferForward);

    // Workload-aware set-up. The push-down predicate is evaluated once for
    // the whole input through the kernel layer (falling back to the
    // interpreter for arbitrary shapes); the capture loop then tests a bit
    // per row instead of re-interpreting the expression. Uninstrumented runs
    // never read the mask, so they only bind (validating the expression)
    // without paying for the scan.
    let wl = &opts.workload;
    let pushdown_mask = match &wl.selection_pushdown {
        Some(expr) if capture => Some(crate::kernels::predicate_mask(input, expr)?),
        Some(expr) => {
            expr.bind(input)?;
            None
        }
        None => None,
    };
    let skip_extractor = if capture && !wl.skipping_partition_by.is_empty() {
        Some(KeyExtractor::new(input, &wl.skipping_partition_by)?)
    } else {
        None
    };
    let cube_setup = match (&wl.agg_pushdown, capture) {
        (Some(pd), true) => {
            let ex = KeyExtractor::new(input, &pd.partition_by)?;
            let cols = AggInputs::resolve(input, &pd.aggs)?;
            Some((pd, ex, cols))
        }
        _ => None,
    };

    // γht: build phase. The group-id lookup runs over typed key vectors
    // extracted once (dense table / primitive-key hash for integer keys),
    // falling back to per-row `HashKey` construction for other shapes.
    let mut key_mode = KeyMode::new(&extractor, n);
    let mut groups: Vec<GroupEntry> = Vec::new();
    let mut forward = if capture_f && inject {
        RidArray::filled(n)
    } else {
        RidArray::new()
    };
    let mut partitioned = skip_extractor
        .as_ref()
        .map(|_| PartitionedRidIndex::new(wl.skipping_partition_by.join(",")));
    let mut cube = cube_setup
        .as_ref()
        .map(|(pd, _, _)| LineageCube::new(0, pd.partition_by.clone(), pd.aggs.clone()));

    for rid in 0..n {
        let gid = match key_mode.probe(rid, &extractor) {
            Probe::Hit(gid) => gid,
            Probe::Miss(key) => {
                let gid = groups.len() as u32;
                let hinted_cap = opts.hints.as_ref().and_then(|h| h.cardinality(&key));
                let i_rids = match hinted_cap {
                    Some(cap) if capture_b && inject => RidArray::with_capacity(cap),
                    _ => RidArray::new(),
                };
                groups.push(GroupEntry {
                    key_values: key.to_values(),
                    states: aggs.iter().map(AggExpr::new_state).collect(),
                    i_rids,
                    count: 0,
                    lineage_count: 0,
                });
                key_mode.record(rid, key, gid);
                gid
            }
        };
        let entry = &mut groups[gid as usize];
        agg_inputs.update(&mut entry.states, aggs, rid);
        entry.count += 1;

        if capture {
            // Selection push-down: only rows satisfying the future consuming
            // query's predicate enter the lineage indexes.
            let include = pushdown_mask.as_ref().is_none_or(|m| m.get(rid));
            if include {
                entry.lineage_count += 1;
                if capture_b && inject {
                    entry.i_rids.push(rid as Rid);
                }
                if capture_f && inject {
                    forward.set(rid, gid);
                }
                if let Some(part) = partitioned.as_mut() {
                    let key = skip_extractor.as_ref().unwrap().key(rid);
                    part.append(gid as usize, &render_partition_key(&key), rid as Rid);
                }
                if let Some((pd, ex, cols)) = cube_setup.as_ref() {
                    let pkey = ex.key(rid);
                    let key_values = pkey.to_values();
                    let mut inputs = Vec::with_capacity(pd.aggs.len());
                    let mut distinct = Vec::with_capacity(pd.aggs.len());
                    for (i, agg) in pd.aggs.iter().enumerate() {
                        match (&agg.func, cols.columns[i]) {
                            (AggFunc::CountDistinct, Some(col)) => {
                                inputs.push(0.0);
                                distinct.push(Some(col.value(rid).group_key()));
                            }
                            (_, Some(col)) => {
                                inputs.push(col.numeric(rid).unwrap_or(0.0));
                                distinct.push(None);
                            }
                            (_, None) => {
                                inputs.push(0.0);
                                distinct.push(None);
                            }
                        }
                    }
                    cube.as_mut().unwrap().update(
                        gid as usize,
                        &render_partition_key(&pkey),
                        &key_values,
                        &inputs,
                        &distinct,
                    );
                }
            }
        }
    }

    // γagg: scan phase — finalize aggregates and emit output records.
    let mut key_cols: Vec<Column> = keys
        .iter()
        .map(|name| {
            let idx = input.column_index(name).expect("validated by extractor");
            Column::with_capacity(input.schema().field(idx).data_type, groups.len())
        })
        .collect();
    let mut agg_cols: Vec<Column> = aggs
        .iter()
        .map(|a| Column::with_capacity(a.output_type(), groups.len()))
        .collect();

    let mut backward = RidIndex::with_len(0);
    for entry in groups.iter_mut() {
        for (i, col) in key_cols.iter_mut().enumerate() {
            col.push(entry.key_values[i].clone())?;
        }
        for (i, col) in agg_cols.iter_mut().enumerate() {
            col.push(entry.states[i].finalize())?;
        }
        if capture_b && inject {
            backward.push_entry(std::mem::take(&mut entry.i_rids));
        }
    }

    let mut builder = Relation::builder(format!("groupby({})", input.name()));
    for name in keys {
        let idx = input.column_index(name)?;
        builder = builder.column(name.clone(), input.schema().field(idx).data_type);
    }
    for agg in aggs {
        builder = builder.column(agg.alias.clone(), agg.output_type());
    }
    let schema = builder.build()?.schema().clone();
    let mut columns = key_cols;
    columns.append(&mut agg_cols);
    let output = Relation::from_columns(format!("groupby({})", input.name()), schema, columns)?;
    let base_query = start.elapsed();

    if !capture {
        let stats = CaptureStats {
            base_query,
            ..Default::default()
        };
        return Ok(GroupByResult {
            output,
            lineage: OperatorLineage::none(),
            artifacts: WorkloadArtifacts::default(),
            stats,
        });
    }

    // Defer pass: re-probe the pinned hash table. Per-group cardinalities
    // are exact by now, so the backward index is built directly in CSR form —
    // two flat buffers allocated once, zero resizes, no per-group arrays.
    let defer_start = Instant::now();
    let mut deferred_backward: Option<CsrBuilder> = None;
    if !inject {
        if capture_b {
            deferred_backward = Some(CsrBuilder::with_counts(
                groups.iter().map(|g| g.lineage_count as usize),
            ));
        }
        if capture_f {
            forward = RidArray::filled(n);
        }
        for rid in 0..n {
            let include = pushdown_mask.as_ref().is_none_or(|m| m.get(rid));
            if !include {
                continue;
            }
            let gid = key_mode.lookup(rid, &extractor);
            if let Some(b) = deferred_backward.as_mut() {
                b.append(gid as usize, rid as Rid);
            }
            if capture_f {
                forward.set(rid, gid);
            }
        }
    }
    let deferred = if inject {
        std::time::Duration::ZERO
    } else {
        defer_start.elapsed()
    };

    let backward_index = if capture_b {
        Some(match deferred_backward {
            Some(b) => LineageIndex::Csr(b.finish()),
            None => LineageIndex::Index(backward),
        })
    } else {
        None
    };
    let forward_index = capture_f.then_some(LineageIndex::Array(forward));

    let mut stats = CaptureStats {
        base_query,
        deferred,
        ..Default::default()
    };
    if let Some(b) = &backward_index {
        stats.edges += b.edge_count() as u64;
        stats.rid_resizes += b.resizes();
        stats.lineage_bytes += b.heap_bytes() as u64;
    }
    if let Some(f) = &forward_index {
        stats.rid_resizes += f.resizes();
        stats.lineage_bytes += f.heap_bytes() as u64;
    }

    Ok(GroupByResult {
        output,
        lineage: OperatorLineage::unary(InputLineage {
            backward: backward_index,
            forward: forward_index,
        }),
        artifacts: WorkloadArtifacts { partitioned, cube },
        stats,
    })
}

/// Renders a partition key in a stable human-readable form (partition
/// attributes are categorical or discretized, §4.2).
pub(crate) fn render_partition_key(key: &HashKey) -> String {
    match key {
        HashKey::Int(v) => v.to_string(),
        HashKey::Str(s) => s.clone(),
        HashKey::Composite(parts) => parts
            .iter()
            .map(|p| p.to_value().group_key())
            .collect::<Vec<_>>()
            .join("|"),
    }
}

/// Computes exact per-group cardinalities for `keys` over `input`, used to
/// drive the `Smoke-I+TC` experiments (the paper assumes such statistics can
/// be collected during prior query processing).
pub fn true_cardinalities(input: &Relation, keys: &[String]) -> Result<CardinalityHints> {
    let extractor = KeyExtractor::new(input, keys)?;
    let mut per_key: HashMap<HashKey, usize> = HashMap::new();
    for rid in 0..input.len() {
        *per_key.entry(extractor.key(rid)).or_insert(0) += 1;
    }
    Ok(CardinalityHints::with_per_key(per_key))
}

/// Convenience output-type helper used by callers that need the output schema
/// of a group-by without running it.
pub fn output_key_type(input: &Relation, key: &str) -> Result<DataType> {
    let idx = input
        .column_index(key)
        .map_err(|_| EngineError::UnknownColumn(key.to_string()))?;
    Ok(input.schema().field(idx).data_type)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::microbenchmark_aggs;
    use smoke_storage::DataType;

    fn rel() -> Relation {
        // z values: 1,2,1,3,2,1 ; v values: 10,20,30,40,50,60
        let mut b = Relation::builder("zipf")
            .column("z", DataType::Int)
            .column("v", DataType::Float)
            .column("tag", DataType::Str);
        let zs = [1, 2, 1, 3, 2, 1];
        for (i, z) in zs.iter().enumerate() {
            let tag = if i % 2 == 0 { "even" } else { "odd" };
            b = b.row(vec![
                Value::Int(*z),
                Value::Float((i as f64 + 1.0) * 10.0),
                Value::Str(tag.into()),
            ]);
        }
        b.build().unwrap()
    }

    fn check_correctness(result: &GroupByResult) {
        // Groups appear in first-occurrence order: z=1, z=2, z=3.
        assert_eq!(result.output.len(), 3);
        assert_eq!(result.output.column(0).as_int(), &[1, 2, 3]);
        // COUNT per group.
        assert_eq!(
            result.output.column_by_name("cnt").unwrap().as_int(),
            &[3, 2, 1]
        );
        // SUM(v) per group: z=1 -> 10+30+60, z=2 -> 20+50, z=3 -> 40.
        assert_eq!(
            result.output.column_by_name("sum_v").unwrap().as_float(),
            &[100.0, 70.0, 40.0]
        );
    }

    #[test]
    fn baseline_matches_expected_output() {
        let r = rel();
        let result = group_by(
            &r,
            &["z".to_string()],
            &microbenchmark_aggs("v"),
            &GroupByOptions::baseline(),
        )
        .unwrap();
        check_correctness(&result);
        assert!(result.lineage.is_none());
    }

    #[test]
    fn inject_captures_backward_and_forward() {
        let r = rel();
        let result = group_by(
            &r,
            &["z".to_string()],
            &microbenchmark_aggs("v"),
            &GroupByOptions::inject(),
        )
        .unwrap();
        check_correctness(&result);
        let lin = result.lineage.input(0);
        assert_eq!(lin.backward().lookup(0), vec![0, 2, 5]);
        assert_eq!(lin.backward().lookup(1), vec![1, 4]);
        assert_eq!(lin.backward().lookup(2), vec![3]);
        assert_eq!(lin.forward().lookup(4), vec![1]);
        assert_eq!(lin.forward().lookup(3), vec![2]);
        assert!(result.stats.edges >= 6);
    }

    #[test]
    fn defer_matches_inject() {
        let r = rel();
        let aggs = microbenchmark_aggs("v");
        let keys = ["z".to_string()];
        let inject = group_by(&r, &keys, &aggs, &GroupByOptions::inject()).unwrap();
        let defer = group_by(&r, &keys, &aggs, &GroupByOptions::defer()).unwrap();
        assert_eq!(inject.output, defer.output);
        for g in 0..3u32 {
            assert_eq!(
                inject.lineage.input(0).backward().lookup(g),
                defer.lineage.input(0).backward().lookup(g)
            );
        }
        for rid in 0..r.len() as Rid {
            assert_eq!(
                inject.lineage.input(0).forward().lookup(rid),
                defer.lineage.input(0).forward().lookup(rid)
            );
        }
        // Defer incurs zero resizes thanks to exact pre-allocation, and
        // builds its backward index directly in CSR form.
        assert_eq!(defer.lineage.input(0).resizes(), 0);
        assert!(matches!(
            defer.lineage.input(0).backward,
            Some(LineageIndex::Csr(_))
        ));
        // The flat CSR layout is strictly more compact than Inject's
        // Vec-of-RidArrays.
        assert!(
            defer.lineage.input(0).backward().heap_bytes()
                < inject.lineage.input(0).backward().heap_bytes()
        );
    }

    #[test]
    fn cardinality_hints_eliminate_resizes_for_backward_index() {
        let r = rel();
        let keys = ["z".to_string()];
        let hints = true_cardinalities(&r, &keys).unwrap();
        let tc = group_by(
            &r,
            &keys,
            &microbenchmark_aggs("v"),
            &GroupByOptions::inject_with_hints(hints),
        )
        .unwrap();
        check_correctness(&tc);
        if let Some(LineageIndex::Index(idx)) = &tc.lineage.input(0).backward {
            assert_eq!(idx.resizes(), 0);
        } else {
            panic!("expected a backward rid index");
        }
    }

    #[test]
    fn direction_pruning_skips_indexes() {
        let r = rel();
        let mut opts = GroupByOptions::inject();
        opts.directions = DirectionFilter::BackwardOnly;
        let result = group_by(&r, &["z".to_string()], &[AggExpr::count("cnt")], &opts).unwrap();
        assert!(result.lineage.input(0).forward.is_none());
        assert!(result.lineage.input(0).backward.is_some());

        opts.directions = DirectionFilter::ForwardOnly;
        let result = group_by(&r, &["z".to_string()], &[AggExpr::count("cnt")], &opts).unwrap();
        assert!(result.lineage.input(0).backward.is_none());
        assert_eq!(result.lineage.input(0).forward().lookup(5), vec![0]);
    }

    #[test]
    fn selection_pushdown_prunes_index_entries() {
        let r = rel();
        let mut opts = GroupByOptions::inject();
        opts.workload.selection_pushdown =
            Some(crate::expr::Expr::col("tag").eq(crate::expr::Expr::lit("even")));
        let result = group_by(&r, &["z".to_string()], &[AggExpr::count("cnt")], &opts).unwrap();
        // The query result is unchanged...
        assert_eq!(
            result.output.column_by_name("cnt").unwrap().as_int(),
            &[3, 2, 1]
        );
        // ...but the backward index only holds rows with tag = "even" (rids 0,2,4).
        assert_eq!(result.lineage.input(0).backward().lookup(0), vec![0, 2]);
        assert_eq!(result.lineage.input(0).backward().lookup(1), vec![4]);
        assert_eq!(
            result.lineage.input(0).backward().lookup(2),
            Vec::<Rid>::new()
        );
    }

    #[test]
    fn data_skipping_partitions_rid_arrays() {
        let r = rel();
        let mut opts = GroupByOptions::inject();
        opts.workload.skipping_partition_by = vec!["tag".to_string()];
        let result = group_by(&r, &["z".to_string()], &[AggExpr::count("cnt")], &opts).unwrap();
        let part = result.artifacts.partitioned.as_ref().unwrap();
        assert_eq!(part.partition(0, "even"), &[0, 2]);
        assert_eq!(part.partition(0, "odd"), &[5]);
        assert_eq!(part.partition(1, "odd"), &[1]);
        // Union of partitions equals the plain backward entry.
        let mut all = part.all(0);
        all.sort_unstable();
        assert_eq!(all, vec![0, 2, 5]);
    }

    #[test]
    fn agg_pushdown_materializes_cube() {
        let r = rel();
        let mut opts = GroupByOptions::inject();
        opts.workload.agg_pushdown = Some(crate::instrument::AggPushdown {
            partition_by: vec!["tag".to_string()],
            aggs: vec![AggExpr::count("cnt"), AggExpr::sum("v", "sum_v")],
        });
        let result = group_by(&r, &["z".to_string()], &[AggExpr::count("cnt")], &opts).unwrap();
        let cube = result.artifacts.cube.as_ref().unwrap();
        let drill = cube.query(0).unwrap(); // group z=1: rids 0 (even,10), 2 (even,30), 5 (odd,60)
        assert_eq!(drill.len(), 2);
        assert_eq!(drill.value(0, 0), Value::Str("even".into()));
        assert_eq!(drill.value(0, 2), Value::Float(40.0));
        assert_eq!(drill.value(1, 0), Value::Str("odd".into()));
        assert_eq!(drill.value(1, 2), Value::Float(60.0));
    }

    #[test]
    fn grouping_by_string_and_multiple_keys() {
        let r = rel();
        let result = group_by(
            &r,
            &["tag".to_string(), "z".to_string()],
            &[AggExpr::count("cnt")],
            &GroupByOptions::inject(),
        )
        .unwrap();
        // (even,1), (odd,2), (even,1)=dup, (odd,3), (even,2), (odd,1)
        assert_eq!(result.output.len(), 5);
        assert_eq!(result.output.schema().names(), vec!["tag", "z", "cnt"]);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let r = Relation::builder("e")
            .column("z", DataType::Int)
            .column("v", DataType::Float)
            .build()
            .unwrap();
        let result = group_by(
            &r,
            &["z".to_string()],
            &[AggExpr::sum("v", "s")],
            &GroupByOptions::inject(),
        )
        .unwrap();
        assert_eq!(result.output.len(), 0);
        assert_eq!(result.lineage.input(0).backward().len(), 0);
    }

    #[test]
    fn unknown_key_or_agg_column_errors() {
        let r = rel();
        assert!(group_by(&r, &["nope".to_string()], &[], &GroupByOptions::inject()).is_err());
        assert!(group_by(
            &r,
            &["z".to_string()],
            &[AggExpr::sum("nope", "s")],
            &GroupByOptions::inject()
        )
        .is_err());
    }
}
