//! Lineage-instrumented physical operators (paper §3.2, §3.3, Appendix F).
//!
//! Every operator comes in an uninstrumented form (Baseline) plus the Inject
//! and — where the paper defines one — Defer instrumentation paradigms. The
//! operators return both their output relation and the captured
//! [`OperatorLineage`].

pub mod groupby;
pub mod join;
pub mod nljoin;
pub mod project;
pub mod select;
pub mod setops;

use smoke_lineage::{CaptureStats, OperatorLineage};
use smoke_storage::Relation;

/// The result of executing a single instrumented physical operator.
#[derive(Debug, Clone)]
pub struct OpOutput {
    /// The operator's output relation.
    pub output: Relation,
    /// Captured lineage w.r.t. the operator's input(s); empty for Baseline.
    pub lineage: OperatorLineage,
    /// Capture statistics for this operator.
    pub stats: CaptureStats,
}

impl OpOutput {
    /// Creates an output with no lineage (Baseline mode).
    pub fn baseline(output: Relation, stats: CaptureStats) -> Self {
        OpOutput {
            output,
            lineage: OperatorLineage::none(),
            stats,
        }
    }
}
