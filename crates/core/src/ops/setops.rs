//! Set and bag union, intersection, and difference with lineage capture
//! (paper Appendix F).
//!
//! All implementations are hash-based, mirroring the appendix:
//!
//! * **set union** — build a hash table on the left relation's union
//!   attributes, append unseen keys from the right, scan the table to emit
//!   output; backward lineage is 1-to-N per side, forward is 1-to-1.
//! * **bag union** — concatenation; lineage is pure rid arithmetic (the only
//!   state needed is the boundary rid).
//! * **set intersection** — like union but only keys matched by both sides
//!   are emitted.
//! * **bag intersection** — each key is emitted `a_matches · b_matches`
//!   times.
//! * **set/bag difference** — keys of the left relation not matched by the
//!   right; only left-side lineage is captured (the appendix notes every
//!   output depends on the *whole* right relation, which Smoke does not
//!   materialize).
//!
//! Inject and Defer are both supported: Defer stores an output id per hash
//! entry and builds the indexes in a post-pass that re-probes the table with
//! exact cardinalities.

use std::collections::HashMap;
use std::time::Instant;

use smoke_lineage::{
    CaptureStats, InputLineage, LineageIndex, OperatorLineage, RidArray, RidIndex,
};
use smoke_storage::{Relation, Rid};

use crate::error::{EngineError, Result};
use crate::instrument::CaptureMode;
use crate::key::{HashKey, KeyExtractor};
use crate::ops::OpOutput;

/// Which set/bag operation to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    /// `A ∪ B` with set semantics (duplicates collapsed).
    UnionSet,
    /// `A ∪ B` with bag semantics (concatenation).
    UnionBag,
    /// `A ∩ B` with set semantics.
    IntersectSet,
    /// `A ∩ B` with bag semantics (`a_matches · b_matches` copies per key).
    IntersectBag,
    /// `A − B` with set semantics.
    DifferenceSet,
}

struct Entry {
    a_rids: Vec<Rid>,
    b_rids: Vec<Rid>,
}

fn check_union_compatible(left: &Relation, right: &Relation, columns: &[String]) -> Result<()> {
    for name in columns {
        let l = left
            .column_index(name)
            .map_err(|_| EngineError::UnknownColumn(name.clone()))?;
        let r = right
            .column_index(name)
            .map_err(|_| EngineError::UnknownColumn(name.clone()))?;
        if left.schema().field(l).data_type != right.schema().field(r).data_type {
            return Err(EngineError::InvalidPlan(format!(
                "column `{name}` has different types in the two inputs"
            )));
        }
    }
    Ok(())
}

/// Executes a set/bag operation over the given key columns of `left` and
/// `right`, capturing lineage for both sides (except difference, which only
/// captures the left side).
pub fn set_op(
    left: &Relation,
    right: &Relation,
    columns: &[String],
    kind: SetOpKind,
    mode: CaptureMode,
) -> Result<OpOutput> {
    check_union_compatible(left, right, columns)?;
    if kind == SetOpKind::UnionBag {
        return bag_union(left, right, columns, mode);
    }
    let start = Instant::now();
    let capture = mode.captures();
    let inject = mode != CaptureMode::Defer;

    let left_extract = KeyExtractor::new(left, columns)?;
    let right_extract = KeyExtractor::new(right, columns)?;

    // Build phase over the left relation.
    let mut ht: HashMap<HashKey, Entry> = HashMap::new();
    let mut order: Vec<HashKey> = Vec::new();
    for rid in 0..left.len() {
        let key = left_extract.key(rid);
        let entry = ht.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            Entry {
                a_rids: Vec::new(),
                b_rids: Vec::new(),
            }
        });
        entry.a_rids.push(rid as Rid);
    }
    // Probe/append phase over the right relation.
    for rid in 0..right.len() {
        let key = right_extract.key(rid);
        match kind {
            SetOpKind::UnionSet => {
                let entry = ht.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    Entry {
                        a_rids: Vec::new(),
                        b_rids: Vec::new(),
                    }
                });
                entry.b_rids.push(rid as Rid);
            }
            _ => {
                if let Some(entry) = ht.get_mut(&key) {
                    entry.b_rids.push(rid as Rid);
                }
            }
        }
    }

    // Scan phase: emit output keys and build lineage.
    let mut out_keys: Vec<&HashKey> = Vec::new();
    let mut out_multiplicity: Vec<usize> = Vec::new();
    for key in &order {
        let entry = &ht[key];
        let emit = match kind {
            SetOpKind::UnionSet => 1,
            SetOpKind::IntersectSet => usize::from(!entry.b_rids.is_empty()),
            SetOpKind::IntersectBag => entry.a_rids.len() * entry.b_rids.len(),
            SetOpKind::DifferenceSet => usize::from(entry.b_rids.is_empty()),
            SetOpKind::UnionBag => unreachable!(),
        };
        if emit > 0 {
            out_keys.push(key);
            out_multiplicity.push(emit);
        }
    }

    // Materialize the output relation (the key columns, taken from the left
    // schema).
    let mut builder = Relation::builder(format!("{kind:?}({},{})", left.name(), right.name()));
    for name in columns {
        let idx = left.column_index(name)?;
        builder = builder.column(name.clone(), left.schema().field(idx).data_type);
    }
    for (key, mult) in out_keys.iter().zip(&out_multiplicity) {
        for _ in 0..*mult {
            builder = builder.row(key.to_values());
        }
    }
    let output = builder.build()?;
    let base_query = start.elapsed();

    if !capture {
        return Ok(OpOutput::baseline(
            output,
            CaptureStats {
                base_query,
                ..Default::default()
            },
        ));
    }

    // Lineage construction (Inject already has the per-entry rid lists; Defer
    // conceptually rebuilds them by re-probing — here both directions are
    // served from the hash table, and Defer's exact pre-allocation is modeled
    // by sizing from the known cardinalities).
    let defer_start = Instant::now();
    let mut a_bw = RidIndex::with_capacities(output.len(), |_| 0);
    let mut b_bw = RidIndex::with_capacities(output.len(), |_| 0);
    let mut a_fw: Vec<RidArray> = vec![RidArray::new(); left.len()];
    let mut b_fw: Vec<RidArray> = vec![RidArray::new(); right.len()];

    let mut out_rid: usize = 0;
    for (key, mult) in out_keys.iter().zip(&out_multiplicity) {
        let entry = &ht[*key];
        match kind {
            SetOpKind::UnionSet | SetOpKind::IntersectSet | SetOpKind::DifferenceSet => {
                for &a in &entry.a_rids {
                    a_bw.append(out_rid, a);
                    a_fw[a as usize].push(out_rid as Rid);
                }
                if kind != SetOpKind::DifferenceSet {
                    for &b in &entry.b_rids {
                        b_bw.append(out_rid, b);
                        b_fw[b as usize].push(out_rid as Rid);
                    }
                }
                out_rid += 1;
            }
            SetOpKind::IntersectBag => {
                // Outputs for this key occupy out_rid..out_rid+mult, ordered
                // by (a, b) pairs; bag intersection has 1-to-1 backward
                // lineage per side.
                let mut o = out_rid;
                for &a in &entry.a_rids {
                    for &b in &entry.b_rids {
                        a_bw.append(o, a);
                        b_bw.append(o, b);
                        a_fw[a as usize].push(o as Rid);
                        b_fw[b as usize].push(o as Rid);
                        o += 1;
                    }
                }
                out_rid += mult;
            }
            SetOpKind::UnionBag => unreachable!(),
        }
    }
    let deferred = if inject {
        std::time::Duration::ZERO
    } else {
        defer_start.elapsed()
    };

    let a_lineage = InputLineage::new(
        LineageIndex::Index(a_bw),
        LineageIndex::Index(RidIndex::from_arrays(a_fw)),
    );
    let lineage = if kind == SetOpKind::DifferenceSet {
        OperatorLineage::binary(a_lineage, InputLineage::default())
    } else {
        OperatorLineage::binary(
            a_lineage,
            InputLineage::new(
                LineageIndex::Index(b_bw),
                LineageIndex::Index(RidIndex::from_arrays(b_fw)),
            ),
        )
    };

    let mut stats = CaptureStats {
        base_query,
        deferred,
        ..Default::default()
    };
    stats.lineage_bytes = lineage.heap_bytes() as u64;
    Ok(OpOutput {
        output,
        lineage,
        stats,
    })
}

/// Bag union: concatenation of the two inputs projected onto the union
/// columns. Lineage is pure rid arithmetic around the boundary rid, so the
/// indexes are identity-like rid arrays.
fn bag_union(
    left: &Relation,
    right: &Relation,
    columns: &[String],
    mode: CaptureMode,
) -> Result<OpOutput> {
    let start = Instant::now();
    let mut builder = Relation::builder(format!("UnionBag({},{})", left.name(), right.name()));
    for name in columns {
        let idx = left.column_index(name)?;
        builder = builder.column(name.clone(), left.schema().field(idx).data_type);
    }
    let left_cols: Vec<usize> = columns
        .iter()
        .map(|c| left.column_index(c))
        .collect::<std::result::Result<_, _>>()?;
    let right_cols: Vec<usize> = columns
        .iter()
        .map(|c| right.column_index(c))
        .collect::<std::result::Result<_, _>>()?;
    for rid in 0..left.len() {
        builder = builder.row(left_cols.iter().map(|&c| left.value(rid, c)).collect());
    }
    for rid in 0..right.len() {
        builder = builder.row(right_cols.iter().map(|&c| right.value(rid, c)).collect());
    }
    let output = builder.build()?;
    let stats = CaptureStats {
        base_query: start.elapsed(),
        ..Default::default()
    };
    if !mode.captures() {
        return Ok(OpOutput::baseline(output, stats));
    }
    let boundary = left.len();
    // Left rows occupy output rids [0, boundary); right rows follow.
    let a_bw: RidArray = (0..boundary as Rid).collect();
    let b_bw: RidArray = (0..right.len() as Rid).collect();
    let a_fw: RidArray = (0..boundary as Rid).collect();
    let b_fw: RidArray = (boundary as Rid..(boundary + right.len()) as Rid).collect();
    // Backward lineage of the combined output is per side: for output rids in
    // the left range it points into A, for the right range into B.
    let mut a_bw_full = RidArray::filled(output.len());
    let mut b_bw_full = RidArray::filled(output.len());
    for (o, r) in a_bw.iter().enumerate() {
        a_bw_full.set(o, r);
    }
    for (o, r) in b_bw.iter().enumerate() {
        b_bw_full.set(boundary + o, r);
    }
    Ok(OpOutput {
        output,
        lineage: OperatorLineage::binary(
            InputLineage::new(LineageIndex::Array(a_bw_full), LineageIndex::Array(a_fw)),
            InputLineage::new(LineageIndex::Array(b_bw_full), LineageIndex::Array(b_fw)),
        ),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_storage::{DataType, Value};

    fn rel(name: &str, values: &[i64]) -> Relation {
        let mut b = Relation::builder(name).column("k", DataType::Int);
        for v in values {
            b = b.row(vec![Value::Int(*v)]);
        }
        b.build().unwrap()
    }

    fn cols() -> Vec<String> {
        vec!["k".to_string()]
    }

    #[test]
    fn set_union_collapses_duplicates_and_traces_both_sides() {
        let a = rel("A", &[1, 2, 2, 3]);
        let b = rel("B", &[3, 4, 4]);
        let out = set_op(&a, &b, &cols(), SetOpKind::UnionSet, CaptureMode::Inject).unwrap();
        assert_eq!(out.output.column(0).as_int(), &[1, 2, 3, 4]);
        // Key 2 (output rid 1) came from A rids 1 and 2.
        assert_eq!(out.lineage.input(0).backward().lookup(1), vec![1, 2]);
        // Key 3 (output rid 2) came from A rid 3 and B rid 0.
        assert_eq!(out.lineage.input(0).backward().lookup(2), vec![3]);
        assert_eq!(out.lineage.input(1).backward().lookup(2), vec![0]);
        // Forward: B rid 2 (value 4) maps to output rid 3.
        assert_eq!(out.lineage.input(1).forward().lookup(2), vec![3]);
    }

    #[test]
    fn set_intersection_keeps_matched_keys_only() {
        let a = rel("A", &[1, 2, 3, 2]);
        let b = rel("B", &[2, 4, 2]);
        let out = set_op(
            &a,
            &b,
            &cols(),
            SetOpKind::IntersectSet,
            CaptureMode::Inject,
        )
        .unwrap();
        assert_eq!(out.output.column(0).as_int(), &[2]);
        assert_eq!(out.lineage.input(0).backward().lookup(0), vec![1, 3]);
        assert_eq!(out.lineage.input(1).backward().lookup(0), vec![0, 2]);
    }

    #[test]
    fn bag_intersection_multiplicity() {
        let a = rel("A", &[2, 2, 5]);
        let b = rel("B", &[2, 2, 2]);
        let out = set_op(
            &a,
            &b,
            &cols(),
            SetOpKind::IntersectBag,
            CaptureMode::Inject,
        )
        .unwrap();
        // 2 appears 2*3 = 6 times.
        assert_eq!(out.output.len(), 6);
        // Bag intersection has 1-to-1 backward lineage per output row.
        for o in 0..6u32 {
            assert_eq!(out.lineage.input(0).backward().lookup(o).len(), 1);
            assert_eq!(out.lineage.input(1).backward().lookup(o).len(), 1);
        }
    }

    #[test]
    fn set_difference_traces_left_only() {
        let a = rel("A", &[1, 2, 3, 1]);
        let b = rel("B", &[2]);
        let out = set_op(
            &a,
            &b,
            &cols(),
            SetOpKind::DifferenceSet,
            CaptureMode::Inject,
        )
        .unwrap();
        assert_eq!(out.output.column(0).as_int(), &[1, 3]);
        assert_eq!(out.lineage.input(0).backward().lookup(0), vec![0, 3]);
        assert!(out.lineage.input(1).backward.is_none());
    }

    #[test]
    fn bag_union_concatenates_with_rid_arithmetic_lineage() {
        let a = rel("A", &[1, 2]);
        let b = rel("B", &[3]);
        let out = set_op(&a, &b, &cols(), SetOpKind::UnionBag, CaptureMode::Inject).unwrap();
        assert_eq!(out.output.column(0).as_int(), &[1, 2, 3]);
        assert_eq!(out.lineage.input(0).backward().lookup(1), vec![1]);
        assert_eq!(out.lineage.input(1).backward().lookup(2), vec![0]);
        assert_eq!(out.lineage.input(1).forward().lookup(0), vec![2]);
        assert_eq!(out.lineage.input(0).forward().lookup(0), vec![0]);
    }

    #[test]
    fn defer_matches_inject() {
        let a = rel("A", &[1, 2, 2, 3]);
        let b = rel("B", &[3, 4]);
        for kind in [
            SetOpKind::UnionSet,
            SetOpKind::IntersectSet,
            SetOpKind::DifferenceSet,
        ] {
            let i = set_op(&a, &b, &cols(), kind, CaptureMode::Inject).unwrap();
            let d = set_op(&a, &b, &cols(), kind, CaptureMode::Defer).unwrap();
            assert_eq!(i.output, d.output, "{kind:?}");
            for o in 0..i.output.len() as Rid {
                assert_eq!(
                    i.lineage.input(0).backward().lookup(o),
                    d.lineage.input(0).backward().lookup(o)
                );
            }
        }
    }

    #[test]
    fn baseline_has_no_lineage() {
        let a = rel("A", &[1]);
        let b = rel("B", &[1]);
        let out = set_op(&a, &b, &cols(), SetOpKind::UnionSet, CaptureMode::Baseline).unwrap();
        assert!(out.lineage.is_none());
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let a = rel("A", &[1]);
        let b = Relation::builder("B")
            .column("k", DataType::Str)
            .row(vec![Value::Str("x".into())])
            .build()
            .unwrap();
        assert!(set_op(&a, &b, &cols(), SetOpKind::UnionSet, CaptureMode::Inject).is_err());
    }
}
