//! Hash equi-joins with lineage capture (paper §3.2.4).
//!
//! A hash join is split into a build phase (`⋈ht`, hash table on the left
//! relation) and a probe phase (`⋈probe`, scan of the right relation). The
//! backward lineage of every output record is exactly one rid per side (rid
//! arrays); the forward lineage is 1-to-N (rid indexes), because an input
//! record can participate in many join results.
//!
//! * **Inject** augments each hash-table entry with the left rids for that
//!   join key (`i_rids`) and populates all four indexes during the probe.
//!   Forward indexes for the left side can trigger many reallocations when a
//!   key has many matches.
//! * **Defer** additionally stores, per hash entry, the rid of the *first*
//!   output record of every match (`o_rids`); since matched outputs are
//!   emitted contiguously, the left-side indexes can be exactly allocated and
//!   populated in a final hash-table scan after the probe.
//! * **DeferForward** defers only the left forward index.
//! * **pk-fk joins**: when the build side is unique, `i_rids` degenerates to a
//!   single rid, the output cardinality is bounded by the probe side's, and
//!   the right-side forward index is a plain rid array — backward indexes are
//!   pre-allocated and Inject/Defer coincide.

use std::collections::HashMap;
use std::time::Instant;

use smoke_lineage::{
    CaptureStats, CsrBuilder, CsrRidIndex, InputLineage, LineageIndex, OperatorLineage, RidArray,
    RidIndex,
};
use smoke_storage::{Relation, Rid, Schema};

use crate::error::Result;
use crate::instrument::{CaptureMode, CardinalityHints, DirectionFilter};
use crate::key::KeyExtractor;

/// Options controlling join instrumentation.
#[derive(Debug, Clone)]
pub struct JoinOptions {
    /// Instrumentation paradigm.
    pub mode: CaptureMode,
    /// Lineage directions to capture for the left (build) relation.
    pub left_directions: DirectionFilter,
    /// Lineage directions to capture for the right (probe) relation.
    pub right_directions: DirectionFilter,
    /// Optional per-key match-count statistics (`Smoke-I+TC`).
    pub hints: Option<CardinalityHints>,
    /// Whether to materialize the join output relation. The M:N stress
    /// benchmarks disable materialization (the paper does the same) so that
    /// capture overhead is not drowned by result construction.
    pub materialize_output: bool,
}

impl Default for JoinOptions {
    fn default() -> Self {
        JoinOptions {
            mode: CaptureMode::Inject,
            left_directions: DirectionFilter::Both,
            right_directions: DirectionFilter::Both,
            hints: None,
            materialize_output: true,
        }
    }
}

impl JoinOptions {
    /// Baseline: no capture.
    pub fn baseline() -> Self {
        JoinOptions {
            mode: CaptureMode::Baseline,
            ..Default::default()
        }
    }

    /// `Smoke-I`.
    pub fn inject() -> Self {
        JoinOptions::default()
    }

    /// `Smoke-D`.
    pub fn defer() -> Self {
        JoinOptions {
            mode: CaptureMode::Defer,
            ..Default::default()
        }
    }

    /// `Smoke-D-DeferForw`: defer only the left forward index.
    pub fn defer_forward() -> Self {
        JoinOptions {
            mode: CaptureMode::DeferForward,
            ..Default::default()
        }
    }

    /// Disables output materialization (used by the M:N stress benchmarks).
    pub fn without_output(mut self) -> Self {
        self.materialize_output = false;
        self
    }

    /// Attaches per-key match-count hints (`Smoke-I+TC`).
    pub fn with_hints(mut self, hints: CardinalityHints) -> Self {
        self.hints = Some(hints);
        self
    }
}

/// The result of an instrumented hash join.
#[derive(Debug, Clone)]
pub struct JoinResult {
    /// Join output (empty relation with the joined schema when output
    /// materialization is disabled).
    pub output: Relation,
    /// Lineage: input 0 is the left (build) relation, input 1 the right
    /// (probe) relation.
    pub lineage: OperatorLineage,
    /// Number of join result rows (even when not materialized).
    pub output_rows: usize,
    /// Whether the build side turned out to be unique (pk-fk join).
    pub pk_fk: bool,
    /// How many grace-hash partitions the join spilled into; `1` means the
    /// build side fit the budget and the join ran fully resident.
    pub grace_partitions: usize,
    /// Capture statistics.
    pub stats: CaptureStats,
}

struct BuildEntry {
    rids: Vec<Rid>,
    o_rids: Vec<Rid>,
}

/// Executes `left ⋈ right ON left_keys = right_keys` with the configured
/// instrumentation.
///
/// The build and probe phases are keyed by typed key vectors when the join
/// columns allow it — plain `i64` keys, borrowed `&str` keys (no per-probe
/// `String` clone), or `(i64, i64)` pairs — and fall back to generic
/// [`HashKey`](crate::key::HashKey)s otherwise. Lineage capture is emitted
/// inside the probe loop in every variant, so Inject stays fused with the
/// base join.
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[String],
    right_keys: &[String],
    opts: &JoinOptions,
) -> Result<JoinResult> {
    use smoke_storage::kernels as sk;

    let start = Instant::now();
    let left_extract = KeyExtractor::new(left, left_keys)?;
    let right_extract = KeyExtractor::new(right, right_keys)?;

    if let (Some(lk), Some(rk)) = (
        sk::int_keys(left_extract.columns()),
        sk::int_keys(right_extract.columns()),
    ) {
        return hash_join_keyed(
            start,
            left,
            right,
            |rid| lk[rid],
            |rid| rk[rid],
            |&k| crate::key::HashKey::Int(k),
            opts,
        );
    }
    if let (Some(lk), Some(rk)) = (
        sk::str_keys(left_extract.columns()),
        sk::str_keys(right_extract.columns()),
    ) {
        return hash_join_keyed(
            start,
            left,
            right,
            |rid| lk[rid].as_str(),
            |rid| rk[rid].as_str(),
            |k: &&str| crate::key::HashKey::Str((*k).to_string()),
            opts,
        );
    }
    if let (Some(lk), Some(rk)) = (
        sk::int_key_pairs(left_extract.columns()),
        sk::int_key_pairs(right_extract.columns()),
    ) {
        return hash_join_keyed(
            start,
            left,
            right,
            |rid| lk[rid],
            |rid| rk[rid],
            |&(a, b)| {
                crate::key::HashKey::Composite(vec![
                    crate::key::KeyPart::Int(a),
                    crate::key::KeyPart::Int(b),
                ])
            },
            opts,
        );
    }
    hash_join_keyed(
        start,
        left,
        right,
        |rid| left_extract.key(rid),
        |rid| right_extract.key(rid),
        |k: &crate::key::HashKey| k.clone(),
        opts,
    )
}

/// The join body, generic over the key representation. `hint_key` renders a
/// key back as a [`HashKey`](crate::key::HashKey) for cardinality-hint
/// lookups (called once per distinct build key, never per row).
fn hash_join_keyed<K: Eq + std::hash::Hash>(
    start: Instant,
    left: &Relation,
    right: &Relation,
    left_key: impl Fn(usize) -> K,
    right_key: impl Fn(usize) -> K,
    hint_key: impl Fn(&K) -> crate::key::HashKey,
    opts: &JoinOptions,
) -> Result<JoinResult> {
    let capture = opts.mode.captures();
    let cap_a_b = capture && opts.left_directions.backward();
    let cap_a_f = capture && opts.left_directions.forward();
    let cap_b_b = capture && opts.right_directions.backward();
    let cap_b_f = capture && opts.right_directions.forward();
    let defer_left = capture && opts.mode == CaptureMode::Defer;
    let defer_forward = capture && opts.mode == CaptureMode::DeferForward;

    // ⋈ht: build phase over the left relation.
    let mut ht: HashMap<K, BuildEntry> = HashMap::new();
    let mut pk_fk = true;
    for rid in 0..left.len() {
        let key = left_key(rid);
        let entry = ht.entry(key).or_insert_with(|| BuildEntry {
            rids: Vec::with_capacity(1),
            o_rids: Vec::new(),
        });
        entry.rids.push(rid as Rid);
        if entry.rids.len() > 1 {
            pk_fk = false;
        }
    }

    // When the build side is a primary key the output cardinality is bounded
    // by the probe side cardinality, so backward arrays can be pre-allocated.
    let prealloc = if pk_fk { right.len() } else { 0 };
    let mut out_left: Vec<Rid> = Vec::with_capacity(prealloc);
    let mut out_right: Vec<Rid> = Vec::with_capacity(prealloc);

    // Left forward index assembled as per-left-rid arrays so that hint-based
    // pre-allocation preserves its resize accounting. Defer modes skip this
    // entirely: they build the index in CSR form after the probe, when every
    // per-entry cardinality is known exactly.
    let mut a_fw: Vec<RidArray> = if cap_a_f && !defer_left && !defer_forward {
        let mut arrays: Vec<RidArray> = vec![RidArray::new(); left.len()];
        if let Some(hints) = &opts.hints {
            for (key, entry) in &ht {
                if let Some(cap) = hints.cardinality(&hint_key(key)) {
                    for &l in &entry.rids {
                        arrays[l as usize] = RidArray::with_capacity(cap);
                    }
                }
            }
        }
        arrays
    } else {
        Vec::new()
    };
    let mut b_fw_index = RidIndex::with_len(if cap_b_f && !pk_fk { right.len() } else { 0 });
    let mut b_fw_array = if cap_b_f && pk_fk {
        RidArray::filled(right.len())
    } else {
        RidArray::new()
    };

    // ⋈probe: probe phase over the right relation.
    let mut out_counter: usize = 0;
    for rid in 0..right.len() {
        let key = right_key(rid);
        let Some(entry) = ht.get_mut(&key) else {
            continue;
        };
        if defer_left || defer_forward {
            entry.o_rids.push(out_counter as Rid);
        }
        let k = entry.rids.len();
        for (j, &l) in entry.rids.iter().enumerate() {
            let o = (out_counter + j) as Rid;
            if opts.materialize_output || (cap_a_b && !defer_left) {
                out_left.push(l);
            }
            if opts.materialize_output || cap_b_b {
                out_right.push(rid as Rid);
            }
            if cap_a_f && !defer_left && !defer_forward {
                a_fw[l as usize].push(o);
            }
            if cap_b_f {
                if pk_fk {
                    b_fw_array.set(rid, o);
                } else {
                    b_fw_index.append(rid, o);
                }
            }
        }
        out_counter += k;
    }
    let base_query = start.elapsed();

    // Deferred construction of the left-side indexes. The forward index is
    // built directly in CSR form: per-left-rid cardinalities are exact after
    // the probe, so both flat buffers are allocated once and never resized.
    let defer_start = Instant::now();
    let mut a_bw_deferred: Option<RidArray> = None;
    let mut a_fw_deferred: Option<CsrRidIndex> = None;
    if defer_left || defer_forward {
        if defer_left && cap_a_b {
            a_bw_deferred = Some(RidArray::filled(out_counter));
        }
        if cap_a_f {
            let mut counts = vec![0usize; left.len()];
            for entry in ht.values() {
                if entry.o_rids.is_empty() {
                    continue;
                }
                for &l in &entry.rids {
                    counts[l as usize] = entry.o_rids.len();
                }
            }
            let mut builder = CsrBuilder::with_counts(counts);
            for entry in ht.values() {
                if entry.o_rids.is_empty() {
                    continue;
                }
                for (j, &l) in entry.rids.iter().enumerate() {
                    for &start_o in &entry.o_rids {
                        let o = start_o + j as Rid;
                        builder.append(l as usize, o);
                        if let Some(bw) = a_bw_deferred.as_mut() {
                            bw.set(o as usize, l);
                        }
                    }
                }
            }
            a_fw_deferred = Some(builder.finish());
        } else if defer_left && cap_a_b {
            for entry in ht.values() {
                for (j, &l) in entry.rids.iter().enumerate() {
                    for &start_o in &entry.o_rids {
                        a_bw_deferred
                            .as_mut()
                            .expect("allocated above")
                            .set((start_o + j as Rid) as usize, l);
                    }
                }
            }
        }
    }
    let deferred = if defer_left || defer_forward {
        defer_start.elapsed()
    } else {
        std::time::Duration::ZERO
    };

    // Output materialization.
    let joined_schema: Schema = left.schema().concat(right.schema(), right.name());
    let output_name = format!("join({},{})", left.name(), right.name());
    let output = if opts.materialize_output {
        let mut columns = Vec::with_capacity(joined_schema.arity());
        for col in left.columns() {
            columns.push(col.gather(&out_left));
        }
        for col in right.columns() {
            columns.push(col.gather(&out_right));
        }
        Relation::from_columns(output_name, joined_schema, columns)?
    } else {
        Relation::empty(output_name, joined_schema)
    };

    if !capture {
        return Ok(JoinResult {
            output,
            lineage: OperatorLineage::none(),
            output_rows: out_counter,
            pk_fk,
            grace_partitions: 1,
            stats: CaptureStats {
                base_query,
                ..Default::default()
            },
        });
    }

    // Assemble lineage indexes.
    let a_backward = if cap_a_b {
        Some(LineageIndex::Array(match a_bw_deferred {
            Some(bw) => bw,
            None => RidArray::from_vec(out_left.clone()),
        }))
    } else {
        None
    };
    let a_forward = if cap_a_f {
        Some(match a_fw_deferred {
            Some(csr) => LineageIndex::Csr(csr),
            None => LineageIndex::Index(RidIndex::from_arrays(a_fw)),
        })
    } else {
        None
    };
    let b_backward = cap_b_b.then(|| LineageIndex::Array(RidArray::from_vec(out_right.clone())));
    let b_forward = if cap_b_f {
        Some(if pk_fk {
            LineageIndex::Array(b_fw_array)
        } else {
            LineageIndex::Index(b_fw_index)
        })
    } else {
        None
    };

    let mut stats = CaptureStats {
        base_query,
        deferred,
        ..Default::default()
    };
    for idx in [&a_backward, &a_forward, &b_backward, &b_forward]
        .into_iter()
        .flatten()
    {
        stats.edges += idx.edge_count() as u64;
        stats.rid_resizes += idx.resizes();
        stats.lineage_bytes += idx.heap_bytes() as u64;
    }

    Ok(JoinResult {
        output,
        lineage: OperatorLineage::binary(
            InputLineage {
                backward: a_backward,
                forward: a_forward,
            },
            InputLineage {
                backward: b_backward,
                forward: b_forward,
            },
        ),
        output_rows: out_counter,
        pk_fk,
        grace_partitions: 1,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_storage::{DataType, Value};

    fn gids() -> Relation {
        let mut b = Relation::builder("gids")
            .column("id", DataType::Int)
            .column("label", DataType::Str);
        for i in 0..3 {
            b = b.row(vec![Value::Int(i), Value::Str(format!("g{i}"))]);
        }
        b.build().unwrap()
    }

    fn zipf() -> Relation {
        // z: 0,1,0,2,1,0  => fk references gids.id
        let mut b = Relation::builder("zipf")
            .column("z", DataType::Int)
            .column("v", DataType::Float);
        for (i, z) in [0, 1, 0, 2, 1, 0].iter().enumerate() {
            b = b.row(vec![Value::Int(*z), Value::Float(i as f64)]);
        }
        b.build().unwrap()
    }

    fn mn_left() -> Relation {
        let mut b = Relation::builder("A").column("z", DataType::Int);
        for z in [1, 1, 2] {
            b = b.row(vec![Value::Int(z)]);
        }
        b.build().unwrap()
    }

    fn mn_right() -> Relation {
        let mut b = Relation::builder("B").column("z", DataType::Int);
        for z in [1, 2, 1, 3] {
            b = b.row(vec![Value::Int(z)]);
        }
        b.build().unwrap()
    }

    fn run(opts: &JoinOptions) -> JoinResult {
        hash_join(
            &gids(),
            &zipf(),
            &["id".to_string()],
            &["z".to_string()],
            opts,
        )
        .unwrap()
    }

    #[test]
    fn pkfk_join_output_and_detection() {
        let result = run(&JoinOptions::baseline());
        assert!(result.pk_fk);
        assert_eq!(result.output_rows, 6);
        assert_eq!(result.output.len(), 6);
        assert_eq!(
            result.output.schema().names(),
            vec!["id", "label", "z", "v"]
        );
        assert!(result.lineage.is_none());
    }

    #[test]
    fn pkfk_inject_lineage_round_trips() {
        let result = run(&JoinOptions::inject());
        let left_lin = result.lineage.input(0);
        let right_lin = result.lineage.input(1);
        // Output row 0 comes from right rid 0 (z=0) and left rid 0.
        assert_eq!(left_lin.backward().lookup(0), vec![0]);
        assert_eq!(right_lin.backward().lookup(0), vec![0]);
        // Left rid 0 (id=0) matched right rids 0, 2, 5 -> three outputs.
        assert_eq!(left_lin.forward().lookup(0).len(), 3);
        // Right rid 3 (z=2) produced exactly one output; backward of that
        // output is left rid 2.
        let outs = right_lin.forward().lookup(3);
        assert_eq!(outs.len(), 1);
        assert_eq!(left_lin.backward().lookup(outs[0]), vec![2]);
        // Every output's backward pair is consistent with the joined values.
        for o in 0..result.output_rows as Rid {
            let l = left_lin.backward().single(o).unwrap();
            let r = right_lin.backward().single(o).unwrap();
            assert_eq!(
                gids().value(l as usize, 0),
                zipf().value(r as usize, 0),
                "join key mismatch for output {o}"
            );
        }
    }

    #[test]
    fn defer_matches_inject_for_pkfk_and_mn() {
        // pk-fk join.
        let inject = run(&JoinOptions::inject());
        let defer = run(&JoinOptions::defer());
        assert_eq!(inject.output, defer.output);
        for o in 0..inject.output_rows as Rid {
            assert_eq!(
                inject.lineage.input(0).backward().lookup(o),
                defer.lineage.input(0).backward().lookup(o)
            );
        }
        for l in 0..3 as Rid {
            let mut a = inject.lineage.input(0).forward().lookup(l);
            let mut b = defer.lineage.input(0).forward().lookup(l);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }

        // M:N join.
        let opts_i = JoinOptions::inject();
        let opts_d = JoinOptions::defer();
        let opts_df = JoinOptions::defer_forward();
        let i = hash_join(
            &mn_left(),
            &mn_right(),
            &["z".into()],
            &["z".into()],
            &opts_i,
        )
        .unwrap();
        let d = hash_join(
            &mn_left(),
            &mn_right(),
            &["z".into()],
            &["z".into()],
            &opts_d,
        )
        .unwrap();
        let df = hash_join(
            &mn_left(),
            &mn_right(),
            &["z".into()],
            &["z".into()],
            &opts_df,
        )
        .unwrap();
        assert!(!i.pk_fk);
        assert_eq!(i.output_rows, 5); // z=1: 2x2 matches, z=2: 1x1
                                      // Defer modes build the left forward index directly in CSR form.
        for result in [&d, &df] {
            assert!(matches!(
                result.lineage.input(0).forward,
                Some(LineageIndex::Csr(_))
            ));
        }
        for result in [&d, &df] {
            assert_eq!(result.output, i.output);
            for o in 0..i.output_rows as Rid {
                assert_eq!(
                    result.lineage.input(0).backward().lookup(o),
                    i.lineage.input(0).backward().lookup(o)
                );
                assert_eq!(
                    result.lineage.input(1).backward().lookup(o),
                    i.lineage.input(1).backward().lookup(o)
                );
            }
            for l in 0..3 as Rid {
                let mut a = result.lineage.input(0).forward().lookup(l);
                let mut b = i.lineage.input(0).forward().lookup(l);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn forward_backward_inverse_property() {
        let opts = JoinOptions::inject();
        let r = hash_join(&mn_left(), &mn_right(), &["z".into()], &["z".into()], &opts).unwrap();
        for o in 0..r.output_rows as Rid {
            let l = r.lineage.input(0).backward().single(o).unwrap();
            assert!(r.lineage.input(0).forward().lookup(l).contains(&o));
            let rr = r.lineage.input(1).backward().single(o).unwrap();
            assert!(r.lineage.input(1).forward().lookup(rr).contains(&o));
        }
    }

    #[test]
    fn unmaterialized_join_still_counts_and_captures() {
        let opts = JoinOptions::inject().without_output();
        let r = hash_join(&mn_left(), &mn_right(), &["z".into()], &["z".into()], &opts).unwrap();
        assert_eq!(r.output.len(), 0);
        assert_eq!(r.output_rows, 5);
        assert_eq!(r.lineage.input(0).backward().len(), 5);
    }

    #[test]
    fn hints_preallocate_left_forward_index() {
        // Match counts per key: id=0 -> 3, id=1 -> 2, id=2 -> 1.
        let mut per_key = std::collections::HashMap::new();
        per_key.insert(crate::key::HashKey::Int(0), 3usize);
        per_key.insert(crate::key::HashKey::Int(1), 2usize);
        per_key.insert(crate::key::HashKey::Int(2), 1usize);
        let opts = JoinOptions::inject().with_hints(CardinalityHints::with_per_key(per_key));
        let hinted = run(&opts);
        let plain = run(&JoinOptions::inject());
        assert_eq!(hinted.output, plain.output);
        if let Some(LineageIndex::Index(idx)) = &hinted.lineage.input(0).forward {
            assert_eq!(idx.resizes(), 0);
        } else {
            panic!("expected rid-index forward lineage");
        }
    }

    #[test]
    fn pruning_directions_per_side() {
        let opts = JoinOptions {
            left_directions: DirectionFilter::BackwardOnly,
            right_directions: DirectionFilter::None,
            ..JoinOptions::inject()
        };
        let r = run(&opts);
        assert!(r.lineage.input(0).backward.is_some());
        assert!(r.lineage.input(0).forward.is_none());
        assert!(r.lineage.input(1).backward.is_none());
        assert!(r.lineage.input(1).forward.is_none());
    }

    #[test]
    fn join_with_no_matches() {
        let mut b = Relation::builder("empty_keys").column("z", DataType::Int);
        b = b.row(vec![Value::Int(99)]);
        let right = b.build().unwrap();
        let r = hash_join(
            &gids(),
            &right,
            &["id".to_string()],
            &["z".to_string()],
            &JoinOptions::inject(),
        )
        .unwrap();
        assert_eq!(r.output_rows, 0);
        assert_eq!(r.output.len(), 0);
        assert_eq!(r.lineage.input(0).forward().lookup(0), Vec::<Rid>::new());
    }
}
