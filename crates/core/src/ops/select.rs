//! Selection with lineage capture (paper §3.2.2).
//!
//! Selection emits a record whenever the predicate holds. Both lineage
//! directions are rid arrays: the backward array lists the input rid of every
//! output record, and the forward array (pre-allocated at the input
//! cardinality) maps each input rid to its output rid or to the `NO_RID`
//! sentinel when filtered. The paper finds Defer strictly inferior to Inject
//! for selection, so only Inject (optionally with a selectivity estimate for
//! pre-allocation, Appendix G.1) is implemented.

use std::time::Instant;

use smoke_lineage::{CaptureStats, InputLineage, LineageIndex, OperatorLineage, RidArray};
use smoke_storage::{Relation, Rid};

use crate::error::Result;
use crate::expr::Expr;
use crate::instrument::DirectionFilter;
use crate::ops::OpOutput;

/// Options controlling selection instrumentation.
#[derive(Debug, Clone, Default)]
pub struct SelectOptions {
    /// Whether (and in which directions) lineage is captured.
    pub directions: DirectionFilter,
    /// Whether capture is enabled at all (Baseline when `false`).
    pub capture: bool,
    /// Estimated selectivity in `[0, 1]`, used to pre-allocate the backward
    /// rid array (the `Smoke-I+EC` variant). Over-estimates are preferable to
    /// under-estimates, which still incur resizes.
    pub selectivity_estimate: Option<f64>,
}

impl SelectOptions {
    /// Baseline: no capture.
    pub fn baseline() -> Self {
        SelectOptions::default()
    }

    /// Inject capture in both directions.
    pub fn inject() -> Self {
        SelectOptions {
            capture: true,
            directions: DirectionFilter::Both,
            ..Default::default()
        }
    }

    /// Inject capture with a selectivity estimate (`Smoke-I+EC`).
    pub fn inject_with_estimate(selectivity: f64) -> Self {
        SelectOptions {
            capture: true,
            directions: DirectionFilter::Both,
            selectivity_estimate: Some(selectivity),
        }
    }
}

/// Executes `SELECT * FROM input WHERE predicate` with optional lineage
/// capture.
pub fn select(input: &Relation, predicate: &Expr, opts: &SelectOptions) -> Result<OpOutput> {
    let start = Instant::now();
    let bound = predicate.bind(input)?;
    let n = input.len();

    let capture_backward = opts.capture && opts.directions.backward();
    let capture_forward = opts.capture && opts.directions.forward();

    // Matching rids are needed to materialize the output regardless of
    // capture; the *backward index* is exactly this array, so Smoke reuses it
    // (reuse principle P4) and the marginal capture cost is the forward array.
    let mut matching: Vec<Rid> = match opts.selectivity_estimate {
        Some(s) if opts.capture => Vec::with_capacity(((n as f64) * s.clamp(0.0, 1.0)) as usize),
        _ => Vec::new(),
    };
    let mut forward = if capture_forward {
        RidArray::filled(n)
    } else {
        RidArray::new()
    };

    let mut ctr_o: Rid = 0;
    for rid in 0..n {
        if bound.eval_bool(input, rid)? {
            matching.push(rid as Rid);
            if capture_forward {
                forward.set(rid, ctr_o);
            }
            ctr_o += 1;
        }
    }

    let output = input.gather(&matching, format!("select({})", input.name()));
    let elapsed = start.elapsed();

    let mut stats = CaptureStats {
        base_query: elapsed,
        ..Default::default()
    };

    if !opts.capture {
        return Ok(OpOutput::baseline(output, stats));
    }

    let backward_index = LineageIndex::Array(RidArray::from_vec(matching));
    stats.edges = output.len() as u64;
    stats.lineage_bytes = (backward_index.heap_bytes()
        + if capture_forward {
            forward.heap_bytes()
        } else {
            0
        }) as u64;

    let lineage = InputLineage {
        backward: capture_backward.then_some(backward_index),
        forward: capture_forward.then_some(LineageIndex::Array(forward)),
    };

    Ok(OpOutput {
        output,
        lineage: OperatorLineage::unary(lineage),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_storage::{DataType, Value};

    fn rel() -> Relation {
        let mut b = Relation::builder("t")
            .column("id", DataType::Int)
            .column("v", DataType::Float);
        for i in 0..10 {
            b = b.row(vec![Value::Int(i), Value::Float(i as f64 * 10.0)]);
        }
        b.build().unwrap()
    }

    #[test]
    fn baseline_produces_no_lineage() {
        let r = rel();
        let out = select(
            &r,
            &Expr::col("v").lt(Expr::lit(35.0)),
            &SelectOptions::baseline(),
        )
        .unwrap();
        assert_eq!(out.output.len(), 4);
        assert!(out.lineage.is_none());
    }

    #[test]
    fn inject_builds_backward_and_forward() {
        let r = rel();
        let out = select(
            &r,
            &Expr::col("id").ge(Expr::lit(7)),
            &SelectOptions::inject(),
        )
        .unwrap();
        assert_eq!(out.output.len(), 3);
        let lin = out.lineage.input(0);
        // Backward: output rid -> input rid.
        assert_eq!(lin.backward().lookup(0), vec![7]);
        assert_eq!(lin.backward().lookup(2), vec![9]);
        // Forward: input rid -> output rid; filtered rows map to nothing.
        assert_eq!(lin.forward().lookup(8), vec![1]);
        assert_eq!(lin.forward().lookup(0), Vec::<Rid>::new());
        assert_eq!(out.stats.edges, 3);
    }

    #[test]
    fn estimate_preallocates_without_changing_results() {
        let r = rel();
        let pred = Expr::col("v").le(Expr::lit(50.0));
        let plain = select(&r, &pred, &SelectOptions::inject()).unwrap();
        let estimated = select(&r, &pred, &SelectOptions::inject_with_estimate(0.7)).unwrap();
        assert_eq!(plain.output, estimated.output);
        assert_eq!(
            plain.lineage.input(0).backward().lookup(3),
            estimated.lineage.input(0).backward().lookup(3)
        );
    }

    #[test]
    fn empty_selection() {
        let r = rel();
        let out = select(
            &r,
            &Expr::col("id").gt(Expr::lit(100)),
            &SelectOptions::inject(),
        )
        .unwrap();
        assert_eq!(out.output.len(), 0);
        assert_eq!(out.lineage.input(0).backward().len(), 0);
        assert_eq!(out.lineage.input(0).forward().lookup(5), Vec::<Rid>::new());
    }

    #[test]
    fn forward_and_backward_are_inverse() {
        let r = rel();
        let out = select(
            &r,
            &Expr::col("id").in_list(vec![Value::Int(2), Value::Int(5), Value::Int(8)]),
            &SelectOptions::inject(),
        )
        .unwrap();
        let lin = out.lineage.input(0);
        for o in 0..out.output.len() as Rid {
            let input = lin.backward().single(o).unwrap();
            assert_eq!(lin.forward().single(input), Some(o));
        }
    }
}
