//! Selection with lineage capture (paper §3.2.2).
//!
//! Selection emits a record whenever the predicate holds. Both lineage
//! directions are rid arrays: the backward array lists the input rid of every
//! output record, and the forward array (pre-allocated at the input
//! cardinality) maps each input rid to its output rid or to the `NO_RID`
//! sentinel when filtered. The paper finds Defer strictly inferior to Inject
//! for selection, so only Inject (optionally with a selectivity estimate for
//! pre-allocation, Appendix G.1) is implemented.
//!
//! When the predicate compiles to a column-kernel pipeline
//! ([`KernelPlan`]), the selection runs
//! batch-at-a-time: the kernels produce a selection bitmap, and one fused
//! loop over the bitmap emits the matching rid list (which *is* the backward
//! index, reuse principle P4) and the forward rid array together — capture
//! stays fused with the base query exactly as §3.2 prescribes, and both
//! indexes are allocated exactly (the bitmap's popcount subsumes the
//! `Smoke-I+EC` selectivity estimate). Arbitrary expressions fall back to the
//! row-at-a-time interpreter loop below.

use std::time::Instant;

use smoke_lineage::{CaptureStats, InputLineage, LineageIndex, OperatorLineage, RidArray};
use smoke_storage::{Relation, Rid};

use crate::error::Result;
use crate::expr::Expr;
use crate::instrument::DirectionFilter;
use crate::kernels::KernelPlan;
use crate::ops::OpOutput;

/// Options controlling selection instrumentation.
#[derive(Debug, Clone)]
pub struct SelectOptions {
    /// Whether (and in which directions) lineage is captured.
    pub directions: DirectionFilter,
    /// Whether capture is enabled at all (Baseline when `false`).
    pub capture: bool,
    /// Estimated selectivity in `[0, 1]`, used to pre-allocate the backward
    /// rid array (the `Smoke-I+EC` variant). Over-estimates are preferable to
    /// under-estimates, which still incur resizes.
    pub selectivity_estimate: Option<f64>,
    /// Whether the vectorized kernel path may be used when the predicate
    /// shape allows it. Disabled by the scalar-vs-kernel benchmarks to
    /// measure the row-at-a-time interpreter.
    pub use_kernels: bool,
}

impl Default for SelectOptions {
    fn default() -> Self {
        SelectOptions {
            directions: DirectionFilter::default(),
            capture: false,
            selectivity_estimate: None,
            use_kernels: true,
        }
    }
}

impl SelectOptions {
    /// Baseline: no capture.
    pub fn baseline() -> Self {
        SelectOptions::default()
    }

    /// Inject capture in both directions.
    pub fn inject() -> Self {
        SelectOptions {
            capture: true,
            directions: DirectionFilter::Both,
            ..Default::default()
        }
    }

    /// Inject capture with a selectivity estimate (`Smoke-I+EC`).
    pub fn inject_with_estimate(selectivity: f64) -> Self {
        SelectOptions {
            capture: true,
            directions: DirectionFilter::Both,
            selectivity_estimate: Some(selectivity),
            ..Default::default()
        }
    }

    /// Forces the row-at-a-time interpreter (scalar baseline for the
    /// vectorization benchmarks).
    pub fn scalar(mut self) -> Self {
        self.use_kernels = false;
        self
    }
}

/// Executes `SELECT * FROM input WHERE predicate` with optional lineage
/// capture.
pub fn select(input: &Relation, predicate: &Expr, opts: &SelectOptions) -> Result<OpOutput> {
    let start = Instant::now();
    let n = input.len();

    let capture_backward = opts.capture && opts.directions.backward();
    let capture_forward = opts.capture && opts.directions.forward();

    let kernel = if opts.use_kernels {
        KernelPlan::compile(predicate, input)
    } else {
        None
    };

    // Matching rids are needed to materialize the output regardless of
    // capture; the *backward index* is exactly this array, so Smoke reuses it
    // (reuse principle P4) and the marginal capture cost is the forward array.
    let mut forward = if capture_forward {
        RidArray::filled(n)
    } else {
        RidArray::new()
    };

    let matching: Vec<Rid> = if let Some(plan) = &kernel {
        // Kernel path: evaluate the pipeline into a bitmap, then emit both
        // lineage directions in one fused pass over it. The popcount gives
        // the exact output cardinality, so nothing ever resizes.
        let mask = plan.eval(input);
        let mut matching: Vec<Rid> = Vec::with_capacity(mask.count_ones());
        let mut ctr_o: Rid = 0;
        mask.for_each_one(|rid| {
            matching.push(rid as Rid);
            if capture_forward {
                forward.set(rid, ctr_o);
            }
            ctr_o += 1;
        });
        matching
    } else {
        // Interpreter fallback. The matching array is pre-sized from the
        // selectivity estimate when one is given, and from the input
        // cardinality otherwise — in *every* mode, so the uninstrumented
        // baseline never pays resize costs the instrumented run avoids.
        let bound = predicate.bind(input)?;
        let mut matching: Vec<Rid> = match opts.selectivity_estimate {
            Some(s) => Vec::with_capacity(((n as f64) * s.clamp(0.0, 1.0)) as usize),
            None => Vec::with_capacity(n),
        };
        let mut ctr_o: Rid = 0;
        for rid in 0..n {
            if bound.eval_bool(input, rid)? {
                matching.push(rid as Rid);
                if capture_forward {
                    forward.set(rid, ctr_o);
                }
                ctr_o += 1;
            }
        }
        matching
    };

    let output = input.gather(&matching, format!("select({})", input.name()));
    let elapsed = start.elapsed();

    let mut stats = CaptureStats {
        base_query: elapsed,
        ..Default::default()
    };

    if !opts.capture {
        return Ok(OpOutput::baseline(output, stats));
    }

    let backward_index = LineageIndex::Array(RidArray::from_vec(matching));
    stats.edges = output.len() as u64;
    stats.lineage_bytes = (backward_index.heap_bytes()
        + if capture_forward {
            forward.heap_bytes()
        } else {
            0
        }) as u64;

    let lineage = InputLineage {
        backward: capture_backward.then_some(backward_index),
        forward: capture_forward.then_some(LineageIndex::Array(forward)),
    };

    Ok(OpOutput {
        output,
        lineage: OperatorLineage::unary(lineage),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_storage::{DataType, Value};

    fn rel() -> Relation {
        let mut b = Relation::builder("t")
            .column("id", DataType::Int)
            .column("v", DataType::Float);
        for i in 0..10 {
            b = b.row(vec![Value::Int(i), Value::Float(i as f64 * 10.0)]);
        }
        b.build().unwrap()
    }

    #[test]
    fn baseline_produces_no_lineage() {
        let r = rel();
        let out = select(
            &r,
            &Expr::col("v").lt(Expr::lit(35.0)),
            &SelectOptions::baseline(),
        )
        .unwrap();
        assert_eq!(out.output.len(), 4);
        assert!(out.lineage.is_none());
    }

    #[test]
    fn inject_builds_backward_and_forward() {
        let r = rel();
        let out = select(
            &r,
            &Expr::col("id").ge(Expr::lit(7)),
            &SelectOptions::inject(),
        )
        .unwrap();
        assert_eq!(out.output.len(), 3);
        let lin = out.lineage.input(0);
        // Backward: output rid -> input rid.
        assert_eq!(lin.backward().lookup(0), vec![7]);
        assert_eq!(lin.backward().lookup(2), vec![9]);
        // Forward: input rid -> output rid; filtered rows map to nothing.
        assert_eq!(lin.forward().lookup(8), vec![1]);
        assert_eq!(lin.forward().lookup(0), Vec::<Rid>::new());
        assert_eq!(out.stats.edges, 3);
    }

    #[test]
    fn estimate_preallocates_without_changing_results() {
        let r = rel();
        let pred = Expr::col("v").le(Expr::lit(50.0));
        let plain = select(&r, &pred, &SelectOptions::inject()).unwrap();
        let estimated = select(&r, &pred, &SelectOptions::inject_with_estimate(0.7)).unwrap();
        assert_eq!(plain.output, estimated.output);
        assert_eq!(
            plain.lineage.input(0).backward().lookup(3),
            estimated.lineage.input(0).backward().lookup(3)
        );
    }

    #[test]
    fn empty_selection() {
        let r = rel();
        let out = select(
            &r,
            &Expr::col("id").gt(Expr::lit(100)),
            &SelectOptions::inject(),
        )
        .unwrap();
        assert_eq!(out.output.len(), 0);
        assert_eq!(out.lineage.input(0).backward().len(), 0);
        assert_eq!(out.lineage.input(0).forward().lookup(5), Vec::<Rid>::new());
    }

    #[test]
    fn kernel_and_scalar_paths_agree() {
        let r = rel();
        let preds = [
            Expr::col("v").lt(Expr::lit(35.0)),
            Expr::col("id")
                .ge(Expr::lit(2))
                .and(Expr::col("v").le(Expr::lit(80.0))),
            Expr::col("id").in_list(vec![Value::Int(0), Value::Int(9)]),
            // Arithmetic falls back to the interpreter on both paths.
            (Expr::col("id") + Expr::lit(1)).gt(Expr::lit(5)),
        ];
        for pred in &preds {
            let kernel = select(&r, pred, &SelectOptions::inject()).unwrap();
            let scalar = select(&r, pred, &SelectOptions::inject().scalar()).unwrap();
            assert_eq!(kernel.output, scalar.output, "{pred:?}");
            for o in 0..kernel.output.len() as Rid {
                assert_eq!(
                    kernel.lineage.input(0).backward().lookup(o),
                    scalar.lineage.input(0).backward().lookup(o)
                );
            }
            for i in 0..r.len() as Rid {
                assert_eq!(
                    kernel.lineage.input(0).forward().lookup(i),
                    scalar.lineage.input(0).forward().lookup(i)
                );
            }
        }
    }

    #[test]
    fn forward_and_backward_are_inverse() {
        let r = rel();
        let out = select(
            &r,
            &Expr::col("id").in_list(vec![Value::Int(2), Value::Int(5), Value::Int(8)]),
            &SelectOptions::inject(),
        )
        .unwrap();
        let lin = out.lineage.input(0);
        for o in 0..out.output.len() as Rid {
            let input = lin.backward().single(o).unwrap();
            assert_eq!(lin.forward().single(input), Some(o));
        }
    }
}
