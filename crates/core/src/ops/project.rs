//! Projection with lineage capture (paper §3.2.1).
//!
//! Under bag semantics the input and output cardinalities and orders are
//! identical, so the rid of an output record *is* its backward (and forward)
//! lineage: no index needs to be materialized and the lineage is represented
//! by [`LineageIndex::Identity`]. Projection with set semantics (DISTINCT) is
//! implemented via grouping and therefore uses the group-by operator's
//! instrumentation (including its vectorized key extraction).
//!
//! Bag projection is already batch-at-a-time: it moves whole column vectors,
//! never touching individual rows, so it needs no kernel pipeline of its own.

use std::time::Instant;

use smoke_lineage::{CaptureStats, InputLineage, LineageIndex, OperatorLineage};
use smoke_storage::{Relation, Schema};

use crate::error::{EngineError, Result};
use crate::ops::OpOutput;

/// Executes `SELECT columns FROM input` under bag semantics.
pub fn project(input: &Relation, columns: &[String], capture: bool) -> Result<OpOutput> {
    let start = Instant::now();
    let names: Vec<&str> = columns.iter().map(String::as_str).collect();
    let schema: Schema = input
        .schema()
        .project(&names)
        .map_err(|_| EngineError::InvalidPlan(format!("projection columns {names:?} not found")))?;

    let mut cols = Vec::with_capacity(columns.len());
    for name in columns {
        cols.push(input.column_by_name(name)?.clone());
    }
    let output = Relation::from_columns(format!("project({})", input.name()), schema, cols)?;
    let stats = CaptureStats {
        base_query: start.elapsed(),
        ..Default::default()
    };

    if !capture {
        return Ok(OpOutput::baseline(output, stats));
    }
    let lineage = InputLineage::new(
        LineageIndex::Identity(output.len()),
        LineageIndex::Identity(output.len()),
    );
    Ok(OpOutput {
        output,
        lineage: OperatorLineage::unary(lineage),
        stats,
    })
}

/// Executes `SELECT DISTINCT columns FROM input` (set semantics) by delegating
/// to group-by aggregation with no aggregate expressions.
pub fn project_distinct(
    input: &Relation,
    columns: &[String],
    opts: &crate::ops::groupby::GroupByOptions,
) -> Result<crate::ops::groupby::GroupByResult> {
    crate::ops::groupby::group_by(input, columns, &[], opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_storage::{DataType, Value};

    fn rel() -> Relation {
        Relation::builder("t")
            .column("a", DataType::Int)
            .column("b", DataType::Str)
            .row(vec![Value::Int(1), Value::Str("x".into())])
            .row(vec![Value::Int(2), Value::Str("y".into())])
            .row(vec![Value::Int(1), Value::Str("x".into())])
            .build()
            .unwrap()
    }

    #[test]
    fn bag_projection_uses_identity_lineage() {
        let r = rel();
        let out = project(&r, &["b".to_string()], true).unwrap();
        assert_eq!(out.output.len(), 3);
        assert_eq!(out.output.schema().names(), vec!["b"]);
        let lin = out.lineage.input(0);
        assert_eq!(lin.backward().lookup(2), vec![2]);
        assert_eq!(lin.forward().lookup(1), vec![1]);
        assert_eq!(lin.heap_bytes(), 0, "identity lineage is free");
    }

    #[test]
    fn baseline_projection() {
        let r = rel();
        let out = project(&r, &["a".to_string()], false).unwrap();
        assert!(out.lineage.is_none());
        assert_eq!(out.output.column(0).as_int(), &[1, 2, 1]);
    }

    #[test]
    fn unknown_column_errors() {
        let r = rel();
        assert!(project(&r, &["zzz".to_string()], true).is_err());
    }

    #[test]
    fn distinct_projection_groups_duplicates() {
        let r = rel();
        let out = project_distinct(
            &r,
            &["a".to_string(), "b".to_string()],
            &crate::ops::groupby::GroupByOptions::inject(),
        )
        .unwrap();
        assert_eq!(out.output.len(), 2);
        // Backward lineage of the first distinct value covers both duplicates.
        assert_eq!(out.lineage.input(0).backward().lookup(0), vec![0, 2]);
    }
}
