//! Lazy lineage query evaluation (paper §2.1, Appendix C).
//!
//! Lazy approaches capture nothing during the base query and instead rewrite
//! lineage (and lineage-consuming) queries into relational queries over the
//! base relations. For a group-by base query `O = γ_{g1..gn,F}(I)`, the
//! backward lineage of an output record `o` is the selection
//! `σ_{o.g1 = I.g1 ∧ … ∧ o.gn = I.gn}(I)`, with the base query's own
//! selections re-applied.

use smoke_storage::{Relation, Rid, Value};

use crate::agg::AggExpr;
use crate::error::Result;
use crate::expr::Expr;
use crate::query::consume_filter_aggregate;

/// Builds the lazy rewrite predicate for the backward lineage of one output
/// group of a group-by query: equality on every group-by key plus the base
/// query's own selection predicate (if any).
pub fn backward_predicate(
    keys: &[String],
    key_values: &[Value],
    base_selection: Option<&Expr>,
) -> Expr {
    let mut pred: Option<Expr> = base_selection.cloned();
    for (key, value) in keys.iter().zip(key_values) {
        let eq = Expr::col(key.clone()).eq(Expr::Literal(value.clone()));
        pred = Some(match pred {
            Some(p) => p.and(eq),
            None => eq,
        });
    }
    pred.unwrap_or_else(|| Expr::lit(1))
}

/// Evaluates a backward lineage query lazily: a full selection scan of the
/// base relation with the rewrite predicate.
///
/// The scan routes through the kernel layer: rewrite predicates are OR'd
/// key-equality chains over columns and literals, so they compile to column
/// kernels and the scan runs batch-at-a-time (arbitrary predicates fall back
/// to the interpreter).
pub fn lazy_backward(relation: &Relation, predicate: &Expr) -> Result<Vec<Rid>> {
    crate::kernels::predicate_rids(relation, predicate)
}

/// Evaluates a lineage-consuming aggregation lazily: a full table scan with
/// the rewrite predicate (plus any extra consuming-query predicate), followed
/// by grouping — no lineage indexes are used.
pub fn lazy_consume(
    relation: &Relation,
    rewrite_predicate: &Expr,
    extra_predicate: Option<&Expr>,
    keys: &[String],
    aggs: &[AggExpr],
) -> Result<Relation> {
    let combined = match extra_predicate {
        Some(extra) => rewrite_predicate.clone().and(extra.clone()),
        None => rewrite_predicate.clone(),
    };
    let all_rids: Vec<Rid> = (0..relation.len() as Rid).collect();
    consume_filter_aggregate(relation, &all_rids, Some(&combined), keys, aggs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_storage::DataType;

    fn rel() -> Relation {
        let mut b = Relation::builder("zipf")
            .column("z", DataType::Int)
            .column("v", DataType::Float);
        for (z, v) in [(1, 10.0), (2, 20.0), (1, 30.0), (3, 40.0), (1, 50.0)] {
            b = b.row(vec![Value::Int(z), Value::Float(v)]);
        }
        b.build().unwrap()
    }

    #[test]
    fn backward_predicate_builds_key_equalities() {
        let pred = backward_predicate(&["z".to_string()], &[Value::Int(1)], None);
        let r = rel();
        let rids = lazy_backward(&r, &pred).unwrap();
        assert_eq!(rids, vec![0, 2, 4]);
    }

    #[test]
    fn backward_predicate_includes_base_selection() {
        let base_sel = Expr::col("v").lt(Expr::lit(40.0));
        let pred = backward_predicate(&["z".to_string()], &[Value::Int(1)], Some(&base_sel));
        let rids = lazy_backward(&rel(), &pred).unwrap();
        assert_eq!(rids, vec![0, 2]);
    }

    #[test]
    fn lazy_consume_scans_and_aggregates() {
        let pred = backward_predicate(&["z".to_string()], &[Value::Int(1)], None);
        let out = lazy_consume(
            &rel(),
            &pred,
            None,
            &["z".to_string()],
            &[AggExpr::sum("v", "total")],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.value(0, 1), Value::Float(90.0));
    }

    #[test]
    fn lazy_consume_with_extra_predicate() {
        let pred = backward_predicate(&["z".to_string()], &[Value::Int(1)], None);
        let extra = Expr::col("v").gt(Expr::lit(15.0));
        let out = lazy_consume(
            &rel(),
            &pred,
            Some(&extra),
            &["z".to_string()],
            &[AggExpr::count("cnt")],
        )
        .unwrap();
        assert_eq!(out.value(0, 1), Value::Int(2));
    }

    #[test]
    fn empty_keys_predicate_matches_everything() {
        let pred = backward_predicate(&[], &[], None);
        let rids = lazy_backward(&rel(), &pred).unwrap();
        assert_eq!(rids.len(), 5);
    }
}
