//! # smoke-core
//!
//! The Smoke query engine (Psallidas & Wu, VLDB 2018): an in-memory
//! relational engine whose physical operators tightly integrate fine-grained
//! lineage capture, plus the baseline capture techniques and workload-aware
//! optimizations the paper evaluates against. Operators run row-at-a-time
//! (the paper's reference form), vectorized over compiled [`kernels`], or
//! morsel-parallel with per-thread capture ([`parallel`]).
//!
//! The crate is organised around the paper's structure:
//!
//! * [`ops`] — the instrumented physical algebra (§3.2, Appendix F);
//! * [`plan`] / [`exec`] — logical plans and multi-operator execution with
//!   end-to-end lineage propagation (§3.3);
//! * [`instrument`] / [`workload`] — capture modes, pruning, and the
//!   push-down / data-skipping optimizations (§4);
//! * [`query`] / [`lazy`] — lineage and lineage-consuming query evaluation
//!   over indexes vs. lazy rewrites (§2.1, §6.3, §6.4);
//! * [`baselines`] — the logical (Perm-style) and physical (virtual-call /
//!   external-store) capture baselines (§5, Table 1, Appendix B).
//!
//! ```
//! use smoke_core::{AggExpr, CaptureMode, Executor, PlanBuilder};
//! use smoke_storage::{Database, DataType, Relation, Value};
//!
//! let mut db = Database::new();
//! db.register(
//!     Relation::builder("zipf")
//!         .column("z", DataType::Int)
//!         .column("v", DataType::Float)
//!         .row(vec![Value::Int(1), Value::Float(2.0)])
//!         .row(vec![Value::Int(1), Value::Float(3.0)])
//!         .row(vec![Value::Int(2), Value::Float(4.0)])
//!         .build()
//!         .unwrap(),
//! )
//! .unwrap();
//!
//! let plan = PlanBuilder::scan("zipf")
//!     .group_by(&["z"], vec![AggExpr::sum("v", "total")])
//!     .build();
//! let out = Executor::new(CaptureMode::Inject).execute(&plan, &db).unwrap();
//! assert_eq!(out.lineage.backward(&[0], "zipf"), vec![0, 1]);
//! assert_eq!(out.lineage.forward(&[2], "zipf"), vec![1]);
//! ```

#![warn(missing_docs)]

pub mod agg;
pub mod baselines;
mod error;
pub mod exec;
pub mod expr;
pub mod failpoint;
pub mod instrument;
pub mod kernels;
pub mod key;
pub mod lazy;
pub mod ops;
pub mod paged;
pub mod parallel;
pub mod plan;
pub mod query;
pub mod refresh;
pub mod workload;

pub use agg::{microbenchmark_aggs, AggExpr, AggFunc, AggState};
pub use error::{EngineError, Result};
pub use exec::{check_lineage_round_trip, execute_baseline, Executor, QueryOutput};
pub use expr::{ArithOp, CmpOp, Expr};
pub use instrument::{
    AggPushdown, CaptureConfig, CaptureMode, CardinalityHints, DirectionFilter, WorkloadOptions,
};
pub use kernels::KernelPlan;
pub use key::{HashKey, KeyExtractor};
pub use paged::{paged_group_by, paged_hash_join, paged_select};
pub use parallel::{par_group_by, par_hash_join, par_select, ParallelOptions};
pub use plan::{LogicalPlan, PlanBuilder};
pub use workload::{LineageCube, WorkloadArtifacts};
