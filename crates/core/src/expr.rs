//! Scalar expressions and predicates.
//!
//! Expressions are evaluated row-at-a-time against a relation, mirroring the
//! paper's row-oriented execution model. The engine resolves column names to
//! positions once per operator (not per row), so hot predicate loops only pay
//! for the comparison itself.

use std::cmp::Ordering;

use smoke_storage::{Relation, Value};

use crate::error::{EngineError, Result};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name.
    Column(String),
    /// A literal constant.
    Literal(Value),
    /// Comparison of two sub-expressions.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Arithmetic over two numeric sub-expressions.
    Arith {
        /// Arithmetic operator.
        op: ArithOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Membership in a literal list.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Value>,
    },
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Literal value.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self != other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp {
            op: CmpOp::Ne,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp {
            op: CmpOp::Lt,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp {
            op: CmpOp::Le,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp {
            op: CmpOp::Gt,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp {
            op: CmpOp::Ge,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self IN (list)`.
    pub fn in_list(self, list: Vec<Value>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
        }
    }

    fn arith(self, op: ArithOp, other: Expr) -> Expr {
        Expr::Arith {
            op,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// All column names referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Column(name) => {
                if !out.contains(&name.as_str()) {
                    out.push(name);
                }
            }
            Expr::Literal(_) => {}
            Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::And(l, r) | Expr::Or(l, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            Expr::Not(e) => e.collect_columns(out),
            Expr::InList { expr, .. } => expr.collect_columns(out),
        }
    }

    /// Binds this expression to a relation's schema, producing an evaluator
    /// whose column lookups are resolved to positions.
    pub fn bind(&self, relation: &Relation) -> Result<BoundExpr> {
        let node = self.bind_node(relation)?;
        Ok(BoundExpr { node })
    }

    fn bind_node(&self, relation: &Relation) -> Result<BoundNode> {
        Ok(match self {
            Expr::Column(name) => BoundNode::Column(
                relation
                    .column_index(name)
                    .map_err(|_| EngineError::UnknownColumn(name.clone()))?,
            ),
            Expr::Literal(v) => BoundNode::Literal(v.clone()),
            Expr::Cmp { op, left, right } => BoundNode::Cmp {
                op: *op,
                left: Box::new(left.bind_node(relation)?),
                right: Box::new(right.bind_node(relation)?),
            },
            Expr::Arith { op, left, right } => BoundNode::Arith {
                op: *op,
                left: Box::new(left.bind_node(relation)?),
                right: Box::new(right.bind_node(relation)?),
            },
            Expr::And(l, r) => BoundNode::And(
                Box::new(l.bind_node(relation)?),
                Box::new(r.bind_node(relation)?),
            ),
            Expr::Or(l, r) => BoundNode::Or(
                Box::new(l.bind_node(relation)?),
                Box::new(r.bind_node(relation)?),
            ),
            Expr::Not(e) => BoundNode::Not(Box::new(e.bind_node(relation)?)),
            Expr::InList { expr, list } => BoundNode::InList {
                expr: Box::new(expr.bind_node(relation)?),
                list: list.clone(),
            },
        })
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;

    /// `self + other`.
    fn add(self, other: Expr) -> Expr {
        self.arith(ArithOp::Add, other)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;

    /// `self - other`.
    fn sub(self, other: Expr) -> Expr {
        self.arith(ArithOp::Sub, other)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;

    /// `self * other`.
    fn mul(self, other: Expr) -> Expr {
        self.arith(ArithOp::Mul, other)
    }
}

#[derive(Debug, Clone)]
enum BoundNode {
    Column(usize),
    Literal(Value),
    Cmp {
        op: CmpOp,
        left: Box<BoundNode>,
        right: Box<BoundNode>,
    },
    Arith {
        op: ArithOp,
        left: Box<BoundNode>,
        right: Box<BoundNode>,
    },
    And(Box<BoundNode>, Box<BoundNode>),
    Or(Box<BoundNode>, Box<BoundNode>),
    Not(Box<BoundNode>),
    InList {
        expr: Box<BoundNode>,
        list: Vec<Value>,
    },
}

/// A row source the bound evaluator reads cells from: either one relation
/// row, or a (left, right) row pair viewed through a concatenated schema
/// (used by the nested-loop θ-join, which binds its predicate once against
/// the joined schema instead of materializing candidate rows).
trait RowCtx {
    fn cell(&self, col: usize) -> Value;
}

struct SingleRow<'a> {
    relation: &'a Relation,
    rid: usize,
}

impl RowCtx for SingleRow<'_> {
    #[inline]
    fn cell(&self, col: usize) -> Value {
        self.relation.value(self.rid, col)
    }
}

struct ConcatRow<'a> {
    left: &'a Relation,
    right: &'a Relation,
    lrid: usize,
    rrid: usize,
}

impl RowCtx for ConcatRow<'_> {
    #[inline]
    fn cell(&self, col: usize) -> Value {
        let split = self.left.schema().arity();
        if col < split {
            self.left.value(self.lrid, col)
        } else {
            self.right.value(self.rrid, col - split)
        }
    }
}

/// An expression bound to a specific relation schema.
#[derive(Debug, Clone)]
pub struct BoundExpr {
    node: BoundNode,
}

impl BoundExpr {
    /// Evaluates the expression for the row at `rid`, returning a value.
    pub fn eval(&self, relation: &Relation, rid: usize) -> Result<Value> {
        Self::eval_node(&self.node, &SingleRow { relation, rid })
    }

    /// Evaluates the expression as a boolean predicate for the row at `rid`.
    pub fn eval_bool(&self, relation: &Relation, rid: usize) -> Result<bool> {
        Self::eval_bool_node(&self.node, &SingleRow { relation, rid })
    }

    /// Evaluates the expression (bound against the concatenation of the two
    /// relations' schemas) as a boolean predicate over the pair
    /// `(left[lrid], right[rrid])`, without materializing the joined row.
    pub fn eval_bool_concat(
        &self,
        left: &Relation,
        lrid: usize,
        right: &Relation,
        rrid: usize,
    ) -> Result<bool> {
        Self::eval_bool_node(
            &self.node,
            &ConcatRow {
                left,
                right,
                lrid,
                rrid,
            },
        )
    }

    fn eval_node(node: &BoundNode, row: &impl RowCtx) -> Result<Value> {
        Ok(match node {
            BoundNode::Column(idx) => row.cell(*idx),
            BoundNode::Literal(v) => v.clone(),
            BoundNode::Cmp { op, left, right } => {
                let l = Self::eval_node(left, row)?;
                let r = Self::eval_node(right, row)?;
                Value::Int(op.matches(l.total_cmp(&r)) as i64)
            }
            BoundNode::Arith { op, left, right } => {
                let l = Self::eval_node(left, row)?
                    .as_float()
                    .ok_or_else(|| EngineError::Expression("non-numeric arithmetic".into()))?;
                let r = Self::eval_node(right, row)?
                    .as_float()
                    .ok_or_else(|| EngineError::Expression("non-numeric arithmetic".into()))?;
                let v = match op {
                    ArithOp::Add => l + r,
                    ArithOp::Sub => l - r,
                    ArithOp::Mul => l * r,
                    ArithOp::Div => l / r,
                };
                Value::Float(v)
            }
            BoundNode::And(l, r) => {
                let lv = Self::eval_bool_node(l, row)?;
                Value::Int((lv && Self::eval_bool_node(r, row)?) as i64)
            }
            BoundNode::Or(l, r) => {
                let lv = Self::eval_bool_node(l, row)?;
                Value::Int((lv || Self::eval_bool_node(r, row)?) as i64)
            }
            BoundNode::Not(e) => Value::Int(!Self::eval_bool_node(e, row)? as i64),
            BoundNode::InList { expr, list } => {
                let v = Self::eval_node(expr, row)?;
                Value::Int(list.iter().any(|x| v.total_cmp(x) == Ordering::Equal) as i64)
            }
        })
    }

    fn eval_bool_node(node: &BoundNode, row: &impl RowCtx) -> Result<bool> {
        match Self::eval_node(node, row)? {
            Value::Int(v) => Ok(v != 0),
            Value::Float(v) => Ok(v != 0.0),
            Value::Str(s) => Err(EngineError::Expression(format!(
                "string `{s}` used as a boolean predicate"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_storage::DataType;

    fn rel() -> Relation {
        Relation::builder("t")
            .column("a", DataType::Int)
            .column("b", DataType::Float)
            .column("s", DataType::Str)
            .row(vec![
                Value::Int(1),
                Value::Float(0.5),
                Value::Str("x".into()),
            ])
            .row(vec![
                Value::Int(5),
                Value::Float(2.0),
                Value::Str("y".into()),
            ])
            .row(vec![
                Value::Int(9),
                Value::Float(4.5),
                Value::Str("x".into()),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn comparisons() {
        let r = rel();
        let e = Expr::col("a").gt(Expr::lit(3)).bind(&r).unwrap();
        assert!(!e.eval_bool(&r, 0).unwrap());
        assert!(e.eval_bool(&r, 1).unwrap());
        assert!(e.eval_bool(&r, 2).unwrap());

        let e = Expr::col("s").eq(Expr::lit("x")).bind(&r).unwrap();
        assert!(e.eval_bool(&r, 0).unwrap());
        assert!(!e.eval_bool(&r, 1).unwrap());
    }

    #[test]
    fn boolean_connectives() {
        let r = rel();
        let e = Expr::col("a")
            .gt(Expr::lit(3))
            .and(Expr::col("s").eq(Expr::lit("x")))
            .bind(&r)
            .unwrap();
        assert!(!e.eval_bool(&r, 0).unwrap());
        assert!(!e.eval_bool(&r, 1).unwrap());
        assert!(e.eval_bool(&r, 2).unwrap());

        let e = Expr::col("a")
            .lt(Expr::lit(2))
            .or(Expr::col("a").ge(Expr::lit(9)))
            .bind(&r)
            .unwrap();
        assert!(e.eval_bool(&r, 0).unwrap());
        assert!(!e.eval_bool(&r, 1).unwrap());
        assert!(e.eval_bool(&r, 2).unwrap());

        let e = Expr::col("a").le(Expr::lit(1)).not().bind(&r).unwrap();
        assert!(!e.eval_bool(&r, 0).unwrap());
        assert!(e.eval_bool(&r, 1).unwrap());
    }

    #[test]
    fn arithmetic_and_in_list() {
        let r = rel();
        let e = (Expr::col("b") * Expr::lit(2.0) + Expr::col("a"))
            .bind(&r)
            .unwrap();
        assert_eq!(e.eval(&r, 1).unwrap(), Value::Float(9.0));

        let e = Expr::col("a")
            .in_list(vec![Value::Int(1), Value::Int(9)])
            .bind(&r)
            .unwrap();
        assert!(e.eval_bool(&r, 0).unwrap());
        assert!(!e.eval_bool(&r, 1).unwrap());
        assert!(e.eval_bool(&r, 2).unwrap());

        let e = (Expr::col("a") - Expr::lit(1)).bind(&r).unwrap();
        assert_eq!(e.eval(&r, 0).unwrap(), Value::Float(0.0));
    }

    #[test]
    fn unknown_column_fails_at_bind_time() {
        let r = rel();
        let err = Expr::col("missing").eq(Expr::lit(1)).bind(&r);
        assert!(matches!(err, Err(EngineError::UnknownColumn(_))));
    }

    #[test]
    fn string_as_predicate_is_an_error() {
        let r = rel();
        let e = Expr::col("s").bind(&r).unwrap();
        assert!(e.eval_bool(&r, 0).is_err());
    }

    #[test]
    fn referenced_columns_deduplicated() {
        let e = Expr::col("a")
            .gt(Expr::lit(1))
            .and(Expr::col("a").lt(Expr::col("b")));
        assert_eq!(e.referenced_columns(), vec!["a", "b"]);
    }
}
