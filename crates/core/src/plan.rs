//! Logical query plans and a fluent plan builder.
//!
//! The engine focuses, like the paper, on SPJA blocks (select / project / join
//! / aggregate) over base relations. Plans are trees of [`LogicalPlan`] nodes
//! built with [`PlanBuilder`] and executed by
//! [`Executor`](crate::exec::Executor).

use crate::agg::AggExpr;
use crate::expr::Expr;

/// A logical query plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a base relation.
    Scan {
        /// Base relation name.
        table: String,
    },
    /// Filter rows by a predicate.
    Select {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Filter predicate.
        predicate: Expr,
    },
    /// Bag-semantics projection onto a list of columns.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output columns (in order).
        columns: Vec<String>,
    },
    /// Hash group-by aggregation.
    GroupBy {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by key columns.
        keys: Vec<String>,
        /// Aggregate expressions.
        aggs: Vec<AggExpr>,
    },
    /// Hash equi-join.
    Join {
        /// Left (build) input plan.
        left: Box<LogicalPlan>,
        /// Right (probe) input plan.
        right: Box<LogicalPlan>,
        /// Join key columns of the left input.
        left_keys: Vec<String>,
        /// Join key columns of the right input.
        right_keys: Vec<String>,
    },
}

impl LogicalPlan {
    /// The base relations read by this plan, in left-to-right scan order.
    pub fn base_tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            LogicalPlan::Scan { table } => {
                if !out.contains(&table.as_str()) {
                    out.push(table);
                }
            }
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::GroupBy { input, .. } => input.collect_tables(out),
            LogicalPlan::Join { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
        }
    }

    /// Whether the plan's root is a group-by aggregation (the shape of every
    /// SPJA block in the paper's evaluation).
    pub fn is_aggregation_rooted(&self) -> bool {
        matches!(self, LogicalPlan::GroupBy { .. })
    }

    /// Number of operators in the plan.
    pub fn operator_count(&self) -> usize {
        match self {
            LogicalPlan::Scan { .. } => 1,
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::GroupBy { input, .. } => 1 + input.operator_count(),
            LogicalPlan::Join { left, right, .. } => {
                1 + left.operator_count() + right.operator_count()
            }
        }
    }
}

/// Fluent builder for [`LogicalPlan`]s.
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    plan: LogicalPlan,
}

impl PlanBuilder {
    /// Starts a plan from a base relation scan.
    pub fn scan(table: impl Into<String>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Scan {
                table: table.into(),
            },
        }
    }

    /// Adds a selection.
    pub fn select(self, predicate: Expr) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Select {
                input: Box::new(self.plan),
                predicate,
            },
        }
    }

    /// Adds a bag-semantics projection.
    pub fn project(self, columns: &[&str]) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                columns: columns.iter().map(|c| c.to_string()).collect(),
            },
        }
    }

    /// Adds a group-by aggregation.
    pub fn group_by(self, keys: &[&str], aggs: Vec<AggExpr>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::GroupBy {
                input: Box::new(self.plan),
                keys: keys.iter().map(|c| c.to_string()).collect(),
                aggs,
            },
        }
    }

    /// Joins this plan (as the build side) with another plan (as the probe
    /// side) on the given key columns.
    pub fn join(self, right: PlanBuilder, left_keys: &[&str], right_keys: &[&str]) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Join {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
                left_keys: left_keys.iter().map(|c| c.to_string()).collect(),
                right_keys: right_keys.iter().map(|c| c.to_string()).collect(),
            },
        }
    }

    /// Finalizes the plan.
    pub fn build(self) -> LogicalPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_expected_tree() {
        let plan = PlanBuilder::scan("orders")
            .join(
                PlanBuilder::scan("lineitem"),
                &["o_orderkey"],
                &["l_orderkey"],
            )
            .select(Expr::col("l_quantity").gt(Expr::lit(10)))
            .group_by(&["o_orderdate"], vec![AggExpr::count("cnt")])
            .build();
        assert!(plan.is_aggregation_rooted());
        assert_eq!(plan.base_tables(), vec!["orders", "lineitem"]);
        assert_eq!(plan.operator_count(), 5);
    }

    #[test]
    fn duplicate_tables_reported_once() {
        let plan = PlanBuilder::scan("t")
            .join(PlanBuilder::scan("t"), &["a"], &["a"])
            .build();
        assert_eq!(plan.base_tables(), vec!["t"]);
        assert!(!plan.is_aggregation_rooted());
    }

    #[test]
    fn projection_and_selection_chain() {
        let plan = PlanBuilder::scan("zipf")
            .select(Expr::col("v").lt(Expr::lit(50.0)))
            .project(&["z"])
            .build();
        assert_eq!(plan.operator_count(), 3);
        match plan {
            LogicalPlan::Project { columns, .. } => assert_eq!(columns, vec!["z"]),
            other => panic!("unexpected plan {other:?}"),
        }
    }
}
