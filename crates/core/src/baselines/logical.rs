//! Logical (query-rewrite) capture baselines: `Logic-Rid`, `Logic-Tup`,
//! `Logic-Idx` (paper §2.1, §5, Appendix B).
//!
//! Logical approaches stay within the relational model: the base query is
//! rewritten so its output is annotated with input rids (`Logic-Rid`) or full
//! input tuples (`Logic-Tup`), producing a **denormalized lineage graph** —
//! an aggregation output computed over `k` inputs is duplicated `k` times.
//! `Logic-Idx` additionally scans the annotated relation to build the same
//! end-to-end rid indexes Smoke builds, so that lineage queries are served at
//! the same speed; the capture-side cost of producing and scanning the
//! denormalized relation is what the paper's figures compare against.
//!
//! Following Appendix B, the rewrite is implemented *inside* the Smoke engine
//! (reusing the aggregation hash table to join the output back to the input)
//! rather than on an external DBMS, which the paper shows is two orders of
//! magnitude faster than stock Perm/GProm and makes the comparison fair.

use std::collections::HashMap;

use smoke_lineage::{InputLineage, LineageIndex, QueryLineage, RidIndex};
use smoke_storage::{Column, DataType, Database, Relation, Rid, Value};

use crate::error::{EngineError, Result};
use crate::exec::execute_baseline;
use crate::instrument::CaptureMode;
use crate::key::KeyExtractor;
use crate::ops::groupby::{group_by, GroupByOptions};
use crate::plan::LogicalPlan;

/// How the rewritten query annotates its output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Annotation {
    /// Annotate with input rids (`Logic-Rid`).
    Rid,
    /// Annotate with full input tuples (`Logic-Tup`).
    Tuple,
}

/// The result of logical lineage capture.
#[derive(Debug, Clone)]
pub struct LogicalCapture {
    /// The base query's (clean) output relation.
    pub output: Relation,
    /// The denormalized, annotated lineage relation.
    pub annotated: Relation,
    /// For each base table, the name of its rid annotation column in
    /// [`LogicalCapture::annotated`].
    pub rid_columns: Vec<(String, String)>,
    /// Name of the output-rid column in the annotated relation.
    pub oid_column: String,
}

fn rid_column_name(table: &str) -> String {
    format!("__rid_{table}")
}

/// Builds an augmented copy of every base table with an explicit rid column,
/// which is how the relational rewrite carries provenance through the plan.
fn augment_database(db: &Database, tables: &[&str]) -> Result<Database> {
    let mut augmented = Database::new();
    for table in tables {
        let relation = db.relation(table)?;
        let mut schema_fields = relation.schema().fields().to_vec();
        schema_fields.push(smoke_storage::Field::new(
            rid_column_name(table),
            DataType::Int,
        ));
        let mut columns: Vec<Column> = relation.columns().to_vec();
        columns.push(Column::Int((0..relation.len() as i64).collect()));
        let schema = smoke_storage::Schema::new(schema_fields)?;
        augmented.register(Relation::from_columns(*table, schema, columns)?)?;
    }
    Ok(augmented)
}

/// The group-by keys and aggregates peeled off the top of a plan, when the
/// plan's root is an aggregation.
type AggregationSplit<'a> = Option<(&'a [String], &'a [crate::agg::AggExpr])>;

fn split_aggregation(plan: &LogicalPlan) -> (&LogicalPlan, AggregationSplit<'_>) {
    match plan {
        LogicalPlan::GroupBy { input, keys, aggs } => (input.as_ref(), Some((keys, aggs))),
        other => (other, None),
    }
}

fn contains_projection(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Project { .. } => true,
        LogicalPlan::Scan { .. } => false,
        LogicalPlan::Select { input, .. } | LogicalPlan::GroupBy { input, .. } => {
            contains_projection(input)
        }
        LogicalPlan::Join { left, right, .. } => {
            contains_projection(left) || contains_projection(right)
        }
    }
}

/// Captures lineage for `plan` with the Perm-style relational rewrite.
pub fn logical_capture(
    plan: &LogicalPlan,
    db: &Database,
    annotation: Annotation,
) -> Result<LogicalCapture> {
    if contains_projection(plan) {
        return Err(EngineError::InvalidPlan(
            "logical capture supports SPJA plans without explicit projections".into(),
        ));
    }
    let tables = plan.base_tables();
    let augmented = augment_database(db, &tables)?;
    let (spj, agg) = split_aggregation(plan);
    let spj_result = execute_baseline(spj, &augmented)?;

    let rid_columns: Vec<(String, String)> = tables
        .iter()
        .map(|t| (t.to_string(), rid_column_name(t)))
        .collect();

    match agg {
        Some((keys, aggs)) => {
            // The clean output: the aggregation over the SPJ result.
            let agg_result = group_by(&spj_result, keys, aggs, &GroupByOptions::baseline())?.output;

            // Reuse the aggregation's hash table (modeled by re-deriving the
            // key→oid mapping from the output, which in a compiled engine is
            // the same hash table, Appendix B) to join the output back to the
            // annotated SPJ result.
            let out_extract = KeyExtractor::new(&agg_result, keys)?;
            let mut key_to_oid = HashMap::new();
            for oid in 0..agg_result.len() {
                key_to_oid.insert(out_extract.key(oid), oid as Rid);
            }
            let in_extract = KeyExtractor::new(&spj_result, keys)?;

            // Denormalized schema: output columns, then annotation columns,
            // then the output-rid column.
            let mut builder = Relation::builder("annotated");
            for f in agg_result.schema().fields() {
                builder = builder.column(f.name.clone(), f.data_type);
            }
            let annotation_columns: Vec<(String, usize, DataType)> = match annotation {
                Annotation::Rid => rid_columns
                    .iter()
                    .map(|(_, col)| {
                        let idx = spj_result.column_index(col).expect("rid column exists");
                        (col.clone(), idx, DataType::Int)
                    })
                    .collect(),
                Annotation::Tuple => spj_result
                    .schema()
                    .fields()
                    .iter()
                    .enumerate()
                    .map(|(idx, f)| (format!("in_{}", f.name), idx, f.data_type))
                    .collect(),
            };
            for (name, _, dt) in &annotation_columns {
                builder = builder.column(name.clone(), *dt);
            }
            builder = builder.column("__oid", DataType::Int);

            for rid in 0..spj_result.len() {
                let key = in_extract.key(rid);
                let oid = key_to_oid[&key];
                let mut row = agg_result.row_values(oid as usize);
                for (_, idx, _) in &annotation_columns {
                    row.push(spj_result.value(rid, *idx));
                }
                row.push(Value::Int(oid as i64));
                builder = builder.row(row);
            }
            Ok(LogicalCapture {
                output: agg_result,
                annotated: builder.build()?,
                rid_columns,
                oid_column: "__oid".to_string(),
            })
        }
        None => {
            // Join/select-rooted plan: the SPJ result is already the
            // denormalized graph; add an explicit output-rid column and strip
            // annotations for the clean output.
            let clean_names: Vec<&str> = spj_result
                .schema()
                .names()
                .into_iter()
                .filter(|n| !n.starts_with("__rid_"))
                .collect();
            let clean_schema = spj_result.schema().project(&clean_names)?;
            let clean_cols: Vec<Column> = clean_names
                .iter()
                .map(|n| spj_result.column_by_name(n).cloned())
                .collect::<std::result::Result<_, _>>()?;
            let output = Relation::from_columns("output", clean_schema, clean_cols)?;

            let mut fields = spj_result.schema().fields().to_vec();
            fields.push(smoke_storage::Field::new("__oid", DataType::Int));
            let mut columns = spj_result.columns().to_vec();
            columns.push(Column::Int((0..spj_result.len() as i64).collect()));
            let annotated =
                Relation::from_columns("annotated", smoke_storage::Schema::new(fields)?, columns)?;
            Ok(LogicalCapture {
                output,
                annotated,
                rid_columns,
                oid_column: "__oid".to_string(),
            })
        }
    }
}

/// `Logic-Idx`: scans the annotated relation to build the same end-to-end
/// backward/forward indexes Smoke builds (only meaningful for
/// [`Annotation::Rid`] captures).
pub fn build_indexes_from_annotated(
    capture: &LogicalCapture,
    db: &Database,
) -> Result<QueryLineage> {
    let annotated = &capture.annotated;
    let oid_idx = annotated.column_index(&capture.oid_column)?;
    let oid_col = annotated.column(oid_idx).as_int();
    let output_len = capture.output.len();

    let mut lineage = QueryLineage::new();
    for (table, rid_col_name) in &capture.rid_columns {
        let Ok(rid_idx) = annotated.column_index(rid_col_name) else {
            continue;
        };
        let rid_col = annotated.column(rid_idx).as_int();
        let table_len = db.relation(table)?.len();
        let mut backward = RidIndex::with_len(output_len);
        let mut forward = RidIndex::with_len(table_len);
        for row in 0..annotated.len() {
            let oid = oid_col[row] as usize;
            let rid = rid_col[row] as Rid;
            backward.append(oid, rid);
            forward.append(rid as usize, oid as Rid);
        }
        lineage.insert(
            table.clone(),
            InputLineage::new(LineageIndex::Index(backward), LineageIndex::Index(forward)),
        );
    }
    Ok(lineage)
}

/// Which logical technique to run (used by the benchmark harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicalTechnique {
    /// Rid-annotated output only.
    LogicRid,
    /// Tuple-annotated output only.
    LogicTup,
    /// Rid-annotated output plus end-to-end index construction.
    LogicIdx,
}

/// Runs a logical technique end to end, returning the clean output, the
/// annotated relation, and (for `Logic-Idx`) the constructed indexes.
pub fn run_logical(
    plan: &LogicalPlan,
    db: &Database,
    technique: LogicalTechnique,
) -> Result<(LogicalCapture, Option<QueryLineage>)> {
    let annotation = match technique {
        LogicalTechnique::LogicTup => Annotation::Tuple,
        _ => Annotation::Rid,
    };
    let capture = logical_capture(plan, db, annotation)?;
    let lineage = if technique == LogicalTechnique::LogicIdx {
        Some(build_indexes_from_annotated(&capture, db)?)
    } else {
        None
    };
    Ok((capture, lineage))
}

/// Convenience used by benchmarks: evaluates a backward lineage query directly
/// over a `Logic-Rid`/`Logic-Tup` annotated relation (a scan with an equality
/// predicate on the `__oid` column), which is how logical systems without
/// extra indexes answer lineage queries (§6.3).
pub fn scan_annotated_backward(
    capture: &LogicalCapture,
    output_rid: Rid,
    table: &str,
) -> Result<Vec<Rid>> {
    let annotated = &capture.annotated;
    let oid_idx = annotated.column_index(&capture.oid_column)?;
    let oid_col = annotated.column(oid_idx).as_int();
    let rid_col_name = capture
        .rid_columns
        .iter()
        .find(|(t, _)| t == table)
        .map(|(_, c)| c.clone())
        .ok_or_else(|| EngineError::InvalidPlan(format!("no rid annotation for `{table}`")))?;
    let rids = match annotated.column_index(&rid_col_name) {
        Ok(idx) => {
            let rid_col = annotated.column(idx).as_int();
            (0..annotated.len())
                .filter(|&row| oid_col[row] == output_rid as i64)
                .map(|row| rid_col[row] as Rid)
                .collect()
        }
        Err(_) => {
            // Tuple annotation: the matching rows themselves are the lineage;
            // report their positions in the annotated relation.
            (0..annotated.len())
                .filter(|&row| oid_col[row] == output_rid as i64)
                .map(|row| row as Rid)
                .collect()
        }
    };
    Ok(rids)
}

/// Ignore-capture helper retained for API completeness.
pub fn annotation_for_mode(mode: CaptureMode) -> Option<Annotation> {
    match mode {
        CaptureMode::Baseline => None,
        _ => Some(Annotation::Rid),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggExpr;
    use crate::exec::Executor;
    use crate::expr::Expr;
    use crate::plan::PlanBuilder;

    fn db() -> Database {
        let mut db = Database::new();
        let mut zipf = Relation::builder("zipf")
            .column("z", DataType::Int)
            .column("v", DataType::Float);
        for (z, v) in [
            (1, 10.0),
            (2, 20.0),
            (1, 30.0),
            (3, 40.0),
            (2, 50.0),
            (1, 60.0),
        ] {
            zipf = zipf.row(vec![Value::Int(z), Value::Float(v)]);
        }
        db.register(zipf.build().unwrap()).unwrap();

        let mut gids = Relation::builder("gids")
            .column("id", DataType::Int)
            .column("label", DataType::Str);
        for i in 1..=3 {
            gids = gids.row(vec![Value::Int(i), Value::Str(format!("g{i}"))]);
        }
        db.register(gids.build().unwrap()).unwrap();
        db
    }

    fn groupby_plan() -> LogicalPlan {
        PlanBuilder::scan("zipf")
            .group_by(&["z"], vec![AggExpr::count("cnt"), AggExpr::sum("v", "s")])
            .build()
    }

    #[test]
    fn logic_rid_denormalizes_one_row_per_input() {
        let db = db();
        let (capture, _) = run_logical(&groupby_plan(), &db, LogicalTechnique::LogicRid).unwrap();
        assert_eq!(capture.output.len(), 3);
        // Denormalized graph has one row per input tuple.
        assert_eq!(capture.annotated.len(), 6);
        assert!(capture.annotated.column_by_name("__rid_zipf").is_ok());
        assert!(capture.annotated.column_by_name("__oid").is_ok());
    }

    #[test]
    fn logic_tup_duplicates_full_tuples_and_is_wider() {
        let db = db();
        let (rid, _) = run_logical(&groupby_plan(), &db, LogicalTechnique::LogicRid).unwrap();
        let (tup, _) = run_logical(&groupby_plan(), &db, LogicalTechnique::LogicTup).unwrap();
        assert_eq!(rid.annotated.len(), tup.annotated.len());
        assert!(tup.annotated.schema().arity() >= rid.annotated.schema().arity());
        assert!(tup.annotated.column_by_name("in_v").is_ok());
    }

    #[test]
    fn logic_idx_matches_smoke_lineage() {
        let db = db();
        let plan = groupby_plan();
        let (capture, lineage) = run_logical(&plan, &db, LogicalTechnique::LogicIdx).unwrap();
        let lineage = lineage.unwrap();
        let smoke = Executor::new(CaptureMode::Inject)
            .execute(&plan, &db)
            .unwrap();
        assert_eq!(capture.output, smoke.relation);
        for o in 0..capture.output.len() as Rid {
            let mut a = lineage.backward(&[o], "zipf");
            let mut b = smoke.lineage.backward(&[o], "zipf");
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        for rid in 0..6 as Rid {
            assert_eq!(
                lineage.forward(&[rid], "zipf"),
                smoke.lineage.forward(&[rid], "zipf")
            );
        }
    }

    #[test]
    fn scan_annotated_answers_backward_queries() {
        let db = db();
        let (capture, _) = run_logical(&groupby_plan(), &db, LogicalTechnique::LogicRid).unwrap();
        // Find the output rid for group z=1.
        let z_col = capture.output.column_by_name("z").unwrap().as_int();
        let oid = z_col.iter().position(|&z| z == 1).unwrap() as Rid;
        let mut rids = scan_annotated_backward(&capture, oid, "zipf").unwrap();
        rids.sort_unstable();
        assert_eq!(rids, vec![0, 2, 5]);
    }

    #[test]
    fn join_rooted_plan_annotates_both_tables() {
        let db = db();
        let plan = PlanBuilder::scan("gids")
            .join(PlanBuilder::scan("zipf"), &["id"], &["z"])
            .build();
        let (capture, lineage) = run_logical(&plan, &db, LogicalTechnique::LogicIdx).unwrap();
        assert_eq!(capture.output.len(), 6);
        // Output has no annotation columns.
        assert!(capture.output.column_by_name("__rid_zipf").is_err());
        let lineage = lineage.unwrap();
        let smoke = Executor::new(CaptureMode::Inject)
            .execute(&plan, &db)
            .unwrap();
        for o in 0..capture.output.len() as Rid {
            assert_eq!(
                lineage.backward(&[o], "zipf").len(),
                smoke.lineage.backward(&[o], "zipf").len()
            );
            assert_eq!(
                lineage.backward(&[o], "gids").len(),
                smoke.lineage.backward(&[o], "gids").len()
            );
        }
    }

    #[test]
    fn selection_inside_spja_is_supported() {
        let db = db();
        let plan = PlanBuilder::scan("zipf")
            .select(Expr::col("v").lt(Expr::lit(45.0)))
            .group_by(&["z"], vec![AggExpr::count("cnt")])
            .build();
        let (capture, lineage) = run_logical(&plan, &db, LogicalTechnique::LogicIdx).unwrap();
        assert_eq!(capture.annotated.len(), 4);
        let smoke = Executor::new(CaptureMode::Inject)
            .execute(&plan, &db)
            .unwrap();
        let lineage = lineage.unwrap();
        for o in 0..capture.output.len() as Rid {
            let mut a = lineage.backward(&[o], "zipf");
            let mut b = smoke.lineage.backward(&[o], "zipf");
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn projections_are_rejected() {
        let db = db();
        let plan = PlanBuilder::scan("zipf").project(&["z"]).build();
        assert!(logical_capture(&plan, &db, Annotation::Rid).is_err());
    }
}
