//! Physical capture baselines: `Phys-Mem` and `Phys-Bdb` (paper §5,
//! Appendix B).
//!
//! Both baselines run the same capture logic as `Smoke-I`, but every lineage
//! edge is emitted through a **virtual function call** on a [`LineageSink`]
//! instead of being written inline — this isolates the cost the paper
//! attributes to decoupling capture from the execution engine. `Phys-Mem`
//! stores the edges in Smoke-style rid indexes; `Phys-Bdb` serializes each
//! edge into the external ordered key-value store.

use std::collections::HashMap;

use smoke_lineage::{InputLineage, LineageIndex, QueryLineage, RidIndex};
use smoke_storage::{Relation, Rid};

use crate::agg::{AggExpr, AggFunc, AggState};
use crate::baselines::extstore::{
    decode_rid, encode_key, encode_rid, ExternalKvStore, ExternalStore, DIR_BACKWARD, DIR_FORWARD,
};
use crate::error::Result;
use crate::key::{HashKey, KeyExtractor};

/// Destination of lineage edges emitted through virtual calls.
///
/// The trait is deliberately object-safe and invoked through `&mut dyn
/// LineageSink` so that every edge pays for dynamic dispatch, mirroring the
/// paper's `Phys-*` baselines.
pub trait LineageSink {
    /// Emits a backward edge: output rid → input rid.
    fn emit_backward(&mut self, out: Rid, input: Rid);
    /// Emits a forward edge: input rid → output rid.
    fn emit_forward(&mut self, input: Rid, out: Rid);
}

/// `Phys-Mem`: stores emitted edges in the same index structures Smoke uses,
/// but populated through the virtual-call API.
#[derive(Debug, Default)]
pub struct PhysMemSink {
    backward: RidIndex,
    forward: RidIndex,
}

impl PhysMemSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        PhysMemSink::default()
    }

    /// Converts the collected edges into end-to-end query lineage for `table`.
    pub fn into_lineage(self, table: &str) -> QueryLineage {
        let mut lineage = QueryLineage::new();
        lineage.insert(
            table,
            InputLineage::new(
                LineageIndex::Index(self.backward),
                LineageIndex::Index(self.forward),
            ),
        );
        lineage
    }
}

impl LineageSink for PhysMemSink {
    fn emit_backward(&mut self, out: Rid, input: Rid) {
        self.backward.append(out as usize, input);
    }

    fn emit_forward(&mut self, input: Rid, out: Rid) {
        self.forward.append(input as usize, out);
    }
}

/// `Phys-Bdb`: sends every edge to the external ordered key-value store with
/// byte-encoded keys and values.
#[derive(Debug, Default)]
pub struct ExternalStoreSink {
    store: ExternalKvStore,
}

impl ExternalStoreSink {
    /// Creates a sink over a fresh store.
    pub fn new() -> Self {
        ExternalStoreSink::default()
    }

    /// The underlying store (for read-side benchmarking).
    pub fn store(&self) -> &ExternalKvStore {
        &self.store
    }

    /// Reads the backward lineage of `out` through the store's cursor API.
    pub fn backward(&self, out: Rid) -> Vec<Rid> {
        self.store
            .cursor(&encode_key(DIR_BACKWARD, 0, out))
            .map(|b| decode_rid(b))
            .collect()
    }

    /// Reads the forward lineage of `input` through the store's cursor API.
    pub fn forward(&self, input: Rid) -> Vec<Rid> {
        self.store
            .cursor(&encode_key(DIR_FORWARD, 0, input))
            .map(|b| decode_rid(b))
            .collect()
    }
}

impl LineageSink for ExternalStoreSink {
    fn emit_backward(&mut self, out: Rid, input: Rid) {
        self.store
            .put(&encode_key(DIR_BACKWARD, 0, out), &encode_rid(input));
    }

    fn emit_forward(&mut self, input: Rid, out: Rid) {
        self.store
            .put(&encode_key(DIR_FORWARD, 0, input), &encode_rid(out));
    }
}

/// Runs the group-by microbenchmark query with physical (sink-based) capture:
/// identical aggregation logic to the Inject operator, but every lineage edge
/// goes through a virtual `emit_*` call.
pub fn group_by_with_sink(
    input: &Relation,
    keys: &[String],
    aggs: &[AggExpr],
    sink: &mut dyn LineageSink,
) -> Result<Relation> {
    let extractor = KeyExtractor::new(input, keys)?;
    let agg_cols: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| match &a.column {
            Some(c) => input.column_index(c).map(Some),
            None => Ok(None),
        })
        .collect::<std::result::Result<_, _>>()?;

    let mut ht: HashMap<HashKey, u32> = HashMap::new();
    let mut groups: Vec<(Vec<smoke_storage::Value>, Vec<AggState>)> = Vec::new();
    for rid in 0..input.len() {
        let key = extractor.key(rid);
        let gid = match ht.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let gid = groups.len() as u32;
                groups.push((
                    e.key().to_values(),
                    aggs.iter().map(AggExpr::new_state).collect(),
                ));
                e.insert(gid);
                gid
            }
        };
        let states = &mut groups[gid as usize].1;
        for (i, state) in states.iter_mut().enumerate() {
            match (&aggs[i].func, agg_cols[i]) {
                (AggFunc::Count, _) => state.update(0.0),
                (AggFunc::CountDistinct, Some(c)) => {
                    state.update_key(&input.value(rid, c).group_key())
                }
                (_, Some(c)) => state.update(input.column(c).numeric(rid).unwrap_or(0.0)),
                (_, None) => state.update(0.0),
            }
        }
        // One virtual call per edge and per direction — the cost the physical
        // baselines pay on top of Smoke-I.
        sink.emit_backward(gid, rid as Rid);
        sink.emit_forward(rid as Rid, gid);
    }

    let mut builder = Relation::builder(format!("groupby({})", input.name()));
    for name in keys {
        let idx = input.column_index(name)?;
        builder = builder.column(name.clone(), input.schema().field(idx).data_type);
    }
    for agg in aggs {
        builder = builder.column(agg.alias.clone(), agg.output_type());
    }
    for (key_values, states) in groups {
        let mut row = key_values;
        row.extend(states.iter().map(AggState::finalize));
        builder = builder.row(row);
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::groupby::{group_by, GroupByOptions};
    use smoke_storage::{DataType, Value};

    fn rel() -> Relation {
        let mut b = Relation::builder("zipf")
            .column("z", DataType::Int)
            .column("v", DataType::Float);
        for (i, z) in [1, 2, 1, 3, 2, 1].iter().enumerate() {
            b = b.row(vec![Value::Int(*z), Value::Float(i as f64)]);
        }
        b.build().unwrap()
    }

    fn keys() -> Vec<String> {
        vec!["z".to_string()]
    }

    fn aggs() -> Vec<AggExpr> {
        vec![AggExpr::count("cnt"), AggExpr::sum("v", "s")]
    }

    #[test]
    fn phys_mem_matches_inject_lineage() {
        let r = rel();
        let mut sink = PhysMemSink::new();
        let output = group_by_with_sink(&r, &keys(), &aggs(), &mut sink).unwrap();
        let smoke = group_by(&r, &keys(), &aggs(), &GroupByOptions::inject()).unwrap();
        assert_eq!(output, smoke.output);

        let lineage = sink.into_lineage("zipf");
        for g in 0..output.len() as Rid {
            assert_eq!(
                lineage.backward(&[g], "zipf"),
                smoke.lineage.input(0).backward().lookup(g)
            );
        }
        for rid in 0..r.len() as Rid {
            assert_eq!(
                lineage.forward(&[rid], "zipf"),
                smoke.lineage.input(0).forward().lookup(rid)
            );
        }
    }

    #[test]
    fn phys_bdb_round_trips_through_byte_encoding() {
        let r = rel();
        let mut sink = ExternalStoreSink::new();
        let output = group_by_with_sink(&r, &keys(), &aggs(), &mut sink).unwrap();
        assert_eq!(output.len(), 3);
        // Backward lineage of group 0 (z=1).
        assert_eq!(sink.backward(0), vec![0, 2, 5]);
        assert_eq!(sink.forward(4), vec![1]);
        // The store holds one key per output group + one per input rid.
        assert_eq!(sink.store().key_count(), 3 + 6);
        assert_eq!(sink.store().value_count(), 12);
    }

    #[test]
    fn sinks_work_through_dyn_dispatch() {
        let r = rel();
        let sinks: Vec<Box<dyn LineageSink>> = vec![
            Box::new(PhysMemSink::new()),
            Box::new(ExternalStoreSink::new()),
        ];
        for mut sink in sinks {
            let out = group_by_with_sink(&r, &keys(), &aggs(), sink.as_mut()).unwrap();
            assert_eq!(out.len(), 3);
        }
    }
}
