//! An external ordered key-value store standing in for BerkeleyDB.
//!
//! The paper's `Phys-Bdb` baseline writes every lineage edge into BerkeleyDB
//! (in-memory, B-Tree indexed) through its client API and pays for (a) one
//! call per edge across the subsystem boundary, (b) key/value byte encoding,
//! and (c) B-Tree writes. `ExternalKvStore` exercises the same code paths: a
//! `BTreeMap` over byte keys, duplicate-supporting puts, and a cursor API for
//! reads, all behind an object-safe trait so calls are dynamically dispatched
//! exactly like a foreign client library.

use std::collections::BTreeMap;

use bytes::{BufMut, Bytes, BytesMut};
use smoke_storage::Rid;

/// Object-safe client API of the external store (mirrors the subset of the
/// BerkeleyDB API the paper's baseline uses).
pub trait ExternalStore {
    /// Inserts a key/value pair; duplicate keys accumulate values in
    /// insertion order.
    fn put(&mut self, key: &[u8], value: &[u8]);
    /// Returns all values stored under `key`, in insertion order (bulk get).
    fn get_all(&self, key: &[u8]) -> Vec<Bytes>;
    /// Opens a cursor over the values stored under `key` (cursor-style get,
    /// which the paper found faster than the bulk API because it avoids
    /// allocating the result vector).
    fn cursor<'a>(&'a self, key: &[u8]) -> Box<dyn Iterator<Item = &'a Bytes> + 'a>;
    /// Number of keys stored.
    fn key_count(&self) -> usize;
    /// Total number of values stored.
    fn value_count(&self) -> usize;
}

/// In-memory ordered store with duplicate support.
#[derive(Debug, Default)]
pub struct ExternalKvStore {
    tree: BTreeMap<Bytes, Vec<Bytes>>,
}

impl ExternalKvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ExternalKvStore::default()
    }
}

impl ExternalStore for ExternalKvStore {
    fn put(&mut self, key: &[u8], value: &[u8]) {
        self.tree
            .entry(Bytes::copy_from_slice(key))
            .or_default()
            .push(Bytes::copy_from_slice(value));
    }

    fn get_all(&self, key: &[u8]) -> Vec<Bytes> {
        self.tree.get(key).cloned().unwrap_or_default()
    }

    fn cursor<'a>(&'a self, key: &[u8]) -> Box<dyn Iterator<Item = &'a Bytes> + 'a> {
        match self.tree.get(key) {
            Some(values) => Box::new(values.iter()),
            None => Box::new(std::iter::empty()),
        }
    }

    fn key_count(&self) -> usize {
        self.tree.len()
    }

    fn value_count(&self) -> usize {
        self.tree.values().map(Vec::len).sum()
    }
}

/// Encodes a lineage-edge key: direction tag, input index, and source rid
/// (big-endian so byte order matches numeric order in the B-Tree).
pub fn encode_key(direction: u8, input_idx: u8, src: Rid) -> Bytes {
    let mut buf = BytesMut::with_capacity(6);
    buf.put_u8(direction);
    buf.put_u8(input_idx);
    buf.put_u32(src);
    buf.freeze()
}

/// Encodes a rid value.
pub fn encode_rid(rid: Rid) -> Bytes {
    let mut buf = BytesMut::with_capacity(4);
    buf.put_u32(rid);
    buf.freeze()
}

/// Decodes a rid value previously written by [`encode_rid`].
pub fn decode_rid(bytes: &[u8]) -> Rid {
    u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

/// Direction tag for backward edges.
pub const DIR_BACKWARD: u8 = 0;
/// Direction tag for forward edges.
pub const DIR_FORWARD: u8 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_get_with_duplicates() {
        let mut store = ExternalKvStore::new();
        let k = encode_key(DIR_BACKWARD, 0, 7);
        store.put(&k, &encode_rid(1));
        store.put(&k, &encode_rid(2));
        store.put(&encode_key(DIR_BACKWARD, 0, 8), &encode_rid(3));

        let values = store.get_all(&k);
        assert_eq!(values.len(), 2);
        assert_eq!(decode_rid(&values[0]), 1);
        assert_eq!(decode_rid(&values[1]), 2);
        assert_eq!(store.key_count(), 2);
        assert_eq!(store.value_count(), 3);
    }

    #[test]
    fn cursor_reads_in_insertion_order() {
        let mut store = ExternalKvStore::new();
        let k = encode_key(DIR_FORWARD, 1, 0);
        for rid in [5, 3, 9] {
            store.put(&k, &encode_rid(rid));
        }
        let rids: Vec<Rid> = store.cursor(&k).map(|b| decode_rid(b)).collect();
        assert_eq!(rids, vec![5, 3, 9]);
        assert_eq!(store.cursor(b"missing").count(), 0);
    }

    #[test]
    fn keys_sort_by_rid_order() {
        let a = encode_key(DIR_BACKWARD, 0, 1);
        let b = encode_key(DIR_BACKWARD, 0, 256);
        assert!(a < b, "big-endian encoding must preserve numeric order");
    }

    #[test]
    fn missing_key_returns_empty() {
        let store = ExternalKvStore::new();
        assert!(store.get_all(b"nope").is_empty());
        assert_eq!(store.value_count(), 0);
    }
}
