//! Baseline lineage-capture techniques used in the paper's evaluation
//! (§5, Table 1).
//!
//! * [`logical`] — Perm-style query-rewrite capture (`Logic-Rid`,
//!   `Logic-Tup`) and index construction over the annotated output
//!   (`Logic-Idx`), re-implemented inside the Smoke engine with the hash-table
//!   reuse optimizations of Appendix B so the comparison isolates the
//!   *representation* rather than the host DBMS.
//! * [`physical`] — instrumentation that emits one `(output, input)` rid pair
//!   per lineage edge through a virtual (`dyn`) call: `Phys-Mem` stores the
//!   edges in Smoke-style indexes, `Phys-Bdb` sends them to an external
//!   ordered key-value store.
//! * [`extstore`] — the external ordered key-value store standing in for
//!   BerkeleyDB (byte-encoded keys/values, B-Tree storage, cursor reads).

pub mod extstore;
pub mod logical;
pub mod physical;
