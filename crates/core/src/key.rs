//! Hashable composite keys for group-by and join hash tables.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use smoke_storage::{Column, Relation, Value};

use crate::error::{EngineError, Result};

/// One component of a hash key. Floats are stored by their bit pattern so the
/// key is `Eq + Hash`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyPart {
    /// Integer component.
    Int(i64),
    /// Float component (bit pattern).
    FloatBits(u64),
    /// String component.
    Str(String),
}

impl KeyPart {
    fn from_value(v: &Value) -> KeyPart {
        match v {
            Value::Int(x) => KeyPart::Int(*x),
            Value::Float(x) => KeyPart::FloatBits(x.to_bits()),
            Value::Str(s) => KeyPart::Str(s.clone()),
        }
    }

    /// Converts the key part back to a [`Value`].
    pub fn to_value(&self) -> Value {
        match self {
            KeyPart::Int(x) => Value::Int(*x),
            KeyPart::FloatBits(b) => Value::Float(f64::from_bits(*b)),
            KeyPart::Str(s) => Value::Str(s.clone()),
        }
    }
}

/// A hashable key over one or more columns.
///
/// Single-column integer keys (by far the most common case in the paper's
/// microbenchmarks: group-by `z`, join on `id`/`z`) avoid any allocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum HashKey {
    /// Single integer column key.
    Int(i64),
    /// Single string column key.
    Str(String),
    /// Composite or non-integer key.
    Composite(Vec<KeyPart>),
}

impl HashKey {
    /// The key's components as values (used to emit group-by output columns).
    pub fn to_values(&self) -> Vec<Value> {
        match self {
            HashKey::Int(x) => vec![Value::Int(*x)],
            HashKey::Str(s) => vec![Value::Str(s.clone())],
            HashKey::Composite(parts) => parts.iter().map(KeyPart::to_value).collect(),
        }
    }

    /// A 64-bit hash of the key (used by the external-store baseline to build
    /// byte keys).
    pub fn hash64(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Extracts hash keys for a set of key columns of a relation, resolved once
/// per operator.
#[derive(Debug)]
pub struct KeyExtractor<'a> {
    columns: Vec<&'a Column>,
}

impl<'a> KeyExtractor<'a> {
    /// Resolves the named key columns against `relation`.
    pub fn new(relation: &'a Relation, key_columns: &[String]) -> Result<Self> {
        let mut columns = Vec::with_capacity(key_columns.len());
        for name in key_columns {
            let idx = relation
                .column_index(name)
                .map_err(|_| EngineError::UnknownColumn(name.clone()))?;
            columns.push(relation.column(idx));
        }
        Ok(KeyExtractor { columns })
    }

    /// Number of key columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The resolved key columns, in key order (consumed by the vectorized
    /// typed key-extraction kernels in [`smoke_storage::kernels`]).
    pub fn columns(&self) -> &[&'a Column] {
        &self.columns
    }

    /// Builds the key for the row at `rid`.
    #[inline]
    pub fn key(&self, rid: usize) -> HashKey {
        if self.columns.len() == 1 {
            match self.columns[0] {
                Column::Int(v) => return HashKey::Int(v[rid]),
                Column::Str(v) => return HashKey::Str(v[rid].clone()),
                Column::Float(v) => {
                    return HashKey::Composite(vec![KeyPart::FloatBits(v[rid].to_bits())])
                }
            }
        }
        HashKey::Composite(
            self.columns
                .iter()
                .map(|c| KeyPart::from_value(&c.value(rid)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_storage::DataType;

    fn rel() -> Relation {
        Relation::builder("t")
            .column("z", DataType::Int)
            .column("name", DataType::Str)
            .column("v", DataType::Float)
            .row(vec![
                Value::Int(1),
                Value::Str("a".into()),
                Value::Float(0.5),
            ])
            .row(vec![
                Value::Int(2),
                Value::Str("b".into()),
                Value::Float(0.5),
            ])
            .row(vec![
                Value::Int(1),
                Value::Str("a".into()),
                Value::Float(1.5),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn single_int_key_fast_path() {
        let r = rel();
        let ex = KeyExtractor::new(&r, &["z".to_string()]).unwrap();
        assert_eq!(ex.key(0), HashKey::Int(1));
        assert_eq!(ex.key(1), HashKey::Int(2));
        assert_eq!(ex.key(0), ex.key(2));
        assert_eq!(ex.arity(), 1);
    }

    #[test]
    fn composite_keys_distinguish_rows() {
        let r = rel();
        let ex = KeyExtractor::new(&r, &["name".to_string(), "v".to_string()]).unwrap();
        assert_eq!(ex.key(0), ex.key(0));
        assert_ne!(ex.key(0), ex.key(2)); // same name, different v
        assert_ne!(ex.key(0), ex.key(1));
    }

    #[test]
    fn key_round_trips_to_values() {
        let r = rel();
        let ex = KeyExtractor::new(&r, &["z".to_string(), "name".to_string()]).unwrap();
        assert_eq!(
            ex.key(1).to_values(),
            vec![Value::Int(2), Value::Str("b".into())]
        );
        let single = KeyExtractor::new(&r, &["name".to_string()]).unwrap();
        assert_eq!(single.key(0).to_values(), vec![Value::Str("a".into())]);
    }

    #[test]
    fn float_keys_use_bit_patterns() {
        let r = rel();
        let ex = KeyExtractor::new(&r, &["v".to_string()]).unwrap();
        assert_eq!(ex.key(0), ex.key(1));
        assert_ne!(ex.key(0), ex.key(2));
    }

    #[test]
    fn unknown_key_column_errors() {
        let r = rel();
        assert!(KeyExtractor::new(&r, &["missing".to_string()]).is_err());
    }

    #[test]
    fn hash64_is_stable() {
        let k = HashKey::Int(42);
        assert_eq!(k.hash64(), HashKey::Int(42).hash64());
        assert_ne!(k.hash64(), HashKey::Int(43).hash64());
    }
}
