//! Engine error types.

use std::fmt;

use smoke_storage::StorageError;

/// Errors raised by the Smoke query engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// An error bubbled up from the storage layer.
    Storage(StorageError),
    /// A plan referenced a column that does not exist.
    UnknownColumn(String),
    /// A plan or expression was malformed.
    InvalidPlan(String),
    /// An expression could not be evaluated (e.g. type error).
    Expression(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            EngineError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            EngineError::Expression(msg) => write!(f, "expression error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_errors_convert() {
        let e: EngineError = StorageError::UnknownRelation("x".into()).into();
        assert!(matches!(e, EngineError::Storage(_)));
        assert!(e.to_string().contains("x"));
    }

    #[test]
    fn display_is_informative() {
        assert!(EngineError::UnknownColumn("z".into())
            .to_string()
            .contains("z"));
        assert!(EngineError::InvalidPlan("no root".into())
            .to_string()
            .contains("no root"));
    }
}
