//! Morsel-driven parallel operator drivers with per-thread lineage capture.
//!
//! The sequential operators in [`crate::ops`] stay the reference
//! implementations; this module adds partition-parallel drivers on top of
//! them, following Leis et al.'s morsel-driven design adapted to Smoke's
//! fused capture (paper §3.2): the input relation is split into fixed-size
//! [`Morsel`]s, a scoped pool of worker threads claims morsels dynamically
//! through an atomic cursor, and *each worker captures lineage into its own
//! private buffers* — no locks, no sharing, no atomics on the per-row hot
//! path. A deterministic merge in morsel order then rebases the per-worker
//! results into the global rid space:
//!
//! * selection masks stitch word-aligned ([`SelectionMask::append`]);
//! * per-morsel group tables merge through [`AggState::merge`], and the
//!   per-morsel CSR lineage fragments merge by offset-shifting
//!   ([`CsrRidIndex::merge_remapped`] — a memcpy-with-rebase, since CSR is
//!   two flat buffers);
//! * join probe outputs concatenate in morsel order, which *is* the
//!   sequential probe order.
//!
//! Because the merge order is the morsel order (not the thread completion
//! order), every driver is deterministic: output rows, group order, rid
//! order within lineage entries, and float aggregate results are identical
//! across runs and degrees of parallelism. With `dop <= 1` — or whenever a
//! shape the parallel path does not cover is requested (interpreter-only
//! predicates, workload push-downs, cardinality hints, Defer join modes) —
//! the drivers delegate to the sequential operators, so degree-of-parallelism
//! 1 is bit-for-bit the existing engine.
//!
//! [`SelectionMask::append`]: smoke_storage::SelectionMask::append
//! [`CsrRidIndex::merge_remapped`]: smoke_lineage::CsrRidIndex::merge_remapped
//! [`AggState::merge`]: crate::agg::AggState::merge

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use smoke_lineage::{
    CaptureStats, CsrBuilder, CsrRidIndex, InputLineage, LineageIndex, OperatorLineage, RidArray,
};
use smoke_storage::kernels as sk;
use smoke_storage::{morsels, Column, Morsel, Relation, Rid, DEFAULT_MORSEL_ROWS};

use crate::agg::{AggExpr, AggState};
use crate::error::Result;
use crate::expr::Expr;
use crate::instrument::CaptureMode;
use crate::kernels::KernelPlan;
use crate::key::{HashKey, KeyExtractor};
use crate::ops::groupby::{group_by, AggInputs, GroupByOptions, GroupByResult};
use crate::ops::join::{hash_join, JoinOptions, JoinResult};
use crate::ops::select::{select, SelectOptions};
use crate::ops::OpOutput;

/// Degree-of-parallelism and morsel-size configuration for the parallel
/// drivers.
#[derive(Debug, Clone)]
pub struct ParallelOptions {
    dop: usize,
    morsel_rows: usize,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions::auto()
    }
}

impl ParallelOptions {
    /// A fixed degree of parallelism (clamped to at least 1).
    pub fn new(dop: usize) -> Self {
        ParallelOptions {
            dop: dop.max(1),
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        ParallelOptions::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Overrides the morsel size (rounded up to the 64-row mask alignment).
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = smoke_storage::align_morsel_rows(rows);
        self
    }

    /// The configured degree of parallelism.
    pub fn dop(&self) -> usize {
        self.dop
    }

    /// The configured morsel size in rows.
    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }

    /// Number of workers actually spawned for `n_morsels` work units: never
    /// more threads than morsels, never fewer than one.
    pub fn workers(&self, n_morsels: usize) -> usize {
        self.dop.min(n_morsels).max(1)
    }
}

/// Runs `f` over every morsel and returns the per-morsel results *in morsel
/// order*, regardless of which worker processed which morsel. Workers claim
/// morsels dynamically through a shared atomic cursor (morsel-driven
/// scheduling); each returns its `(morsel index, result)` pairs through its
/// join handle, so no worker ever writes shared state.
fn run_morsels<T, F>(ms: &[Morsel], workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Morsel) -> T + Sync,
{
    if workers <= 1 || ms.len() <= 1 {
        return ms.iter().map(|&m| f(m)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(ms.len(), || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= ms.len() {
                            break;
                        }
                        done.push((i, f(ms[i])));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, t) in h.join().expect("morsel worker panicked") {
                slots[i] = Some(t);
            }
        }
    });
    slots
        .into_iter()
        .map(|t| t.expect("every morsel is processed exactly once"))
        .collect()
}

/// Parallel `SELECT * FROM input WHERE predicate`.
///
/// Each worker evaluates the compiled kernel pipeline over its morsels
/// ([`KernelPlan::eval_range`]) and emits the morsel-local matching rid list;
/// the merge concatenates those lists in morsel order, which reproduces the
/// sequential scan's ascending rid order exactly. Falls back to
/// [`select`] when the predicate does not compile to kernels or when fewer
/// than two workers would run.
pub fn par_select(
    input: &Relation,
    predicate: &Expr,
    opts: &SelectOptions,
    par: &ParallelOptions,
) -> Result<OpOutput> {
    let n = input.len();
    let ms = morsels(n, par.morsel_rows);
    let workers = par.workers(ms.len());
    let plan = if opts.use_kernels && workers > 1 {
        KernelPlan::compile(predicate, input)
    } else {
        None
    };
    let Some(plan) = plan else {
        return select(input, predicate, opts);
    };

    let start = Instant::now();
    let capture_backward = opts.capture && opts.directions.backward();
    let capture_forward = opts.capture && opts.directions.forward();

    // Per-morsel scan: kernel bitmap, then one fused pass emitting global
    // rids. Workers never see each other's output.
    let per_morsel: Vec<Vec<Rid>> = run_morsels(&ms, workers, |m| {
        let mask = plan.eval_range(input, m.start, m.end);
        let mut matching: Vec<Rid> = Vec::with_capacity(mask.count_ones());
        mask.for_each_one(|i| matching.push((m.start + i) as Rid));
        matching
    });

    // Merge in morsel order: the concatenation *is* the backward index
    // (reuse principle P4), and the forward array is filled in the same walk.
    let total: usize = per_morsel.iter().map(Vec::len).sum();
    let mut matching: Vec<Rid> = Vec::with_capacity(total);
    let mut forward = if capture_forward {
        RidArray::filled(n)
    } else {
        RidArray::new()
    };
    let mut ctr_o: Rid = 0;
    for part in &per_morsel {
        for &rid in part {
            matching.push(rid);
            if capture_forward {
                forward.set(rid as usize, ctr_o);
            }
            ctr_o += 1;
        }
    }

    let output = input.gather(&matching, format!("select({})", input.name()));
    let elapsed = start.elapsed();

    let mut stats = CaptureStats {
        base_query: elapsed,
        ..Default::default()
    };
    if !opts.capture {
        return Ok(OpOutput::baseline(output, stats));
    }

    let backward_index = LineageIndex::Array(RidArray::from_vec(matching));
    stats.edges = output.len() as u64;
    stats.lineage_bytes = (backward_index.heap_bytes()
        + if capture_forward {
            forward.heap_bytes()
        } else {
            0
        }) as u64;

    let lineage = InputLineage {
        backward: capture_backward.then_some(backward_index),
        forward: capture_forward.then_some(LineageIndex::Array(forward)),
    };
    Ok(OpOutput {
        output,
        lineage: OperatorLineage::unary(lineage),
        stats,
    })
}

/// Per-morsel partial aggregation state produced by a group-by worker.
struct MorselGroups {
    /// Group keys in this morsel's first-occurrence order.
    keys: Vec<HashKey>,
    /// Partial aggregation states, one vector per local group.
    states: Vec<Vec<AggState>>,
    /// The local group id of every row of the morsel, in rid order.
    row_gids: Vec<u32>,
    /// Morsel-local backward lineage: local group → rids of this morsel.
    csr: Option<CsrRidIndex>,
}

/// Parallel `SELECT keys, aggs FROM input GROUP BY keys`.
///
/// Phase 1 (parallel): each worker builds an independent group table per
/// morsel — keys, partial [`AggState`]s, per-group row counts, and a
/// morsel-local backward CSR. Phase 2 (sequential, morsel order): the
/// partial tables merge into the global table ([`AggState::merge`]), local
/// group ids are rebased through per-morsel gid maps, and the lineage
/// fragments combine via [`CsrRidIndex::merge_remapped`]. Scanning partials
/// in morsel order makes the global group order the global first-occurrence
/// order — identical to the sequential operator no matter how threads were
/// scheduled — and keeps each group's rids ascending.
///
/// Falls back to [`group_by`] for shapes the parallel path does not cover:
/// fewer than two workers, cardinality hints, or active workload push-downs.
/// The parallel path always builds its backward index in CSR form (the Defer
/// representation); lookups are equal to Inject's either way.
pub fn par_group_by(
    input: &Relation,
    keys: &[String],
    aggs: &[AggExpr],
    opts: &GroupByOptions,
    par: &ParallelOptions,
) -> Result<GroupByResult> {
    let n = input.len();
    let ms = morsels(n, par.morsel_rows);
    let workers = par.workers(ms.len());
    if workers <= 1 || opts.hints.is_some() || opts.workload.is_active() {
        return group_by(input, keys, aggs, opts);
    }

    let start = Instant::now();
    let extractor = KeyExtractor::new(input, keys)?;
    let agg_inputs = AggInputs::resolve(input, aggs)?;
    let int_keys = sk::int_keys(extractor.columns());

    let capture = opts.mode.captures();
    let capture_b = capture && opts.directions.backward();
    let capture_f = capture && opts.directions.forward();

    // Phase 1: independent per-morsel group tables (γht per partition).
    let partials: Vec<MorselGroups> = run_morsels(&ms, workers, |m| {
        let mut keys_out: Vec<HashKey> = Vec::new();
        let mut states: Vec<Vec<AggState>> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        let mut row_gids: Vec<u32> = Vec::with_capacity(if capture { m.len() } else { 0 });
        let mut int_ht: HashMap<i64, u32> = HashMap::new();
        let mut gen_ht: HashMap<HashKey, u32> = HashMap::new();
        for rid in m.start..m.end {
            let gid = if let Some(ik) = int_keys {
                *int_ht.entry(ik[rid]).or_insert_with(|| {
                    let gid = keys_out.len() as u32;
                    keys_out.push(HashKey::Int(ik[rid]));
                    states.push(aggs.iter().map(AggExpr::new_state).collect());
                    counts.push(0);
                    gid
                })
            } else {
                let key = extractor.key(rid);
                match gen_ht.get(&key) {
                    Some(&gid) => gid,
                    None => {
                        let gid = keys_out.len() as u32;
                        keys_out.push(key.clone());
                        states.push(aggs.iter().map(AggExpr::new_state).collect());
                        counts.push(0);
                        gen_ht.insert(key, gid);
                        gid
                    }
                }
            };
            agg_inputs.update(&mut states[gid as usize], aggs, rid);
            counts[gid as usize] += 1;
            if capture {
                row_gids.push(gid);
            }
        }
        let csr = capture_b.then(|| {
            let mut b = CsrBuilder::with_counts(counts.iter().copied());
            for (i, &gid) in row_gids.iter().enumerate() {
                b.append(gid as usize, (m.start + i) as Rid);
            }
            b.finish()
        });
        MorselGroups {
            keys: keys_out,
            states,
            row_gids,
            csr,
        }
    });

    // Phase 2: deterministic merge in morsel order. Global group ids are
    // assigned by first occurrence across the ordered partials, matching the
    // sequential scan's group order exactly.
    let mut global_ht: HashMap<HashKey, u32> = HashMap::new();
    let mut global_keys: Vec<HashKey> = Vec::new();
    let mut global_states: Vec<Vec<AggState>> = Vec::new();
    let mut maps: Vec<Vec<u32>> = Vec::with_capacity(partials.len());
    for part in &partials {
        let mut map = Vec::with_capacity(part.keys.len());
        for (local, key) in part.keys.iter().enumerate() {
            let gid = match global_ht.get(key) {
                Some(&gid) => {
                    for (g, l) in global_states[gid as usize]
                        .iter_mut()
                        .zip(&part.states[local])
                    {
                        g.merge(l);
                    }
                    gid
                }
                None => {
                    let gid = global_keys.len() as u32;
                    global_keys.push(key.clone());
                    global_states.push(part.states[local].clone());
                    global_ht.insert(key.clone(), gid);
                    gid
                }
            };
            map.push(gid);
        }
        maps.push(map);
    }
    drop(global_ht);

    // γagg: emit one output record per global group.
    let mut key_cols: Vec<Column> = keys
        .iter()
        .map(|name| {
            let idx = input.column_index(name).expect("validated by extractor");
            Column::with_capacity(input.schema().field(idx).data_type, global_keys.len())
        })
        .collect();
    let mut agg_cols: Vec<Column> = aggs
        .iter()
        .map(|a| Column::with_capacity(a.output_type(), global_keys.len()))
        .collect();
    for (key, states) in global_keys.iter().zip(global_states.iter_mut()) {
        let values = key.to_values();
        for (i, col) in key_cols.iter_mut().enumerate() {
            col.push(values[i].clone())?;
        }
        for (i, col) in agg_cols.iter_mut().enumerate() {
            col.push(states[i].finalize())?;
        }
    }

    let mut builder = Relation::builder(format!("groupby({})", input.name()));
    for name in keys {
        let idx = input.column_index(name)?;
        builder = builder.column(name.clone(), input.schema().field(idx).data_type);
    }
    for agg in aggs {
        builder = builder.column(agg.alias.clone(), agg.output_type());
    }
    let schema = builder.build()?.schema().clone();
    let mut columns = key_cols;
    columns.append(&mut agg_cols);
    let output = Relation::from_columns(format!("groupby({})", input.name()), schema, columns)?;

    if !capture {
        let stats = CaptureStats {
            base_query: start.elapsed(),
            ..Default::default()
        };
        return Ok(GroupByResult {
            output,
            lineage: OperatorLineage::none(),
            artifacts: Default::default(),
            stats,
        });
    }

    // Finalize lineage: memcpy-with-rebase merge of the per-morsel CSR
    // fragments, plus a sequential forward fill in morsel order.
    let backward_index = if capture_b {
        let csrs: Vec<CsrRidIndex> = partials
            .iter()
            .map(|p| p.csr.clone().expect("built when capture_b"))
            .collect();
        Some(LineageIndex::Csr(CsrRidIndex::merge_remapped(
            &csrs,
            &maps,
            global_keys.len(),
        )))
    } else {
        None
    };
    let forward_index = if capture_f {
        let mut forward = RidArray::filled(n);
        for (part, (m, map)) in partials.iter().zip(ms.iter().zip(&maps)) {
            for (i, &local) in part.row_gids.iter().enumerate() {
                forward.set(m.start + i, map[local as usize]);
            }
        }
        Some(LineageIndex::Array(forward))
    } else {
        None
    };

    let mut stats = CaptureStats {
        base_query: start.elapsed(),
        ..Default::default()
    };
    if let Some(b) = &backward_index {
        stats.edges += b.edge_count() as u64;
        stats.lineage_bytes += b.heap_bytes() as u64;
    }
    if let Some(f) = &forward_index {
        stats.lineage_bytes += f.heap_bytes() as u64;
    }

    Ok(GroupByResult {
        output,
        lineage: OperatorLineage::unary(InputLineage {
            backward: backward_index,
            forward: forward_index,
        }),
        artifacts: Default::default(),
        stats,
    })
}

/// Parallel `left ⋈ right ON left_keys = right_keys` (hash equi-join).
///
/// The build phase stays sequential (the hash table on the left relation is
/// shared read-only by every worker); the probe phase runs
/// morsel-parallel over the right relation, each worker emitting its own
/// `(left rid, right rid)` output run. Concatenating the runs in morsel
/// order reproduces the sequential probe's output order exactly, so backward
/// lineage is the concatenation itself and forward lineage is rebuilt from
/// it in CSR form with exact counts.
///
/// Falls back to [`hash_join`] for fewer than two workers, Defer modes
/// (whose deferred left-index construction is already post-probe and
/// representation-specific), or cardinality hints.
pub fn par_hash_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[String],
    right_keys: &[String],
    opts: &JoinOptions,
    par: &ParallelOptions,
) -> Result<JoinResult> {
    let ms = morsels(right.len(), par.morsel_rows);
    let workers = par.workers(ms.len());
    if workers <= 1
        || matches!(opts.mode, CaptureMode::Defer | CaptureMode::DeferForward)
        || opts.hints.is_some()
    {
        return hash_join(left, right, left_keys, right_keys, opts);
    }

    let start = Instant::now();
    let left_extract = KeyExtractor::new(left, left_keys)?;
    let right_extract = KeyExtractor::new(right, right_keys)?;

    if let (Some(lk), Some(rk)) = (
        sk::int_keys(left_extract.columns()),
        sk::int_keys(right_extract.columns()),
    ) {
        return par_join_keyed(
            start,
            left,
            right,
            |rid| lk[rid],
            |rid| rk[rid],
            opts,
            &ms,
            workers,
        );
    }
    par_join_keyed(
        start,
        left,
        right,
        |rid| left_extract.key(rid),
        |rid| right_extract.key(rid),
        opts,
        &ms,
        workers,
    )
}

/// The parallel join body, generic over the key representation (primitive
/// `i64` fast path or generic [`HashKey`]s).
#[allow(clippy::too_many_arguments)]
fn par_join_keyed<K: Eq + std::hash::Hash + Sync>(
    start: Instant,
    left: &Relation,
    right: &Relation,
    left_key: impl Fn(usize) -> K + Sync,
    right_key: impl Fn(usize) -> K + Sync,
    opts: &JoinOptions,
    ms: &[Morsel],
    workers: usize,
) -> Result<JoinResult> {
    let capture = opts.mode.captures();
    let cap_a_b = capture && opts.left_directions.backward();
    let cap_a_f = capture && opts.left_directions.forward();
    let cap_b_b = capture && opts.right_directions.backward();
    let cap_b_f = capture && opts.right_directions.forward();

    // ⋈ht: sequential build over the left relation; the table is shared
    // read-only by every probe worker.
    let mut ht: HashMap<K, Vec<Rid>> = HashMap::new();
    let mut pk_fk = true;
    for rid in 0..left.len() {
        let entry = ht
            .entry(left_key(rid))
            .or_insert_with(|| Vec::with_capacity(1));
        entry.push(rid as Rid);
        if entry.len() > 1 {
            pk_fk = false;
        }
    }

    // ⋈probe: morsel-parallel over the right relation. Each worker emits its
    // own (left, right) output run; no output counter is shared — global
    // output rids are assigned at merge time from the morsel-ordered runs.
    let runs: Vec<(Vec<Rid>, Vec<Rid>)> = run_morsels(ms, workers, |m| {
        let mut out_left: Vec<Rid> = Vec::new();
        let mut out_right: Vec<Rid> = Vec::new();
        for rid in m.start..m.end {
            if let Some(entry) = ht.get(&right_key(rid)) {
                for &l in entry {
                    out_left.push(l);
                    out_right.push(rid as Rid);
                }
            }
        }
        (out_left, out_right)
    });

    let total: usize = runs.iter().map(|(l, _)| l.len()).sum();
    let mut out_left: Vec<Rid> = Vec::with_capacity(total);
    let mut out_right: Vec<Rid> = Vec::with_capacity(total);
    for (l, r) in &runs {
        out_left.extend_from_slice(l);
        out_right.extend_from_slice(r);
    }
    let out_counter = total;

    // Output materialization.
    let joined_schema = left.schema().concat(right.schema(), right.name());
    let output_name = format!("join({},{})", left.name(), right.name());
    let output = if opts.materialize_output {
        let mut columns = Vec::with_capacity(joined_schema.arity());
        for col in left.columns() {
            columns.push(col.gather(&out_left));
        }
        for col in right.columns() {
            columns.push(col.gather(&out_right));
        }
        Relation::from_columns(output_name, joined_schema, columns)?
    } else {
        Relation::empty(output_name, joined_schema)
    };
    let base_query = start.elapsed();

    if !capture {
        return Ok(JoinResult {
            output,
            lineage: OperatorLineage::none(),
            output_rows: out_counter,
            pk_fk,
            grace_partitions: 1,
            stats: CaptureStats {
                base_query,
                ..Default::default()
            },
        });
    }

    // Backward lineage on both sides is the merged output run itself;
    // forward lineage is rebuilt from it with exact counts (CSR for 1-to-N,
    // a rid array for the pk-fk probe side).
    let a_backward = cap_a_b.then(|| LineageIndex::Array(RidArray::from_vec(out_left.clone())));
    let a_forward = cap_a_f.then(|| {
        let mut counts = vec![0usize; left.len()];
        for &l in &out_left {
            counts[l as usize] += 1;
        }
        let mut b = CsrBuilder::with_counts(counts);
        for (o, &l) in out_left.iter().enumerate() {
            b.append(l as usize, o as Rid);
        }
        LineageIndex::Csr(b.finish())
    });
    let b_backward = cap_b_b.then(|| LineageIndex::Array(RidArray::from_vec(out_right.clone())));
    let b_forward = cap_b_f.then(|| {
        if pk_fk {
            let mut fw = RidArray::filled(right.len());
            for (o, &r) in out_right.iter().enumerate() {
                fw.set(r as usize, o as Rid);
            }
            LineageIndex::Array(fw)
        } else {
            let mut counts = vec![0usize; right.len()];
            for &r in &out_right {
                counts[r as usize] += 1;
            }
            let mut b = CsrBuilder::with_counts(counts);
            for (o, &r) in out_right.iter().enumerate() {
                b.append(r as usize, o as Rid);
            }
            LineageIndex::Csr(b.finish())
        }
    });

    let mut stats = CaptureStats {
        base_query,
        ..Default::default()
    };
    for idx in [&a_backward, &a_forward, &b_backward, &b_forward]
        .into_iter()
        .flatten()
    {
        stats.edges += idx.edge_count() as u64;
        stats.lineage_bytes += idx.heap_bytes() as u64;
    }

    Ok(JoinResult {
        output,
        lineage: OperatorLineage::binary(
            InputLineage {
                backward: a_backward,
                forward: a_forward,
            },
            InputLineage {
                backward: b_backward,
                forward: b_forward,
            },
        ),
        output_rows: out_counter,
        pk_fk,
        grace_partitions: 1,
        stats,
    })
}
