//! Workload-aware capture artifacts (§4.2).
//!
//! When the lineage-consuming workload is known up-front, Smoke pushes parts
//! of it into lineage capture. The artifacts produced are:
//!
//! * [`PartitionedRidIndex`] (re-exported from `smoke-lineage`) — backward rid
//!   arrays partitioned by a templated predicate attribute (data skipping);
//! * [`LineageCube`] — per-(output group, partition) aggregate states
//!   maintained incrementally during capture (group-by push-down), i.e. an
//!   online partial data cube built by piggy-backing on the base query's scan.

use std::collections::BTreeMap;

use smoke_lineage::PartitionedRidIndex;
use smoke_storage::{DataType, Field, Relation, Schema, Value};

use crate::agg::{AggExpr, AggState};
use crate::error::Result;

/// Aggregates materialized during lineage capture, keyed by (output rid of the
/// base query, partition key of the push-down group-by attributes).
#[derive(Debug, Clone)]
pub struct LineageCube {
    /// `entries[out_rid]` maps a partition key (the rendered values of the
    /// push-down group-by attributes) to the aggregate states for that cell.
    entries: Vec<BTreeMap<String, CubeCell>>,
    partition_by: Vec<String>,
    aggs: Vec<AggExpr>,
}

/// One cell of the cube: the partition's group-by values plus its aggregate
/// states.
#[derive(Debug, Clone)]
pub struct CubeCell {
    /// Values of the push-down group-by attributes for this cell.
    pub key_values: Vec<Value>,
    /// Aggregate states for this cell.
    pub states: Vec<AggState>,
}

impl LineageCube {
    /// Creates an empty cube for `output_len` base-query output records.
    pub fn new(output_len: usize, partition_by: Vec<String>, aggs: Vec<AggExpr>) -> Self {
        LineageCube {
            entries: vec![BTreeMap::new(); output_len],
            partition_by,
            aggs,
        }
    }

    /// The push-down group-by attributes.
    pub fn partition_by(&self) -> &[String] {
        &self.partition_by
    }

    /// The push-down aggregates.
    pub fn aggs(&self) -> &[AggExpr] {
        &self.aggs
    }

    /// Number of base-query output records covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cube covers no output records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ensures the cube covers `out_rid`.
    pub fn ensure_len(&mut self, len: usize) {
        if self.entries.len() < len {
            self.entries.resize(len, BTreeMap::new());
        }
    }

    /// Folds one input row's contribution into the cube.
    ///
    /// `key` is the rendered partition key, `key_values` its attribute values,
    /// and `agg_inputs[i]` the numeric input of the `i`-th aggregate (or the
    /// categorical key for `COUNT(DISTINCT)` states, passed via
    /// `distinct_keys`).
    pub fn update(
        &mut self,
        out_rid: usize,
        key: &str,
        key_values: &[Value],
        agg_inputs: &[f64],
        distinct_keys: &[Option<String>],
    ) {
        if out_rid >= self.entries.len() {
            self.entries.resize(out_rid + 1, BTreeMap::new());
        }
        let aggs = &self.aggs;
        let cell = self.entries[out_rid]
            .entry(key.to_string())
            .or_insert_with(|| CubeCell {
                key_values: key_values.to_vec(),
                states: aggs.iter().map(AggExpr::new_state).collect(),
            });
        for (i, state) in cell.states.iter_mut().enumerate() {
            if let Some(Some(k)) = distinct_keys.get(i) {
                state.update_key(k);
            } else {
                state.update(agg_inputs.get(i).copied().unwrap_or(0.0));
            }
        }
    }

    /// Answers the push-down lineage-consuming query for one base-query output
    /// record: a relation with the partition attributes plus one column per
    /// aggregate. This is the "≈0 ms" path of Fig. 11.
    pub fn query(&self, out_rid: usize) -> Result<Relation> {
        let mut fields: Vec<Field> = Vec::new();
        for (i, name) in self.partition_by.iter().enumerate() {
            let dt = self
                .entries
                .get(out_rid)
                .and_then(|m| m.values().next())
                .map(|c| c.key_values[i].data_type())
                .unwrap_or(DataType::Str);
            fields.push(Field::new(name.clone(), dt));
        }
        for agg in &self.aggs {
            fields.push(Field::new(agg.alias.clone(), agg.output_type()));
        }
        let schema = Schema::new(fields)?;
        let mut rows: Vec<Vec<Value>> = Vec::new();
        if let Some(cells) = self.entries.get(out_rid) {
            for cell in cells.values() {
                let mut row = cell.key_values.clone();
                row.extend(cell.states.iter().map(AggState::finalize));
                rows.push(row);
            }
        }
        // Rebuild through the relation builder to reuse its type checking.
        let mut b = Relation::builder("cube_result");
        for f in schema.fields() {
            b = b.column(f.name.clone(), f.data_type);
        }
        for row in rows {
            b = b.row(row);
        }
        Ok(b.build()?)
    }

    /// Total number of materialized cells.
    pub fn cell_count(&self) -> usize {
        self.entries.iter().map(BTreeMap::len).sum()
    }
}

/// The workload-aware artifacts produced by an instrumented execution.
#[derive(Debug, Clone, Default)]
pub struct WorkloadArtifacts {
    /// Partitioned backward index for data skipping, if requested.
    pub partitioned: Option<PartitionedRidIndex>,
    /// Materialized push-down aggregates, if requested.
    pub cube: Option<LineageCube>,
}

impl WorkloadArtifacts {
    /// Whether any artifact was produced.
    pub fn is_empty(&self) -> bool {
        self.partitioned.is_none() && self.cube.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> LineageCube {
        let mut cube = LineageCube::new(
            2,
            vec!["month".to_string()],
            vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")],
        );
        cube.update(
            0,
            "jan",
            &[Value::Str("jan".into())],
            &[1.0, 10.0],
            &[None, None],
        );
        cube.update(
            0,
            "jan",
            &[Value::Str("jan".into())],
            &[1.0, 5.0],
            &[None, None],
        );
        cube.update(
            0,
            "feb",
            &[Value::Str("feb".into())],
            &[1.0, 2.0],
            &[None, None],
        );
        cube.update(
            1,
            "jan",
            &[Value::Str("jan".into())],
            &[1.0, 7.0],
            &[None, None],
        );
        cube
    }

    #[test]
    fn cube_accumulates_per_partition() {
        let cube = cube();
        assert_eq!(cube.cell_count(), 3);
        assert_eq!(cube.len(), 2);

        let result = cube.query(0).unwrap();
        assert_eq!(result.len(), 2);
        // BTreeMap ordering: feb before jan.
        assert_eq!(result.value(0, 0), Value::Str("feb".into()));
        assert_eq!(result.value(0, 1), Value::Int(1));
        assert_eq!(result.value(1, 0), Value::Str("jan".into()));
        assert_eq!(result.value(1, 1), Value::Int(2));
        assert_eq!(result.value(1, 2), Value::Float(15.0));
    }

    #[test]
    fn cube_query_for_uncovered_output_is_empty() {
        let cube = cube();
        let result = cube.query(1).unwrap();
        assert_eq!(result.len(), 1);
        let empty = LineageCube::new(0, vec!["m".into()], vec![AggExpr::count("c")]);
        assert!(empty.is_empty());
        assert_eq!(empty.query(5).unwrap().len(), 0);
    }

    #[test]
    fn cube_grows_on_demand() {
        let mut cube = LineageCube::new(1, vec!["k".into()], vec![AggExpr::count("c")]);
        cube.update(4, "x", &[Value::Str("x".into())], &[1.0], &[None]);
        assert_eq!(cube.len(), 5);
        cube.ensure_len(10);
        assert_eq!(cube.len(), 10);
    }

    #[test]
    fn artifacts_emptiness() {
        assert!(WorkloadArtifacts::default().is_empty());
        let arts = WorkloadArtifacts {
            cube: Some(cube()),
            partitioned: None,
        };
        assert!(!arts.is_empty());
    }

    #[test]
    fn cube_with_count_distinct() {
        let mut cube = LineageCube::new(
            1,
            vec!["k".into()],
            vec![AggExpr::count_distinct("b", "cd")],
        );
        cube.update(
            0,
            "x",
            &[Value::Str("x".into())],
            &[0.0],
            &[Some("b1".into())],
        );
        cube.update(
            0,
            "x",
            &[Value::Str("x".into())],
            &[0.0],
            &[Some("b1".into())],
        );
        cube.update(
            0,
            "x",
            &[Value::Str("x".into())],
            &[0.0],
            &[Some("b2".into())],
        );
        let r = cube.query(0).unwrap();
        assert_eq!(r.value(0, 1), Value::Int(2));
    }
}
