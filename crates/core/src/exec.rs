//! Plan execution with end-to-end lineage propagation (paper §3.3).
//!
//! The executor runs each physical operator with the configured
//! instrumentation and *composes* the per-operator lineage indexes bottom-up,
//! so that only indexes connecting the query output to the base relations are
//! kept — intermediate indexes are dropped as soon as their parent has been
//! processed, exactly as the propagation technique of §3.3 prescribes.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::time::Instant;

use smoke_lineage::{
    compose_backward, compose_forward, CaptureStats, InputLineage, LineageIndex, QueryLineage,
};
use smoke_storage::{Database, Relation, Rid, Value};

use crate::error::{EngineError, Result};
use crate::instrument::{CaptureConfig, CaptureMode, DirectionFilter};
use crate::ops::groupby::{group_by, GroupByOptions};
use crate::ops::join::{hash_join, JoinOptions};
use crate::ops::project::project;
use crate::ops::select::{select, SelectOptions};
use crate::plan::LogicalPlan;
use crate::workload::WorkloadArtifacts;

/// The result of executing an instrumented query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The query's output relation.
    pub relation: Relation,
    /// End-to-end lineage between the output and every (non-pruned) base
    /// relation.
    pub lineage: QueryLineage,
    /// Workload-aware artifacts (partitioned indexes / push-down cubes).
    pub artifacts: WorkloadArtifacts,
    /// Aggregated capture statistics.
    pub stats: CaptureStats,
}

impl QueryOutput {
    /// Finds the rid of the first output row whose values satisfy `pred`.
    pub fn find_output(&self, pred: impl Fn(&[Value]) -> bool) -> Option<Rid> {
        (0..self.relation.len())
            .find(|&rid| pred(&self.relation.row_values(rid)))
            .map(|rid| rid as Rid)
    }

    /// All output rids whose values satisfy `pred`.
    pub fn find_outputs(&self, pred: impl Fn(&[Value]) -> bool) -> Vec<Rid> {
        (0..self.relation.len())
            .filter(|&rid| pred(&self.relation.row_values(rid)))
            .map(|rid| rid as Rid)
            .collect()
    }
}

struct NodeResult<'a> {
    relation: Cow<'a, Relation>,
    /// Lineage from this node's output to each base relation underneath it.
    per_table: BTreeMap<String, InputLineage>,
    artifacts: WorkloadArtifacts,
    stats: CaptureStats,
}

/// Executes logical plans with lineage capture.
#[derive(Debug, Clone, Default)]
pub struct Executor {
    config: CaptureConfig,
}

impl Executor {
    /// Creates an executor with the given capture mode and default options.
    pub fn new(mode: CaptureMode) -> Self {
        Executor {
            config: CaptureConfig::new(mode),
        }
    }

    /// Creates an executor with a full capture configuration.
    pub fn with_config(config: CaptureConfig) -> Self {
        Executor { config }
    }

    /// The executor's capture configuration.
    pub fn config(&self) -> &CaptureConfig {
        &self.config
    }

    /// Executes `plan` against `db`.
    pub fn execute(&self, plan: &LogicalPlan, db: &Database) -> Result<QueryOutput> {
        let start = Instant::now();
        let node = self.execute_node(plan, db)?;

        let mut lineage = QueryLineage::new();
        for (table, input) in node.per_table {
            if !self.config.captures_table(&table) {
                continue;
            }
            let dirs = self.config.directions_for(&table);
            lineage.insert(
                table,
                InputLineage {
                    backward: if dirs.backward() {
                        input.backward
                    } else {
                        None
                    },
                    forward: if dirs.forward() { input.forward } else { None },
                },
            );
        }
        let mut stats = node.stats;
        stats.base_query = start.elapsed() - stats.deferred.min(start.elapsed());
        lineage.stats = stats;

        Ok(QueryOutput {
            relation: node.relation.into_owned(),
            lineage,
            artifacts: node.artifacts,
            stats,
        })
    }

    fn mode(&self) -> CaptureMode {
        self.config.mode
    }

    fn capture_any(&self, tables: &[&str]) -> bool {
        self.mode().captures() && tables.iter().any(|t| self.config.captures_table(t))
    }

    fn directions_for_side(&self, tables: &[&str]) -> DirectionFilter {
        if !self.mode().captures() {
            return DirectionFilter::None;
        }
        let mut backward = false;
        let mut forward = false;
        for t in tables {
            let d = self.config.directions_for(t);
            backward |= d.backward();
            forward |= d.forward();
        }
        match (backward, forward) {
            (true, true) => DirectionFilter::Both,
            (true, false) => DirectionFilter::BackwardOnly,
            (false, true) => DirectionFilter::ForwardOnly,
            (false, false) => DirectionFilter::None,
        }
    }

    fn execute_node<'a>(&self, plan: &LogicalPlan, db: &'a Database) -> Result<NodeResult<'a>> {
        match plan {
            LogicalPlan::Scan { table } => {
                let relation = db.relation(table)?;
                let mut per_table = BTreeMap::new();
                if self.config.captures_table(table) {
                    per_table.insert(
                        table.clone(),
                        InputLineage::new(
                            LineageIndex::Identity(relation.len()),
                            LineageIndex::Identity(relation.len()),
                        ),
                    );
                }
                Ok(NodeResult {
                    relation: Cow::Borrowed(relation),
                    per_table,
                    artifacts: WorkloadArtifacts::default(),
                    stats: CaptureStats::default(),
                })
            }
            LogicalPlan::Select { input, predicate } => {
                let child = self.execute_node(input, db)?;
                let tables = input.base_tables();
                let capture = self.capture_any(&tables);
                let opts = SelectOptions {
                    capture,
                    directions: self.directions_for_side(&tables),
                    selectivity_estimate: self.config.hints.as_ref().and_then(|h| h.selectivity),
                    ..Default::default()
                };
                let out = select(child.relation.as_ref(), predicate, &opts)?;
                let per_table = compose_unary(&child.per_table, &out.lineage, capture);
                let mut stats = child.stats;
                stats.merge(&out.stats);
                Ok(NodeResult {
                    relation: Cow::Owned(out.output),
                    per_table,
                    artifacts: child.artifacts,
                    stats,
                })
            }
            LogicalPlan::Project { input, columns } => {
                let child = self.execute_node(input, db)?;
                let capture = self.capture_any(&input.base_tables());
                let out = project(child.relation.as_ref(), columns, capture)?;
                // Bag projection is the identity on rids: child lineage passes
                // through unchanged.
                let mut stats = child.stats;
                stats.merge(&out.stats);
                Ok(NodeResult {
                    relation: Cow::Owned(out.output),
                    per_table: child.per_table,
                    artifacts: child.artifacts,
                    stats,
                })
            }
            LogicalPlan::GroupBy { input, keys, aggs } => {
                let child = self.execute_node(input, db)?;
                let tables = input.base_tables();
                let capture = self.capture_any(&tables);
                let opts = GroupByOptions {
                    mode: if capture {
                        self.mode()
                    } else {
                        CaptureMode::Baseline
                    },
                    directions: self.directions_for_side(&tables),
                    hints: self.config.hints.clone(),
                    workload: self.config.workload.clone(),
                };
                let out = group_by(child.relation.as_ref(), keys, aggs, &opts)?;
                let per_table = compose_unary(&child.per_table, &out.lineage, capture);

                // Remap workload artifacts (whose rids refer to this
                // operator's *input*) to base rids when the input is not a
                // base scan. The experiments apply push-downs to single-table
                // SPJA blocks, so a 1-to-1 remapping through the sole table's
                // backward lineage is sufficient.
                let mut artifacts = out.artifacts;
                if !matches!(input.as_ref(), LogicalPlan::Scan { .. }) && tables.len() == 1 {
                    if let Some(child_lin) = child.per_table.get(tables[0]) {
                        if let Some(backward) = &child_lin.backward {
                            artifacts = remap_artifacts(artifacts, backward);
                        }
                    }
                }

                let mut stats = child.stats;
                stats.merge(&out.stats);
                Ok(NodeResult {
                    relation: Cow::Owned(out.output),
                    per_table,
                    artifacts,
                    stats,
                })
            }
            LogicalPlan::Join {
                left,
                right,
                left_keys,
                right_keys,
            } => {
                let left_node = self.execute_node(left, db)?;
                let right_node = self.execute_node(right, db)?;
                let left_tables = left.base_tables();
                let right_tables = right.base_tables();
                let capture = self.capture_any(&left_tables) || self.capture_any(&right_tables);
                let opts = JoinOptions {
                    mode: if capture {
                        self.mode()
                    } else {
                        CaptureMode::Baseline
                    },
                    left_directions: self.directions_for_side(&left_tables),
                    right_directions: self.directions_for_side(&right_tables),
                    hints: self.config.hints.clone(),
                    materialize_output: true,
                };
                let out = hash_join(
                    left_node.relation.as_ref(),
                    right_node.relation.as_ref(),
                    left_keys,
                    right_keys,
                    &opts,
                )?;

                let mut per_table = BTreeMap::new();
                if capture {
                    compose_side(&mut per_table, &left_node.per_table, out.lineage.input(0));
                    compose_side(&mut per_table, &right_node.per_table, out.lineage.input(1));
                }
                let mut stats = left_node.stats;
                stats.merge(&right_node.stats);
                stats.merge(&out.stats);
                let artifacts = if left_node.artifacts.is_empty() {
                    right_node.artifacts
                } else {
                    left_node.artifacts
                };
                Ok(NodeResult {
                    relation: Cow::Owned(out.output),
                    per_table,
                    artifacts,
                    stats,
                })
            }
        }
    }
}

/// Composes the per-base-table lineage of a unary operator's child with the
/// operator's own lineage (input 0).
fn compose_unary(
    child: &BTreeMap<String, InputLineage>,
    op: &smoke_lineage::OperatorLineage,
    capture: bool,
) -> BTreeMap<String, InputLineage> {
    let mut out = BTreeMap::new();
    if !capture || op.is_none() {
        return out;
    }
    compose_side(&mut out, child, op.input(0));
    out
}

/// Composes one side of an operator: for every base table reachable through
/// the child, chain the child's indexes with the operator's indexes.
fn compose_side(
    out: &mut BTreeMap<String, InputLineage>,
    child: &BTreeMap<String, InputLineage>,
    op: &InputLineage,
) {
    for (table, lin) in child {
        let backward = match (&op.backward, &lin.backward) {
            (Some(parent), Some(child_idx)) => Some(compose_backward(parent, child_idx)),
            _ => None,
        };
        let forward = match (&lin.forward, &op.forward) {
            (Some(child_idx), Some(parent)) => Some(compose_forward(child_idx, parent)),
            _ => None,
        };
        out.insert(table.clone(), InputLineage { backward, forward });
    }
}

/// Remaps workload artifacts whose rids refer to an intermediate relation so
/// that they refer to the base relation instead, using the intermediate
/// relation's (1-to-1) backward lineage.
fn remap_artifacts(artifacts: WorkloadArtifacts, backward: &LineageIndex) -> WorkloadArtifacts {
    let partitioned = artifacts.partitioned.map(|part| {
        let mut remapped =
            smoke_lineage::PartitionedRidIndex::with_len(part.attribute(), part.len());
        for out_rid in 0..part.len() {
            for (key, rids) in part.partitions(out_rid) {
                for &rid in rids {
                    if let Some(base) = backward.single(rid) {
                        remapped.append(out_rid, key, base);
                    }
                }
            }
        }
        remapped
    });
    WorkloadArtifacts {
        partitioned,
        cube: artifacts.cube,
    }
}

/// Convenience: executes a plan without capturing lineage and returns only the
/// output relation (used by baselines and lazy re-execution).
pub fn execute_baseline(plan: &LogicalPlan, db: &Database) -> Result<Relation> {
    let out = Executor::new(CaptureMode::Baseline).execute(plan, db)?;
    Ok(out.relation)
}

/// Validation helper: every output row's backward lineage, traced forward
/// again, must contain the output row (used by tests and property checks).
pub fn check_lineage_round_trip(output: &QueryOutput, table: &str) -> Result<()> {
    let lin = output
        .lineage
        .table(table)
        .ok_or_else(|| EngineError::InvalidPlan(format!("no lineage for `{table}`")))?;
    let (Some(backward), Some(forward)) = (&lin.backward, &lin.forward) else {
        return Ok(());
    };
    for o in 0..output.relation.len() as Rid {
        for base in backward.lookup(o) {
            if !forward.lookup(base).contains(&o) {
                return Err(EngineError::InvalidPlan(format!(
                    "lineage round trip failed for output {o} / base {base} of `{table}`"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggExpr;
    use crate::expr::Expr;
    use crate::plan::PlanBuilder;
    use smoke_storage::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        let mut orders = Relation::builder("orders")
            .column("o_id", DataType::Int)
            .column("o_cust", DataType::Str);
        for i in 0..4 {
            orders = orders.row(vec![
                Value::Int(i),
                Value::Str(if i % 2 == 0 { "alice" } else { "bob" }.into()),
            ]);
        }
        db.register(orders.build().unwrap()).unwrap();

        let mut items = Relation::builder("lineitem")
            .column("l_oid", DataType::Int)
            .column("l_qty", DataType::Float)
            .column("l_flag", DataType::Str);
        let rows = [
            (0, 5.0, "A"),
            (0, 7.0, "B"),
            (1, 1.0, "A"),
            (2, 9.0, "B"),
            (2, 2.0, "A"),
            (3, 4.0, "A"),
        ];
        for (oid, qty, flag) in rows {
            items = items.row(vec![
                Value::Int(oid),
                Value::Float(qty),
                Value::Str(flag.into()),
            ]);
        }
        db.register(items.build().unwrap()).unwrap();
        db
    }

    fn spja_plan() -> LogicalPlan {
        PlanBuilder::scan("orders")
            .join(PlanBuilder::scan("lineitem"), &["o_id"], &["l_oid"])
            .select(Expr::col("l_qty").gt(Expr::lit(1.5)))
            .group_by(
                &["o_cust"],
                vec![AggExpr::count("cnt"), AggExpr::sum("l_qty", "qty")],
            )
            .build()
    }

    #[test]
    fn baseline_and_inject_agree_on_results() {
        let db = db();
        let plan = spja_plan();
        let baseline = Executor::new(CaptureMode::Baseline)
            .execute(&plan, &db)
            .unwrap();
        let inject = Executor::new(CaptureMode::Inject)
            .execute(&plan, &db)
            .unwrap();
        let defer = Executor::new(CaptureMode::Defer)
            .execute(&plan, &db)
            .unwrap();
        assert_eq!(baseline.relation, inject.relation);
        assert_eq!(baseline.relation, defer.relation);
        assert!(baseline.lineage.is_empty());
        assert!(!inject.lineage.is_empty());
    }

    #[test]
    fn end_to_end_lineage_reaches_base_tables() {
        let db = db();
        let plan = spja_plan();
        let out = Executor::new(CaptureMode::Inject)
            .execute(&plan, &db)
            .unwrap();
        assert_eq!(out.lineage.tables(), vec!["lineitem", "orders"]);

        // Group "alice" covers orders 0 and 2 and their qualifying items.
        let alice = out
            .find_output(|row| row[0] == Value::Str("alice".into()))
            .unwrap();
        let mut base_orders = out.lineage.backward(&[alice], "orders");
        base_orders.sort_unstable();
        assert_eq!(base_orders, vec![0, 2]);
        let mut base_items = out.lineage.backward(&[alice], "lineitem");
        base_items.sort_unstable();
        // Items for orders 0 and 2 with qty > 1.5: rids 0, 1, 3, 4.
        assert_eq!(base_items, vec![0, 1, 3, 4]);

        // Forward from lineitem rid 3 (order 2, alice) reaches the alice group.
        assert_eq!(out.lineage.forward(&[3], "lineitem"), vec![alice]);
        check_lineage_round_trip(&out, "lineitem").unwrap();
        check_lineage_round_trip(&out, "orders").unwrap();
    }

    #[test]
    fn defer_produces_same_lineage_as_inject() {
        let db = db();
        let plan = spja_plan();
        let inject = Executor::new(CaptureMode::Inject)
            .execute(&plan, &db)
            .unwrap();
        let defer = Executor::new(CaptureMode::Defer)
            .execute(&plan, &db)
            .unwrap();
        for table in ["orders", "lineitem"] {
            for o in 0..inject.relation.len() as Rid {
                let mut a = inject.lineage.backward(&[o], table);
                let mut b = defer.lineage.backward(&[o], table);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "backward mismatch for {table} output {o}");
            }
        }
    }

    #[test]
    fn pruning_tables_and_directions() {
        let db = db();
        let plan = spja_plan();
        let cfg = CaptureConfig::inject()
            .prune("orders", DirectionFilter::None)
            .prune("lineitem", DirectionFilter::BackwardOnly);
        let out = Executor::with_config(cfg).execute(&plan, &db).unwrap();
        assert_eq!(out.lineage.tables(), vec!["lineitem"]);
        let lin = out.lineage.table("lineitem").unwrap();
        assert!(lin.backward.is_some());
        assert!(lin.forward.is_none());
        // Forward queries against a pruned direction return nothing.
        assert!(out.lineage.forward(&[0], "lineitem").is_empty());
    }

    #[test]
    fn single_table_aggregation_with_selection() {
        let db = db();
        let plan = PlanBuilder::scan("lineitem")
            .select(Expr::col("l_flag").eq(Expr::lit("A")))
            .group_by(&["l_oid"], vec![AggExpr::count("cnt")])
            .build();
        let out = Executor::new(CaptureMode::Inject)
            .execute(&plan, &db)
            .unwrap();
        assert_eq!(out.relation.len(), 4);
        // Group for l_oid = 2 with flag A is base rid 4 only.
        let g = out.find_output(|row| row[0] == Value::Int(2)).unwrap();
        assert_eq!(out.lineage.backward(&[g], "lineitem"), vec![4]);
        // Filtered-out rows have no forward lineage.
        assert!(out.lineage.forward(&[3], "lineitem").is_empty());
    }

    #[test]
    fn projection_passes_lineage_through() {
        let db = db();
        let plan = PlanBuilder::scan("lineitem")
            .select(Expr::col("l_qty").ge(Expr::lit(4.0)))
            .project(&["l_flag"])
            .build();
        let out = Executor::new(CaptureMode::Inject)
            .execute(&plan, &db)
            .unwrap();
        assert_eq!(out.relation.schema().names(), vec!["l_flag"]);
        // Output rid 0 is lineitem rid 0 (qty 5).
        assert_eq!(out.lineage.backward(&[0], "lineitem"), vec![0]);
    }

    #[test]
    fn missing_table_is_an_error() {
        let db = db();
        let plan = PlanBuilder::scan("nope").build();
        assert!(Executor::new(CaptureMode::Inject)
            .execute(&plan, &db)
            .is_err());
    }
}
