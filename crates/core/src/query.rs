//! Lineage and lineage-consuming query evaluation (paper §2.1, §6.3, §6.4).
//!
//! A lineage query is evaluated as a secondary index scan: probe the backward
//! (or forward) index and use the resulting rids as array offsets into the
//! base relation. A lineage-consuming query further filters / aggregates that
//! rid set; the helpers here evaluate such queries directly over rid subsets
//! without materializing intermediate relations.

use std::borrow::Cow;
use std::collections::HashMap;

use smoke_lineage::PartitionedRidIndex;
use smoke_storage::{Relation, Rid};

use crate::agg::{AggExpr, AggFunc, AggState};
use crate::error::Result;
use crate::expr::Expr;
use crate::key::{HashKey, KeyExtractor};
use crate::workload::LineageCube;

/// Materializes the rows of `relation` identified by `rids` (a plain lineage
/// query `SELECT * FROM L(...)`).
pub fn gather_rows(relation: &Relation, rids: &[Rid]) -> Relation {
    relation.gather(rids, format!("lineage({})", relation.name()))
}

/// Evaluates a lineage-consuming aggregation over the subset of `relation`
/// identified by `rids`: `SELECT keys, aggs FROM subset GROUP BY keys`.
///
/// The evaluation is an index scan: only the given rids are touched.
pub fn consume_aggregate(
    relation: &Relation,
    rids: &[Rid],
    keys: &[String],
    aggs: &[AggExpr],
) -> Result<Relation> {
    consume_filter_aggregate(relation, rids, None, keys, aggs)
}

/// Evaluates a lineage-consuming filter + aggregation over a rid subset:
/// `SELECT keys, aggs FROM subset WHERE predicate GROUP BY keys`.
pub fn consume_filter_aggregate(
    relation: &Relation,
    rids: &[Rid],
    predicate: Option<&Expr>,
    keys: &[String],
    aggs: &[AggExpr],
) -> Result<Relation> {
    let extractor = KeyExtractor::new(relation, keys)?;
    // The filter runs through the kernel layer up front (vectorized for
    // comparison/boolean shapes, interpreter otherwise), so the aggregation
    // loop below touches only surviving rids.
    let filtered: Cow<'_, [Rid]> = match predicate {
        Some(p) => Cow::Owned(crate::kernels::filter_rids(relation, p, rids)?),
        None => Cow::Borrowed(rids),
    };
    let agg_cols: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| match &a.column {
            Some(c) => relation.column_index(c).map(Some),
            None => Ok(None),
        })
        .collect::<std::result::Result<_, _>>()?;

    let mut ht: HashMap<HashKey, u32> = HashMap::new();
    let mut groups: Vec<(Vec<smoke_storage::Value>, Vec<AggState>)> = Vec::new();
    for &rid in filtered.iter() {
        let rid = rid as usize;
        let key = extractor.key(rid);
        let gid = match ht.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let gid = groups.len() as u32;
                groups.push((
                    e.key().to_values(),
                    aggs.iter().map(AggExpr::new_state).collect(),
                ));
                e.insert(gid);
                gid
            }
        };
        let states = &mut groups[gid as usize].1;
        for (i, state) in states.iter_mut().enumerate() {
            match (&aggs[i].func, agg_cols[i]) {
                (AggFunc::Count, _) => state.update(0.0),
                (AggFunc::CountDistinct, Some(c)) => {
                    state.update_key(&relation.value(rid, c).group_key())
                }
                (_, Some(c)) => state.update(relation.column(c).numeric(rid).unwrap_or(0.0)),
                (_, None) => state.update(0.0),
            }
        }
    }

    let mut builder = Relation::builder("consume");
    for name in keys {
        let idx = relation.column_index(name)?;
        builder = builder.column(name.clone(), relation.schema().field(idx).data_type);
    }
    for agg in aggs {
        builder = builder.column(agg.alias.clone(), agg.output_type());
    }
    for (key_values, states) in groups {
        let mut row = key_values;
        row.extend(states.iter().map(AggState::finalize));
        builder = builder.row(row);
    }
    Ok(builder.build()?)
}

/// Evaluates a lineage-consuming aggregation using a data-skipping partitioned
/// index (§4.2): only the rid partition matching `parameter` for the given
/// base-query output is scanned.
pub fn consume_with_skipping(
    relation: &Relation,
    index: &PartitionedRidIndex,
    output_rid: Rid,
    parameter: &str,
    keys: &[String],
    aggs: &[AggExpr],
) -> Result<Relation> {
    let rids = index.partition(output_rid as usize, parameter);
    consume_aggregate(relation, rids, keys, aggs)
}

/// Answers a push-down lineage-consuming aggregation from the materialized
/// cube (§4.2): no base-relation access at all.
pub fn consume_from_cube(cube: &LineageCube, output_rid: Rid) -> Result<Relation> {
    cube.query(output_rid as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_storage::{DataType, Value};

    fn rel() -> Relation {
        let mut b = Relation::builder("items")
            .column("month", DataType::Str)
            .column("qty", DataType::Float)
            .column("mode", DataType::Str);
        let rows = [
            ("jan", 1.0, "AIR"),
            ("jan", 2.0, "MAIL"),
            ("feb", 3.0, "AIR"),
            ("feb", 4.0, "AIR"),
            ("mar", 5.0, "MAIL"),
        ];
        for (m, q, md) in rows {
            b = b.row(vec![
                Value::Str(m.into()),
                Value::Float(q),
                Value::Str(md.into()),
            ]);
        }
        b.build().unwrap()
    }

    #[test]
    fn gather_rows_materializes_subset() {
        let r = rel();
        let sub = gather_rows(&r, &[4, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.value(0, 0), Value::Str("mar".into()));
    }

    #[test]
    fn consume_aggregate_over_rid_subset() {
        let r = rel();
        let out = consume_aggregate(
            &r,
            &[0, 1, 2, 3],
            &["month".to_string()],
            &[AggExpr::count("cnt"), AggExpr::sum("qty", "total")],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.value(0, 0), Value::Str("jan".into()));
        assert_eq!(out.value(0, 2), Value::Float(3.0));
        assert_eq!(out.value(1, 2), Value::Float(7.0));
    }

    #[test]
    fn consume_with_filter() {
        let r = rel();
        let out = consume_filter_aggregate(
            &r,
            &[0, 1, 2, 3, 4],
            Some(&Expr::col("mode").eq(Expr::lit("AIR"))),
            &["month".to_string()],
            &[AggExpr::count("cnt")],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.value(0, 1), Value::Int(1)); // jan: one AIR row
        assert_eq!(out.value(1, 1), Value::Int(2)); // feb: two AIR rows
    }

    #[test]
    fn consume_with_skipping_scans_one_partition() {
        let r = rel();
        let mut idx = PartitionedRidIndex::with_len("mode", 1);
        idx.append(0, "AIR", 0);
        idx.append(0, "MAIL", 1);
        idx.append(0, "AIR", 2);
        idx.append(0, "AIR", 3);
        idx.append(0, "MAIL", 4);
        let out = consume_with_skipping(
            &r,
            &idx,
            0,
            "MAIL",
            &["month".to_string()],
            &[AggExpr::sum("qty", "total")],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.value(0, 1), Value::Float(2.0));
        assert_eq!(out.value(1, 1), Value::Float(5.0));
    }

    #[test]
    fn empty_rid_set_gives_empty_result() {
        let r = rel();
        let out =
            consume_aggregate(&r, &[], &["month".to_string()], &[AggExpr::count("c")]).unwrap();
        assert_eq!(out.len(), 0);
    }
}
