//! Capture modes and capture configuration.
//!
//! The paper's two instrumentation paradigms (§3.2) are **Inject** — pay the
//! full capture cost inside operator execution — and **Defer** — postpone
//! part of index construction until after the operator, exploiting the exact
//! cardinalities known by then. `CaptureMode` selects the paradigm;
//! `CaptureConfig` adds cardinality hints and the workload-aware options of
//! §4 (pruning, push-downs).

use std::collections::HashMap;

use crate::expr::Expr;
use crate::key::HashKey;

/// Which lineage-capture paradigm instruments the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CaptureMode {
    /// No lineage capture (the paper's `Baseline`).
    Baseline,
    /// Inject: capture everything during operator execution (`Smoke-I`).
    #[default]
    Inject,
    /// Defer: postpone index construction for pipeline breakers until after
    /// operator execution (`Smoke-D`).
    Defer,
    /// Defer only the forward index of the join's build side
    /// (`Smoke-D-DeferForw`, §6.1.3).
    DeferForward,
}

impl CaptureMode {
    /// Whether this mode captures any lineage at all.
    pub fn captures(self) -> bool {
        self != CaptureMode::Baseline
    }
}

/// Which lineage directions to capture for a relation (pruning, §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectionFilter {
    /// Capture both backward and forward lineage.
    #[default]
    Both,
    /// Capture only backward lineage (output → input).
    BackwardOnly,
    /// Capture only forward lineage (input → output).
    ForwardOnly,
    /// Capture nothing for this relation.
    None,
}

impl DirectionFilter {
    /// Whether backward lineage should be captured.
    pub fn backward(self) -> bool {
        matches!(self, DirectionFilter::Both | DirectionFilter::BackwardOnly)
    }

    /// Whether forward lineage should be captured.
    pub fn forward(self) -> bool {
        matches!(self, DirectionFilter::Both | DirectionFilter::ForwardOnly)
    }
}

/// Cardinality statistics supplied up-front (the `+TC` / `+EC` variants of the
/// paper's experiments). When present, rid arrays are pre-allocated to the
/// exact (or estimated) sizes and avoid resize costs.
#[derive(Debug, Clone, Default)]
pub struct CardinalityHints {
    /// Expected number of input rows per group/join key.
    pub per_key: HashMap<HashKey, usize>,
    /// Estimated selectivity of a selection (0.0–1.0), used to pre-allocate
    /// its backward rid array.
    pub selectivity: Option<f64>,
}

impl CardinalityHints {
    /// Hints with only a selection selectivity estimate.
    pub fn with_selectivity(selectivity: f64) -> Self {
        CardinalityHints {
            per_key: HashMap::new(),
            selectivity: Some(selectivity),
        }
    }

    /// Hints with per-key cardinalities.
    pub fn with_per_key(per_key: HashMap<HashKey, usize>) -> Self {
        CardinalityHints {
            per_key,
            selectivity: None,
        }
    }

    /// The expected cardinality for `key`, if known.
    pub fn cardinality(&self, key: &HashKey) -> Option<usize> {
        self.per_key.get(key).copied()
    }
}

/// Group-by push-down specification (§4.2): during capture, partition the
/// backward rid arrays by `partition_by` and incrementally maintain the given
/// aggregates per partition — an online partial data cube.
#[derive(Debug, Clone)]
pub struct AggPushdown {
    /// Extra group-by attributes of the lineage-consuming query (columns of
    /// the base relation feeding the final aggregation).
    pub partition_by: Vec<String>,
    /// Aggregates of the lineage-consuming query.
    pub aggs: Vec<crate::agg::AggExpr>,
}

/// Workload-aware capture options attached to the final aggregation operator
/// of an SPJA block (§4).
#[derive(Debug, Clone, Default)]
pub struct WorkloadOptions {
    /// Selection push-down: only input rows satisfying this predicate enter
    /// the lineage indexes (§4.2 "Selection push-down").
    pub selection_pushdown: Option<Expr>,
    /// Data skipping: partition backward rid arrays by these attributes of the
    /// input relation (§4.2 "Data skipping using lineage").
    pub skipping_partition_by: Vec<String>,
    /// Group-by push-down: materialize aggregates per partition during capture
    /// (§4.2 "Group-by push-down").
    pub agg_pushdown: Option<AggPushdown>,
}

impl WorkloadOptions {
    /// Whether any workload-aware option is active.
    pub fn is_active(&self) -> bool {
        self.selection_pushdown.is_some()
            || !self.skipping_partition_by.is_empty()
            || self.agg_pushdown.is_some()
    }
}

/// Full capture configuration for a query execution.
#[derive(Debug, Clone, Default)]
pub struct CaptureConfig {
    /// Instrumentation paradigm.
    pub mode: CaptureMode,
    /// Per-base-relation pruning. Relations not present use
    /// [`CaptureConfig::default_directions`].
    pub per_table: HashMap<String, DirectionFilter>,
    /// Directions captured for relations without an explicit entry.
    pub default_directions: DirectionFilter,
    /// Optional cardinality statistics.
    pub hints: Option<CardinalityHints>,
    /// Workload-aware options (push-downs / skipping).
    pub workload: WorkloadOptions,
}

impl CaptureConfig {
    /// A configuration with the given mode and no other options.
    pub fn new(mode: CaptureMode) -> Self {
        CaptureConfig {
            mode,
            ..Default::default()
        }
    }

    /// The paper's `Baseline`: no capture.
    pub fn baseline() -> Self {
        CaptureConfig::new(CaptureMode::Baseline)
    }

    /// `Smoke-I`.
    pub fn inject() -> Self {
        CaptureConfig::new(CaptureMode::Inject)
    }

    /// `Smoke-D`.
    pub fn defer() -> Self {
        CaptureConfig::new(CaptureMode::Defer)
    }

    /// Restricts capture for a relation to the given directions (pruning).
    pub fn prune(mut self, table: impl Into<String>, directions: DirectionFilter) -> Self {
        self.per_table.insert(table.into(), directions);
        self
    }

    /// Sets the default directions for relations without explicit pruning.
    pub fn default_directions(mut self, directions: DirectionFilter) -> Self {
        self.default_directions = directions;
        self
    }

    /// Attaches cardinality hints.
    pub fn with_hints(mut self, hints: CardinalityHints) -> Self {
        self.hints = Some(hints);
        self
    }

    /// Attaches workload-aware options.
    pub fn with_workload(mut self, workload: WorkloadOptions) -> Self {
        self.workload = workload;
        self
    }

    /// The directions to capture for `table`.
    pub fn directions_for(&self, table: &str) -> DirectionFilter {
        self.per_table
            .get(table)
            .copied()
            .unwrap_or(self.default_directions)
    }

    /// Whether any lineage should be captured for `table`.
    pub fn captures_table(&self, table: &str) -> bool {
        self.mode.captures() && self.directions_for(table) != DirectionFilter::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_captures_nothing() {
        assert!(!CaptureMode::Baseline.captures());
        assert!(CaptureMode::Inject.captures());
        assert!(!CaptureConfig::baseline().captures_table("zipf"));
        assert!(CaptureConfig::inject().captures_table("zipf"));
    }

    #[test]
    fn pruning_controls_directions() {
        let cfg = CaptureConfig::inject()
            .prune("orders", DirectionFilter::None)
            .prune("lineitem", DirectionFilter::BackwardOnly);
        assert!(!cfg.captures_table("orders"));
        assert!(cfg.captures_table("lineitem"));
        assert!(cfg.directions_for("lineitem").backward());
        assert!(!cfg.directions_for("lineitem").forward());
        assert!(cfg.directions_for("other").backward());
        assert!(cfg.directions_for("other").forward());
    }

    #[test]
    fn direction_filter_accessors() {
        assert!(DirectionFilter::Both.backward() && DirectionFilter::Both.forward());
        assert!(DirectionFilter::ForwardOnly.forward() && !DirectionFilter::ForwardOnly.backward());
        assert!(!DirectionFilter::None.backward() && !DirectionFilter::None.forward());
    }

    #[test]
    fn hints_lookup() {
        let mut per_key = HashMap::new();
        per_key.insert(HashKey::Int(7), 100usize);
        let hints = CardinalityHints::with_per_key(per_key);
        assert_eq!(hints.cardinality(&HashKey::Int(7)), Some(100));
        assert_eq!(hints.cardinality(&HashKey::Int(8)), None);
        let est = CardinalityHints::with_selectivity(0.25);
        assert_eq!(est.selectivity, Some(0.25));
    }

    #[test]
    fn workload_options_activity() {
        assert!(!WorkloadOptions::default().is_active());
        let opts = WorkloadOptions {
            skipping_partition_by: vec!["l_shipmode".into()],
            ..Default::default()
        };
        assert!(opts.is_active());
    }
}
