//! Vectorized predicate evaluation: compiling expressions to column-kernel
//! pipelines.
//!
//! [`KernelPlan::compile`] turns a [`Expr`] into a pipeline of typed column
//! kernels (see [`smoke_storage::kernels`]) when the expression shape allows
//! it: comparison / boolean trees whose leaves are column references and
//! literals (including `IN` lists over a column). Arithmetic, columns used as
//! raw booleans inside comparisons, and any other shape return `None`, and
//! callers fall back to the row-at-a-time [`BoundExpr`](crate::expr::BoundExpr)
//! interpreter — the fallback is transparent: kernel evaluation is
//! bit-for-bit equivalent to the interpreter on every shape it accepts.
//!
//! The helpers [`predicate_rids`], [`predicate_mask`], and [`filter_rids`]
//! bundle the compile-or-fallback decision so operators, the lazy rewriter,
//! and the lineage planner all route predicate scans through one place.
//!
//! A compiled plan can also evaluate any sub-range of the relation
//! ([`KernelPlan::eval_range`]); the morsel-parallel drivers in
//! [`crate::parallel`] use this to run one plan over many morsels at once and
//! stitch the per-morsel masks back together.

use smoke_storage::kernels as sk;
use smoke_storage::{KernelCmp, Relation, Rid, SelectionMask, Value};

use crate::error::Result;
use crate::expr::{CmpOp, Expr};

pub(crate) fn kernel_cmp(op: CmpOp) -> KernelCmp {
    match op {
        CmpOp::Eq => KernelCmp::Eq,
        CmpOp::Ne => KernelCmp::Ne,
        CmpOp::Lt => KernelCmp::Lt,
        CmpOp::Le => KernelCmp::Le,
        CmpOp::Gt => KernelCmp::Gt,
        CmpOp::Ge => KernelCmp::Ge,
    }
}

/// One node of a compiled kernel pipeline.
#[derive(Debug, Clone)]
enum Node {
    /// `column OP literal` (flipped at compile time when the literal is on
    /// the left).
    CmpLit {
        col: usize,
        op: KernelCmp,
        lit: Value,
    },
    /// `column OP column`.
    CmpCols {
        left: usize,
        op: KernelCmp,
        right: usize,
    },
    /// `column IN (list)`.
    InList { col: usize, list: Vec<Value> },
    /// A numeric column used as a boolean (`v != 0`), or a type-determined /
    /// literal-folded constant.
    Const(bool),
    /// Conjunction.
    And(Box<Node>, Box<Node>),
    /// Disjunction.
    Or(Box<Node>, Box<Node>),
    /// Negation.
    Not(Box<Node>),
}

/// A predicate compiled into a pipeline of typed column kernels over one
/// relation's schema.
#[derive(Debug, Clone)]
pub struct KernelPlan {
    node: Node,
    len: usize,
}

impl KernelPlan {
    /// Compiles `expr` against `relation`'s schema. Returns `None` when the
    /// expression contains a shape the kernels cannot evaluate (arithmetic,
    /// unknown columns, string columns as booleans, …); callers then fall
    /// back to the interpreter, which also surfaces any bind errors.
    pub fn compile(expr: &Expr, relation: &Relation) -> Option<KernelPlan> {
        Some(KernelPlan {
            node: compile_bool(expr, relation)?,
            len: relation.len(),
        })
    }

    /// Evaluates the pipeline over the whole relation into a selection mask.
    pub fn eval(&self, relation: &Relation) -> SelectionMask {
        debug_assert_eq!(self.len, relation.len());
        eval_node(&self.node, relation)
    }

    /// Evaluates the pipeline over rows `start..end` only (one morsel), into
    /// a morsel-local mask: bit `i` of the result is row `start + i`. This is
    /// the per-worker entry point of the parallel drivers; stitching the
    /// morsel masks back together in morsel order reproduces [`eval`]'s
    /// mask bit for bit.
    ///
    /// [`eval`]: KernelPlan::eval
    pub fn eval_range(&self, relation: &Relation, start: usize, end: usize) -> SelectionMask {
        debug_assert!(start <= end && end <= relation.len());
        eval_node_range(&self.node, relation, start, end)
    }
}

/// Compiles an expression appearing in boolean position.
fn compile_bool(expr: &Expr, relation: &Relation) -> Option<Node> {
    match expr {
        Expr::Cmp { op, left, right } => {
            let op = kernel_cmp(*op);
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column(c), Expr::Literal(v)) => Some(Node::CmpLit {
                    col: relation.column_index(c).ok()?,
                    op,
                    lit: v.clone(),
                }),
                (Expr::Literal(v), Expr::Column(c)) => Some(Node::CmpLit {
                    col: relation.column_index(c).ok()?,
                    op: op.flip(),
                    lit: v.clone(),
                }),
                (Expr::Column(a), Expr::Column(b)) => Some(Node::CmpCols {
                    left: relation.column_index(a).ok()?,
                    op,
                    right: relation.column_index(b).ok()?,
                }),
                (Expr::Literal(a), Expr::Literal(b)) => {
                    Some(Node::Const(op.matches(a.total_cmp(b))))
                }
                _ => None,
            }
        }
        Expr::And(l, r) => Some(Node::And(
            Box::new(compile_bool(l, relation)?),
            Box::new(compile_bool(r, relation)?),
        )),
        Expr::Or(l, r) => Some(Node::Or(
            Box::new(compile_bool(l, relation)?),
            Box::new(compile_bool(r, relation)?),
        )),
        Expr::Not(e) => Some(Node::Not(Box::new(compile_bool(e, relation)?))),
        Expr::InList { expr, list } => match expr.as_ref() {
            Expr::Column(c) => Some(Node::InList {
                col: relation.column_index(c).ok()?,
                list: list.clone(),
            }),
            Expr::Literal(v) => Some(Node::Const(
                list.iter()
                    .any(|x| v.total_cmp(x) == std::cmp::Ordering::Equal),
            )),
            _ => None,
        },
        // A numeric column in boolean position means `v != 0`; string columns
        // are a type error the interpreter must surface, so don't compile.
        Expr::Column(c) => {
            let idx = relation.column_index(c).ok()?;
            match relation.column(idx).data_type() {
                smoke_storage::DataType::Int => Some(Node::CmpLit {
                    col: idx,
                    op: KernelCmp::Ne,
                    lit: Value::Int(0),
                }),
                // The interpreter coerces with IEEE `v != 0.0`, under which
                // -0.0 is falsy; `total_cmp` would distinguish -0.0 from 0.0,
                // so express truthiness as NOT IN (0.0, -0.0) — the in-list
                // kernel's bit-pattern equality matches exactly those two.
                smoke_storage::DataType::Float => Some(Node::Not(Box::new(Node::InList {
                    col: idx,
                    list: vec![Value::Float(0.0), Value::Float(-0.0)],
                }))),
                smoke_storage::DataType::Str => None,
            }
        }
        Expr::Literal(v) => match v {
            Value::Int(x) => Some(Node::Const(*x != 0)),
            Value::Float(x) => Some(Node::Const(*x != 0.0)),
            Value::Str(_) => None,
        },
        Expr::Arith { .. } => None,
    }
}

fn eval_node(node: &Node, relation: &Relation) -> SelectionMask {
    match node {
        Node::CmpLit { col, op, lit } => sk::cmp_col_lit(relation.column(*col), *op, lit),
        Node::CmpCols { left, op, right } => {
            sk::cmp_col_col(relation.column(*left), *op, relation.column(*right))
        }
        Node::InList { col, list } => sk::in_list(relation.column(*col), list),
        Node::Const(b) => SelectionMask::constant(relation.len(), *b),
        Node::And(l, r) => {
            let mut mask = eval_node(l, relation);
            mask.and_assign(&eval_node(r, relation));
            mask
        }
        Node::Or(l, r) => {
            let mut mask = eval_node(l, relation);
            mask.or_assign(&eval_node(r, relation));
            mask
        }
        Node::Not(e) => {
            let mut mask = eval_node(e, relation);
            mask.not_assign();
            mask
        }
    }
}

fn eval_node_range(node: &Node, relation: &Relation, start: usize, end: usize) -> SelectionMask {
    match node {
        Node::CmpLit { col, op, lit } => {
            sk::cmp_col_lit_range(relation.column(*col), *op, lit, start, end)
        }
        Node::CmpCols { left, op, right } => sk::cmp_col_col_range(
            relation.column(*left),
            *op,
            relation.column(*right),
            start,
            end,
        ),
        Node::InList { col, list } => sk::in_list_range(relation.column(*col), list, start, end),
        Node::Const(b) => SelectionMask::constant(end - start, *b),
        Node::And(l, r) => {
            let mut mask = eval_node_range(l, relation, start, end);
            mask.and_assign(&eval_node_range(r, relation, start, end));
            mask
        }
        Node::Or(l, r) => {
            let mut mask = eval_node_range(l, relation, start, end);
            mask.or_assign(&eval_node_range(r, relation, start, end));
            mask
        }
        Node::Not(e) => {
            let mut mask = eval_node_range(e, relation, start, end);
            mask.not_assign();
            mask
        }
    }
}

/// Evaluates a predicate over the whole relation into a selection mask,
/// through kernels when the shape allows it and the interpreter otherwise.
pub fn predicate_mask(relation: &Relation, expr: &Expr) -> Result<SelectionMask> {
    if let Some(plan) = KernelPlan::compile(expr, relation) {
        return Ok(plan.eval(relation));
    }
    let bound = expr.bind(relation)?;
    let mut mask = SelectionMask::all_false(relation.len());
    for rid in 0..relation.len() {
        if bound.eval_bool(relation, rid)? {
            mask.set(rid);
        }
    }
    Ok(mask)
}

/// Evaluates a predicate over the whole relation into the matching rid list
/// (ascending), through kernels when possible.
pub fn predicate_rids(relation: &Relation, expr: &Expr) -> Result<Vec<Rid>> {
    if let Some(plan) = KernelPlan::compile(expr, relation) {
        return Ok(plan.eval(relation).to_rids());
    }
    let bound = expr.bind(relation)?;
    let mut out = Vec::new();
    for rid in 0..relation.len() {
        if bound.eval_bool(relation, rid)? {
            out.push(rid as Rid);
        }
    }
    Ok(out)
}

/// Restricts a rid set to the rows satisfying `expr`, preserving order.
///
/// Kernels evaluate whole columns, so the full-column mask is only worth
/// building when the rid set covers a reasonable fraction of the relation;
/// small sets are filtered row-at-a-time through the interpreter.
pub fn filter_rids(relation: &Relation, expr: &Expr, rids: &[Rid]) -> Result<Vec<Rid>> {
    if rids.len() * 8 >= relation.len() {
        if let Some(plan) = KernelPlan::compile(expr, relation) {
            let mask = plan.eval(relation);
            return Ok(rids
                .iter()
                .copied()
                .filter(|&r| mask.get(r as usize))
                .collect());
        }
    }
    let bound = expr.bind(relation)?;
    let mut kept = Vec::with_capacity(rids.len());
    for &rid in rids {
        if bound.eval_bool(relation, rid as usize)? {
            kept.push(rid);
        }
    }
    Ok(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_storage::DataType;

    fn rel() -> Relation {
        let mut b = Relation::builder("t")
            .column("a", DataType::Int)
            .column("b", DataType::Float)
            .column("s", DataType::Str);
        for i in 0..10i64 {
            b = b.row(vec![
                Value::Int(i),
                Value::Float(i as f64 * 0.5),
                Value::Str(if i % 2 == 0 { "even" } else { "odd" }.into()),
            ]);
        }
        b.build().unwrap()
    }

    /// Kernel mask must agree with the interpreter on every row.
    fn assert_equivalent(expr: &Expr, r: &Relation) {
        let plan = KernelPlan::compile(expr, r).expect("expression should compile to kernels");
        let mask = plan.eval(r);
        let bound = expr.bind(r).unwrap();
        for rid in 0..r.len() {
            assert_eq!(
                mask.get(rid),
                bound.eval_bool(r, rid).unwrap(),
                "row {rid} of {expr:?}"
            );
        }
    }

    #[test]
    fn comparison_and_boolean_trees_compile_and_agree() {
        let r = rel();
        let exprs = [
            Expr::col("a").gt(Expr::lit(4)),
            Expr::lit(4).gt(Expr::col("a")),
            Expr::col("a").le(Expr::col("b")),
            Expr::col("s").eq(Expr::lit("even")),
            Expr::col("a")
                .ge(Expr::lit(2))
                .and(Expr::col("b").lt(Expr::lit(4.0))),
            Expr::col("a")
                .lt(Expr::lit(1))
                .or(Expr::col("s").ne(Expr::lit("odd"))),
            Expr::col("a").gt(Expr::lit(3)).not(),
            Expr::col("a").in_list(vec![Value::Int(1), Value::Int(7)]),
            Expr::col("s").eq(Expr::lit(3)), // type-determined constant
            Expr::lit(2).lt(Expr::lit(3)),   // literal folding
            Expr::col("a").and(Expr::col("b").gt(Expr::lit(1.0))), // column as bool
        ];
        for e in &exprs {
            assert_equivalent(e, &r);
        }
    }

    #[test]
    fn float_column_truthiness_matches_ieee_coercion() {
        // -0.0 is falsy under the interpreter's IEEE `v != 0.0` coercion; the
        // kernel path must agree even though total_cmp distinguishes -0.0.
        let r = Relation::builder("f")
            .column("x", DataType::Float)
            .row(vec![Value::Float(0.0)])
            .row(vec![Value::Float(-0.0)])
            .row(vec![Value::Float(1.5)])
            .row(vec![Value::Float(f64::NAN)])
            .build()
            .unwrap();
        let e = Expr::col("x").and(Expr::lit(1));
        assert_equivalent(&e, &r);
        let mask = KernelPlan::compile(&e, &r).unwrap().eval(&r);
        assert_eq!(mask.to_rids(), vec![2, 3]);
    }

    #[test]
    fn unsupported_shapes_fall_back() {
        let r = rel();
        // Arithmetic inside a comparison.
        let e = (Expr::col("a") + Expr::lit(1)).gt(Expr::lit(3));
        assert!(KernelPlan::compile(&e, &r).is_none());
        // Unknown column.
        let e = Expr::col("zzz").eq(Expr::lit(1));
        assert!(KernelPlan::compile(&e, &r).is_none());
        // String column as boolean (the interpreter must surface the error).
        let e = Expr::col("s").and(Expr::col("a").gt(Expr::lit(0)));
        assert!(KernelPlan::compile(&e, &r).is_none());
        // String literal in boolean position.
        assert!(KernelPlan::compile(&Expr::lit("x"), &r).is_none());
    }

    #[test]
    fn predicate_helpers_agree_with_interpreter() {
        let r = rel();
        // A kernelizable predicate and a fallback-only predicate.
        let kernel = Expr::col("a").ge(Expr::lit(6));
        let fallback = (Expr::col("a") * Expr::lit(2)).gt(Expr::lit(11.0));
        for e in [&kernel, &fallback] {
            let rids = predicate_rids(&r, e).unwrap();
            let bound = e.bind(&r).unwrap();
            let expect: Vec<Rid> = (0..r.len())
                .filter(|&rid| bound.eval_bool(&r, rid).unwrap())
                .map(|rid| rid as Rid)
                .collect();
            assert_eq!(rids, expect, "{e:?}");

            let mask = predicate_mask(&r, e).unwrap();
            assert_eq!(mask.to_rids(), expect);

            // filter_rids over the full set and over a small subset.
            assert_eq!(filter_rids(&r, e, &r.all_rids()).unwrap(), expect);
            let small = filter_rids(&r, e, &[9, 0]).unwrap();
            let expect_small: Vec<Rid> = [9u32, 0]
                .into_iter()
                .filter(|&rid| bound.eval_bool(&r, rid as usize).unwrap())
                .collect();
            assert_eq!(small, expect_small);
        }
    }

    #[test]
    fn eval_range_stitches_back_to_whole_mask() {
        let r = rel();
        let exprs = [
            Expr::col("a").gt(Expr::lit(4)),
            Expr::col("a")
                .ge(Expr::lit(2))
                .and(Expr::col("b").lt(Expr::lit(4.0))),
            Expr::col("a")
                .in_list(vec![Value::Int(1), Value::Int(7)])
                .not(),
            Expr::col("s").eq(Expr::lit(3)), // constant node
        ];
        for e in &exprs {
            let plan = KernelPlan::compile(e, &r).unwrap();
            let whole = plan.eval(&r);
            for split in [0, 3, 7, r.len()] {
                let mut stitched = plan.eval_range(&r, 0, split);
                stitched.append(&plan.eval_range(&r, split, r.len()));
                assert_eq!(stitched.to_rids(), whole.to_rids(), "{e:?} split {split}");
            }
        }
    }

    #[test]
    fn errors_still_surface_through_fallback() {
        let r = rel();
        // Unknown column: compile declines, interpreter reports the error.
        assert!(predicate_rids(&r, &Expr::col("zzz").eq(Expr::lit(1))).is_err());
        // String column as boolean predicate.
        assert!(predicate_mask(&r, &Expr::col("s")).is_err());
    }

    #[test]
    fn empty_relation() {
        let r = Relation::builder("e")
            .column("a", DataType::Int)
            .build()
            .unwrap();
        let e = Expr::col("a").lt(Expr::lit(5));
        assert_eq!(predicate_rids(&r, &e).unwrap(), Vec::<Rid>::new());
        assert_eq!(predicate_mask(&r, &e).unwrap().count_ones(), 0);
    }
}
