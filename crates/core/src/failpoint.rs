//! One-shot fail points for fault-injection tests.
//!
//! The serving layer promises that a panicking query is *contained*: the
//! worker answers a typed `exec` error and keeps serving. Proving that needs
//! a panic on demand — but the engine's own request path is (by lint rule
//! `no-panic-on-request-path`, and by design) panic-free, so there is
//! nothing natural to trip. A fail point is the escape hatch: tests [`arm`]
//! a named point, and the *next* [`hit`] of that name panics — exactly once.
//!
//! The fast path is a single relaxed atomic load, so production code can
//! leave `hit` calls in place: an unarmed fail point costs one branch.
//! Points are process-global; tests that arm one should run in their own
//! integration-test binary (own process) to avoid cross-talk.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

static ANY_ARMED: AtomicBool = AtomicBool::new(false);
static ARMED: Mutex<Vec<String>> = Mutex::new(Vec::new());

fn armed() -> std::sync::MutexGuard<'static, Vec<String>> {
    // Poisoning is impossible in practice (the guarded ops don't panic) but
    // recovering keeps the fail-point layer itself panic-free when unarmed.
    ARMED.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms the named fail point: the next [`hit`] with this name panics, once.
pub fn arm(name: &str) {
    let mut list = armed();
    if !list.iter().any(|n| n == name) {
        list.push(name.to_string());
    }
    ANY_ARMED.store(true, Ordering::Release);
}

/// Disarms every fail point (test cleanup).
pub fn clear() {
    let mut list = armed();
    list.clear();
    ANY_ARMED.store(false, Ordering::Release);
}

/// Trips the named fail point if armed, consuming it. Unarmed points cost a
/// single atomic load.
pub fn hit(name: &str) {
    if !ANY_ARMED.load(Ordering::Acquire) {
        return;
    }
    let fire = {
        let mut list = armed();
        match list.iter().position(|n| n == name) {
            Some(at) => {
                list.remove(at);
                if list.is_empty() {
                    ANY_ARMED.store(false, Ordering::Release);
                }
                true
            }
            None => false,
        }
    };
    if fire {
        panic!("failpoint `{name}` tripped");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_point_fires_exactly_once_and_unarmed_is_free() {
        // Serialized against other tests by being the module's only test.
        hit("fp::unarmed");
        arm("fp::test");
        let first = std::panic::catch_unwind(|| hit("fp::test"));
        assert!(first.is_err(), "armed fail point must panic");
        let second = std::panic::catch_unwind(|| hit("fp::test"));
        assert!(second.is_ok(), "fail points are one-shot");
        arm("fp::a");
        arm("fp::b");
        clear();
        hit("fp::a");
        hit("fp::b");
    }
}
