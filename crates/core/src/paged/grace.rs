//! Grace-hash spilling join over [`PagedRelation`]s.
//!
//! [`super::paged_hash_join`] keeps its build hash table in RAM; when the
//! build side is far larger than the buffer-pool budget that table *is* the
//! memory blow-up the budget was meant to prevent. The grace path bounds it:
//! both inputs are hash-partitioned by join key into spilled page runs, and
//! partition pairs are then joined one at a time, so the resident hash table
//! never holds more than roughly `build_rows / partitions` entries.
//!
//! The price of partitioning is that probe outputs are produced per
//! partition, not in global probe order. The merge phase restores the
//! resident operator's exact output order: within a partition, probe pairs
//! are emitted in ascending original right rid (partitions are written in
//! scan order), and every right rid hashes to exactly one partition, so a
//! P-way merge by right rid reconstructs the global probe sequence —
//! rid-for-rid, including the per-key build order of M:N duplicates.
//! Deferred forward lineage is captured into per-partition CSR indexes and
//! stitched with [`CsrRidIndex::merge_remapped`].
//!
//! Eligibility (checked by [`grace_plan`]): every key column on both sides
//! must be numeric — partitions spill through fixed-width
//! [`FixedRunWriter`] runs — and key names must be unique and must not
//! collide with the reserved `__grace_rid` carry column. Ineligible joins
//! fall back to the resident-build path, which remains correct for any
//! input (only its hash table outgrows the budget).

use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

use smoke_lineage::{
    CaptureStats, CsrBuilder, CsrRidIndex, InputLineage, LineageIndex, OperatorLineage, RidArray,
    RidIndex,
};
use smoke_storage::{
    Column, DataType, Field, FixedRunWriter, PageId, PagedRelation, Relation, Rid, Schema,
    StorageError, PAGE_SIZE,
};

use crate::error::Result;
use crate::instrument::CaptureMode;
use crate::key::{HashKey, KeyExtractor};
use crate::ops::join::{JoinOptions, JoinResult};

use super::{align_chunk, chunk_bounds};

/// Rough per-row footprint of the resident build hash table (key, rid vec,
/// bucket overhead). Deliberately coarse: it only decides *when* to switch
/// to grace partitioning, never correctness.
pub const BUILD_BYTES_PER_ROW: usize = 48;

/// Upper bound on partition fan-out. Each partition costs two spilled runs
/// per key column plus a rid run; past this point partitions are small
/// enough that more fan-out only adds seeks.
pub const MAX_GRACE_PARTITIONS: usize = 64;

/// Reserved column carrying original rids through spilled partitions.
const GRACE_RID_COL: &str = "__grace_rid";

/// Decides whether [`super::paged_hash_join`] should take the grace-hash
/// path, and with how many partitions. `None` means stay resident: the
/// estimated build table fits the build side's pool budget, or the join is
/// ineligible (a `Str` key column, duplicate key names, or a key named
/// `__grace_rid` — the partition runs could not be formed).
pub(super) fn grace_plan(
    left: &PagedRelation,
    right: &PagedRelation,
    left_keys: &[String],
    right_keys: &[String],
) -> Option<usize> {
    let budget_bytes = left.pool().capacity() * PAGE_SIZE;
    let build_bytes = left.len().saturating_mul(BUILD_BYTES_PER_ROW);
    if build_bytes <= budget_bytes {
        return None;
    }
    if !keys_spillable(left.schema(), left_keys) || !keys_spillable(right.schema(), right_keys) {
        return None;
    }
    Some(
        build_bytes
            .div_ceil(budget_bytes)
            .clamp(2, MAX_GRACE_PARTITIONS),
    )
}

/// Whether `keys` name distinct numeric columns that can be spilled as
/// fixed-width partition runs alongside the reserved rid column.
fn keys_spillable(schema: &Schema, keys: &[String]) -> bool {
    if keys.is_empty() {
        return false;
    }
    keys.iter().enumerate().all(|(i, k)| {
        k != GRACE_RID_COL
            && !keys[..i].contains(k)
            && schema
                .index_of(k)
                .is_some_and(|idx| schema.field(idx).data_type != DataType::Str)
    })
}

/// The partition a key hashes to. `HashKey`'s hash is deterministic within
/// a process, so both sides agree on every key's partition.
fn partition_of(key: &HashKey, partitions: usize) -> usize {
    (key.hash64() % partitions as u64) as usize
}

/// The raw 8-byte page encoding of a numeric column value — the same
/// encoding [`PagedRelation::spill`] uses, so partition runs decode through
/// the ordinary fixed-width path.
fn raw8(col: &Column, local: usize) -> [u8; 8] {
    match col {
        Column::Int(v) => v[local].to_le_bytes(),
        Column::Float(v) => v[local].to_bits().to_le_bytes(),
        // Unreachable: `keys_spillable` rejected Str keys at plan time.
        Column::Str(_) => [0u8; 8],
    }
}

/// A transient single-chunk relation holding just the key columns, so
/// [`KeyExtractor`] sees the same names and types it would on a full chunk.
fn key_chunk(name: &str, fields: &[Field], columns: Vec<Column>) -> Result<Relation> {
    Ok(Relation::from_columns(
        name.to_string(),
        Schema::new(fields.to_vec())?,
        columns,
    )?)
}

/// One side of the join, hash-partitioned into spilled page runs.
struct PartitionedSide {
    /// One relation per partition: the key columns plus `__grace_rid`.
    parts: Vec<PagedRelation>,
    /// Per-partition original rids in partition-local order (ascending).
    /// Kept only for the build side, where it doubles as the
    /// [`CsrRidIndex::merge_remapped`] rebase map.
    rid_maps: Vec<Vec<u32>>,
}

/// Streams `rel`'s key columns twice: a histogram pass sizes every
/// partition exactly, then a write pass appends each row's key values and
/// original rid to its partition's runs. Writes go directly to the segment
/// store ([`FixedRunWriter`]), so partitioning never evicts the pool's
/// working set.
fn partition_side(
    rel: &PagedRelation,
    keys: &[String],
    partitions: usize,
    chunk_rows: usize,
    side: &str,
    keep_maps: bool,
) -> Result<PartitionedSide> {
    let key_idx: Vec<usize> = keys
        .iter()
        .map(|k| {
            rel.schema()
                .index_of(k)
                .ok_or_else(|| StorageError::UnknownColumn {
                    relation: rel.name().to_string(),
                    column: k.clone(),
                })
        })
        .collect::<std::result::Result<_, _>>()?;
    let key_fields: Vec<Field> = key_idx
        .iter()
        .map(|&i| rel.schema().field(i).clone())
        .collect();

    // Pass 1: per-partition row counts.
    let mut hist = vec![0usize; partitions];
    for (cs, ce) in chunk_bounds(rel.len(), chunk_rows) {
        rel.prefetch_rows(ce, ce + chunk_rows);
        let cols: Vec<Column> = key_idx
            .iter()
            .map(|&c| rel.decode_range(c, cs, ce))
            .collect::<std::result::Result<_, _>>()?;
        let mini = key_chunk(rel.name(), &key_fields, cols)?;
        let extractor = KeyExtractor::new(&mini, keys)?;
        for local in 0..mini.len() {
            hist[partition_of(&extractor.key(local), partitions)] += 1;
        }
    }

    // Pass 2: exact-capacity runs (one per key column plus the rid carry),
    // filled in scan order so partition-local order is ascending rid.
    let pool = rel.pool();
    let mut writers: Vec<Vec<FixedRunWriter>> = hist
        .iter()
        .map(|&rows| {
            (0..=key_idx.len())
                .map(|_| FixedRunWriter::new(pool, rows))
                .collect()
        })
        .collect();
    let mut rid_maps: Vec<Vec<u32>> = if keep_maps {
        hist.iter().map(|&rows| Vec::with_capacity(rows)).collect()
    } else {
        Vec::new()
    };
    for (cs, ce) in chunk_bounds(rel.len(), chunk_rows) {
        rel.prefetch_rows(ce, ce + chunk_rows);
        let cols: Vec<Column> = key_idx
            .iter()
            .map(|&c| rel.decode_range(c, cs, ce))
            .collect::<std::result::Result<_, _>>()?;
        let mini = key_chunk(rel.name(), &key_fields, cols)?;
        let extractor = KeyExtractor::new(&mini, keys)?;
        for local in 0..mini.len() {
            let p = partition_of(&extractor.key(local), partitions);
            let runs = &mut writers[p];
            for (ci, col) in mini.columns().iter().enumerate() {
                runs[ci].push(raw8(col, local))?;
            }
            let rid = (cs + local) as u64;
            runs[key_idx.len()].push(rid.to_le_bytes())?;
            if keep_maps {
                rid_maps[p].push((cs + local) as u32);
            }
        }
    }

    let mut fields = key_fields;
    fields.push(Field::new(GRACE_RID_COL, DataType::Int));
    let mut parts = Vec::with_capacity(partitions);
    for (p, runs) in writers.into_iter().enumerate() {
        let mut firsts: Vec<PageId> = Vec::with_capacity(runs.len());
        for w in runs {
            let (first, rows) = w.finish()?;
            if rows != hist[p] {
                return Err(StorageError::Pager(format!(
                    "grace partition {p} wrote {rows} rows, histogram said {}",
                    hist[p]
                ))
                .into());
            }
            firsts.push(first);
        }
        parts.push(PagedRelation::from_fixed_runs(
            format!("grace[{side}{p}]({})", rel.name()),
            Schema::new(fields.clone())?,
            &firsts,
            hist[p],
            pool,
        )?);
    }
    Ok(PartitionedSide { parts, rid_maps })
}

/// Grace-hash join over paged relations: partition both sides by join key,
/// join partition pairs resident-at-a-time, and merge the per-partition
/// outputs back into the resident operator's probe order. Rid-for-rid
/// equivalent to [`super::paged_hash_join`]'s resident path (and so to
/// [`crate::ops::join::hash_join`]) for every capture mode, down to a
/// one-frame pool.
pub fn paged_grace_hash_join(
    left: &PagedRelation,
    right: &PagedRelation,
    left_keys: &[String],
    right_keys: &[String],
    opts: &JoinOptions,
    chunk_rows: usize,
    partitions: usize,
) -> Result<JoinResult> {
    let start = Instant::now();
    let chunk_rows = align_chunk(chunk_rows);
    let partitions = partitions.max(2);

    let capture = opts.mode.captures();
    let cap_a_b = capture && opts.left_directions.backward();
    let cap_a_f = capture && opts.left_directions.forward();
    let cap_b_b = capture && opts.right_directions.backward();
    let cap_b_f = capture && opts.right_directions.forward();
    let defer = capture && matches!(opts.mode, CaptureMode::Defer | CaptureMode::DeferForward);

    // Surface schema errors before any partition I/O, like the resident path.
    KeyExtractor::new(&left.chunk(0, 0)?, left_keys)?;
    KeyExtractor::new(&right.chunk(0, 0)?, right_keys)?;

    // Partition both inputs into spilled runs.
    let build = partition_side(left, left_keys, partitions, chunk_rows, "l", true)?;
    let probe = partition_side(right, right_keys, partitions, chunk_rows, "r", false)?;

    // Join partition pairs, one resident hash table at a time. Partition
    // rows arrive in ascending original rid, so per-key build order and
    // per-partition probe order both match the resident operator's.
    let mut pk_fk = true;
    let mut pairs: Vec<Vec<(Rid, Rid)>> = Vec::with_capacity(partitions);
    for p in 0..partitions {
        let part = &build.parts[p];
        let mut ht: HashMap<HashKey, Vec<Rid>> = HashMap::new();
        for (cs, ce) in chunk_bounds(part.len(), chunk_rows) {
            part.prefetch_rows(ce, ce + chunk_rows);
            let chunk = part.chunk(cs, ce)?;
            let extractor = KeyExtractor::new(&chunk, left_keys)?;
            let rids = chunk.columns().last().map(|c| c.as_int()).unwrap_or(&[]);
            for (local, &rid) in rids.iter().enumerate().take(chunk.len()) {
                let entry = ht.entry(extractor.key(local)).or_default();
                entry.push(rid as Rid);
                if entry.len() > 1 {
                    pk_fk = false;
                }
            }
        }
        let part = &probe.parts[p];
        let mut part_pairs: Vec<(Rid, Rid)> = Vec::new();
        for (cs, ce) in chunk_bounds(part.len(), chunk_rows) {
            part.prefetch_rows(ce, ce + chunk_rows);
            let chunk = part.chunk(cs, ce)?;
            let extractor = KeyExtractor::new(&chunk, right_keys)?;
            let rids = chunk.columns().last().map(|c| c.as_int()).unwrap_or(&[]);
            for (local, &rid) in rids.iter().enumerate().take(chunk.len()) {
                if let Some(matched) = ht.get(&extractor.key(local)) {
                    let r = rid as Rid;
                    part_pairs.extend(matched.iter().map(|&l| (l, r)));
                }
            }
        }
        pairs.push(part_pairs);
    }

    // Merge phase: every right rid lives in exactly one partition and each
    // partition's pairs are grouped by ascending right rid, so a P-way merge
    // by right rid replays the resident probe sequence exactly.
    let out_counter: usize = pairs.iter().map(Vec::len).sum();
    let mut out_left: Vec<Rid> = Vec::with_capacity(out_counter);
    let mut out_right: Vec<Rid> = Vec::with_capacity(out_counter);
    let mut cursors = vec![0usize; partitions];
    let mut heap: BinaryHeap<std::cmp::Reverse<(Rid, usize)>> = BinaryHeap::new();
    for (p, part_pairs) in pairs.iter().enumerate() {
        if let Some(&(_, r)) = part_pairs.first() {
            heap.push(std::cmp::Reverse((r, p)));
        }
    }
    while let Some(std::cmp::Reverse((r, p))) = heap.pop() {
        let part_pairs = &pairs[p];
        let mut c = cursors[p];
        while c < part_pairs.len() && part_pairs[c].1 == r {
            out_left.push(part_pairs[c].0);
            out_right.push(part_pairs[c].1);
            c += 1;
        }
        cursors[p] = c;
        if c < part_pairs.len() {
            heap.push(std::cmp::Reverse((part_pairs[c].1, p)));
        }
    }
    drop(pairs);
    let base_query = start.elapsed();

    // Deferred forward lineage: per-partition CSRs over partition-local
    // build rows, stitched into the global id space with `merge_remapped`.
    let defer_start = Instant::now();
    let mut a_fw_deferred: Option<CsrRidIndex> = None;
    if defer && cap_a_f {
        let mut local_of = vec![0u32; left.len()];
        let mut part_of = vec![0u8; left.len()];
        for (p, map) in build.rid_maps.iter().enumerate() {
            for (local, &global) in map.iter().enumerate() {
                local_of[global as usize] = local as u32;
                part_of[global as usize] = p as u8;
            }
        }
        let mut counts: Vec<Vec<usize>> = build
            .rid_maps
            .iter()
            .map(|m| vec![0usize; m.len()])
            .collect();
        for &l in &out_left {
            counts[part_of[l as usize] as usize][local_of[l as usize] as usize] += 1;
        }
        let mut builders: Vec<CsrBuilder> =
            counts.into_iter().map(CsrBuilder::with_counts).collect();
        for (o, &l) in out_left.iter().enumerate() {
            builders[part_of[l as usize] as usize].append(local_of[l as usize] as usize, o as Rid);
        }
        let parts_csr: Vec<CsrRidIndex> = builders.into_iter().map(CsrBuilder::finish).collect();
        a_fw_deferred = Some(CsrRidIndex::merge_remapped(
            &parts_csr,
            &build.rid_maps,
            left.len(),
        ));
    }
    let deferred = if defer {
        defer_start.elapsed()
    } else {
        std::time::Duration::ZERO
    };

    // Output materialization gathers from the ORIGINAL paged inputs — the
    // partitions carry only keys and rids.
    let joined_schema: Schema = left.schema().concat(right.schema(), right.name());
    let output_name = format!("join({},{})", left.name(), right.name());
    let output = if opts.materialize_output {
        let mut columns = Vec::with_capacity(joined_schema.arity());
        columns.extend(left.gather(&out_left, "l")?.columns().iter().cloned());
        columns.extend(right.gather(&out_right, "r")?.columns().iter().cloned());
        Relation::from_columns(output_name, joined_schema, columns)?
    } else {
        Relation::empty(output_name, joined_schema)
    };

    if !capture {
        return Ok(JoinResult {
            output,
            lineage: OperatorLineage::none(),
            output_rows: out_counter,
            pk_fk,
            grace_partitions: partitions,
            stats: CaptureStats {
                base_query,
                ..Default::default()
            },
        });
    }

    // Assemble lineage indexes with the same representations the resident
    // path picks per capture mode, rebuilt from the merged output run.
    let a_backward = cap_a_b.then(|| LineageIndex::Array(RidArray::from_vec(out_left.clone())));
    let a_forward = if cap_a_f {
        Some(match a_fw_deferred {
            Some(csr) => LineageIndex::Csr(csr),
            None => {
                let mut arrays: Vec<RidArray> = vec![RidArray::new(); left.len()];
                for (o, &l) in out_left.iter().enumerate() {
                    arrays[l as usize].push(o as Rid);
                }
                LineageIndex::Index(RidIndex::from_arrays(arrays))
            }
        })
    } else {
        None
    };
    let b_backward = cap_b_b.then(|| LineageIndex::Array(RidArray::from_vec(out_right.clone())));
    let b_forward = if cap_b_f {
        Some(if pk_fk {
            let mut arr = RidArray::filled(right.len());
            for (o, &r) in out_right.iter().enumerate() {
                arr.set(r as usize, o as Rid);
            }
            LineageIndex::Array(arr)
        } else {
            let mut index = RidIndex::with_len(right.len());
            for (o, &r) in out_right.iter().enumerate() {
                index.append(r as usize, o as Rid);
            }
            LineageIndex::Index(index)
        })
    } else {
        None
    };

    let mut stats = CaptureStats {
        base_query,
        deferred,
        ..Default::default()
    };
    for idx in [&a_backward, &a_forward, &b_backward, &b_forward]
        .into_iter()
        .flatten()
    {
        stats.edges += idx.edge_count() as u64;
        stats.rid_resizes += idx.resizes();
        stats.lineage_bytes += idx.heap_bytes() as u64;
    }

    Ok(JoinResult {
        output,
        lineage: OperatorLineage::binary(
            InputLineage {
                backward: a_backward,
                forward: a_forward,
            },
            InputLineage {
                backward: b_backward,
                forward: b_forward,
            },
        ),
        output_rows: out_counter,
        pk_fk,
        grace_partitions: partitions,
        stats,
    })
}
