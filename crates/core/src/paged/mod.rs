//! Out-of-core operator execution over [`PagedRelation`]s.
//!
//! These are the paged twins of the in-RAM operators in [`crate::ops`]: the
//! input relation lives in a buffer-pool-backed segment store, and the
//! operator streams page-aligned **chunks** ([`PagedRelation::chunk`])
//! through the same per-row algorithms the in-RAM operators use. Only the
//! scan is chunked — hash tables, aggregation state, and lineage indexes
//! stay in RAM (they are the operator's working set; the paper's capture
//! paradigms assume as much) — so every operator here is **rid-for-rid
//! equivalent** to its in-RAM twin: same output rows in the same order, same
//! lineage indexes, for any pool budget down to a single page.
//!
//! Lineage capture stays fused with the chunk scan exactly as §3.2
//! prescribes: Inject populates indexes while pages are pinned for the base
//! query, and Defer replays the chunk scan (re-pinning pages — the realistic
//! out-of-core cost of deferral) against the pinned hash table.
//!
//! Chunk sizes are rounded up to a whole number of pages so that no page is
//! pinned twice for one scan; [`smoke_storage::DEFAULT_CHUNK_ROWS`] (64
//! pages per column)
//! amortizes per-chunk setup while keeping the transient chunk small.

mod grace;

pub use grace::{paged_grace_hash_join, BUILD_BYTES_PER_ROW, MAX_GRACE_PARTITIONS};

use std::collections::HashMap;
use std::time::Instant;

use smoke_lineage::{
    CaptureStats, CsrBuilder, CsrRidIndex, InputLineage, LineageIndex, OperatorLineage,
    PartitionedRidIndex, RidArray, RidIndex,
};
use smoke_storage::{Column, PagedRelation, Relation, Rid, Schema, ROWS_PER_PAGE};

use crate::agg::{AggExpr, AggFunc, AggState};
use crate::error::Result;
use crate::expr::Expr;
use crate::instrument::CaptureMode;
use crate::kernels::{predicate_mask, KernelPlan};
use crate::key::{HashKey, KeyExtractor};
use crate::ops::groupby::{render_partition_key, AggInputs, GroupByOptions, GroupByResult};
use crate::ops::join::{JoinOptions, JoinResult};
use crate::ops::select::SelectOptions;
use crate::ops::OpOutput;
use crate::workload::{LineageCube, WorkloadArtifacts};

/// Rounds a requested chunk size up to a whole number of pages (at least
/// one), so a chunk scan pins every covering page exactly once.
fn align_chunk(chunk_rows: usize) -> usize {
    chunk_rows.max(1).div_ceil(ROWS_PER_PAGE) * ROWS_PER_PAGE
}

/// Page-aligned `[start, end)` chunk bounds covering `len` rows.
fn chunk_bounds(len: usize, chunk_rows: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..len)
        .step_by(chunk_rows.max(1))
        .map(move |s| (s, (s + chunk_rows).min(len)))
}

/// Executes `SELECT * FROM input WHERE predicate` over a paged relation,
/// streaming page-aligned chunks. Rid-for-rid equivalent to
/// [`crate::ops::select::select`] on the materialized relation.
pub fn paged_select(
    input: &PagedRelation,
    predicate: &Expr,
    opts: &SelectOptions,
    chunk_rows: usize,
) -> Result<OpOutput> {
    let start = Instant::now();
    let n = input.len();
    let chunk_rows = align_chunk(chunk_rows);

    let capture_backward = opts.capture && opts.directions.backward();
    let capture_forward = opts.capture && opts.directions.forward();

    // Surface bind errors before any page I/O, exactly like the in-RAM
    // operator surfaces them before its scan.
    predicate.bind(&input.chunk(0, 0)?)?;

    let mut forward = if capture_forward {
        RidArray::filled(n)
    } else {
        RidArray::new()
    };
    let mut matching: Vec<Rid> = match opts.selectivity_estimate {
        Some(s) => Vec::with_capacity(((n as f64) * s.clamp(0.0, 1.0)) as usize),
        None => Vec::new(),
    };

    let mut ctr_o: Rid = 0;
    for (cs, ce) in chunk_bounds(n, chunk_rows) {
        input.prefetch_rows(ce, ce + chunk_rows);
        let chunk = input.chunk(cs, ce)?;
        let kernel = if opts.use_kernels {
            KernelPlan::compile(predicate, &chunk)
        } else {
            None
        };
        if let Some(plan) = kernel {
            let mask = plan.eval(&chunk);
            mask.for_each_one(|local| {
                matching.push((cs + local) as Rid);
                if capture_forward {
                    forward.set(cs + local, ctr_o);
                }
                ctr_o += 1;
            });
        } else {
            let bound = predicate.bind(&chunk)?;
            for local in 0..chunk.len() {
                if bound.eval_bool(&chunk, local)? {
                    matching.push((cs + local) as Rid);
                    if capture_forward {
                        forward.set(cs + local, ctr_o);
                    }
                    ctr_o += 1;
                }
            }
        }
    }

    let output = input.gather(&matching, format!("select({})", input.name()))?;
    let elapsed = start.elapsed();

    let mut stats = CaptureStats {
        base_query: elapsed,
        ..Default::default()
    };
    if !opts.capture {
        return Ok(OpOutput::baseline(output, stats));
    }

    let backward_index = LineageIndex::Array(RidArray::from_vec(matching));
    stats.edges = output.len() as u64;
    stats.lineage_bytes = (backward_index.heap_bytes()
        + if capture_forward {
            forward.heap_bytes()
        } else {
            0
        }) as u64;

    let lineage = InputLineage {
        backward: capture_backward.then_some(backward_index),
        forward: capture_forward.then_some(LineageIndex::Array(forward)),
    };
    Ok(OpOutput {
        output,
        lineage: OperatorLineage::unary(lineage),
        stats,
    })
}

struct PagedGroupEntry {
    key_values: Vec<smoke_storage::Value>,
    states: Vec<AggState>,
    i_rids: RidArray,
    lineage_count: u32,
}

/// Executes `SELECT keys, aggs FROM input GROUP BY keys` over a paged
/// relation. Hash table, aggregation state, and lineage indexes stay in RAM;
/// the input is streamed chunk-at-a-time. Rid-for-rid equivalent to
/// [`crate::ops::groupby::group_by`], including the workload-aware artifacts
/// (selection push-down, data-skipping partitions, group-by push-down cube).
pub fn paged_group_by(
    input: &PagedRelation,
    keys: &[String],
    aggs: &[AggExpr],
    opts: &GroupByOptions,
    chunk_rows: usize,
) -> Result<GroupByResult> {
    let start = Instant::now();
    let n = input.len();
    let chunk_rows = align_chunk(chunk_rows);

    let capture = opts.mode.captures();
    let capture_b = capture && opts.directions.backward();
    let capture_f = capture && opts.directions.forward();
    let inject = matches!(opts.mode, CaptureMode::Inject | CaptureMode::DeferForward);
    let wl = &opts.workload;

    // Validate every referenced column against a zero-row chunk so schema
    // errors surface before any page I/O.
    {
        let probe = input.chunk(0, 0)?;
        KeyExtractor::new(&probe, keys)?;
        AggInputs::resolve(&probe, aggs)?;
        if let Some(expr) = &wl.selection_pushdown {
            expr.bind(&probe)?;
        }
        if !wl.skipping_partition_by.is_empty() {
            KeyExtractor::new(&probe, &wl.skipping_partition_by)?;
        }
        if let Some(pd) = &wl.agg_pushdown {
            KeyExtractor::new(&probe, &pd.partition_by)?;
            AggInputs::resolve(&probe, &pd.aggs)?;
        }
    }

    // γht over streamed chunks. The key mode is the generic `HashKey` path:
    // chunk-local typed key vectors die with their chunk, and `HashKey`
    // equality coincides with typed equality, so gid assignment (first
    // occurrence order) is identical to the in-RAM operator's.
    let mut ht: HashMap<HashKey, u32> = HashMap::new();
    let mut groups: Vec<PagedGroupEntry> = Vec::new();
    let mut forward = if capture_f && inject {
        RidArray::filled(n)
    } else {
        RidArray::new()
    };
    let mut partitioned = (capture && !wl.skipping_partition_by.is_empty())
        .then(|| PartitionedRidIndex::new(wl.skipping_partition_by.join(",")));
    let mut cube = match (&wl.agg_pushdown, capture) {
        (Some(pd), true) => Some(LineageCube::new(
            0,
            pd.partition_by.clone(),
            pd.aggs.clone(),
        )),
        _ => None,
    };

    for (cs, ce) in chunk_bounds(n, chunk_rows) {
        input.prefetch_rows(ce, ce + chunk_rows);
        let chunk = input.chunk(cs, ce)?;
        let extractor = KeyExtractor::new(&chunk, keys)?;
        let agg_inputs = AggInputs::resolve(&chunk, aggs)?;
        let pushdown_mask = match &wl.selection_pushdown {
            Some(expr) if capture => Some(predicate_mask(&chunk, expr)?),
            _ => None,
        };
        let skip_extractor = match (capture, wl.skipping_partition_by.is_empty()) {
            (true, false) => Some(KeyExtractor::new(&chunk, &wl.skipping_partition_by)?),
            _ => None,
        };
        let cube_setup = match (&wl.agg_pushdown, capture) {
            (Some(pd), true) => Some((
                pd,
                KeyExtractor::new(&chunk, &pd.partition_by)?,
                AggInputs::resolve(&chunk, &pd.aggs)?,
            )),
            _ => None,
        };

        for local in 0..chunk.len() {
            let rid = cs + local;
            let key = extractor.key(local);
            let gid = match ht.get(&key) {
                Some(&gid) => gid,
                None => {
                    let gid = groups.len() as u32;
                    let hinted_cap = opts.hints.as_ref().and_then(|h| h.cardinality(&key));
                    let i_rids = match hinted_cap {
                        Some(cap) if capture_b && inject => RidArray::with_capacity(cap),
                        _ => RidArray::new(),
                    };
                    groups.push(PagedGroupEntry {
                        key_values: key.to_values(),
                        states: aggs.iter().map(AggExpr::new_state).collect(),
                        i_rids,
                        lineage_count: 0,
                    });
                    ht.insert(key, gid);
                    gid
                }
            };
            let entry = &mut groups[gid as usize];
            agg_inputs.update(&mut entry.states, aggs, local);

            if capture {
                let include = pushdown_mask.as_ref().is_none_or(|m| m.get(local));
                if include {
                    entry.lineage_count += 1;
                    if capture_b && inject {
                        entry.i_rids.push(rid as Rid);
                    }
                    if capture_f && inject {
                        forward.set(rid, gid);
                    }
                    if let (Some(part), Some(skip)) =
                        (partitioned.as_mut(), skip_extractor.as_ref())
                    {
                        let pkey = skip.key(local);
                        part.append(gid as usize, &render_partition_key(&pkey), rid as Rid);
                    }
                    if let (Some(cube), Some((pd, ex, cols))) = (cube.as_mut(), cube_setup.as_ref())
                    {
                        let pkey = ex.key(local);
                        let key_values = pkey.to_values();
                        let mut inputs = Vec::with_capacity(pd.aggs.len());
                        let mut distinct = Vec::with_capacity(pd.aggs.len());
                        for (i, agg) in pd.aggs.iter().enumerate() {
                            match (&agg.func, cols.columns[i]) {
                                (AggFunc::CountDistinct, Some(col)) => {
                                    inputs.push(0.0);
                                    distinct.push(Some(col.value(local).group_key()));
                                }
                                (_, Some(col)) => {
                                    inputs.push(col.numeric(local).unwrap_or(0.0));
                                    distinct.push(None);
                                }
                                (_, None) => {
                                    inputs.push(0.0);
                                    distinct.push(None);
                                }
                            }
                        }
                        cube.update(
                            gid as usize,
                            &render_partition_key(&pkey),
                            &key_values,
                            &inputs,
                            &distinct,
                        );
                    }
                }
            }
        }
    }

    // γagg: emit output records exactly as the in-RAM operator does.
    let mut key_cols: Vec<Column> = keys
        .iter()
        .map(|name| {
            let idx = input.schema().index_of(name).unwrap_or_default(); // validated by the probe extractor above
            Column::with_capacity(input.schema().field(idx).data_type, groups.len())
        })
        .collect();
    let mut agg_cols: Vec<Column> = aggs
        .iter()
        .map(|a| Column::with_capacity(a.output_type(), groups.len()))
        .collect();
    let mut backward = RidIndex::with_len(0);
    for entry in groups.iter_mut() {
        for (i, col) in key_cols.iter_mut().enumerate() {
            col.push(entry.key_values[i].clone())?;
        }
        for (i, col) in agg_cols.iter_mut().enumerate() {
            col.push(entry.states[i].finalize())?;
        }
        if capture_b && inject {
            backward.push_entry(std::mem::take(&mut entry.i_rids));
        }
    }

    let mut fields = Vec::with_capacity(keys.len() + aggs.len());
    for name in keys {
        let idx = input.schema().index_of(name).unwrap_or_default();
        fields.push(smoke_storage::Field::new(
            name.clone(),
            input.schema().field(idx).data_type,
        ));
    }
    for agg in aggs {
        fields.push(smoke_storage::Field::new(
            agg.alias.clone(),
            agg.output_type(),
        ));
    }
    let schema = Schema::new(fields)?;
    let mut columns = key_cols;
    columns.append(&mut agg_cols);
    let output = Relation::from_columns(format!("groupby({})", input.name()), schema, columns)?;
    let base_query = start.elapsed();

    if !capture {
        return Ok(GroupByResult {
            output,
            lineage: OperatorLineage::none(),
            artifacts: WorkloadArtifacts::default(),
            stats: CaptureStats {
                base_query,
                ..Default::default()
            },
        });
    }

    // Defer pass: replay the chunk scan against the pinned hash table. Out
    // of core this re-pins every data page — the realistic I/O cost the
    // paged benchmarks measure for deferral.
    let defer_start = Instant::now();
    let mut deferred_backward: Option<CsrBuilder> = None;
    if !inject {
        if capture_b {
            deferred_backward = Some(CsrBuilder::with_counts(
                groups.iter().map(|g| g.lineage_count as usize),
            ));
        }
        if capture_f {
            forward = RidArray::filled(n);
        }
        for (cs, ce) in chunk_bounds(n, chunk_rows) {
            input.prefetch_rows(ce, ce + chunk_rows);
            let chunk = input.chunk(cs, ce)?;
            let extractor = KeyExtractor::new(&chunk, keys)?;
            let pushdown_mask = match &wl.selection_pushdown {
                Some(expr) => Some(predicate_mask(&chunk, expr)?),
                None => None,
            };
            for local in 0..chunk.len() {
                let include = pushdown_mask.as_ref().is_none_or(|m| m.get(local));
                if !include {
                    continue;
                }
                let key = extractor.key(local);
                let Some(&gid) = ht.get(&key) else {
                    continue; // unreachable: the build pass saw every key
                };
                if let Some(b) = deferred_backward.as_mut() {
                    b.append(gid as usize, (cs + local) as Rid);
                }
                if capture_f {
                    forward.set(cs + local, gid);
                }
            }
        }
    }
    let deferred = if inject {
        std::time::Duration::ZERO
    } else {
        defer_start.elapsed()
    };

    let backward_index = if capture_b {
        Some(match deferred_backward {
            Some(b) => LineageIndex::Csr(b.finish()),
            None => LineageIndex::Index(backward),
        })
    } else {
        None
    };
    let forward_index = capture_f.then_some(LineageIndex::Array(forward));

    let mut stats = CaptureStats {
        base_query,
        deferred,
        ..Default::default()
    };
    if let Some(b) = &backward_index {
        stats.edges += b.edge_count() as u64;
        stats.rid_resizes += b.resizes();
        stats.lineage_bytes += b.heap_bytes() as u64;
    }
    if let Some(f) = &forward_index {
        stats.rid_resizes += f.resizes();
        stats.lineage_bytes += f.heap_bytes() as u64;
    }

    Ok(GroupByResult {
        output,
        lineage: OperatorLineage::unary(InputLineage {
            backward: backward_index,
            forward: forward_index,
        }),
        artifacts: WorkloadArtifacts { partitioned, cube },
        stats,
    })
}

struct PagedBuildEntry {
    rids: Vec<Rid>,
    o_rids: Vec<Rid>,
}

/// Executes `left ⋈ right ON left_keys = right_keys` over two paged
/// relations: the build phase streams left chunks into an in-RAM hash table,
/// the probe phase streams right chunks against it. Rid-for-rid equivalent
/// to [`crate::ops::join::hash_join`] on the materialized relations, for
/// every capture mode.
///
/// When the estimated build table would dwarf the build side's pool budget
/// (and the keys are numeric), the join transparently switches to the
/// [grace-hash spilling path](paged_grace_hash_join) — same outputs, same
/// lineage, bounded memory; [`JoinResult::grace_partitions`] reports which
/// path ran.
pub fn paged_hash_join(
    left: &PagedRelation,
    right: &PagedRelation,
    left_keys: &[String],
    right_keys: &[String],
    opts: &JoinOptions,
    chunk_rows: usize,
) -> Result<JoinResult> {
    if let Some(partitions) = grace::grace_plan(left, right, left_keys, right_keys) {
        return paged_grace_hash_join(
            left, right, left_keys, right_keys, opts, chunk_rows, partitions,
        );
    }
    let start = Instant::now();
    let chunk_rows = align_chunk(chunk_rows);

    let capture = opts.mode.captures();
    let cap_a_b = capture && opts.left_directions.backward();
    let cap_a_f = capture && opts.left_directions.forward();
    let cap_b_b = capture && opts.right_directions.backward();
    let cap_b_f = capture && opts.right_directions.forward();
    let defer_left = capture && opts.mode == CaptureMode::Defer;
    let defer_forward = capture && opts.mode == CaptureMode::DeferForward;

    KeyExtractor::new(&left.chunk(0, 0)?, left_keys)?;
    KeyExtractor::new(&right.chunk(0, 0)?, right_keys)?;

    // ⋈ht: build phase over streamed left chunks.
    let mut ht: HashMap<HashKey, PagedBuildEntry> = HashMap::new();
    let mut pk_fk = true;
    for (cs, ce) in chunk_bounds(left.len(), chunk_rows) {
        left.prefetch_rows(ce, ce + chunk_rows);
        let chunk = left.chunk(cs, ce)?;
        let extractor = KeyExtractor::new(&chunk, left_keys)?;
        for local in 0..chunk.len() {
            let key = extractor.key(local);
            let entry = ht.entry(key).or_insert_with(|| PagedBuildEntry {
                rids: Vec::with_capacity(1),
                o_rids: Vec::new(),
            });
            entry.rids.push((cs + local) as Rid);
            if entry.rids.len() > 1 {
                pk_fk = false;
            }
        }
    }

    let prealloc = if pk_fk { right.len() } else { 0 };
    let mut out_left: Vec<Rid> = Vec::with_capacity(prealloc);
    let mut out_right: Vec<Rid> = Vec::with_capacity(prealloc);

    let mut a_fw: Vec<RidArray> = if cap_a_f && !defer_left && !defer_forward {
        let mut arrays: Vec<RidArray> = vec![RidArray::new(); left.len()];
        if let Some(hints) = &opts.hints {
            for (key, entry) in &ht {
                if let Some(cap) = hints.cardinality(key) {
                    for &l in &entry.rids {
                        arrays[l as usize] = RidArray::with_capacity(cap);
                    }
                }
            }
        }
        arrays
    } else {
        Vec::new()
    };
    let mut b_fw_index = RidIndex::with_len(if cap_b_f && !pk_fk { right.len() } else { 0 });
    let mut b_fw_array = if cap_b_f && pk_fk {
        RidArray::filled(right.len())
    } else {
        RidArray::new()
    };

    // ⋈probe: probe phase over streamed right chunks.
    let mut out_counter: usize = 0;
    for (cs, ce) in chunk_bounds(right.len(), chunk_rows) {
        right.prefetch_rows(ce, ce + chunk_rows);
        let chunk = right.chunk(cs, ce)?;
        let extractor = KeyExtractor::new(&chunk, right_keys)?;
        for local in 0..chunk.len() {
            let rid = cs + local;
            let key = extractor.key(local);
            let Some(entry) = ht.get_mut(&key) else {
                continue;
            };
            if defer_left || defer_forward {
                entry.o_rids.push(out_counter as Rid);
            }
            let k = entry.rids.len();
            for (j, &l) in entry.rids.iter().enumerate() {
                let o = (out_counter + j) as Rid;
                if opts.materialize_output || (cap_a_b && !defer_left) {
                    out_left.push(l);
                }
                if opts.materialize_output || cap_b_b {
                    out_right.push(rid as Rid);
                }
                if cap_a_f && !defer_left && !defer_forward {
                    a_fw[l as usize].push(o);
                }
                if cap_b_f {
                    if pk_fk {
                        b_fw_array.set(rid, o);
                    } else {
                        b_fw_index.append(rid, o);
                    }
                }
            }
            out_counter += k;
        }
    }
    let base_query = start.elapsed();

    // Deferred construction of the left-side indexes — identical to the
    // in-RAM operator: it touches only the (in-RAM) hash table, no pages.
    let defer_start = Instant::now();
    let mut a_bw_deferred: Option<RidArray> = None;
    let mut a_fw_deferred: Option<CsrRidIndex> = None;
    if defer_left || defer_forward {
        if defer_left && cap_a_b {
            a_bw_deferred = Some(RidArray::filled(out_counter));
        }
        if cap_a_f {
            let mut counts = vec![0usize; left.len()];
            for entry in ht.values() {
                if entry.o_rids.is_empty() {
                    continue;
                }
                for &l in &entry.rids {
                    counts[l as usize] = entry.o_rids.len();
                }
            }
            let mut builder = CsrBuilder::with_counts(counts);
            for entry in ht.values() {
                if entry.o_rids.is_empty() {
                    continue;
                }
                for (j, &l) in entry.rids.iter().enumerate() {
                    for &start_o in &entry.o_rids {
                        let o = start_o + j as Rid;
                        builder.append(l as usize, o);
                        if let Some(bw) = a_bw_deferred.as_mut() {
                            bw.set(o as usize, l);
                        }
                    }
                }
            }
            a_fw_deferred = Some(builder.finish());
        } else if defer_left && cap_a_b {
            for entry in ht.values() {
                for (j, &l) in entry.rids.iter().enumerate() {
                    for &start_o in &entry.o_rids {
                        if let Some(bw) = a_bw_deferred.as_mut() {
                            bw.set((start_o + j as Rid) as usize, l);
                        }
                    }
                }
            }
        }
    }
    let deferred = if defer_left || defer_forward {
        defer_start.elapsed()
    } else {
        std::time::Duration::ZERO
    };

    // Output materialization gathers from the paged inputs (pinning only the
    // pages the matched rids touch).
    let joined_schema: Schema = left.schema().concat(right.schema(), right.name());
    let output_name = format!("join({},{})", left.name(), right.name());
    let output = if opts.materialize_output {
        let mut columns = Vec::with_capacity(joined_schema.arity());
        columns.extend(left.gather(&out_left, "l")?.columns().iter().cloned());
        columns.extend(right.gather(&out_right, "r")?.columns().iter().cloned());
        Relation::from_columns(output_name, joined_schema, columns)?
    } else {
        Relation::empty(output_name, joined_schema)
    };

    if !capture {
        return Ok(JoinResult {
            output,
            lineage: OperatorLineage::none(),
            output_rows: out_counter,
            pk_fk,
            grace_partitions: 1,
            stats: CaptureStats {
                base_query,
                ..Default::default()
            },
        });
    }

    let a_backward = if cap_a_b {
        Some(LineageIndex::Array(match a_bw_deferred {
            Some(bw) => bw,
            None => RidArray::from_vec(out_left.clone()),
        }))
    } else {
        None
    };
    let a_forward = if cap_a_f {
        Some(match a_fw_deferred {
            Some(csr) => LineageIndex::Csr(csr),
            None => LineageIndex::Index(RidIndex::from_arrays(a_fw)),
        })
    } else {
        None
    };
    let b_backward = cap_b_b.then(|| LineageIndex::Array(RidArray::from_vec(out_right.clone())));
    let b_forward = if cap_b_f {
        Some(if pk_fk {
            LineageIndex::Array(b_fw_array)
        } else {
            LineageIndex::Index(b_fw_index)
        })
    } else {
        None
    };

    let mut stats = CaptureStats {
        base_query,
        deferred,
        ..Default::default()
    };
    for idx in [&a_backward, &a_forward, &b_backward, &b_forward]
        .into_iter()
        .flatten()
    {
        stats.edges += idx.edge_count() as u64;
        stats.rid_resizes += idx.resizes();
        stats.lineage_bytes += idx.heap_bytes() as u64;
    }

    Ok(JoinResult {
        output,
        lineage: OperatorLineage::binary(
            InputLineage {
                backward: a_backward,
                forward: a_forward,
            },
            InputLineage {
                backward: b_backward,
                forward: b_forward,
            },
        ),
        output_rows: out_counter,
        pk_fk,
        grace_partitions: 1,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::microbenchmark_aggs;
    use crate::ops::groupby::group_by;
    use crate::ops::join::hash_join;
    use crate::ops::select::select;
    use smoke_pager::{BufferPool, ReplacementPolicy, SegmentStore};
    use smoke_storage::{DataType, Value};
    use std::sync::Arc;

    fn pool(budget: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(
            SegmentStore::in_memory(),
            budget,
            ReplacementPolicy::Sieve,
        ))
    }

    fn zipfish(rows: usize) -> Relation {
        let mut b = Relation::builder("zipf")
            .column("z", DataType::Int)
            .column("v", DataType::Float)
            .column("v_bin", DataType::Int);
        for i in 0..rows {
            let z = (i * i % 7) as i64;
            b = b.row(vec![
                Value::Int(z),
                Value::Float(i as f64 * 0.25),
                Value::Int((i % 4) as i64),
            ]);
        }
        b.build().unwrap()
    }

    fn assert_same_lineage(
        a: &OperatorLineage,
        b: &OperatorLineage,
        input_lens: &[usize],
        out_rows: usize,
    ) {
        for (input, &ilen) in input_lens.iter().enumerate() {
            let la = a.input(input);
            let lb = b.input(input);
            assert_eq!(la.backward.is_some(), lb.backward.is_some());
            assert_eq!(la.forward.is_some(), lb.forward.is_some());
            if la.backward.is_some() {
                for o in 0..out_rows as Rid {
                    assert_eq!(la.backward().lookup(o), lb.backward().lookup(o), "o={o}");
                }
            }
            if la.forward.is_some() {
                for i in 0..ilen as Rid {
                    let mut x = la.forward().lookup(i);
                    let mut y = lb.forward().lookup(i);
                    x.sort_unstable();
                    y.sort_unstable();
                    assert_eq!(x, y, "i={i}");
                }
            }
        }
    }

    #[test]
    fn paged_select_matches_in_ram() {
        let rel = zipfish(3000); // 3 pages per numeric column
        let paged = PagedRelation::spill(&rel, &pool(1)).unwrap();
        let pred = Expr::col("z")
            .ge(Expr::lit(3))
            .and(Expr::col("v").lt(Expr::lit(600.0)));
        for opts in [
            SelectOptions::baseline(),
            SelectOptions::inject(),
            SelectOptions::inject().scalar(),
        ] {
            let ram = select(&rel, &pred, &opts).unwrap();
            let out = paged_select(&paged, &pred, &opts, 1024).unwrap();
            assert_eq!(out.output, ram.output);
            if opts.capture {
                assert_same_lineage(&out.lineage, &ram.lineage, &[rel.len()], ram.output.len());
            } else {
                assert!(out.lineage.is_none());
            }
        }
    }

    #[test]
    fn paged_group_by_matches_in_ram() {
        let rel = zipfish(3000);
        let paged = PagedRelation::spill(&rel, &pool(2)).unwrap();
        let keys = ["z".to_string()];
        let aggs = microbenchmark_aggs("v");
        for opts in [
            GroupByOptions::baseline(),
            GroupByOptions::inject(),
            GroupByOptions::defer(),
        ] {
            let ram = group_by(&rel, &keys, &aggs, &opts).unwrap();
            let out = paged_group_by(&paged, &keys, &aggs, &opts, 1024).unwrap();
            assert_eq!(out.output, ram.output);
            if opts.mode.captures() {
                assert_same_lineage(&out.lineage, &ram.lineage, &[rel.len()], ram.output.len());
            }
        }
    }

    #[test]
    fn paged_group_by_workload_artifacts_match() {
        let rel = zipfish(2100);
        let paged = PagedRelation::spill(&rel, &pool(2)).unwrap();
        let keys = ["z".to_string()];
        let mut opts = GroupByOptions::inject();
        opts.workload.selection_pushdown = Some(Expr::col("v").lt(Expr::lit(400.0)));
        opts.workload.skipping_partition_by = vec!["v_bin".to_string()];
        let ram = group_by(&rel, &keys, &[AggExpr::count("cnt")], &opts).unwrap();
        let out = paged_group_by(&paged, &keys, &[AggExpr::count("cnt")], &opts, 1024).unwrap();
        assert_eq!(out.output, ram.output);
        let (pp, rp) = (
            out.artifacts.partitioned.as_ref().unwrap(),
            ram.artifacts.partitioned.as_ref().unwrap(),
        );
        for gid in 0..out.output.len() {
            for part in ["0", "1", "2", "3"] {
                assert_eq!(pp.partition(gid, part), rp.partition(gid, part));
            }
        }
        assert_same_lineage(&out.lineage, &ram.lineage, &[rel.len()], ram.output.len());
    }

    #[test]
    fn paged_join_matches_in_ram() {
        let mut b = Relation::builder("dims").column("id", DataType::Int);
        for i in 0..7 {
            b = b.row(vec![Value::Int(i)]);
        }
        let left = b.build().unwrap();
        let right = zipfish(2500);
        let lp = PagedRelation::spill(&left, &pool(1)).unwrap();
        let rp = PagedRelation::spill(&right, &pool(2)).unwrap();
        let lk = ["id".to_string()];
        let rk = ["z".to_string()];
        for opts in [
            JoinOptions::baseline(),
            JoinOptions::inject(),
            JoinOptions::defer(),
            JoinOptions::defer_forward(),
        ] {
            let ram = hash_join(&left, &right, &lk, &rk, &opts).unwrap();
            let out = paged_hash_join(&lp, &rp, &lk, &rk, &opts, 1024).unwrap();
            assert_eq!(out.grace_partitions, 1, "small build side stays resident");
            assert_eq!(out.output, ram.output);
            assert_eq!(out.output_rows, ram.output_rows);
            assert_eq!(out.pk_fk, ram.pk_fk);
            if opts.mode.captures() {
                assert_same_lineage(
                    &out.lineage,
                    &ram.lineage,
                    &[left.len(), right.len()],
                    ram.output_rows,
                );
            }
        }
    }

    #[test]
    fn mn_paged_join_matches_in_ram() {
        let mut b = Relation::builder("A").column("z", DataType::Int);
        for z in [1, 1, 2, 3, 1] {
            b = b.row(vec![Value::Int(z)]);
        }
        let left = b.build().unwrap();
        let mut b = Relation::builder("B").column("z", DataType::Int);
        for z in [1, 2, 1, 3, 9] {
            b = b.row(vec![Value::Int(z)]);
        }
        let right = b.build().unwrap();
        let lp = PagedRelation::spill(&left, &pool(1)).unwrap();
        let rp = PagedRelation::spill(&right, &pool(1)).unwrap();
        let k = ["z".to_string()];
        for opts in [JoinOptions::inject(), JoinOptions::defer()] {
            let ram = hash_join(&left, &right, &k, &k, &opts).unwrap();
            let out = paged_hash_join(&lp, &rp, &k, &k, &opts, 1024).unwrap();
            assert!(!out.pk_fk);
            assert_eq!(out.output, ram.output);
            assert_same_lineage(
                &out.lineage,
                &ram.lineage,
                &[left.len(), right.len()],
                ram.output_rows,
            );
        }
    }

    #[test]
    fn grace_join_engages_over_budget_and_matches_in_ram() {
        // 1000 build rows × 48 bytes ≫ a one-frame budget, so the join
        // auto-dispatches to the grace path; 2500 probe rows with 7 distinct
        // keys make it M:N.
        let mut b = Relation::builder("dims")
            .column("id", DataType::Int)
            .column("w", DataType::Float);
        for i in 0..1000 {
            b = b.row(vec![Value::Int(i % 7), Value::Float(i as f64 * 0.5)]);
        }
        let left = b.build().unwrap();
        let right = zipfish(2500);
        let lp = PagedRelation::spill(&left, &pool(1)).unwrap();
        let rp = PagedRelation::spill(&right, &pool(2)).unwrap();
        let lk = ["id".to_string()];
        let rk = ["z".to_string()];
        for opts in [
            JoinOptions::baseline(),
            JoinOptions::inject(),
            JoinOptions::defer(),
            JoinOptions::defer_forward(),
        ] {
            let ram = hash_join(&left, &right, &lk, &rk, &opts).unwrap();
            let out = paged_hash_join(&lp, &rp, &lk, &rk, &opts, 1024).unwrap();
            assert!(out.grace_partitions > 1, "expected the grace path");
            assert_eq!(out.output, ram.output);
            assert_eq!(out.output_rows, ram.output_rows);
            assert_eq!(out.pk_fk, ram.pk_fk);
            if opts.mode.captures() {
                assert_same_lineage(
                    &out.lineage,
                    &ram.lineage,
                    &[left.len(), right.len()],
                    ram.output_rows,
                );
            } else {
                assert!(out.lineage.is_none());
            }
        }
    }

    #[test]
    fn grace_join_handles_float_keys() {
        let mut b = Relation::builder("fl").column("f", DataType::Float);
        for i in 0..500 {
            b = b.row(vec![Value::Float((i % 5) as f64 * 0.5)]);
        }
        let left = b.build().unwrap();
        let mut b = Relation::builder("fr").column("f", DataType::Float);
        for i in 0..600 {
            b = b.row(vec![Value::Float((i % 8) as f64 * 0.5)]);
        }
        let right = b.build().unwrap();
        let lp = PagedRelation::spill(&left, &pool(1)).unwrap();
        let rp = PagedRelation::spill(&right, &pool(1)).unwrap();
        let k = ["f".to_string()];
        for opts in [JoinOptions::inject(), JoinOptions::defer()] {
            let ram = hash_join(&left, &right, &k, &k, &opts).unwrap();
            let out = paged_hash_join(&lp, &rp, &k, &k, &opts, 1024).unwrap();
            assert!(out.grace_partitions > 1);
            assert_eq!(out.output, ram.output);
            assert_same_lineage(
                &out.lineage,
                &ram.lineage,
                &[left.len(), right.len()],
                ram.output_rows,
            );
        }
    }

    #[test]
    fn grace_falls_back_to_resident_for_string_keys() {
        // Over budget, but the key column is Str: partitions spill through
        // fixed-width runs only, so the join must stay on the resident path
        // (and still be correct).
        let mut b = Relation::builder("sl").column("s", DataType::Str);
        for i in 0..1000 {
            b = b.row(vec![Value::Str(format!("k{}", i % 6))]);
        }
        let left = b.build().unwrap();
        let mut b = Relation::builder("sr").column("s", DataType::Str);
        for i in 0..800 {
            b = b.row(vec![Value::Str(format!("k{}", i % 9))]);
        }
        let right = b.build().unwrap();
        let lp = PagedRelation::spill(&left, &pool(1)).unwrap();
        let rp = PagedRelation::spill(&right, &pool(1)).unwrap();
        let k = ["s".to_string()];
        let ram = hash_join(&left, &right, &k, &k, &JoinOptions::inject()).unwrap();
        let out = paged_hash_join(&lp, &rp, &k, &k, &JoinOptions::inject(), 1024).unwrap();
        assert_eq!(out.grace_partitions, 1, "Str keys must not take grace");
        assert_eq!(out.output, ram.output);
        assert_same_lineage(
            &out.lineage,
            &ram.lineage,
            &[left.len(), right.len()],
            ram.output_rows,
        );
    }

    #[test]
    fn explicit_grace_join_matches_on_small_inputs() {
        // Direct invocation with a fixed fan-out on inputs far under the
        // budget: the grace machinery itself (not the dispatch heuristic)
        // must reproduce the resident join, empty partitions included.
        let mut b = Relation::builder("A").column("z", DataType::Int);
        for z in [1, 1, 2, 3, 1] {
            b = b.row(vec![Value::Int(z)]);
        }
        let left = b.build().unwrap();
        let mut b = Relation::builder("B").column("z", DataType::Int);
        for z in [1, 2, 1, 3, 9] {
            b = b.row(vec![Value::Int(z)]);
        }
        let right = b.build().unwrap();
        let lp = PagedRelation::spill(&left, &pool(1)).unwrap();
        let rp = PagedRelation::spill(&right, &pool(1)).unwrap();
        let k = ["z".to_string()];
        for opts in [
            JoinOptions::inject(),
            JoinOptions::defer(),
            JoinOptions::defer_forward(),
        ] {
            let ram = hash_join(&left, &right, &k, &k, &opts).unwrap();
            let out = paged_grace_hash_join(&lp, &rp, &k, &k, &opts, 1024, 3).unwrap();
            assert_eq!(out.grace_partitions, 3);
            assert!(!out.pk_fk);
            assert_eq!(out.output, ram.output);
            assert_same_lineage(
                &out.lineage,
                &ram.lineage,
                &[left.len(), right.len()],
                ram.output_rows,
            );
        }
    }

    #[test]
    fn unknown_columns_error_before_io() {
        let rel = zipfish(100);
        let paged = PagedRelation::spill(&rel, &pool(1)).unwrap();
        assert!(paged_select(
            &paged,
            &Expr::col("nope").lt(Expr::lit(1)),
            &SelectOptions::inject(),
            1024
        )
        .is_err());
        assert!(paged_group_by(
            &paged,
            &["nope".to_string()],
            &[],
            &GroupByOptions::inject(),
            1024
        )
        .is_err());
    }

    #[test]
    fn empty_paged_relation_executes() {
        let rel = Relation::builder("e")
            .column("z", DataType::Int)
            .column("v", DataType::Float)
            .build()
            .unwrap();
        let paged = PagedRelation::spill(&rel, &pool(1)).unwrap();
        let out = paged_select(
            &paged,
            &Expr::col("z").gt(Expr::lit(0)),
            &SelectOptions::inject(),
            1024,
        )
        .unwrap();
        assert_eq!(out.output.len(), 0);
        let gb = paged_group_by(
            &paged,
            &["z".to_string()],
            &[AggExpr::sum("v", "s")],
            &GroupByOptions::inject(),
            1024,
        )
        .unwrap();
        assert_eq!(gb.output.len(), 0);
    }
}
