//! Refresh and forward propagation over lineage (paper §2.1, footnote 1).
//!
//! Beyond plain backward/forward queries, Smoke's query model includes
//! *multi-directional* traces (tracing a rid set through several views at
//! once) and *refresh / forward propagation*: when a subset of base records
//! is deleted or updated, the forward lineage identifies exactly which output
//! records of an aggregation view are affected, and — because the maintained
//! aggregates are algebraic/distributive — those outputs can be refreshed
//! incrementally without re-running the base query.

use std::collections::{BTreeMap, BTreeSet};

use smoke_storage::{Relation, Rid, Value};

use crate::agg::{AggExpr, AggFunc, AggState};
use crate::error::{EngineError, Result};
use crate::exec::QueryOutput;

/// Multi-forward trace: for each registered view, the output rids that depend
/// on any of the given base rids of `table`.
pub fn multi_forward(views: &[&QueryOutput], base_rids: &[Rid], table: &str) -> Vec<Vec<Rid>> {
    views
        .iter()
        .map(|view| view.lineage.forward(base_rids, table))
        .collect()
}

/// Multi-backward trace: the union of the base rids of `table` contributing to
/// the selected output rids of *any* of the given views (deduplicated,
/// ascending).
pub fn multi_backward(views: &[&QueryOutput], selections: &[Vec<Rid>], table: &str) -> Vec<Rid> {
    let mut out: BTreeSet<Rid> = BTreeSet::new();
    for (view, selected) in views.iter().zip(selections) {
        out.extend(view.lineage.backward(selected, table));
    }
    out.into_iter().collect()
}

/// The effect of a base-table delta on one aggregation view output.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshedOutput {
    /// The affected output rid.
    pub output_rid: Rid,
    /// The refreshed values of the view's aggregate columns, in the order of
    /// the aggregate expressions.
    pub aggregates: Vec<Value>,
    /// Whether the group became empty after the delta (and should be removed
    /// from the rendered view).
    pub now_empty: bool,
}

/// Incrementally refreshes an aggregation view after deleting `deleted_rids`
/// from the base relation `table`.
///
/// The view must have been produced by a group-by whose aggregates are the
/// given `aggs` over `input` (the base relation), with both backward and
/// forward lineage captured. Only the affected groups are recomputed, and
/// only over their (shrunken) lineage sets — no full scan, no hash tables.
pub fn refresh_after_delete(
    view: &QueryOutput,
    input: &Relation,
    table: &str,
    aggs: &[AggExpr],
    deleted_rids: &[Rid],
) -> Result<Vec<RefreshedOutput>> {
    let lineage = view
        .lineage
        .table(table)
        .ok_or_else(|| EngineError::InvalidPlan(format!("no lineage captured for `{table}`")))?;
    let backward = lineage
        .backward
        .as_ref()
        .ok_or_else(|| EngineError::InvalidPlan("refresh requires backward lineage".to_string()))?;
    let forward = lineage
        .forward
        .as_ref()
        .ok_or_else(|| EngineError::InvalidPlan("refresh requires forward lineage".to_string()))?;

    let deleted: BTreeSet<Rid> = deleted_rids.iter().copied().collect();
    // Forward propagation: the affected output records. `for_each` walks the
    // index (CSR slices for finalized lineage) without per-rid allocations.
    let mut affected: BTreeSet<Rid> = BTreeSet::new();
    for &rid in deleted_rids {
        forward.for_each(rid, |o| {
            affected.insert(o);
        });
    }

    let agg_cols: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| match &a.column {
            Some(c) => input.column_index(c).map(Some),
            None => Ok(None),
        })
        .collect::<std::result::Result<_, _>>()?;

    let mut refreshed = Vec::with_capacity(affected.len());
    for &out in &affected {
        let mut states: Vec<AggState> = aggs.iter().map(AggExpr::new_state).collect();
        let mut remaining = 0usize;
        backward.for_each(out, |rid| {
            if deleted.contains(&rid) {
                return;
            }
            remaining += 1;
            for (i, state) in states.iter_mut().enumerate() {
                match (&aggs[i].func, agg_cols[i]) {
                    (AggFunc::Count, _) => state.update(0.0),
                    (AggFunc::CountDistinct, Some(c)) => {
                        state.update_key(&input.value(rid as usize, c).group_key())
                    }
                    (_, Some(c)) => {
                        state.update(input.column(c).numeric(rid as usize).unwrap_or(0.0))
                    }
                    (_, None) => state.update(0.0),
                }
            }
        });
        refreshed.push(RefreshedOutput {
            output_rid: out,
            aggregates: states.iter().map(AggState::finalize).collect(),
            now_empty: remaining == 0,
        });
    }
    Ok(refreshed)
}

/// Applies a set of refreshed outputs to a rendered view relation, producing
/// the updated relation (affected aggregate cells replaced, emptied groups
/// dropped). `agg_start` is the column index of the first aggregate column.
pub fn apply_refresh(
    view: &Relation,
    refreshed: &[RefreshedOutput],
    agg_start: usize,
) -> Result<Relation> {
    let by_rid: BTreeMap<Rid, &RefreshedOutput> =
        refreshed.iter().map(|r| (r.output_rid, r)).collect();
    let mut builder = Relation::builder(view.name().to_string());
    for f in view.schema().fields() {
        builder = builder.column(f.name.clone(), f.data_type);
    }
    for rid in 0..view.len() {
        let mut row = view.row_values(rid);
        if let Some(update) = by_rid.get(&(rid as Rid)) {
            if update.now_empty {
                continue;
            }
            for (i, value) in update.aggregates.iter().enumerate() {
                row[agg_start + i] = value.clone();
            }
        }
        builder = builder.row(row);
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::instrument::CaptureMode;
    use crate::plan::PlanBuilder;
    use smoke_storage::{DataType, Database};

    fn db() -> Database {
        let mut rel = Relation::builder("sales")
            .column("region", DataType::Str)
            .column("amount", DataType::Float);
        for (region, amount) in [
            ("east", 10.0),
            ("west", 20.0),
            ("east", 30.0),
            ("west", 40.0),
            ("east", 50.0),
        ] {
            rel = rel.row(vec![Value::Str(region.into()), Value::Float(amount)]);
        }
        let mut db = Database::new();
        db.register(rel.build().unwrap()).unwrap();
        db
    }

    fn aggs() -> Vec<AggExpr> {
        vec![AggExpr::count("cnt"), AggExpr::sum("amount", "total")]
    }

    fn view(db: &Database) -> QueryOutput {
        let plan = PlanBuilder::scan("sales")
            .group_by(&["region"], aggs())
            .build();
        Executor::new(CaptureMode::Inject)
            .execute(&plan, db)
            .unwrap()
    }

    #[test]
    fn delete_refreshes_only_affected_groups() {
        let db = db();
        let v = view(&db);
        let sales = db.relation("sales").unwrap();
        // Delete rid 2 (east, 30.0).
        let refreshed = refresh_after_delete(&v, sales, "sales", &aggs(), &[2]).unwrap();
        assert_eq!(refreshed.len(), 1);
        let east = &refreshed[0];
        assert_eq!(
            v.relation.value(east.output_rid as usize, 0),
            Value::Str("east".into())
        );
        assert_eq!(east.aggregates, vec![Value::Int(2), Value::Float(60.0)]);
        assert!(!east.now_empty);
    }

    #[test]
    fn deleting_an_entire_group_marks_it_empty_and_drops_it() {
        let db = db();
        let v = view(&db);
        let sales = db.relation("sales").unwrap();
        // Delete all west rows (rids 1 and 3).
        let refreshed = refresh_after_delete(&v, sales, "sales", &aggs(), &[1, 3]).unwrap();
        assert_eq!(refreshed.len(), 1);
        assert!(refreshed[0].now_empty);

        let updated = apply_refresh(&v.relation, &refreshed, 1).unwrap();
        assert_eq!(updated.len(), 1);
        assert_eq!(updated.value(0, 0), Value::Str("east".into()));
    }

    #[test]
    fn apply_refresh_rewrites_aggregate_cells() {
        let db = db();
        let v = view(&db);
        let sales = db.relation("sales").unwrap();
        let refreshed = refresh_after_delete(&v, sales, "sales", &aggs(), &[0, 4]).unwrap();
        let updated = apply_refresh(&v.relation, &refreshed, 1).unwrap();
        // East keeps one row (rid 2) with total 30.
        let east = (0..updated.len())
            .find(|&r| updated.value(r, 0) == Value::Str("east".into()))
            .unwrap();
        assert_eq!(updated.value(east, 1), Value::Int(1));
        assert_eq!(updated.value(east, 2), Value::Float(30.0));
        // West untouched.
        let west = (0..updated.len())
            .find(|&r| updated.value(r, 0) == Value::Str("west".into()))
            .unwrap();
        assert_eq!(updated.value(west, 2), Value::Float(60.0));
    }

    #[test]
    fn multi_directional_traces() {
        let db = db();
        let v1 = view(&db);
        let plan2 = PlanBuilder::scan("sales")
            .group_by(&["amount"], vec![AggExpr::count("cnt")])
            .build();
        let v2 = Executor::new(CaptureMode::Inject)
            .execute(&plan2, &db)
            .unwrap();

        let forward = multi_forward(&[&v1, &v2], &[0], "sales");
        assert_eq!(forward.len(), 2);
        assert_eq!(forward[0].len(), 1);
        assert_eq!(forward[1].len(), 1);

        let backward = multi_backward(&[&v1, &v2], &[vec![0], vec![0]], "sales");
        // View 1 output 0 = east group {0, 2, 4}; view 2 output 0 = amount
        // 10.0 group {0}; union = {0, 2, 4}.
        assert_eq!(backward, vec![0, 2, 4]);
    }

    #[test]
    fn refresh_requires_forward_lineage() {
        let db = db();
        let plan = PlanBuilder::scan("sales")
            .group_by(&["region"], aggs())
            .build();
        let cfg = crate::instrument::CaptureConfig::inject()
            .prune("sales", crate::instrument::DirectionFilter::BackwardOnly);
        let v = Executor::with_config(cfg).execute(&plan, &db).unwrap();
        let sales = db.relation("sales").unwrap();
        assert!(refresh_after_delete(&v, sales, "sales", &aggs(), &[0]).is_err());
    }
}
