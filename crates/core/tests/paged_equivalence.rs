//! Property-based equivalence between the out-of-core paged operators and
//! the in-RAM engine: on random inputs spilled to a buffer pool,
//! `paged_select` / `paged_group_by` / `paged_hash_join` must be rid-for-rid
//! and aggregate-for-aggregate identical to the resident operators — under
//! eviction-forcing pool budgets down to a single frame, with chunk sizes of
//! one page so every chunk boundary is also a page boundary.
//!
//! Float columns hold dyadic rationals (multiples of 0.5) so chunked partial
//! aggregation is exact and equality can be asserted bit-for-bit.

use std::sync::Arc;

use proptest::prelude::*;
use smoke_core::ops::groupby::{group_by, GroupByOptions};
use smoke_core::ops::join::{hash_join, JoinOptions};
use smoke_core::ops::select::{select, SelectOptions};
use smoke_core::{paged_group_by, paged_hash_join, paged_select, AggExpr, AggPushdown, Expr};
use smoke_pager::{BufferPool, ReplacementPolicy, SegmentStore};
use smoke_storage::{DataType, PagedRelation, Relation, Rid, Value, ROWS_PER_PAGE};

/// Builds `t(a, b, s)` from `rows` tiled `reps` times, so small proptest
/// inputs still span several pages (`ROWS_PER_PAGE` = 1024). `a` is a
/// small-domain int, `b` a dyadic float, `s` a short string — the `Str`
/// column stays resident under the paged layout and proves mixed layouts
/// decode consistently.
fn table_from(rows: &[(i64, i64)], reps: usize) -> Relation {
    let mut b = Relation::builder("t")
        .column("a", DataType::Int)
        .column("b", DataType::Float)
        .column("s", DataType::Str);
    for _ in 0..reps {
        for &(x, y) in rows {
            let s = ["red", "green", "blue", "cyan"][(y % 4).unsigned_abs() as usize];
            b = b.row(vec![
                Value::Int(x),
                Value::Float(y as f64 * 0.5),
                Value::Str(s.into()),
            ]);
        }
    }
    b.build().unwrap()
}

/// Spills `table` behind a pool of exactly `budget` frames — a budget of 1
/// means every page fault evicts, the harshest possible schedule.
fn spill(table: &Relation, budget: usize, policy: ReplacementPolicy) -> PagedRelation {
    let pool = Arc::new(BufferPool::new(SegmentStore::in_memory(), budget, policy));
    PagedRelation::spill(table, &pool).unwrap()
}

/// Like [`spill`] but the pool carries a background prefetcher, so the paged
/// operators' run-ahead hints actually load pages concurrently with the scan.
fn spill_with_prefetch(
    table: &Relation,
    budget: usize,
    policy: ReplacementPolicy,
) -> PagedRelation {
    let pool = Arc::new(BufferPool::with_prefetch(
        SegmentStore::in_memory(),
        budget,
        policy,
        2,
    ));
    PagedRelation::spill(table, &pool).unwrap()
}

/// One-page chunks: every chunk boundary is a page boundary, so group and
/// join state must be carried across chunks to stay correct.
const CHUNK: usize = ROWS_PER_PAGE;

fn exact_aggs(col: &str) -> Vec<AggExpr> {
    vec![
        AggExpr::count("cnt"),
        AggExpr::sum(col, "sum_v"),
        AggExpr::avg(col, "avg_v"),
        AggExpr::min(col, "min_v"),
        AggExpr::max(col, "max_v"),
        AggExpr::count_distinct(col, "dcnt_v"),
    ]
}

fn assert_select_equivalent(table: &Relation, paged: &PagedRelation, pred: &Expr) {
    let seq = select(table, pred, &SelectOptions::inject()).unwrap();
    let p = paged_select(paged, pred, &SelectOptions::inject(), CHUNK).unwrap();
    assert_eq!(seq.output, p.output, "output mismatch for {pred:?}");
    for o in 0..seq.output.len() as Rid {
        assert_eq!(
            seq.lineage.input(0).backward().lookup(o),
            p.lineage.input(0).backward().lookup(o),
            "backward mismatch at {o} for {pred:?}"
        );
    }
    for i in 0..table.len() as Rid {
        assert_eq!(
            seq.lineage.input(0).forward().lookup(i),
            p.lineage.input(0).forward().lookup(i),
            "forward mismatch at {i} for {pred:?}"
        );
    }
    assert_eq!(seq.stats.edges, p.stats.edges);
}

fn assert_group_by_equivalent(
    table: &Relation,
    paged: &PagedRelation,
    keys: &[String],
    aggs: &[AggExpr],
    opts: &GroupByOptions,
) {
    let seq = group_by(table, keys, aggs, opts).unwrap();
    let p = paged_group_by(paged, keys, aggs, opts, CHUNK).unwrap();
    assert_eq!(seq.output, p.output, "group-by output mismatch");
    for g in 0..seq.output.len() as Rid {
        assert_eq!(
            seq.lineage.input(0).backward().lookup(g),
            p.lineage.input(0).backward().lookup(g),
            "backward mismatch at group {g}"
        );
    }
    for i in 0..table.len() as Rid {
        assert_eq!(
            seq.lineage.input(0).forward().lookup(i),
            p.lineage.input(0).forward().lookup(i),
            "forward mismatch at row {i}"
        );
    }
    // Workload artifacts captured out-of-core must match the resident ones
    // partition-for-partition.
    match (&seq.artifacts.partitioned, &p.artifacts.partitioned) {
        (Some(sp), Some(pp)) => {
            assert_eq!(sp.len(), pp.len());
            for g in 0..sp.len() {
                for key in ["0", "1", "2", "3"] {
                    assert_eq!(
                        sp.partition(g, key),
                        pp.partition(g, key),
                        "partition mismatch at group {g} key {key}"
                    );
                }
            }
        }
        (None, None) => {}
        (s, p) => panic!(
            "partitioned-index presence mismatch: seq={} paged={}",
            s.is_some(),
            p.is_some()
        ),
    }
}

fn assert_join_equivalent(
    left: &Relation,
    right: &Relation,
    pleft: &PagedRelation,
    pright: &PagedRelation,
    keys: &[String],
) {
    let seq = hash_join(left, right, keys, keys, &JoinOptions::inject()).unwrap();
    let p = paged_hash_join(pleft, pright, keys, keys, &JoinOptions::inject(), CHUNK).unwrap();
    assert_eq!(seq.output, p.output, "join output mismatch");
    assert_eq!(seq.output_rows, p.output_rows);
    assert_eq!(seq.pk_fk, p.pk_fk);
    for side in 0..2 {
        for o in 0..seq.output_rows as Rid {
            assert_eq!(
                seq.lineage.input(side).backward().lookup(o),
                p.lineage.input(side).backward().lookup(o),
                "backward mismatch side {side} output {o}"
            );
        }
    }
    for l in 0..left.len() as Rid {
        let mut a = seq.lineage.input(0).forward().lookup(l);
        let mut b = p.lineage.input(0).forward().lookup(l);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "left forward mismatch at {l}");
    }
    for r in 0..right.len() as Rid {
        assert_eq!(
            seq.lineage.input(1).forward().lookup(r),
            p.lineage.input(1).forward().lookup(r),
            "right forward mismatch at {r}"
        );
    }
}

/// A group-by options set with the full workload surface on: skipping
/// partitions on `a` and an aggregate push-down cube.
fn workload_opts() -> GroupByOptions {
    let mut opts = GroupByOptions::inject();
    opts.workload.skipping_partition_by = vec!["a".to_string()];
    opts.workload.agg_pushdown = Some(AggPushdown {
        partition_by: vec!["a".to_string()],
        aggs: vec![AggExpr::count("cnt"), AggExpr::sum("b", "total")],
    });
    opts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn paged_select_matches_resident(
        rows in prop::collection::vec((-2i64..8, 0i64..100), 1..200),
        reps in 1usize..12,
        cut in -2i64..8,
        budget in 1usize..9,
    ) {
        let table = table_from(&rows, reps);
        let paged = spill(&table, budget, ReplacementPolicy::Sieve);
        assert_select_equivalent(&table, &paged, &Expr::col("a").ge(Expr::lit(cut)));
        // Compound predicate spanning both a paged and a resident column.
        let pred = Expr::col("a")
            .in_list(vec![Value::Int(cut), Value::Int(cut + 2)])
            .or(Expr::col("b").lt(Expr::lit(10.0)));
        assert_select_equivalent(&table, &paged, &pred);
    }

    #[test]
    fn paged_group_by_matches_resident(
        rows in prop::collection::vec((0i64..4, 0i64..100), 1..200),
        reps in 1usize..12,
        budget in 1usize..9,
    ) {
        let table = table_from(&rows, reps);
        let paged = spill(&table, budget, ReplacementPolicy::Clock);
        let keys = ["s".to_string()];
        assert_group_by_equivalent(&table, &paged, &keys, &exact_aggs("b"), &GroupByOptions::inject());
        // Same capture with skipping partitions + cube on `a`.
        assert_group_by_equivalent(&table, &paged, &keys, &exact_aggs("b"), &workload_opts());
    }

    #[test]
    fn paged_join_matches_resident(
        left_rows in prop::collection::vec((-2i64..8, 0i64..100), 1..40),
        right_rows in prop::collection::vec((-2i64..8, 0i64..100), 1..200),
        reps in 1usize..8,
        budget in 1usize..9,
    ) {
        let left = table_from(&left_rows, 1).with_name("L");
        let right = table_from(&right_rows, reps).with_name("R");
        let pleft = spill(&left, budget, ReplacementPolicy::Lru);
        let pright = spill(&right, budget, ReplacementPolicy::Lru);
        assert_join_equivalent(&left, &right, &pleft, &pright, &["a".to_string()]);
    }

    /// Prefetching is an advisory optimization: with a prefetcher attached,
    /// every operator must produce bit-for-bit the same outputs and lineage
    /// as the same pool without one — for any budget and policy, the grace
    /// join path included (large `reps` push the build side over budget).
    #[test]
    fn prefetch_on_equals_prefetch_off(
        rows in prop::collection::vec((-2i64..8, 0i64..100), 1..100),
        reps in 1usize..8,
        cut in -2i64..8,
        budget in 1usize..9,
        policy in 0usize..3,
    ) {
        let policy = ReplacementPolicy::ALL[policy];
        let table = table_from(&rows, reps);
        let plain = spill(&table, budget, policy);
        let pre = spill_with_prefetch(&table, budget, policy);

        let pred = Expr::col("a").ge(Expr::lit(cut));
        let off = paged_select(&plain, &pred, &SelectOptions::inject(), CHUNK).unwrap();
        let on = paged_select(&pre, &pred, &SelectOptions::inject(), CHUNK).unwrap();
        assert_eq!(off.output, on.output);
        for o in 0..off.output.len() as Rid {
            assert_eq!(
                off.lineage.input(0).backward().lookup(o),
                on.lineage.input(0).backward().lookup(o),
            );
        }
        for i in 0..table.len() as Rid {
            assert_eq!(
                off.lineage.input(0).forward().lookup(i),
                on.lineage.input(0).forward().lookup(i),
            );
        }

        // Group-by on the resident string column: the offsets-run hints of
        // the spilled Str pages must not perturb anything either.
        let keys = ["s".to_string()];
        let off = paged_group_by(&plain, &keys, &exact_aggs("b"), &GroupByOptions::defer(), CHUNK)
            .unwrap();
        let on = paged_group_by(&pre, &keys, &exact_aggs("b"), &GroupByOptions::defer(), CHUNK)
            .unwrap();
        assert_eq!(off.output, on.output);
        for g in 0..off.output.len() as Rid {
            assert_eq!(
                off.lineage.input(0).backward().lookup(g),
                on.lineage.input(0).backward().lookup(g),
            );
        }

        // Self-join on `a`; over-budget build sides take the grace path on
        // both pools.
        let jk = ["a".to_string()];
        let off = paged_hash_join(&plain, &plain, &jk, &jk, &JoinOptions::inject(), CHUNK).unwrap();
        let on = paged_hash_join(&pre, &pre, &jk, &jk, &JoinOptions::inject(), CHUNK).unwrap();
        assert_eq!(off.grace_partitions, on.grace_partitions);
        assert_eq!(off.output, on.output);
        assert_eq!(off.output_rows, on.output_rows);
        for side in 0..2 {
            for o in 0..off.output_rows as Rid {
                assert_eq!(
                    off.lineage.input(side).backward().lookup(o),
                    on.lineage.input(side).backward().lookup(o),
                );
            }
        }
    }
}

/// The grace-hash join under the harshest schedule: one-frame pools, every
/// replacement policy, every capture mode — rid-for-rid against the
/// resident engine, with the partition fan-out actually engaged.
#[test]
fn grace_join_survives_one_frame_pools_for_all_policies() {
    let rows: Vec<(i64, i64)> = (0..1500).map(|i| (i % 7, i % 13)).collect();
    let left = table_from(&rows, 1).with_name("L");
    let right = table_from(&rows, 1).with_name("R");
    let keys = ["a".to_string()];
    for policy in ReplacementPolicy::ALL {
        // The paged side runs with a live prefetcher: grace partitioning,
        // probing, and merging must tolerate background page installs even
        // when there is a single frame to fight over.
        let pleft = spill_with_prefetch(&left, 1, policy);
        let pright = spill_with_prefetch(&right, 1, policy);
        for opts in [
            JoinOptions::baseline(),
            JoinOptions::inject(),
            JoinOptions::defer(),
            JoinOptions::defer_forward(),
        ] {
            let seq = hash_join(&left, &right, &keys, &keys, &opts).unwrap();
            let p = paged_hash_join(&pleft, &pright, &keys, &keys, &opts, CHUNK).unwrap();
            assert!(p.grace_partitions > 1, "grace must engage ({policy:?})");
            assert_eq!(seq.output, p.output, "{policy:?}");
            assert_eq!(seq.output_rows, p.output_rows);
            assert_eq!(seq.pk_fk, p.pk_fk);
            if !opts.mode.captures() {
                continue;
            }
            for side in 0..2 {
                for o in 0..seq.output_rows as Rid {
                    assert_eq!(
                        seq.lineage.input(side).backward().lookup(o),
                        p.lineage.input(side).backward().lookup(o),
                        "{policy:?} side {side} output {o}"
                    );
                }
            }
            for l in 0..left.len() as Rid {
                let mut a = seq.lineage.input(0).forward().lookup(l);
                let mut b = p.lineage.input(0).forward().lookup(l);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{policy:?} left forward at {l}");
            }
            for r in 0..right.len() as Rid {
                assert_eq!(
                    seq.lineage.input(1).forward().lookup(r),
                    p.lineage.input(1).forward().lookup(r),
                    "{policy:?} right forward at {r}"
                );
            }
        }
    }
}

#[test]
fn budget_of_one_frame_survives_multi_page_tables() {
    // 3000 rows = 3 pages per numeric column; one single frame serves every
    // pin across spill boundaries, so progress proves no pin is ever held
    // while the next page faults.
    let rows: Vec<(i64, i64)> = (0..3000).map(|i| (i % 7, i % 13)).collect();
    let table = table_from(&rows, 1);
    for policy in ReplacementPolicy::ALL {
        let paged = spill(&table, 1, policy);
        assert_select_equivalent(&table, &paged, &Expr::col("a").ge(Expr::lit(3)));
        assert_group_by_equivalent(
            &table,
            &paged,
            &["a".to_string()],
            &exact_aggs("b"),
            &workload_opts(),
        );
        let pright = spill(&table, 1, policy);
        assert_join_equivalent(&table, &table, &paged, &pright, &["a".to_string()]);
    }
}

#[test]
fn empty_relation_round_trips_through_the_pool() {
    let empty = table_from(&[], 1);
    let paged = spill(&empty, 1, ReplacementPolicy::Sieve);
    assert_select_equivalent(&empty, &paged, &Expr::col("a").gt(Expr::lit(0)));
    assert_group_by_equivalent(
        &empty,
        &paged,
        &["a".to_string()],
        &exact_aggs("b"),
        &GroupByOptions::inject(),
    );
}
