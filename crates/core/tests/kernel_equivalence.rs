//! Property-based equivalence between the vectorized kernel path and the
//! row-at-a-time interpreter: on random expressions over Int/Float/Str
//! columns, `select` must produce the same output relation and the same
//! backward/forward lineage rid-for-rid on both paths, including empty
//! relations and all-true/all-false predicates.

use proptest::prelude::*;
use smoke_core::ops::select::{select, SelectOptions};
use smoke_core::{Expr, KernelPlan};
use smoke_storage::{DataType, Relation, Rid, Value};

/// Builds `t(a, b, s)` from generated rows: `a` a small-domain int, `b` a
/// float derived from the second component, `s` a short string.
fn table_from(rows: &[(i64, i64)]) -> Relation {
    let mut b = Relation::builder("t")
        .column("a", DataType::Int)
        .column("b", DataType::Float)
        .column("s", DataType::Str);
    for &(x, y) in rows {
        let s = ["red", "green", "blue", "cyan"][(y % 4).unsigned_abs() as usize];
        b = b.row(vec![
            Value::Int(x),
            Value::Float(y as f64 * 0.5),
            Value::Str(s.into()),
        ]);
    }
    b.build().unwrap()
}

/// Draws the next seed, cycling (the builder consumes a bounded number).
fn next(seeds: &[u64], pos: &mut usize) -> u64 {
    let s = seeds[*pos % seeds.len()];
    *pos += 1;
    s
}

fn op_from(seed: u64, left: Expr, right: Expr) -> Expr {
    match seed % 6 {
        0 => left.eq(right),
        1 => left.ne(right),
        2 => left.lt(right),
        3 => left.le(right),
        4 => left.gt(right),
        _ => left.ge(right),
    }
}

fn literal_for(col: usize, seed: u64) -> Expr {
    match col {
        0 => Expr::lit((seed % 10) as i64 - 1),
        1 => Expr::lit((seed % 120) as f64 * 0.5 - 2.0),
        _ => Expr::lit(["red", "green", "blue", "mauve"][(seed % 4) as usize]),
    }
}

const COLS: [&str; 3] = ["a", "b", "s"];

/// A random leaf: column-vs-literal / column-vs-column comparison or an
/// `IN` list. `allow_arith` additionally generates arithmetic comparisons,
/// which exercise the interpreter fallback.
fn leaf(seeds: &[u64], pos: &mut usize, allow_arith: bool) -> Expr {
    let s = next(seeds, pos);
    let col = (s % 3) as usize;
    match s % if allow_arith { 4 } else { 3 } {
        0 => op_from(
            next(seeds, pos),
            Expr::col(COLS[col]),
            literal_for(col, next(seeds, pos)),
        ),
        1 => {
            let other = (next(seeds, pos) % 3) as usize;
            op_from(
                next(seeds, pos),
                Expr::col(COLS[col]),
                Expr::col(COLS[other]),
            )
        }
        2 => {
            let list: Vec<Value> = (0..(next(seeds, pos) % 4 + 1))
                .map(|i| match col {
                    0 => Value::Int((next(seeds, pos) % 10) as i64 - 1),
                    1 => Value::Float((next(seeds, pos) % 120) as f64 * 0.5),
                    _ => Value::Str(["red", "blue", "teal"][(i % 3) as usize].into()),
                })
                .collect();
            Expr::col(COLS[col]).in_list(list)
        }
        _ => {
            // Arithmetic over the numeric columns: never kernelizable.
            let numeric = if col == 2 { 0 } else { col };
            op_from(
                next(seeds, pos),
                Expr::col(COLS[numeric]) + Expr::lit((next(seeds, pos) % 5) as i64),
                literal_for(1, next(seeds, pos)),
            )
        }
    }
}

/// A random boolean expression tree of bounded depth.
fn build_expr(seeds: &[u64], pos: &mut usize, depth: u32, allow_arith: bool) -> Expr {
    let s = next(seeds, pos);
    if depth == 0 || s % 8 < 3 {
        return leaf(seeds, pos, allow_arith);
    }
    match s % 8 {
        3 | 4 => build_expr(seeds, pos, depth - 1, allow_arith).and(build_expr(
            seeds,
            pos,
            depth - 1,
            allow_arith,
        )),
        5 | 6 => build_expr(seeds, pos, depth - 1, allow_arith).or(build_expr(
            seeds,
            pos,
            depth - 1,
            allow_arith,
        )),
        _ => build_expr(seeds, pos, depth - 1, allow_arith).not(),
    }
}

/// Asserts output-relation and rid-for-rid lineage equivalence between the
/// kernel and scalar paths of `select`.
fn assert_paths_agree(table: &Relation, pred: &Expr) {
    let kernel = select(table, pred, &SelectOptions::inject()).unwrap();
    let scalar = select(table, pred, &SelectOptions::inject().scalar()).unwrap();
    assert_eq!(kernel.output, scalar.output, "output mismatch for {pred:?}");
    for o in 0..kernel.output.len() as Rid {
        assert_eq!(
            kernel.lineage.input(0).backward().lookup(o),
            scalar.lineage.input(0).backward().lookup(o),
            "backward mismatch at output {o} for {pred:?}"
        );
    }
    for i in 0..table.len() as Rid {
        assert_eq!(
            kernel.lineage.input(0).forward().lookup(i),
            scalar.lineage.input(0).forward().lookup(i),
            "forward mismatch at input {i} for {pred:?}"
        );
    }
    // Baseline (no capture) agrees too.
    let kb = select(table, pred, &SelectOptions::baseline()).unwrap();
    let sb = select(table, pred, &SelectOptions::baseline().scalar()).unwrap();
    assert_eq!(kb.output, sb.output);
    assert!(kb.lineage.is_none() && sb.lineage.is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn kernel_path_is_equivalent_to_interpreter(
        rows in prop::collection::vec((-2i64..8, 0i64..100), 0..80),
        seeds in prop::collection::vec(0u64..u64::MAX, 1..24),
    ) {
        let table = table_from(&rows);
        let mut pos = 0;
        let pred = build_expr(&seeds, &mut pos, 3, false);
        // The pure comparison/boolean fragment must actually take the kernel
        // path — otherwise this property tests nothing.
        prop_assert!(
            KernelPlan::compile(&pred, &table).is_some(),
            "fragment should compile: {pred:?}"
        );
        assert_paths_agree(&table, &pred);
    }

    #[test]
    fn fallback_shapes_agree_end_to_end(
        rows in prop::collection::vec((-2i64..8, 0i64..100), 0..60),
        seeds in prop::collection::vec(0u64..u64::MAX, 1..24),
    ) {
        let table = table_from(&rows);
        let mut pos = 0;
        // Arithmetic leaves allowed: some trees fall back to the interpreter
        // on both paths; equivalence must hold regardless of the dispatch.
        let pred = build_expr(&seeds, &mut pos, 2, true);
        assert_paths_agree(&table, &pred);
    }

    #[test]
    fn lazy_rewrite_scan_is_equivalent(
        rows in prop::collection::vec((-2i64..8, 0i64..100), 0..80),
        groups in prop::collection::vec(-2i64..8, 1..6),
        cut in 1i64..110,
    ) {
        // The exact predicate shape LazyRewrite issues: OR'd key equalities
        // AND'd with the base selection.
        let table = table_from(&rows);
        let mut pred: Option<Expr> = None;
        for &g in &groups {
            let term = Expr::col("a").eq(Expr::lit(g))
                .and(Expr::col("b").lt(Expr::lit(cut as f64 * 0.5)));
            pred = Some(match pred { Some(p) => p.or(term), None => term });
        }
        let pred = pred.unwrap();
        let vectorized = smoke_core::kernels::predicate_rids(&table, &pred).unwrap();
        let bound = pred.bind(&table).unwrap();
        let mut scalar = Vec::new();
        for rid in 0..table.len() {
            if bound.eval_bool(&table, rid).unwrap() {
                scalar.push(rid as Rid);
            }
        }
        prop_assert_eq!(vectorized, scalar);
    }
}

#[test]
fn empty_relation_on_both_paths() {
    let table = table_from(&[]);
    assert!(table.is_empty());
    assert_paths_agree(&table, &Expr::col("a").gt(Expr::lit(3)));
}

#[test]
fn all_true_and_all_false_predicates() {
    let table = table_from(&[(1, 10), (5, 20), (7, 30)]);
    // All-true: everything selected, forward is the identity mapping.
    let all_true = Expr::col("a").ge(Expr::lit(-100));
    assert_paths_agree(&table, &all_true);
    let out = select(&table, &all_true, &SelectOptions::inject()).unwrap();
    assert_eq!(out.output.len(), table.len());
    // All-false: nothing selected, empty backward index.
    let all_false = Expr::col("a").gt(Expr::lit(100));
    assert_paths_agree(&table, &all_false);
    let out = select(&table, &all_false, &SelectOptions::inject()).unwrap();
    assert_eq!(out.output.len(), 0);
    assert_eq!(out.lineage.input(0).backward().len(), 0);
    // Type-determined constants (string column vs numeric literal).
    assert_paths_agree(&table, &Expr::col("s").lt(Expr::lit(5)));
    assert_paths_agree(&table, &Expr::col("s").gt(Expr::lit(5)));
}
