//! Property-based equivalence between the morsel-parallel drivers and the
//! sequential operators: on random inputs, `par_select` / `par_group_by` /
//! `par_hash_join` at DOP > 1 must be rid-for-rid and
//! aggregate-for-aggregate identical to the single-threaded engine —
//! including empty relations, groups straddling morsel boundaries (forced by
//! a tiny 64-row morsel size over larger inputs), and DOP far above the
//! morsel count.
//!
//! Float columns hold dyadic rationals (multiples of 0.5) so parallel
//! partial-sum merges are exact and aggregate equality can be asserted
//! bit-for-bit, independent of summation order.

use proptest::prelude::*;
use smoke_core::ops::groupby::{group_by, GroupByOptions};
use smoke_core::ops::join::{hash_join, JoinOptions};
use smoke_core::ops::select::{select, SelectOptions};
use smoke_core::parallel::{par_group_by, par_hash_join, par_select, ParallelOptions};
use smoke_core::{AggExpr, Expr};
use smoke_storage::{DataType, Relation, Rid, Value};

/// Builds `t(a, b, s)`; `a` is a small-domain int so groups recur across
/// morsel boundaries, `b` is a dyadic float, `s` a short string.
fn table_from(rows: &[(i64, i64)]) -> Relation {
    let mut b = Relation::builder("t")
        .column("a", DataType::Int)
        .column("b", DataType::Float)
        .column("s", DataType::Str);
    for &(x, y) in rows {
        let s = ["red", "green", "blue", "cyan"][(y % 4).unsigned_abs() as usize];
        b = b.row(vec![
            Value::Int(x),
            Value::Float(y as f64 * 0.5),
            Value::Str(s.into()),
        ]);
    }
    b.build().unwrap()
}

/// 64-row morsels: any table longer than 64 rows spans several morsels, so
/// small proptest inputs already exercise boundary-straddling groups.
fn par(dop: usize) -> ParallelOptions {
    ParallelOptions::new(dop).with_morsel_rows(64)
}

/// Every aggregate whose merge is exact on dyadic-rational inputs: sums of
/// halves, their squares, min/max folds, avg (exact sum / exact count), and
/// set-based distinct counts. `SumSqrt` is deliberately absent — square
/// roots are not dyadic, so its result depends on summation order and only
/// agrees with the sequential engine up to the last ulp.
fn exact_aggs(col: &str) -> Vec<AggExpr> {
    vec![
        AggExpr::count("cnt"),
        AggExpr::sum(col, "sum_v"),
        AggExpr::sum_sq(col, "sum_v2"),
        AggExpr::avg(col, "avg_v"),
        AggExpr::min(col, "min_v"),
        AggExpr::max(col, "max_v"),
        AggExpr::count_distinct(col, "dcnt_v"),
    ]
}

fn assert_select_equivalent(table: &Relation, pred: &Expr, dop: usize) {
    let seq = select(table, pred, &SelectOptions::inject()).unwrap();
    let p = par_select(table, pred, &SelectOptions::inject(), &par(dop)).unwrap();
    assert_eq!(seq.output, p.output, "output mismatch for {pred:?}");
    for o in 0..seq.output.len() as Rid {
        assert_eq!(
            seq.lineage.input(0).backward().lookup(o),
            p.lineage.input(0).backward().lookup(o),
            "backward mismatch at {o} for {pred:?}"
        );
    }
    for i in 0..table.len() as Rid {
        assert_eq!(
            seq.lineage.input(0).forward().lookup(i),
            p.lineage.input(0).forward().lookup(i),
            "forward mismatch at {i} for {pred:?}"
        );
    }
    assert_eq!(seq.stats.edges, p.stats.edges);
}

fn assert_group_by_equivalent(table: &Relation, keys: &[String], aggs: &[AggExpr], dop: usize) {
    let seq = group_by(table, keys, aggs, &GroupByOptions::inject()).unwrap();
    let p = par_group_by(table, keys, aggs, &GroupByOptions::inject(), &par(dop)).unwrap();
    assert_eq!(seq.output, p.output, "group-by output mismatch");
    for g in 0..seq.output.len() as Rid {
        assert_eq!(
            seq.lineage.input(0).backward().lookup(g),
            p.lineage.input(0).backward().lookup(g),
            "backward mismatch at group {g}"
        );
    }
    for i in 0..table.len() as Rid {
        assert_eq!(
            seq.lineage.input(0).forward().lookup(i),
            p.lineage.input(0).forward().lookup(i),
            "forward mismatch at row {i}"
        );
    }
}

fn assert_join_equivalent(left: &Relation, right: &Relation, keys: &[String], dop: usize) {
    let seq = hash_join(left, right, keys, keys, &JoinOptions::inject()).unwrap();
    let p = par_hash_join(left, right, keys, keys, &JoinOptions::inject(), &par(dop)).unwrap();
    assert_eq!(seq.output, p.output, "join output mismatch");
    assert_eq!(seq.output_rows, p.output_rows);
    assert_eq!(seq.pk_fk, p.pk_fk);
    for side in 0..2 {
        for o in 0..seq.output_rows as Rid {
            assert_eq!(
                seq.lineage.input(side).backward().lookup(o),
                p.lineage.input(side).backward().lookup(o),
                "backward mismatch side {side} output {o}"
            );
        }
    }
    for l in 0..left.len() as Rid {
        let mut a = seq.lineage.input(0).forward().lookup(l);
        let mut b = p.lineage.input(0).forward().lookup(l);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "left forward mismatch at {l}");
    }
    for r in 0..right.len() as Rid {
        assert_eq!(
            seq.lineage.input(1).forward().lookup(r),
            p.lineage.input(1).forward().lookup(r),
            "right forward mismatch at {r}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_select_matches_sequential(
        rows in prop::collection::vec((-2i64..8, 0i64..100), 0..300),
        cut in -2i64..8,
        dop in 2usize..9,
    ) {
        let table = table_from(&rows);
        let pred = Expr::col("a").ge(Expr::lit(cut));
        assert_select_equivalent(&table, &pred, dop);
        // A compound predicate exercising And/InList nodes over ranges.
        let pred = Expr::col("a")
            .in_list(vec![Value::Int(cut), Value::Int(cut + 2)])
            .or(Expr::col("b").lt(Expr::lit(10.0)));
        assert_select_equivalent(&table, &pred, dop);
    }

    #[test]
    fn parallel_group_by_matches_sequential(
        rows in prop::collection::vec((-2i64..8, 0i64..100), 0..300),
        dop in 2usize..9,
    ) {
        let table = table_from(&rows);
        // Int key (dense/int fast paths) with the full microbenchmark agg
        // set (COUNT / SUM / AVG / MIN / MAX / SUMSQ / COUNT DISTINCT).
        assert_group_by_equivalent(&table, &["a".to_string()], &exact_aggs("b"), dop);
        // String key exercises the generic HashKey path.
        assert_group_by_equivalent(
            &table,
            &["s".to_string()],
            &[AggExpr::count("cnt"), AggExpr::sum("b", "sum_b")],
            dop,
        );
        // Composite key.
        assert_group_by_equivalent(
            &table,
            &["s".to_string(), "a".to_string()],
            &[AggExpr::count("cnt")],
            dop,
        );
    }

    #[test]
    fn parallel_join_matches_sequential(
        left_rows in prop::collection::vec((-2i64..8, 0i64..100), 0..60),
        right_rows in prop::collection::vec((-2i64..8, 0i64..100), 0..300),
        dop in 2usize..9,
    ) {
        // M:N join on the small-domain int key (and pk-fk when the generated
        // left side happens to be unique).
        let left = table_from(&left_rows).with_name("L");
        let right = table_from(&right_rows).with_name("R");
        assert_join_equivalent(&left, &right, &["a".to_string()], dop);
        // String keys exercise the generic-key parallel probe.
        assert_join_equivalent(&left, &right, &["s".to_string()], dop);
    }
}

#[test]
fn empty_relations_on_all_parallel_drivers() {
    let empty = table_from(&[]);
    assert_select_equivalent(&empty, &Expr::col("a").gt(Expr::lit(0)), 8);
    assert_group_by_equivalent(&empty, &["a".to_string()], &exact_aggs("b"), 8);
    let small = table_from(&[(1, 2), (3, 4)]);
    assert_join_equivalent(&empty, &small, &["a".to_string()], 8);
    assert_join_equivalent(&small, &empty, &["a".to_string()], 8);
}

#[test]
fn groups_straddling_morsel_boundaries() {
    // 200 rows of 3 recurring keys over 64-row morsels: every group spans
    // all four morsels.
    let rows: Vec<(i64, i64)> = (0..200).map(|i| (i % 3, i)).collect();
    let table = table_from(&rows);
    assert_group_by_equivalent(&table, &["a".to_string()], &exact_aggs("b"), 4);
    // One group entirely inside a single morsel, one spanning all.
    let rows: Vec<(i64, i64)> = (0..200)
        .map(|i| (if (64..128).contains(&i) { 7 } else { 0 }, i))
        .collect();
    let table = table_from(&rows);
    assert_group_by_equivalent(&table, &["a".to_string()], &exact_aggs("b"), 4);
}

#[test]
fn dop_exceeding_morsel_count_clamps_to_available_work() {
    // 100 rows / 64-row morsels = 2 morsels; DOP 32 must clamp, not hang or
    // mis-merge.
    let rows: Vec<(i64, i64)> = (0..100).map(|i| (i % 5, i)).collect();
    let table = table_from(&rows);
    assert_select_equivalent(&table, &Expr::col("a").le(Expr::lit(2)), 32);
    assert_group_by_equivalent(&table, &["a".to_string()], &exact_aggs("b"), 32);
    let left = table_from(&[(0, 0), (1, 1), (2, 2)]).with_name("L");
    assert_join_equivalent(&left, &table, &["a".to_string()], 32);

    let opts = ParallelOptions::new(32).with_morsel_rows(64);
    assert_eq!(opts.workers(2), 2);
    assert_eq!(opts.workers(0), 1);
    assert_eq!(opts.dop(), 32);
    assert_eq!(opts.morsel_rows(), 64);
}

#[test]
fn dop_one_delegates_to_sequential_path() {
    let rows: Vec<(i64, i64)> = (0..150).map(|i| (i % 4, i)).collect();
    let table = table_from(&rows);
    // DOP=1 must be bit-for-bit the sequential engine (it *is* the
    // sequential engine: the drivers delegate).
    let seq = select(
        &table,
        &Expr::col("a").eq(Expr::lit(1)),
        &SelectOptions::inject(),
    )
    .unwrap();
    let p1 = par_select(
        &table,
        &Expr::col("a").eq(Expr::lit(1)),
        &SelectOptions::inject(),
        &ParallelOptions::new(1),
    )
    .unwrap();
    assert_eq!(seq.output, p1.output);
    let seq = group_by(
        &table,
        &["a".to_string()],
        &exact_aggs("b"),
        &GroupByOptions::defer(),
    )
    .unwrap();
    let p1 = par_group_by(
        &table,
        &["a".to_string()],
        &exact_aggs("b"),
        &GroupByOptions::defer(),
        &ParallelOptions::new(1),
    )
    .unwrap();
    assert_eq!(seq.output, p1.output);
}

#[test]
fn interpreter_only_predicates_fall_back_in_parallel_driver() {
    let rows: Vec<(i64, i64)> = (0..150).map(|i| (i % 4, i)).collect();
    let table = table_from(&rows);
    // Arithmetic never compiles to kernels; par_select must transparently
    // fall back to the sequential interpreter and still be correct.
    let pred = (Expr::col("a") + Expr::lit(1)).gt(Expr::lit(2));
    assert_select_equivalent(&table, &pred, 8);
}
