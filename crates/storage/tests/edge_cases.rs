//! Edge-case coverage the cross-crate integration tests skip: builder error
//! paths, `Value` ordering/equality across types, and rid round-tripping.

use std::cmp::Ordering;

use smoke_storage::{DataType, Database, Relation, Rid, StorageError, Value};

#[test]
fn builder_rejects_rows_with_wrong_arity() {
    let err = Relation::builder("t")
        .column("a", DataType::Int)
        .column("b", DataType::Float)
        .row(vec![Value::Int(1)])
        .build();
    assert_eq!(
        err,
        Err(StorageError::ArityMismatch {
            expected: 2,
            actual: 1
        })
    );

    let err = Relation::builder("t")
        .column("a", DataType::Int)
        .row(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        .build();
    assert_eq!(
        err,
        Err(StorageError::ArityMismatch {
            expected: 1,
            actual: 3
        })
    );
}

#[test]
fn builder_keeps_first_error_across_later_rows() {
    // The arity error from the first row must survive subsequent valid rows.
    let err = Relation::builder("t")
        .column("a", DataType::Int)
        .row(vec![])
        .row(vec![Value::Int(1)])
        .build();
    assert_eq!(
        err,
        Err(StorageError::ArityMismatch {
            expected: 1,
            actual: 0
        })
    );
}

#[test]
fn builder_rejects_type_mismatches_but_coerces_int_to_float() {
    let err = Relation::builder("t")
        .column("a", DataType::Int)
        .row(vec![Value::Str("not an int".into())])
        .build();
    assert!(matches!(err, Err(StorageError::TypeMismatch { .. })));

    // Ints are accepted into float columns (the one sanctioned coercion).
    let rel = Relation::builder("t")
        .column("v", DataType::Float)
        .row(vec![Value::Int(3)])
        .build()
        .unwrap();
    assert_eq!(rel.value(0, 0), Value::Float(3.0));
}

#[test]
fn builder_rejects_duplicate_columns() {
    let err = Relation::builder("t")
        .column("a", DataType::Int)
        .column("a", DataType::Float)
        .build();
    assert_eq!(err, Err(StorageError::DuplicateColumn("a".into())));
}

#[test]
fn builder_with_no_rows_yields_empty_relation() {
    let rel = Relation::builder("t")
        .column("a", DataType::Int)
        .build()
        .unwrap();
    assert!(rel.is_empty());
    assert_eq!(rel.len(), 0);
    assert!(rel.all_rids().is_empty());
}

#[test]
fn value_ordering_is_total_across_types() {
    // Numeric comparisons coerce; strings sort after all numbers.
    assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
    assert_eq!(Value::Float(1.5).total_cmp(&Value::Int(2)), Ordering::Less);
    assert_eq!(
        Value::Str("0".into()).total_cmp(&Value::Int(i64::MAX)),
        Ordering::Greater
    );
    assert_eq!(
        Value::Int(i64::MIN).total_cmp(&Value::Str(String::new())),
        Ordering::Less
    );

    // total_cmp is antisymmetric over a mixed sample.
    let sample = [
        Value::Int(-1),
        Value::Int(0),
        Value::Float(-0.5),
        Value::Float(f64::NAN),
        Value::Str("a".into()),
        Value::Str(String::new()),
    ];
    for a in &sample {
        for b in &sample {
            assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse(), "{a:?} vs {b:?}");
        }
    }
}

#[test]
fn value_equality_is_type_sensitive() {
    // `==` (structural) distinguishes Int(2) from Float(2.0) even though
    // total_cmp orders them equal — predicates rely on total_cmp, grouping on
    // group_key.
    assert_ne!(Value::Int(2), Value::Float(2.0));
    assert_eq!(Value::Int(2), Value::Int(2));
    assert_ne!(Value::Int(2).group_key(), Value::Float(2.0).group_key());
    assert_eq!(Value::Str("2".into()).group_key(), "2");
}

#[test]
fn rids_round_trip_through_relation_and_gather() {
    let mut builder = Relation::builder("t")
        .column("id", DataType::Int)
        .column("v", DataType::Float);
    for i in 0..100 {
        builder = builder.row(vec![Value::Int(i), Value::Float(i as f64 * 0.5)]);
    }
    let rel = builder.build().unwrap();

    // all_rids enumerates positions 0..len in order, and every rid addresses
    // the row whose payload encodes it.
    let rids = rel.all_rids();
    assert_eq!(rids, (0..100u32).collect::<Vec<Rid>>());
    for &rid in &rids {
        assert_eq!(rel.value(rid as usize, 0), Value::Int(rid as i64));
        assert_eq!(rel.row(rid as usize).rid(), rid);
    }

    // gather() re-rids the selected subset densely while preserving payloads,
    // so rids stay positional after lineage-driven materialization.
    let picked: Vec<Rid> = vec![7, 3, 99, 3];
    let sub = rel.gather(&picked, "sub");
    assert_eq!(sub.len(), picked.len());
    assert_eq!(sub.all_rids(), vec![0, 1, 2, 3]);
    for (new_rid, &old_rid) in picked.iter().enumerate() {
        assert_eq!(sub.value(new_rid, 0), Value::Int(old_rid as i64));
    }
}

#[test]
fn database_catalog_errors() {
    let rel = Relation::builder("t")
        .column("a", DataType::Int)
        .build()
        .unwrap();
    let mut db = Database::new();
    db.register(rel.clone()).unwrap();
    assert_eq!(
        db.register(rel),
        Err(StorageError::DuplicateRelation("t".into()))
    );
    assert_eq!(
        db.relation("missing").err(),
        Some(StorageError::UnknownRelation("missing".into()))
    );
}
