//! Relations: named, schema-typed, rid-addressable collections of tuples.

use crate::rid::to_rid;
use crate::{Column, DataType, Field, Result, Rid, Schema, StorageError, Value};

/// An in-memory relation.
///
/// Rows are addressed by rid (their position). Storage is columnar; execution
/// over relations is row-at-a-time via [`Relation::value`] / [`Relation::row`]
/// or via the typed column accessors for hot loops.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    len: usize,
}

impl Relation {
    /// Starts building a relation with the given name.
    pub fn builder(name: impl Into<String>) -> RelationBuilder {
        RelationBuilder::new(name)
    }

    /// Creates a relation directly from a schema and columns.
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Column>,
    ) -> Result<Self> {
        let name = name.into();
        if schema.arity() != columns.len() {
            return Err(StorageError::ArityMismatch {
                expected: schema.arity(),
                actual: columns.len(),
            });
        }
        let len = columns.first().map(Column::len).unwrap_or(0);
        if columns.iter().any(|c| c.len() != len) {
            return Err(StorageError::RaggedColumns { relation: name });
        }
        for (field, column) in schema.fields().iter().zip(&columns) {
            if field.data_type != column.data_type() {
                return Err(StorageError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.data_type,
                    actual: column.data_type(),
                });
            }
        }
        Ok(Relation {
            name,
            schema,
            columns,
            len,
        })
    }

    /// Creates an empty relation with the given schema.
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new(f.data_type))
            .collect();
        Relation {
            name: name.into(),
            schema,
            columns,
            len: 0,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the relation (used when registering derived outputs).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The column at position `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// The column with the given name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| StorageError::UnknownColumn {
                column: name.to_string(),
                relation: self.name.clone(),
            })?;
        Ok(&self.columns[idx])
    }

    /// Index of a column name, with a relation-scoped error.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.schema
            .index_of(name)
            .ok_or_else(|| StorageError::UnknownColumn {
                column: name.to_string(),
                relation: self.name.clone(),
            })
    }

    /// Reads a single cell.
    pub fn value(&self, rid: usize, col: usize) -> Value {
        self.columns[col].value(rid)
    }

    /// A borrowed view of one row.
    pub fn row(&self, rid: usize) -> RowRef<'_> {
        RowRef {
            relation: self,
            rid,
        }
    }

    /// Materializes a row as owned values.
    pub fn row_values(&self, rid: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(rid)).collect()
    }

    /// All rids of this relation, `0..len`.
    pub fn all_rids(&self) -> Vec<Rid> {
        (0..self.len).map(to_rid).collect()
    }

    /// Builds a new relation containing only the rows in `rids`, in order.
    /// The result keeps this relation's schema and is named `name`.
    pub fn gather(&self, rids: &[Rid], name: impl Into<String>) -> Relation {
        let columns = self.columns.iter().map(|c| c.gather(rids)).collect();
        Relation {
            name: name.into(),
            schema: self.schema.clone(),
            columns,
            len: rids.len(),
        }
    }

    /// Approximate heap footprint in bytes of the tuple payload.
    pub fn heap_bytes(&self) -> usize {
        self.columns.iter().map(Column::heap_bytes).sum()
    }
}

/// A borrowed view of one tuple of a [`Relation`].
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    relation: &'a Relation,
    rid: usize,
}

impl<'a> RowRef<'a> {
    /// The rid of this row.
    pub fn rid(&self) -> Rid {
        to_rid(self.rid)
    }

    /// Reads the cell at column position `col`.
    pub fn value(&self, col: usize) -> Value {
        self.relation.value(self.rid, col)
    }

    /// Reads the cell in the named column.
    pub fn value_by_name(&self, name: &str) -> Result<Value> {
        let idx = self.relation.column_index(name)?;
        Ok(self.relation.value(self.rid, idx))
    }

    /// The owning relation.
    pub fn relation(&self) -> &'a Relation {
        self.relation
    }
}

/// Incremental builder for [`Relation`]s.
#[derive(Debug)]
pub struct RelationBuilder {
    name: String,
    fields: Vec<Field>,
    columns: Vec<Column>,
    len: usize,
    error: Option<StorageError>,
}

impl RelationBuilder {
    fn new(name: impl Into<String>) -> Self {
        RelationBuilder {
            name: name.into(),
            fields: Vec::new(),
            columns: Vec::new(),
            len: 0,
            error: None,
        }
    }

    /// Declares a column. All columns must be declared before rows are added.
    pub fn column(mut self, name: impl Into<String>, data_type: DataType) -> Self {
        let name = name.into();
        if self.fields.iter().any(|f| f.name == name) {
            self.error
                .get_or_insert(StorageError::DuplicateColumn(name));
            return self;
        }
        self.fields.push(Field::new(name, data_type));
        self.columns.push(Column::new(data_type));
        self
    }

    /// Reserves capacity for `rows` tuples in every declared column.
    pub fn reserve(mut self, rows: usize) -> Self {
        for (field, column) in self.fields.iter().zip(self.columns.iter_mut()) {
            *column = Column::with_capacity(field.data_type, rows);
        }
        self
    }

    /// Appends one row.
    pub fn row(mut self, values: Vec<Value>) -> Self {
        if self.error.is_some() {
            return self;
        }
        if values.len() != self.columns.len() {
            self.error = Some(StorageError::ArityMismatch {
                expected: self.columns.len(),
                actual: values.len(),
            });
            return self;
        }
        for (column, value) in self.columns.iter_mut().zip(values) {
            if let Err(e) = column.push(value) {
                self.error = Some(e);
                return self;
            }
        }
        self.len += 1;
        self
    }

    /// Appends many rows.
    pub fn rows(mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> Self {
        for r in rows {
            self = self.row(r);
        }
        self
    }

    /// Finalizes the relation.
    pub fn build(self) -> Result<Relation> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let schema = Schema::new(self.fields)?;
        Relation::from_columns(self.name, schema, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        Relation::builder("t")
            .column("id", DataType::Int)
            .column("v", DataType::Float)
            .column("s", DataType::Str)
            .row(vec![
                Value::Int(1),
                Value::Float(0.5),
                Value::Str("a".into()),
            ])
            .row(vec![
                Value::Int(2),
                Value::Float(1.5),
                Value::Str("b".into()),
            ])
            .row(vec![
                Value::Int(3),
                Value::Float(2.5),
                Value::Str("c".into()),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_consistent_relation() {
        let r = sample();
        assert_eq!(r.len(), 3);
        assert_eq!(r.schema().arity(), 3);
        assert_eq!(r.value(2, 0), Value::Int(3));
        assert_eq!(r.row(1).value_by_name("s").unwrap(), Value::Str("b".into()));
        assert_eq!(r.all_rids(), vec![0, 1, 2]);
    }

    #[test]
    fn arity_mismatch_detected() {
        let err = Relation::builder("t")
            .column("a", DataType::Int)
            .row(vec![Value::Int(1), Value::Int(2)])
            .build();
        assert!(matches!(err, Err(StorageError::ArityMismatch { .. })));
    }

    #[test]
    fn ragged_columns_detected() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ])
        .unwrap();
        let err = Relation::from_columns(
            "t",
            schema,
            vec![Column::Int(vec![1, 2]), Column::Int(vec![1])],
        );
        assert!(matches!(err, Err(StorageError::RaggedColumns { .. })));
    }

    #[test]
    fn from_columns_checks_types() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]).unwrap();
        let err = Relation::from_columns("t", schema, vec![Column::Float(vec![1.0])]);
        assert!(matches!(err, Err(StorageError::TypeMismatch { .. })));
    }

    #[test]
    fn gather_subsets_rows() {
        let r = sample();
        let g = r.gather(&[2, 0], "sub");
        assert_eq!(g.len(), 2);
        assert_eq!(g.name(), "sub");
        assert_eq!(g.value(0, 0), Value::Int(3));
        assert_eq!(g.value(1, 2), Value::Str("a".into()));
    }

    #[test]
    fn unknown_column_lookup_fails() {
        let r = sample();
        assert!(r.column_by_name("missing").is_err());
        assert!(r.column_index("missing").is_err());
        assert!(r.column_by_name("v").is_ok());
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty(
            "e",
            Schema::new(vec![Field::new("a", DataType::Int)]).unwrap(),
        );
        assert!(r.is_empty());
        assert_eq!(r.all_rids(), Vec::<Rid>::new());
    }

    #[test]
    fn row_values_round_trip() {
        let r = sample();
        assert_eq!(
            r.row_values(0),
            vec![Value::Int(1), Value::Float(0.5), Value::Str("a".into())]
        );
    }

    #[test]
    fn reserve_does_not_change_contents() {
        let r = Relation::builder("t")
            .column("a", DataType::Int)
            .reserve(100)
            .row(vec![Value::Int(9)])
            .build()
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, 0), Value::Int(9));
    }
}
