//! Row identifiers.
//!
//! Smoke indexes rids rather than keys or full tuples because rids are cheap
//! to write during capture and lookups are simple array offsets into the
//! relation (paper §3.1).

/// A row identifier: the position of a tuple inside its relation.
///
/// `u32` keeps lineage indexes compact (half the footprint of `usize` on
/// 64-bit platforms) and comfortably addresses the datasets in the paper's
/// evaluation (the largest, Ontime, has 123.5M rows).
pub type Rid = u32;

/// A list of row identifiers.
pub type RidVec = Vec<Rid>;

/// Converts a `usize` offset to a [`Rid`], panicking if the relation is too
/// large to be rid-addressed.
#[inline]
pub(crate) fn to_rid(i: usize) -> Rid {
    debug_assert!(i <= u32::MAX as usize, "relation exceeds rid address space");
    i as Rid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rid_is_compact() {
        assert_eq!(std::mem::size_of::<Rid>(), 4);
    }

    #[test]
    fn to_rid_round_trips() {
        assert_eq!(to_rid(42), 42u32);
        assert_eq!(to_rid(0), 0u32);
    }
}
