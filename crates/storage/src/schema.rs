//! Relation schemas.

use crate::{DataType, Result, StorageError};

/// A named, typed column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column data type.
    pub data_type: DataType,
}

impl Field {
    /// Creates a new field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered collection of [`Field`]s describing a relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(StorageError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// Creates an empty schema.
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// The fields of this schema, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field at position `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Column names in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Concatenates two schemas (used by joins and cross products), prefixing
    /// duplicate names from the right side with `prefix`.
    pub fn concat(&self, other: &Schema, prefix: &str) -> Schema {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            let name = if fields.iter().any(|g| g.name == f.name) {
                format!("{prefix}.{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.data_type));
        }
        Schema { fields }
    }

    /// Projects this schema onto the named columns (in the given order).
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for name in names {
            let idx = self
                .index_of(name)
                .ok_or_else(|| StorageError::UnknownColumn {
                    column: (*name).to_string(),
                    relation: "<schema>".to_string(),
                })?;
            fields.push(self.fields[idx].clone());
        }
        Ok(Schema { fields })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
            Field::new("c", DataType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn index_of_and_field() {
        let s = abc();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.field(2).data_type, DataType::Str);
        assert_eq!(s.names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Float),
        ]);
        assert_eq!(err, Err(StorageError::DuplicateColumn("a".into())));
    }

    #[test]
    fn concat_prefixes_duplicates() {
        let left = abc();
        let right = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("d", DataType::Int),
        ])
        .unwrap();
        let joined = left.concat(&right, "right");
        assert_eq!(joined.names(), vec!["a", "b", "c", "right.a", "d"]);
    }

    #[test]
    fn project_preserves_order() {
        let s = abc();
        let p = s.project(&["c", "a"]).unwrap();
        assert_eq!(p.names(), vec!["c", "a"]);
        assert!(s.project(&["nope"]).is_err());
    }
}
