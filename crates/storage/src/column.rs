//! Typed column storage.

use crate::{DataType, Result, StorageError, Value};

/// A single column of a relation, stored as a typed vector.
///
/// Columns are append-only during relation construction and immutable once the
/// relation is built; lineage indexes reference rows by rid so stable rids are
/// essential.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integer column.
    Int(Vec<i64>),
    /// 64-bit float column.
    Float(Vec<f64>),
    /// UTF-8 string column.
    Str(Vec<String>),
}

impl Column {
    /// Creates an empty column of the given type.
    pub fn new(data_type: DataType) -> Self {
        match data_type {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Str => Column::Str(Vec::new()),
        }
    }

    /// Creates an empty column with pre-allocated capacity.
    pub fn with_capacity(data_type: DataType, capacity: usize) -> Self {
        match data_type {
            DataType::Int => Column::Int(Vec::with_capacity(capacity)),
            DataType::Float => Column::Float(Vec::with_capacity(capacity)),
            DataType::Str => Column::Str(Vec::with_capacity(capacity)),
        }
    }

    /// The data type stored in this column.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value, checking its type against the column type.
    pub fn push(&mut self, value: Value) -> Result<()> {
        match (self, value) {
            (Column::Int(v), Value::Int(x)) => v.push(x),
            (Column::Float(v), Value::Float(x)) => v.push(x),
            (Column::Float(v), Value::Int(x)) => v.push(x as f64),
            (Column::Str(v), Value::Str(x)) => v.push(x),
            (col, value) => {
                return Err(StorageError::TypeMismatch {
                    column: "<column>".to_string(),
                    expected: col.data_type(),
                    actual: value.data_type(),
                })
            }
        }
        Ok(())
    }

    /// Reads the value at `rid` as a dynamically-typed [`Value`].
    pub fn value(&self, rid: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[rid]),
            Column::Float(v) => Value::Float(v[rid]),
            Column::Str(v) => Value::Str(v[rid].clone()),
        }
    }

    /// Typed accessor for integer columns (panics on type mismatch).
    pub fn as_int(&self) -> &[i64] {
        match self {
            Column::Int(v) => v,
            other => panic!("expected INT column, found {}", other.data_type()),
        }
    }

    /// Typed accessor for float columns (panics on type mismatch).
    pub fn as_float(&self) -> &[f64] {
        match self {
            Column::Float(v) => v,
            other => panic!("expected FLOAT column, found {}", other.data_type()),
        }
    }

    /// Typed accessor for string columns (panics on type mismatch).
    pub fn as_str(&self) -> &[String] {
        match self {
            Column::Str(v) => v,
            other => panic!("expected STRING column, found {}", other.data_type()),
        }
    }

    /// Numeric view of the value at `rid`, coercing integers to floats.
    /// Returns `None` for string columns.
    pub fn numeric(&self, rid: usize) -> Option<f64> {
        match self {
            Column::Int(v) => Some(v[rid] as f64),
            Column::Float(v) => Some(v[rid]),
            Column::Str(_) => None,
        }
    }

    /// Approximate heap size in bytes (used to report lineage/annotation
    /// storage overheads in the benchmarks).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Column::Int(v) => v.len() * std::mem::size_of::<i64>(),
            Column::Float(v) => v.len() * std::mem::size_of::<f64>(),
            Column::Str(v) => v
                .iter()
                .map(|s| s.capacity() + std::mem::size_of::<String>())
                .sum(),
        }
    }

    /// Builds a new column containing only the rows in `rids`, in order.
    pub fn gather(&self, rids: &[crate::Rid]) -> Column {
        match self {
            Column::Int(v) => Column::Int(rids.iter().map(|&r| v[r as usize]).collect()),
            Column::Float(v) => Column::Float(rids.iter().map(|&r| v[r as usize]).collect()),
            Column::Str(v) => Column::Str(rids.iter().map(|&r| v[r as usize].clone()).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(3)).unwrap();
        c.push(Value::Int(5)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.value(1), Value::Int(5));
        assert_eq!(c.as_int(), &[3, 5]);
    }

    #[test]
    fn int_coerces_into_float_column() {
        let mut c = Column::new(DataType::Float);
        c.push(Value::Int(3)).unwrap();
        c.push(Value::Float(0.5)).unwrap();
        assert_eq!(c.as_float(), &[3.0, 0.5]);
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut c = Column::new(DataType::Int);
        let err = c.push(Value::Str("x".into()));
        assert!(matches!(err, Err(StorageError::TypeMismatch { .. })));
    }

    #[test]
    fn gather_reorders_rows() {
        let c = Column::Str(vec!["a".into(), "b".into(), "c".into()]);
        let g = c.gather(&[2, 0]);
        assert_eq!(g.as_str(), &["c".to_string(), "a".to_string()]);
    }

    #[test]
    fn numeric_view() {
        let c = Column::Int(vec![4]);
        assert_eq!(c.numeric(0), Some(4.0));
        let c = Column::Str(vec!["x".into()]);
        assert_eq!(c.numeric(0), None);
    }

    #[test]
    fn heap_bytes_grows_with_rows() {
        let small = Column::Int(vec![1, 2]);
        let big = Column::Int(vec![1, 2, 3, 4, 5, 6]);
        assert!(big.heap_bytes() > small.heap_bytes());
    }

    #[test]
    #[should_panic(expected = "expected INT column")]
    fn typed_accessor_panics_on_mismatch() {
        let c = Column::Float(vec![1.0]);
        let _ = c.as_int();
    }
}
