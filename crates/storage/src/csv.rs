//! Minimal CSV import/export for relations.
//!
//! The paper's real-world datasets (Ontime, Physician Compare) ship as CSV
//! files; this module lets a user load such files into rid-addressable
//! relations (and write results back out) without further dependencies. The
//! dialect is deliberately simple: comma-separated, one header row, optional
//! double-quote quoting with `""` escapes.

use std::io::{BufRead, Write};

use crate::{Column, DataType, Field, Relation, Result, Schema, StorageError, Value};

/// Parses one CSV record, honoring double-quoted fields.
fn parse_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    current.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut current));
            }
            c => current.push(c),
        }
    }
    fields.push(current);
    fields
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Infers a column type from sampled textual values: `Int` if every non-empty
/// value parses as an integer, else `Float` if every value parses as a float,
/// else `Str`.
pub fn infer_type<'a>(values: impl Iterator<Item = &'a str>) -> DataType {
    let mut seen_any = false;
    let mut all_int = true;
    let mut all_float = true;
    for v in values {
        if v.is_empty() {
            continue;
        }
        seen_any = true;
        if v.parse::<i64>().is_err() {
            all_int = false;
        }
        if v.parse::<f64>().is_err() {
            all_float = false;
        }
    }
    match (seen_any, all_int, all_float) {
        (false, _, _) => DataType::Str,
        (_, true, _) => DataType::Int,
        (_, _, true) => DataType::Float,
        _ => DataType::Str,
    }
}

/// Reads a relation from CSV text with a header row, inferring column types
/// from the first `sample` data rows.
pub fn read_csv(name: &str, reader: impl BufRead, sample: usize) -> Result<Relation> {
    let mut lines = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(|e| StorageError::RaggedColumns {
            relation: format!("{name}: io error: {e}"),
        })?;
        if !line.trim().is_empty() {
            lines.push(line);
        }
    }
    if lines.is_empty() {
        return Relation::from_columns(name, Schema::empty(), Vec::new());
    }
    let header = parse_record(&lines[0]);
    let records: Vec<Vec<String>> = lines[1..].iter().map(|l| parse_record(l)).collect();
    for rec in &records {
        if rec.len() != header.len() {
            return Err(StorageError::ArityMismatch {
                expected: header.len(),
                actual: rec.len(),
            });
        }
    }

    let types: Vec<DataType> = (0..header.len())
        .map(|c| infer_type(records.iter().take(sample.max(1)).map(|r| r[c].as_str())))
        .collect();

    let fields: Vec<Field> = header
        .iter()
        .zip(&types)
        .map(|(name, dt)| Field::new(name.clone(), *dt))
        .collect();
    let schema = Schema::new(fields)?;

    let mut columns: Vec<Column> = types
        .iter()
        .map(|dt| Column::with_capacity(*dt, records.len()))
        .collect();
    for rec in &records {
        for (c, raw) in rec.iter().enumerate() {
            let value = match types[c] {
                DataType::Int => Value::Int(raw.parse::<i64>().unwrap_or_default()),
                DataType::Float => Value::Float(raw.parse::<f64>().unwrap_or_default()),
                DataType::Str => Value::Str(raw.clone()),
            };
            columns[c].push(value)?;
        }
    }
    Relation::from_columns(name, schema, columns)
}

/// Reads a relation from a CSV string.
pub fn read_csv_str(name: &str, text: &str) -> Result<Relation> {
    read_csv(name, std::io::BufReader::new(text.as_bytes()), 100)
}

/// Writes a relation as CSV (header row plus one record per tuple).
pub fn write_csv(relation: &Relation, mut writer: impl Write) -> std::io::Result<()> {
    let header: Vec<String> = relation
        .schema()
        .fields()
        .iter()
        .map(|f| escape(&f.name))
        .collect();
    writeln!(writer, "{}", header.join(","))?;
    for rid in 0..relation.len() {
        let record: Vec<String> = (0..relation.schema().arity())
            .map(|c| escape(&relation.value(rid, c).to_string()))
            .collect();
        writeln!(writer, "{}", record.join(","))?;
    }
    Ok(())
}

/// Writes a relation to a CSV string.
pub fn write_csv_string(relation: &Relation) -> String {
    let mut out = Vec::new();
    write_csv(relation, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("CSV output is valid UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
id,name,score
1,alice,3.5
2,\"bob, the builder\",4.0
3,carol,2.25
";

    #[test]
    fn round_trip_preserves_values() {
        let rel = read_csv_str("people", SAMPLE).unwrap();
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.schema().names(), vec!["id", "name", "score"]);
        assert_eq!(rel.schema().field(0).data_type, DataType::Int);
        assert_eq!(rel.schema().field(1).data_type, DataType::Str);
        assert_eq!(rel.schema().field(2).data_type, DataType::Float);
        assert_eq!(rel.value(1, 1), Value::Str("bob, the builder".into()));

        let text = write_csv_string(&rel);
        let again = read_csv_str("people", &text).unwrap();
        assert_eq!(again.len(), 3);
        assert_eq!(again.value(1, 1), rel.value(1, 1));
        assert_eq!(again.value(2, 2), Value::Float(2.25));
    }

    #[test]
    fn quoting_and_escapes() {
        assert_eq!(parse_record("a,\"b,c\",d"), vec!["a", "b,c", "d"]);
        assert_eq!(
            parse_record("\"he said \"\"hi\"\"\",x"),
            vec!["he said \"hi\"", "x"]
        );
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn type_inference() {
        assert_eq!(infer_type(["1", "2", "3"].into_iter()), DataType::Int);
        assert_eq!(infer_type(["1.5", "2"].into_iter()), DataType::Float);
        assert_eq!(infer_type(["1", "x"].into_iter()), DataType::Str);
        assert_eq!(infer_type([].into_iter()), DataType::Str);
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let bad = "a,b\n1,2\n3\n";
        assert!(read_csv_str("t", bad).is_err());
    }

    #[test]
    fn empty_input_gives_empty_relation() {
        let rel = read_csv_str("t", "").unwrap();
        assert!(rel.is_empty());
        assert_eq!(rel.schema().arity(), 0);
    }
}
