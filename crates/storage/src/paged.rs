//! Paged columnar storage: relations spilled to a [`BufferPool`]-backed
//! segment store.
//!
//! A [`PagedRelation`] keeps the relation's *numeric* columns (`Int`,
//! `Float`) out of core: each column is a contiguous run of
//! [`PAGE_SIZE`]-byte pages holding [`ROWS_PER_PAGE`] fixed-width 8-byte
//! little-endian values. `Str` columns stay resident — variable-width heap
//! data needs its own page format and the workloads this engine targets
//! (zipfian microbenchmarks, crossfilter dashboards) key and aggregate on
//! numeric attributes.
//!
//! Execution over a paged relation is *chunked*: operators materialize
//! page-aligned row ranges ([`PagedRelation::chunk`]) into transient
//! in-memory [`Relation`]s and run the existing vectorized `*_range`
//! kernels over them. A chunk materialization pins at most one page at a
//! time per column, so any pool budget — including a single page — can
//! execute any query; smaller budgets just evict harder. Trace-time row
//! fetches use [`PagedRelation::gather`], which pins only the pages the
//! requested rids actually touch — this is what makes partition pruning
//! skip physical reads, not just rid scans.
//!
//! `ROWS_PER_PAGE` (1024) is a multiple of the 64-row morsel alignment, so
//! chunk boundaries are always valid morsel boundaries.

use std::sync::Arc;

use smoke_pager::{BufferPool, PageId, PagerError, PAGE_SIZE};

use crate::{Column, DataType, Relation, Result, Rid, Schema, StorageError};

/// Fixed-width 8-byte values stored per page.
pub const ROWS_PER_PAGE: usize = PAGE_SIZE / 8;

/// Default number of rows an operator materializes per chunk (64 pages per
/// numeric column).
pub const DEFAULT_CHUNK_ROWS: usize = 64 * ROWS_PER_PAGE;

impl From<PagerError> for StorageError {
    fn from(err: PagerError) -> Self {
        StorageError::Pager(err.to_string())
    }
}

/// One column of a paged relation: either a run of pages or a resident
/// in-memory column.
#[derive(Debug, Clone)]
enum PagedSlot {
    /// `Int` or `Float` values as fixed-width 8-byte LE pages starting at
    /// `first_page` (the data type lives in the schema).
    Fixed {
        /// First page of this column's contiguous run.
        first_page: PageId,
    },
    /// A column kept in RAM (`Str`).
    Resident(Column),
}

/// A relation whose numeric columns live in a [`BufferPool`]-backed segment
/// store rather than RAM.
#[derive(Debug, Clone)]
pub struct PagedRelation {
    name: String,
    schema: Schema,
    slots: Vec<PagedSlot>,
    len: usize,
    pool: Arc<BufferPool>,
}

impl PagedRelation {
    /// Spills `relation` into `pool`'s segment store. Numeric columns are
    /// written page-by-page directly to the store (bypassing the pool so a
    /// bulk load cannot evict a working set); `Str` columns stay resident.
    pub fn spill(relation: &Relation, pool: &Arc<BufferPool>) -> Result<PagedRelation> {
        let len = relation.len();
        let pages_per_col = len.div_ceil(ROWS_PER_PAGE) as u32;
        let mut slots = Vec::with_capacity(relation.columns().len());
        let mut buf = vec![0u8; PAGE_SIZE];
        for column in relation.columns() {
            let slot = match column {
                Column::Int(values) => {
                    let first_page = pool.allocate(pages_per_col);
                    write_fixed(
                        pool,
                        first_page,
                        &mut buf,
                        values.iter().map(|v| v.to_le_bytes()),
                    )?;
                    PagedSlot::Fixed { first_page }
                }
                Column::Float(values) => {
                    let first_page = pool.allocate(pages_per_col);
                    write_fixed(
                        pool,
                        first_page,
                        &mut buf,
                        values.iter().map(|v| v.to_le_bytes()),
                    )?;
                    PagedSlot::Fixed { first_page }
                }
                Column::Str(_) => PagedSlot::Resident(column.clone()),
            };
            slots.push(slot);
        }
        Ok(PagedRelation {
            name: relation.name().to_string(),
            schema: relation.schema().clone(),
            slots,
            len,
            pool: Arc::clone(pool),
        })
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer pool this relation reads through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Number of paged (numeric) columns.
    pub fn paged_columns(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, PagedSlot::Fixed { .. }))
            .count()
    }

    /// Pages each paged column occupies.
    pub fn pages_per_column(&self) -> u32 {
        self.len.div_ceil(ROWS_PER_PAGE) as u32
    }

    /// Total pages across all paged columns — the relation's on-disk
    /// footprint in pages (the planner's full-scan I/O estimate).
    pub fn total_pages(&self) -> u32 {
        self.pages_per_column() * self.paged_columns() as u32
    }

    /// Materializes rows `[start, end)` of every column as a transient
    /// in-memory [`Relation`] (named like the source so column lookups and
    /// key extraction behave identically). Pins at most one page at a time.
    pub fn chunk(&self, start: usize, end: usize) -> Result<Relation> {
        let columns: Result<Vec<Column>> = (0..self.slots.len())
            .map(|c| self.decode_range(c, start, end))
            .collect();
        Relation::from_columns(self.name.clone(), self.schema.clone(), columns?)
    }

    /// Materializes rows `[start, end)` of one column. For paged columns
    /// this pins each covering page once; resident columns are sliced.
    pub fn decode_range(&self, col: usize, start: usize, end: usize) -> Result<Column> {
        let end = end.min(self.len);
        let start = start.min(end);
        let slot = self
            .slots
            .get(col)
            .ok_or_else(|| StorageError::UnknownColumn {
                column: format!("#{col}"),
                relation: self.name.clone(),
            })?;
        let dtype = self.schema.field(col).data_type;
        match slot {
            PagedSlot::Resident(column) => Ok(slice_column(column, start, end)),
            PagedSlot::Fixed { first_page } => match dtype {
                DataType::Int => {
                    let mut out: Vec<i64> = Vec::with_capacity(end - start);
                    self.scan_fixed(*first_page, start, end, |bytes| {
                        out.push(i64::from_le_bytes(bytes));
                    })?;
                    Ok(Column::Int(out))
                }
                DataType::Float => {
                    let mut out: Vec<f64> = Vec::with_capacity(end - start);
                    self.scan_fixed(*first_page, start, end, |bytes| {
                        out.push(f64::from_le_bytes(bytes));
                    })?;
                    Ok(Column::Float(out))
                }
                DataType::Str => Err(StorageError::Pager(format!(
                    "string column #{col} of `{}` cannot be paged",
                    self.name
                ))),
            },
        }
    }

    /// Streams the 8-byte values of rows `[start, end)` from the page run
    /// starting at `first_page`, pinning each covering page exactly once.
    fn scan_fixed(
        &self,
        first_page: PageId,
        start: usize,
        end: usize,
        mut emit: impl FnMut([u8; 8]),
    ) -> Result<()> {
        let mut rid = start;
        while rid < end {
            let page_no = rid / ROWS_PER_PAGE;
            let page_end = ((page_no + 1) * ROWS_PER_PAGE).min(end);
            let guard = self.pool.pin(PageId(first_page.0 + page_no as u32))?;
            let lo = (rid % ROWS_PER_PAGE) * 8;
            let hi = lo + (page_end - rid) * 8;
            for bytes in guard[lo..hi].chunks_exact(8) {
                emit(bytes.try_into().expect("chunks_exact yields 8-byte slices"));
            }
            rid = page_end;
        }
        Ok(())
    }

    /// Materializes the rows named by `rids` (in order, duplicates allowed)
    /// as an in-memory relation — the paged twin of [`Relation::gather`].
    /// Only the pages containing requested rids are pinned; a run of rids on
    /// one page reuses a single pin. Near-sorted rid lists (the common shape
    /// of lineage results) therefore touch each page once.
    pub fn gather(&self, rids: &[Rid], name: impl Into<String>) -> Result<Relation> {
        let mut columns = Vec::with_capacity(self.slots.len());
        for (c, slot) in self.slots.iter().enumerate() {
            let column = match slot {
                PagedSlot::Resident(column) => column.gather(rids),
                PagedSlot::Fixed { first_page } => match self.schema.field(c).data_type {
                    DataType::Int => {
                        let mut out: Vec<i64> = Vec::with_capacity(rids.len());
                        self.gather_fixed(*first_page, rids, |bytes| {
                            out.push(i64::from_le_bytes(bytes));
                        })?;
                        Column::Int(out)
                    }
                    DataType::Float => {
                        let mut out: Vec<f64> = Vec::with_capacity(rids.len());
                        self.gather_fixed(*first_page, rids, |bytes| {
                            out.push(f64::from_le_bytes(bytes));
                        })?;
                        Column::Float(out)
                    }
                    DataType::Str => {
                        return Err(StorageError::Pager(format!(
                            "string column #{c} of `{}` cannot be paged",
                            self.name
                        )))
                    }
                },
            };
            columns.push(column);
        }
        Relation::from_columns(name, self.schema.clone(), columns)
    }

    /// Fetches the 8-byte value of each rid in `rids`, keeping the current
    /// page pinned across consecutive rids that land on it.
    fn gather_fixed(
        &self,
        first_page: PageId,
        rids: &[Rid],
        mut emit: impl FnMut([u8; 8]),
    ) -> Result<()> {
        let mut current: Option<(usize, smoke_pager::PageGuard<'_>)> = None;
        for &rid in rids {
            let rid = rid as usize;
            if rid >= self.len {
                return Err(StorageError::Pager(format!(
                    "rid {rid} out of bounds for `{}` (len {})",
                    self.name, self.len
                )));
            }
            let page_no = rid / ROWS_PER_PAGE;
            if !matches!(&current, Some((p, _)) if *p == page_no) {
                // Release the previous pin *before* acquiring the next one,
                // so a budget of a single frame can always make progress.
                drop(current.take());
                let g = self.pool.pin(PageId(first_page.0 + page_no as u32))?;
                current = Some((page_no, g));
            }
            let Some((_, guard)) = &current else {
                continue; // unreachable: just pinned above
            };
            let lo = (rid % ROWS_PER_PAGE) * 8;
            emit(
                guard[lo..lo + 8]
                    .try_into()
                    .expect("8-byte slice within a page"),
            );
        }
        Ok(())
    }

    /// The distinct pages of one paged column that `rids` touch. Used by
    /// tests and benches to assert pruning reads strictly fewer pages.
    pub fn pages_touched(&self, rids: &[Rid]) -> usize {
        let mut pages: Vec<usize> = rids.iter().map(|&r| r as usize / ROWS_PER_PAGE).collect();
        pages.sort_unstable();
        pages.dedup();
        pages.len()
    }

    /// Fraction of this relation's data pages currently resident in the
    /// buffer pool, in `[0, 1]`. The planner's I/O cost term uses this to
    /// discount reads that a warm pool already absorbed. Relations with no
    /// paged columns report `1.0` (nothing would ever hit disk).
    pub fn resident_fraction(&self) -> f64 {
        let per_col = self.pages_per_column();
        let pages: Vec<PageId> = self
            .slots
            .iter()
            .filter_map(|s| match s {
                PagedSlot::Fixed { first_page } => Some(*first_page),
                PagedSlot::Resident(_) => None,
            })
            .flat_map(|first| (0..per_col).map(move |p| PageId(first.0 + p)))
            .collect();
        self.pool.resident_fraction(&pages)
    }

    /// Reads the whole relation back into RAM (the inverse of
    /// [`PagedRelation::spill`]).
    pub fn materialize(&self) -> Result<Relation> {
        self.chunk(0, self.len)
    }

    /// Approximate resident heap footprint: resident (string) columns plus
    /// metadata. The paged columns' bytes live in the segment store and are
    /// bounded by the pool budget, not counted here.
    pub fn heap_bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|s| match s {
                PagedSlot::Resident(c) => c.heap_bytes(),
                PagedSlot::Fixed { .. } => std::mem::size_of::<PagedSlot>(),
            })
            .sum()
    }
}

/// Writes an iterator of fixed-width 8-byte values as a page run starting at
/// `first_page`, directly to the store (no pool residency).
fn write_fixed(
    pool: &BufferPool,
    first_page: PageId,
    buf: &mut [u8],
    values: impl Iterator<Item = [u8; 8]>,
) -> Result<()> {
    let mut page = 0u32;
    let mut filled = 0usize;
    for value in values {
        buf[filled..filled + 8].copy_from_slice(&value);
        filled += 8;
        if filled == PAGE_SIZE {
            pool.store().write_page(PageId(first_page.0 + page), buf)?;
            page += 1;
            filled = 0;
        }
    }
    if filled > 0 {
        buf[filled..].fill(0);
        pool.store().write_page(PageId(first_page.0 + page), buf)?;
    }
    Ok(())
}

/// Clones rows `[start, end)` of a resident column.
fn slice_column(column: &Column, start: usize, end: usize) -> Column {
    match column {
        Column::Int(v) => Column::Int(v[start..end].to_vec()),
        Column::Float(v) => Column::Float(v[start..end].to_vec()),
        Column::Str(v) => Column::Str(v[start..end].to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;
    use smoke_pager::{ReplacementPolicy, SegmentStore};

    fn test_pool(budget: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(
            SegmentStore::in_memory(),
            budget,
            ReplacementPolicy::Sieve,
        ))
    }

    fn sample(rows: usize) -> Relation {
        let mut b = Relation::builder("t")
            .column("id", DataType::Int)
            .column("v", DataType::Float)
            .column("tag", DataType::Str);
        for i in 0..rows {
            b = b.row(vec![
                Value::Int(i as i64),
                Value::Float(i as f64 * 0.5),
                Value::Str(format!("tag{}", i % 3)),
            ]);
        }
        b.build().unwrap()
    }

    #[test]
    fn spill_and_materialize_round_trip() {
        // 2500 rows spans 3 pages per numeric column.
        let rel = sample(2500);
        let pool = test_pool(2);
        let paged = PagedRelation::spill(&rel, &pool).unwrap();
        assert_eq!(paged.len(), 2500);
        assert_eq!(paged.pages_per_column(), 3);
        assert_eq!(paged.paged_columns(), 2);
        assert_eq!(paged.total_pages(), 6);
        let back = paged.materialize().unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn chunks_cross_page_boundaries() {
        let rel = sample(2500);
        let pool = test_pool(1); // budget of one page still executes
        let paged = PagedRelation::spill(&rel, &pool).unwrap();
        let chunk = paged.chunk(1000, 1100).unwrap();
        assert_eq!(chunk.len(), 100);
        assert_eq!(chunk.value(0, 0), Value::Int(1000));
        assert_eq!(chunk.value(99, 1), Value::Float(1099.0 * 0.5));
        assert_eq!(chunk.value(50, 2), Value::Str("tag0".into()));
        // End is clamped to the relation length.
        assert_eq!(paged.chunk(2400, 9999).unwrap().len(), 100);
    }

    #[test]
    fn gather_matches_in_memory_gather() {
        let rel = sample(2500);
        let pool = test_pool(2);
        let paged = PagedRelation::spill(&rel, &pool).unwrap();
        let rids: Vec<Rid> = vec![0, 7, 7, 1023, 1024, 2499];
        let expect = rel.gather(&rids, "g");
        let got = paged.gather(&rids, "g").unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn gather_touches_only_needed_pages() {
        let rel = sample(4096); // 4 pages per numeric column
        let pool = test_pool(8);
        let paged = PagedRelation::spill(&rel, &pool).unwrap();
        pool.reset_stats();
        // All rids on one page: 2 numeric columns → 2 page reads.
        paged.gather(&[2048, 2049, 2050], "g").unwrap();
        assert_eq!(pool.stats().disk_reads, 2);
        assert_eq!(paged.pages_touched(&[2048, 2049, 2050]), 1);
        assert_eq!(paged.pages_touched(&[0, 1024, 2048, 3072]), 4);
    }

    #[test]
    fn out_of_bounds_gather_is_a_typed_error() {
        let rel = sample(10);
        let pool = test_pool(2);
        let paged = PagedRelation::spill(&rel, &pool).unwrap();
        assert!(matches!(
            paged.gather(&[99], "g"),
            Err(StorageError::Pager(_))
        ));
    }

    #[test]
    fn float_bits_survive_the_round_trip() {
        let mut b = Relation::builder("f").column("v", DataType::Float);
        for v in [0.0, -0.0, f64::MIN, f64::MAX, f64::NAN, 1e-300] {
            b = b.row(vec![Value::Float(v)]);
        }
        let rel = b.build().unwrap();
        let pool = test_pool(1);
        let paged = PagedRelation::spill(&rel, &pool).unwrap();
        let back = paged.materialize().unwrap();
        let bits: Vec<u64> = back
            .column(0)
            .as_float()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let expect: Vec<u64> = rel
            .column(0)
            .as_float()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(bits, expect);
    }

    #[test]
    fn empty_relation_spills_to_zero_pages() {
        let rel = Relation::builder("e")
            .column("x", DataType::Int)
            .build()
            .unwrap();
        let pool = test_pool(1);
        let paged = PagedRelation::spill(&rel, &pool).unwrap();
        assert_eq!(paged.total_pages(), 0);
        assert!(paged.is_empty());
        assert_eq!(paged.materialize().unwrap().len(), 0);
    }
}
