//! Paged columnar storage: relations spilled to a [`BufferPool`]-backed
//! segment store.
//!
//! A [`PagedRelation`] keeps every column out of core. Numeric columns
//! (`Int`, `Float`) are each a contiguous run of [`PAGE_SIZE`]-byte pages
//! holding [`ROWS_PER_PAGE`] fixed-width 8-byte little-endian values. `Str`
//! columns spill as *two* runs — an offsets run of `len + 1` u64 prefix
//! sums (laid out exactly like a numeric column) and a bytes run of the
//! concatenated UTF-8 payloads — so text tables obey `set_memory_budget`
//! instead of silently staying resident.
//!
//! Execution over a paged relation is *chunked*: operators materialize
//! page-aligned row ranges ([`PagedRelation::chunk`]) into transient
//! in-memory [`Relation`]s and run the existing vectorized `*_range`
//! kernels over them. A chunk materialization pins at most one page at a
//! time per column, so any pool budget — including a single page — can
//! execute any query; smaller budgets just evict harder. Trace-time row
//! fetches use [`PagedRelation::gather`], which pins only the pages the
//! requested rids actually touch — this is what makes partition pruning
//! skip physical reads, not just rid scans.
//!
//! `ROWS_PER_PAGE` (1024) is a multiple of the 64-row morsel alignment, so
//! chunk boundaries are always valid morsel boundaries.

use std::sync::Arc;

use smoke_pager::{BufferPool, PageId, PagerError, PAGE_SIZE};

use crate::{Column, DataType, Relation, Result, Rid, Schema, StorageError};

/// Fixed-width 8-byte values stored per page.
pub const ROWS_PER_PAGE: usize = PAGE_SIZE / 8;

/// Default number of rows an operator materializes per chunk (64 pages per
/// numeric column).
pub const DEFAULT_CHUNK_ROWS: usize = 64 * ROWS_PER_PAGE;

impl From<PagerError> for StorageError {
    fn from(err: PagerError) -> Self {
        StorageError::Pager(err.to_string())
    }
}

/// One column of a paged relation: a fixed-width page run, or a pair of
/// runs for variable-width strings.
#[derive(Debug, Clone)]
enum PagedSlot {
    /// `Int` or `Float` values as fixed-width 8-byte LE pages starting at
    /// `first_page` (the data type lives in the schema).
    Fixed {
        /// First page of this column's contiguous run.
        first_page: PageId,
    },
    /// A `Str` column as an offsets run (`len + 1` u64 prefix sums into the
    /// payload stream, fixed-width layout) plus a bytes run of the
    /// concatenated UTF-8 payloads.
    Var {
        /// First page of the offsets run.
        offsets_first_page: PageId,
        /// First page of the payload-bytes run.
        bytes_first_page: PageId,
        /// Pages in the offsets run.
        offsets_pages: u32,
        /// Pages in the payload run.
        bytes_pages: u32,
    },
}

/// A relation whose numeric columns live in a [`BufferPool`]-backed segment
/// store rather than RAM.
#[derive(Debug, Clone)]
pub struct PagedRelation {
    name: String,
    schema: Schema,
    slots: Vec<PagedSlot>,
    len: usize,
    pool: Arc<BufferPool>,
}

impl PagedRelation {
    /// Spills `relation` into `pool`'s segment store. Every column is
    /// written page-by-page directly to the store (bypassing the pool so a
    /// bulk load cannot evict a working set); `Str` columns become an
    /// offsets run plus a payload-bytes run.
    pub fn spill(relation: &Relation, pool: &Arc<BufferPool>) -> Result<PagedRelation> {
        let len = relation.len();
        let pages_per_col = len.div_ceil(ROWS_PER_PAGE) as u32;
        let mut slots = Vec::with_capacity(relation.columns().len());
        let mut buf = vec![0u8; PAGE_SIZE];
        for column in relation.columns() {
            let slot = match column {
                Column::Int(values) => {
                    let first_page = pool.allocate(pages_per_col);
                    write_fixed(
                        pool,
                        first_page,
                        &mut buf,
                        values.iter().map(|v| v.to_le_bytes()),
                    )?;
                    PagedSlot::Fixed { first_page }
                }
                Column::Float(values) => {
                    let first_page = pool.allocate(pages_per_col);
                    write_fixed(
                        pool,
                        first_page,
                        &mut buf,
                        values.iter().map(|v| v.to_le_bytes()),
                    )?;
                    PagedSlot::Fixed { first_page }
                }
                Column::Str(values) => {
                    let mut offsets: Vec<u64> = Vec::with_capacity(len + 1);
                    let mut acc = 0u64;
                    offsets.push(0);
                    for s in values {
                        acc += s.len() as u64;
                        offsets.push(acc);
                    }
                    let offsets_pages = offsets.len().div_ceil(ROWS_PER_PAGE) as u32;
                    let bytes_pages = (acc as usize).div_ceil(PAGE_SIZE) as u32;
                    let offsets_first_page = pool.allocate(offsets_pages);
                    let bytes_first_page = pool.allocate(bytes_pages);
                    write_fixed(
                        pool,
                        offsets_first_page,
                        &mut buf,
                        offsets.iter().map(|v| v.to_le_bytes()),
                    )?;
                    write_bytes_run(
                        pool,
                        bytes_first_page,
                        &mut buf,
                        values.iter().map(|s| s.as_bytes()),
                    )?;
                    PagedSlot::Var {
                        offsets_first_page,
                        bytes_first_page,
                        offsets_pages,
                        bytes_pages,
                    }
                }
            };
            slots.push(slot);
        }
        Ok(PagedRelation {
            name: relation.name().to_string(),
            schema: relation.schema().clone(),
            slots,
            len,
            pool: Arc::clone(pool),
        })
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer pool this relation reads through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Number of paged (numeric) columns.
    pub fn paged_columns(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, PagedSlot::Fixed { .. }))
            .count()
    }

    /// Pages each paged column occupies.
    pub fn pages_per_column(&self) -> u32 {
        self.len.div_ceil(ROWS_PER_PAGE) as u32
    }

    /// Total pages across all columns — the relation's on-disk footprint
    /// in pages (the planner's full-scan I/O estimate). Includes string
    /// columns' offsets and payload runs.
    pub fn total_pages(&self) -> u32 {
        let fixed = self.pages_per_column() * self.paged_columns() as u32;
        let var: u32 = self
            .slots
            .iter()
            .map(|s| match s {
                PagedSlot::Var {
                    offsets_pages,
                    bytes_pages,
                    ..
                } => offsets_pages + bytes_pages,
                PagedSlot::Fixed { .. } => 0,
            })
            .sum();
        fixed + var
    }

    /// Wraps already-written fixed-width page runs (one per column of
    /// `schema`, all `Int` or `Float`) as a paged relation of `len` rows.
    /// The grace-hash join uses this to view its spilled partitions as
    /// relations without copying them back through RAM.
    pub fn from_fixed_runs(
        name: impl Into<String>,
        schema: Schema,
        first_pages: &[PageId],
        len: usize,
        pool: &Arc<BufferPool>,
    ) -> Result<PagedRelation> {
        let name = name.into();
        if first_pages.len() != schema.fields().len() {
            return Err(StorageError::Pager(format!(
                "`{name}`: {} page runs for {} schema fields",
                first_pages.len(),
                schema.fields().len()
            )));
        }
        for (i, field) in schema.fields().iter().enumerate() {
            if field.data_type == DataType::Str {
                return Err(StorageError::Pager(format!(
                    "`{name}`: field #{i} is Str; fixed runs hold only numeric columns"
                )));
            }
        }
        Ok(PagedRelation {
            slots: first_pages
                .iter()
                .map(|&first_page| PagedSlot::Fixed { first_page })
                .collect(),
            name,
            schema,
            len,
            pool: Arc::clone(pool),
        })
    }

    /// Hints the buffer pool to read ahead the pages covering rows
    /// `[start, end)` of every column. Advisory: a no-op when the pool has
    /// no prefetcher, and never an error. For string columns only the
    /// offsets run is hinted (payload pages are unknown until the offsets
    /// are read).
    pub fn prefetch_rows(&self, start: usize, end: usize) {
        if !self.pool.prefetch_enabled() {
            return;
        }
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        let first_no = start / ROWS_PER_PAGE;
        let last_no = (end - 1) / ROWS_PER_PAGE;
        let mut pages: Vec<PageId> = Vec::new();
        for slot in &self.slots {
            match slot {
                PagedSlot::Fixed { first_page } => {
                    pages.extend((first_no..=last_no).map(|p| PageId(first_page.0 + p as u32)));
                }
                PagedSlot::Var {
                    offsets_first_page, ..
                } => {
                    // Rows [start, end) read offsets [start, end].
                    let last_off = end / ROWS_PER_PAGE;
                    pages.extend(
                        (first_no..=last_off).map(|p| PageId(offsets_first_page.0 + p as u32)),
                    );
                }
            }
        }
        self.pool.prefetch(&pages);
    }

    /// Hints the pages a [`PagedRelation::gather`] of `rids` would pin on
    /// the fixed-width columns. Advisory and capped: enormous rid lists
    /// hint only a prefix (the gather itself still reads everything).
    pub fn prefetch_rids(&self, rids: &[Rid]) {
        const MAX_HINTS: usize = 16_384;
        if !self.pool.prefetch_enabled() || rids.is_empty() {
            return;
        }
        // Dedup consecutive page numbers once, then replicate the list per
        // fixed column (every fixed run shares the same page layout): a
        // C-column relation walks the rid list once, not C times.
        let mut nos: Vec<u32> = Vec::new();
        let mut last = u32::MAX;
        for &rid in rids {
            if rid as usize >= self.len {
                continue;
            }
            let no = (rid as usize / ROWS_PER_PAGE) as u32;
            if no != last {
                nos.push(no);
                last = no;
                if nos.len() >= MAX_HINTS {
                    break;
                }
            }
        }
        let mut pages: Vec<PageId> = Vec::new();
        for slot in &self.slots {
            if let PagedSlot::Fixed { first_page } = slot {
                for &no in &nos {
                    if pages.len() >= MAX_HINTS {
                        self.pool.prefetch(&pages);
                        return;
                    }
                    pages.push(PageId(first_page.0 + no));
                }
            }
        }
        self.pool.prefetch(&pages);
    }

    /// Materializes rows `[start, end)` of every column as a transient
    /// in-memory [`Relation`] (named like the source so column lookups and
    /// key extraction behave identically). Pins at most one page at a time.
    pub fn chunk(&self, start: usize, end: usize) -> Result<Relation> {
        let columns: Result<Vec<Column>> = (0..self.slots.len())
            .map(|c| self.decode_range(c, start, end))
            .collect();
        Relation::from_columns(self.name.clone(), self.schema.clone(), columns?)
    }

    /// Materializes rows `[start, end)` of one column. For paged columns
    /// this pins each covering page once; resident columns are sliced.
    pub fn decode_range(&self, col: usize, start: usize, end: usize) -> Result<Column> {
        let end = end.min(self.len);
        let start = start.min(end);
        let slot = self
            .slots
            .get(col)
            .ok_or_else(|| StorageError::UnknownColumn {
                column: format!("#{col}"),
                relation: self.name.clone(),
            })?;
        let dtype = self.schema.field(col).data_type;
        match slot {
            PagedSlot::Fixed { first_page } => match dtype {
                DataType::Int => {
                    let mut out: Vec<i64> = Vec::with_capacity(end - start);
                    self.scan_fixed(*first_page, start, end, |bytes| {
                        out.push(i64::from_le_bytes(bytes));
                    })?;
                    Ok(Column::Int(out))
                }
                DataType::Float => {
                    let mut out: Vec<f64> = Vec::with_capacity(end - start);
                    self.scan_fixed(*first_page, start, end, |bytes| {
                        out.push(f64::from_le_bytes(bytes));
                    })?;
                    Ok(Column::Float(out))
                }
                DataType::Str => Err(StorageError::Pager(format!(
                    "string column #{col} of `{}` stored in a fixed-width run",
                    self.name
                ))),
            },
            PagedSlot::Var {
                offsets_first_page,
                bytes_first_page,
                ..
            } => {
                if start == end {
                    return Ok(Column::Str(Vec::new()));
                }
                // Rows [start, end) need offsets [start, end] inclusive.
                let mut offs: Vec<u64> = Vec::with_capacity(end - start + 1);
                self.scan_fixed(*offsets_first_page, start, end + 1, |bytes| {
                    offs.push(u64::from_le_bytes(bytes));
                })?;
                self.decode_strings(*bytes_first_page, &offs)
            }
        }
    }

    /// Decodes the strings delimited by the prefix sums in `offs` from the
    /// payload run at `bytes_first_page`.
    fn decode_strings(&self, bytes_first_page: PageId, offs: &[u64]) -> Result<Column> {
        let (Some(&lo), Some(&hi)) = (offs.first(), offs.last()) else {
            return Ok(Column::Str(Vec::new()));
        };
        if hi < lo {
            return Err(StorageError::Pager(format!(
                "corrupt string offsets in `{}`: {hi} < {lo}",
                self.name
            )));
        }
        let mut bytes = vec![0u8; (hi - lo) as usize];
        self.read_bytes_range(bytes_first_page, lo, &mut bytes)?;
        let mut out: Vec<String> = Vec::with_capacity(offs.len().saturating_sub(1));
        for w in offs.windows(2) {
            let (a, b) = ((w[0] - lo) as usize, (w[1] - lo) as usize);
            let s = std::str::from_utf8(&bytes[a..b]).map_err(|e| {
                StorageError::Pager(format!(
                    "invalid UTF-8 in paged string column of `{}`: {e}",
                    self.name
                ))
            })?;
            out.push(s.to_string());
        }
        Ok(Column::Str(out))
    }

    /// Copies payload bytes `[start_byte, start_byte + out.len())` from the
    /// run at `first_page` into `out`, pinning one page at a time (so a
    /// single-frame budget still works, and strings may span pages).
    fn read_bytes_range(&self, first_page: PageId, start_byte: u64, out: &mut [u8]) -> Result<()> {
        let mut pos = 0usize;
        while pos < out.len() {
            let abs = start_byte as usize + pos;
            let page_no = abs / PAGE_SIZE;
            let lo = abs % PAGE_SIZE;
            let take = (PAGE_SIZE - lo).min(out.len() - pos);
            let guard = self.pool.pin(PageId(first_page.0 + page_no as u32))?;
            out[pos..pos + take].copy_from_slice(&guard[lo..lo + take]);
            pos += take;
        }
        Ok(())
    }

    /// Streams the 8-byte values of rows `[start, end)` from the page run
    /// starting at `first_page`, pinning each covering page exactly once.
    fn scan_fixed(
        &self,
        first_page: PageId,
        start: usize,
        end: usize,
        mut emit: impl FnMut([u8; 8]),
    ) -> Result<()> {
        let mut rid = start;
        while rid < end {
            let page_no = rid / ROWS_PER_PAGE;
            let page_end = ((page_no + 1) * ROWS_PER_PAGE).min(end);
            let guard = self.pool.pin(PageId(first_page.0 + page_no as u32))?;
            let lo = (rid % ROWS_PER_PAGE) * 8;
            let hi = lo + (page_end - rid) * 8;
            for bytes in guard[lo..hi].chunks_exact(8) {
                emit(bytes.try_into().expect("chunks_exact yields 8-byte slices"));
            }
            rid = page_end;
        }
        Ok(())
    }

    /// Materializes the rows named by `rids` (in order, duplicates allowed)
    /// as an in-memory relation — the paged twin of [`Relation::gather`].
    /// Only the pages containing requested rids are pinned; a run of rids on
    /// one page reuses a single pin. Near-sorted rid lists (the common shape
    /// of lineage results) therefore touch each page once.
    pub fn gather(&self, rids: &[Rid], name: impl Into<String>) -> Result<Relation> {
        let mut columns = Vec::with_capacity(self.slots.len());
        for (c, slot) in self.slots.iter().enumerate() {
            let column = match slot {
                PagedSlot::Fixed { first_page } => match self.schema.field(c).data_type {
                    DataType::Int => {
                        let mut out: Vec<i64> = Vec::with_capacity(rids.len());
                        self.gather_fixed(*first_page, rids, |bytes| {
                            out.push(i64::from_le_bytes(bytes));
                        })?;
                        Column::Int(out)
                    }
                    DataType::Float => {
                        let mut out: Vec<f64> = Vec::with_capacity(rids.len());
                        self.gather_fixed(*first_page, rids, |bytes| {
                            out.push(f64::from_le_bytes(bytes));
                        })?;
                        Column::Float(out)
                    }
                    DataType::Str => {
                        return Err(StorageError::Pager(format!(
                            "string column #{c} of `{}` stored in a fixed-width run",
                            self.name
                        )))
                    }
                },
                PagedSlot::Var {
                    offsets_first_page,
                    bytes_first_page,
                    ..
                } => Column::Str(self.gather_var(*offsets_first_page, *bytes_first_page, rids)?),
            };
            columns.push(column);
        }
        Relation::from_columns(name, self.schema.clone(), columns)
    }

    /// Gathers string payloads for `rids`: first the `(start, end)` offset
    /// pair per rid (page-cached over the offsets run), then the payload
    /// bytes. At most one page pin is held at any moment.
    fn gather_var(
        &self,
        offsets_first_page: PageId,
        bytes_first_page: PageId,
        rids: &[Rid],
    ) -> Result<Vec<String>> {
        let mut pairs: Vec<(u64, u64)> = Vec::with_capacity(rids.len());
        {
            let mut current: Option<(usize, smoke_pager::PageGuard<'_>)> = None;
            for &rid in rids {
                let rid = rid as usize;
                if rid >= self.len {
                    return Err(StorageError::Pager(format!(
                        "rid {rid} out of bounds for `{}` (len {})",
                        self.name, self.len
                    )));
                }
                let a = self.read_offset(offsets_first_page, &mut current, rid)?;
                let b = self.read_offset(offsets_first_page, &mut current, rid + 1)?;
                if b < a {
                    return Err(StorageError::Pager(format!(
                        "corrupt string offsets in `{}`: {b} < {a}",
                        self.name
                    )));
                }
                pairs.push((a, b));
            }
            // The offsets pin drops here, before any payload page is pinned.
        }
        let mut out: Vec<String> = Vec::with_capacity(rids.len());
        for &(a, b) in &pairs {
            let mut bytes = vec![0u8; (b - a) as usize];
            self.read_bytes_range(bytes_first_page, a, &mut bytes)?;
            let s = String::from_utf8(bytes).map_err(|e| {
                StorageError::Pager(format!(
                    "invalid UTF-8 in paged string column of `{}`: {e}",
                    self.name
                ))
            })?;
            out.push(s);
        }
        Ok(out)
    }

    /// Reads one u64 from the offsets run, reusing `current`'s pin when the
    /// index lands on the already-pinned page.
    fn read_offset<'p>(
        &'p self,
        first_page: PageId,
        current: &mut Option<(usize, smoke_pager::PageGuard<'p>)>,
        idx: usize,
    ) -> Result<u64> {
        let page_no = idx / ROWS_PER_PAGE;
        if !matches!(current, Some((p, _)) if *p == page_no) {
            drop(current.take());
            let g = self.pool.pin(PageId(first_page.0 + page_no as u32))?;
            *current = Some((page_no, g));
        }
        let Some((_, guard)) = current else {
            return Err(StorageError::Pager("offset page pin lost".into()));
        };
        let lo = (idx % ROWS_PER_PAGE) * 8;
        Ok(u64::from_le_bytes(
            guard[lo..lo + 8]
                .try_into()
                .expect("8-byte slice within a page"),
        ))
    }

    /// Fetches the 8-byte value of each rid in `rids`, keeping the current
    /// page pinned across consecutive rids that land on it.
    fn gather_fixed(
        &self,
        first_page: PageId,
        rids: &[Rid],
        mut emit: impl FnMut([u8; 8]),
    ) -> Result<()> {
        let mut i = 0usize;
        while let Some(&rid0) = rids.get(i) {
            let rid0 = rid0 as usize;
            if rid0 >= self.len {
                return Err(StorageError::Pager(format!(
                    "rid {rid0} out of bounds for `{}` (len {})",
                    self.name, self.len
                )));
            }
            let page_no = rid0 / ROWS_PER_PAGE;
            let page_base = page_no * ROWS_PER_PAGE;
            // One pin serves every following rid on the same page; the
            // guard drops before the next pin, so a budget of a single
            // frame can always make progress. The inner loop stays on the
            // borrowed page slice — no per-rid pin bookkeeping.
            let guard = self.pool.pin(PageId(first_page.0 + page_no as u32))?;
            let page: &[u8] = &guard;
            while let Some(&rid) = rids.get(i) {
                let rid = rid as usize;
                if rid < page_base || rid >= page_base + ROWS_PER_PAGE {
                    break;
                }
                if rid >= self.len {
                    return Err(StorageError::Pager(format!(
                        "rid {rid} out of bounds for `{}` (len {})",
                        self.name, self.len
                    )));
                }
                let lo = (rid - page_base) * 8;
                match page.get(lo..lo + 8).map(TryInto::try_into) {
                    Some(Ok(bytes)) => emit(bytes),
                    _ => {
                        return Err(StorageError::Pager(format!(
                            "value bytes of rid {rid} out of page bounds in `{}`",
                            self.name
                        )))
                    }
                }
                i += 1;
            }
        }
        Ok(())
    }

    /// The distinct pages of one paged column that `rids` touch. Used by
    /// tests and benches to assert pruning reads strictly fewer pages.
    pub fn pages_touched(&self, rids: &[Rid]) -> usize {
        let mut pages: Vec<usize> = rids.iter().map(|&r| r as usize / ROWS_PER_PAGE).collect();
        pages.sort_unstable();
        pages.dedup();
        pages.len()
    }

    /// Fraction of this relation's data pages currently resident in the
    /// buffer pool, in `[0, 1]`. The planner's I/O cost term uses this to
    /// discount reads that a warm pool already absorbed. A relation with no
    /// pages at all (zero rows) reports `0.0`.
    pub fn resident_fraction(&self) -> f64 {
        let per_col = self.pages_per_column();
        let mut pages: Vec<PageId> = Vec::new();
        for slot in &self.slots {
            match slot {
                PagedSlot::Fixed { first_page } => {
                    pages.extend((0..per_col).map(|p| PageId(first_page.0 + p)));
                }
                PagedSlot::Var {
                    offsets_first_page,
                    bytes_first_page,
                    offsets_pages,
                    bytes_pages,
                    ..
                } => {
                    pages.extend((0..*offsets_pages).map(|p| PageId(offsets_first_page.0 + p)));
                    pages.extend((0..*bytes_pages).map(|p| PageId(bytes_first_page.0 + p)));
                }
            }
        }
        self.pool.resident_fraction(&pages)
    }

    /// Reads the whole relation back into RAM (the inverse of
    /// [`PagedRelation::spill`]).
    pub fn materialize(&self) -> Result<Relation> {
        self.chunk(0, self.len)
    }

    /// Approximate resident heap footprint: slot metadata only — every
    /// column's bytes live in the segment store and are bounded by the
    /// pool budget, not counted here.
    pub fn heap_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<PagedSlot>()
    }
}

/// Streaming writer for one fixed-width 8-byte-value page run, writing full
/// pages directly to the store (no pool residency, so a bulk spill cannot
/// evict a working set). The grace-hash join uses one per spilled partition
/// column; the run is sized up front from the partition histogram.
pub struct FixedRunWriter {
    pool: Arc<BufferPool>,
    first_page: PageId,
    capacity: usize,
    page: u32,
    buf: Vec<u8>,
    filled: usize,
    rows: usize,
}

impl FixedRunWriter {
    /// Allocates a run sized for exactly `capacity_rows` values.
    pub fn new(pool: &Arc<BufferPool>, capacity_rows: usize) -> FixedRunWriter {
        let pages = capacity_rows.div_ceil(ROWS_PER_PAGE) as u32;
        FixedRunWriter {
            pool: Arc::clone(pool),
            first_page: pool.allocate(pages),
            capacity: capacity_rows,
            page: 0,
            buf: vec![0u8; PAGE_SIZE],
            filled: 0,
            rows: 0,
        }
    }

    /// First page of the run.
    pub fn first_page(&self) -> PageId {
        self.first_page
    }

    /// Values appended so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Appends one 8-byte value; errors once `capacity_rows` values have
    /// been written (more would stomp pages allocated to someone else, and
    /// an over-full partition means the histogram pass miscounted).
    pub fn push(&mut self, value: [u8; 8]) -> Result<()> {
        if self.rows >= self.capacity {
            return Err(StorageError::Pager(format!(
                "fixed-run writer overflow: run sized for {} rows is full",
                self.capacity
            )));
        }
        self.buf[self.filled..self.filled + 8].copy_from_slice(&value);
        self.filled += 8;
        self.rows += 1;
        if self.filled == PAGE_SIZE {
            self.pool
                .store()
                .write_page(PageId(self.first_page.0 + self.page), &self.buf)?;
            self.page += 1;
            self.filled = 0;
        }
        Ok(())
    }

    /// Flushes the trailing partial page and returns `(first_page, rows)`.
    pub fn finish(mut self) -> Result<(PageId, usize)> {
        if self.filled > 0 {
            self.buf[self.filled..].fill(0);
            self.pool
                .store()
                .write_page(PageId(self.first_page.0 + self.page), &self.buf)?;
            self.filled = 0;
        }
        Ok((self.first_page, self.rows))
    }
}

impl std::fmt::Debug for FixedRunWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FixedRunWriter")
            .field("first_page", &self.first_page)
            .field("rows", &self.rows)
            .finish()
    }
}

/// Writes an iterator of fixed-width 8-byte values as a page run starting at
/// `first_page`, directly to the store (no pool residency).
fn write_fixed(
    pool: &BufferPool,
    first_page: PageId,
    buf: &mut [u8],
    values: impl Iterator<Item = [u8; 8]>,
) -> Result<()> {
    let mut page = 0u32;
    let mut filled = 0usize;
    for value in values {
        buf[filled..filled + 8].copy_from_slice(&value);
        filled += 8;
        if filled == PAGE_SIZE {
            pool.store().write_page(PageId(first_page.0 + page), buf)?;
            page += 1;
            filled = 0;
        }
    }
    if filled > 0 {
        buf[filled..].fill(0);
        pool.store().write_page(PageId(first_page.0 + page), buf)?;
    }
    Ok(())
}

/// Writes an iterator of byte slices as one concatenated page run starting
/// at `first_page`, directly to the store (no pool residency).
fn write_bytes_run<'a>(
    pool: &BufferPool,
    first_page: PageId,
    buf: &mut [u8],
    chunks: impl Iterator<Item = &'a [u8]>,
) -> Result<()> {
    let mut page = 0u32;
    let mut filled = 0usize;
    for mut chunk in chunks {
        while !chunk.is_empty() {
            let take = chunk.len().min(PAGE_SIZE - filled);
            buf[filled..filled + take].copy_from_slice(&chunk[..take]);
            filled += take;
            chunk = &chunk[take..];
            if filled == PAGE_SIZE {
                pool.store().write_page(PageId(first_page.0 + page), buf)?;
                page += 1;
                filled = 0;
            }
        }
    }
    if filled > 0 {
        buf[filled..].fill(0);
        pool.store().write_page(PageId(first_page.0 + page), buf)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;
    use smoke_pager::{ReplacementPolicy, SegmentStore};

    fn test_pool(budget: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(
            SegmentStore::in_memory(),
            budget,
            ReplacementPolicy::Sieve,
        ))
    }

    fn sample(rows: usize) -> Relation {
        let mut b = Relation::builder("t")
            .column("id", DataType::Int)
            .column("v", DataType::Float)
            .column("tag", DataType::Str);
        for i in 0..rows {
            b = b.row(vec![
                Value::Int(i as i64),
                Value::Float(i as f64 * 0.5),
                Value::Str(format!("tag{}", i % 3)),
            ]);
        }
        b.build().unwrap()
    }

    #[test]
    fn spill_and_materialize_round_trip() {
        // 2500 rows spans 3 pages per numeric column; the string column
        // adds 3 offsets pages (2501 × u64) and 2 payload pages (10000
        // bytes of "tagN").
        let rel = sample(2500);
        let pool = test_pool(2);
        let paged = PagedRelation::spill(&rel, &pool).unwrap();
        assert_eq!(paged.len(), 2500);
        assert_eq!(paged.pages_per_column(), 3);
        assert_eq!(paged.paged_columns(), 2);
        assert_eq!(paged.total_pages(), 11);
        // Nothing stays resident: text spilled too.
        assert!(paged.heap_bytes() < 1024);
        let back = paged.materialize().unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn chunks_cross_page_boundaries() {
        let rel = sample(2500);
        let pool = test_pool(1); // budget of one page still executes
        let paged = PagedRelation::spill(&rel, &pool).unwrap();
        let chunk = paged.chunk(1000, 1100).unwrap();
        assert_eq!(chunk.len(), 100);
        assert_eq!(chunk.value(0, 0), Value::Int(1000));
        assert_eq!(chunk.value(99, 1), Value::Float(1099.0 * 0.5));
        assert_eq!(chunk.value(50, 2), Value::Str("tag0".into()));
        // End is clamped to the relation length.
        assert_eq!(paged.chunk(2400, 9999).unwrap().len(), 100);
    }

    #[test]
    fn gather_matches_in_memory_gather() {
        let rel = sample(2500);
        let pool = test_pool(2);
        let paged = PagedRelation::spill(&rel, &pool).unwrap();
        let rids: Vec<Rid> = vec![0, 7, 7, 1023, 1024, 2499];
        let expect = rel.gather(&rids, "g");
        let got = paged.gather(&rids, "g").unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn gather_touches_only_needed_pages() {
        let rel = sample(4096); // 4 pages per numeric column
        let pool = test_pool(8);
        let paged = PagedRelation::spill(&rel, &pool).unwrap();
        pool.reset_stats();
        // All rids on one page: 2 numeric columns → 2 page reads, plus one
        // offsets page and one payload page for the spilled string column.
        paged.gather(&[2048, 2049, 2050], "g").unwrap();
        assert_eq!(pool.stats().disk_reads, 4);
        assert_eq!(paged.pages_touched(&[2048, 2049, 2050]), 1);
        assert_eq!(paged.pages_touched(&[0, 1024, 2048, 3072]), 4);
    }

    #[test]
    fn out_of_bounds_gather_is_a_typed_error() {
        let rel = sample(10);
        let pool = test_pool(2);
        let paged = PagedRelation::spill(&rel, &pool).unwrap();
        assert!(matches!(
            paged.gather(&[99], "g"),
            Err(StorageError::Pager(_))
        ));
    }

    #[test]
    fn float_bits_survive_the_round_trip() {
        let mut b = Relation::builder("f").column("v", DataType::Float);
        for v in [0.0, -0.0, f64::MIN, f64::MAX, f64::NAN, 1e-300] {
            b = b.row(vec![Value::Float(v)]);
        }
        let rel = b.build().unwrap();
        let pool = test_pool(1);
        let paged = PagedRelation::spill(&rel, &pool).unwrap();
        let back = paged.materialize().unwrap();
        let bits: Vec<u64> = back
            .column(0)
            .as_float()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let expect: Vec<u64> = rel
            .column(0)
            .as_float()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(bits, expect);
    }

    #[test]
    fn strings_spanning_pages_round_trip_on_one_frame() {
        // A few strings larger than a page force the payload reader to
        // stitch across page boundaries; a one-frame budget proves no two
        // pins are ever held at once.
        let mut b = Relation::builder("big").column("s", DataType::Str);
        let long = "x".repeat(PAGE_SIZE + 123);
        for i in 0..5 {
            b = b.row(vec![Value::Str(if i % 2 == 0 {
                long.clone()
            } else {
                format!("short-{i}")
            })]);
        }
        b = b.row(vec![Value::Str(String::new())]); // empty string edge
        let rel = b.build().unwrap();
        let pool = test_pool(1);
        let paged = PagedRelation::spill(&rel, &pool).unwrap();
        assert_eq!(paged.materialize().unwrap(), rel);
        let got = paged.gather(&[5, 0, 3, 0], "g").unwrap();
        assert_eq!(got, rel.gather(&[5, 0, 3, 0], "g"));
    }

    #[test]
    fn fixed_run_writer_round_trips_and_caps() {
        let pool = test_pool(2);
        let rows = ROWS_PER_PAGE + 7; // spans two pages, second partial
        let mut w = FixedRunWriter::new(&pool, rows);
        for i in 0..rows {
            w.push((i as i64).to_le_bytes()).unwrap();
        }
        assert_eq!(w.rows(), rows);
        // Capacity is a hard cap.
        assert!(matches!(
            w.push(0i64.to_le_bytes()),
            Err(StorageError::Pager(_))
        ));
        let (first, n) = w.finish().unwrap();
        assert_eq!(n, rows);
        let schema = Schema::new(vec![crate::Field::new("v", DataType::Int)]).unwrap();
        let rel = PagedRelation::from_fixed_runs("part", schema, &[first], rows, &pool).unwrap();
        let back = rel.materialize().unwrap();
        assert_eq!(back.column(0).as_int()[0], 0);
        assert_eq!(back.column(0).as_int()[rows - 1], (rows - 1) as i64);
    }

    #[test]
    fn from_fixed_runs_rejects_mismatched_schemas() {
        let pool = test_pool(1);
        let schema = Schema::new(vec![crate::Field::new("s", DataType::Str)]).unwrap();
        assert!(matches!(
            PagedRelation::from_fixed_runs("bad", schema, &[PageId(0)], 0, &pool),
            Err(StorageError::Pager(_))
        ));
        let schema = Schema::new(vec![crate::Field::new("v", DataType::Int)]).unwrap();
        assert!(matches!(
            PagedRelation::from_fixed_runs("bad", schema, &[], 0, &pool),
            Err(StorageError::Pager(_))
        ));
    }

    #[test]
    fn prefetch_hints_warm_the_pool() {
        let rel = sample(4096); // 4 pages per numeric column
        let pool = Arc::new(BufferPool::with_prefetch(
            SegmentStore::in_memory(),
            16,
            ReplacementPolicy::Sieve,
            1,
        ));
        let paged = PagedRelation::spill(&rel, &pool).unwrap();
        pool.reset_stats();
        paged.prefetch_rows(0, 2048);
        pool.prefetch_quiesce();
        assert!(pool.stats().prefetch_loads >= 4, "{:?}", pool.stats());
        // The gather after the hint is all hits on the numeric columns.
        pool.reset_stats();
        paged.prefetch_rids(&[0, 1, 1024]);
        pool.prefetch_quiesce();
        let before = pool.stats();
        paged
            .decode_range(0, 0, 2048)
            .and_then(|_| paged.decode_range(1, 0, 2048))
            .unwrap();
        let after = pool.stats();
        assert_eq!(after.disk_reads, before.disk_reads);
        assert!(after.prefetch_hits >= 4);
        // Hints on a prefetch-less pool are silently ignored.
        let plain = test_pool(2);
        let p2 = PagedRelation::spill(&rel, &plain).unwrap();
        p2.prefetch_rows(0, 4096);
        p2.prefetch_rids(&[0]);
        plain.prefetch_quiesce();
    }

    #[test]
    fn empty_relation_spills_to_zero_pages() {
        let rel = Relation::builder("e")
            .column("x", DataType::Int)
            .build()
            .unwrap();
        let pool = test_pool(1);
        let paged = PagedRelation::spill(&rel, &pool).unwrap();
        assert_eq!(paged.total_pages(), 0);
        assert!(paged.is_empty());
        assert_eq!(paged.materialize().unwrap().len(), 0);
    }
}
