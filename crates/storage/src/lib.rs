//! # smoke-storage
//!
//! In-memory, rid-addressable relational storage engine used by the Smoke
//! lineage system (Psallidas & Wu, VLDB 2018).
//!
//! The storage layer is deliberately simple and write-efficient:
//!
//! * relations are stored column-at-a-time (`Vec<i64>`, `Vec<f64>`,
//!   `Vec<String>`) for memory compactness,
//! * execution above this layer is either row-at-a-time (the interpreter
//!   baseline, exactly as in the paper), vectorized over [`kernels`], or
//!   partition-parallel over [`morsel`] ranges of 64-aligned rows,
//! * every tuple is addressed by its **rid** (row identifier), the position of
//!   the tuple inside its relation. Lineage indexes built by `smoke-lineage`
//!   map rids of one relation to rids of another.
//!
//! ```
//! use smoke_storage::{Relation, DataType, Value};
//!
//! let rel = Relation::builder("orders")
//!     .column("id", DataType::Int)
//!     .column("price", DataType::Float)
//!     .row(vec![Value::Int(1), Value::Float(10.0)])
//!     .row(vec![Value::Int(2), Value::Float(20.0)])
//!     .build()
//!     .unwrap();
//! assert_eq!(rel.len(), 2);
//! assert_eq!(rel.value(1, 1), Value::Float(20.0));
//! ```

#![warn(missing_docs)]

mod column;
pub mod csv;
mod database;
mod error;
pub mod kernels;
pub mod morsel;
pub mod paged;
mod relation;
mod rid;
mod schema;
mod value;

pub use column::Column;
pub use database::Database;
pub use error::StorageError;
pub use kernels::{KernelCmp, SelectionMask};
pub use morsel::{align_morsel_rows, morsels, Morsel, DEFAULT_MORSEL_ROWS};
pub use paged::{FixedRunWriter, PagedRelation, DEFAULT_CHUNK_ROWS, ROWS_PER_PAGE};
// `from_fixed_runs` / `FixedRunWriter::finish` speak in page ids; re-export
// the pager vocabulary so storage's paged API is usable without a direct
// smoke-pager dependency.
pub use relation::{Relation, RelationBuilder, RowRef};
pub use rid::{Rid, RidVec};
pub use schema::{Field, Schema};
pub use smoke_pager::{PageId, PAGE_SIZE};
pub use value::{DataType, Value};

/// Convenience result alias used across the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;
