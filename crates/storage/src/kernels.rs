//! Vectorized column kernels.
//!
//! Batch-at-a-time primitives over typed column vectors: comparisons against
//! a literal or another column into a [`SelectionMask`] bitmap, `IN`-list
//! membership, bitmap combinators, and typed group/join-key extraction. The
//! kernels operate on whole columns so the per-row cost is a typed compare —
//! no dynamic [`Value`] allocation, no enum dispatch inside the loop.
//!
//! Comparison semantics match [`Value::total_cmp`] exactly (ints coerce to
//! floats when mixed, floats order by `f64::total_cmp`, strings order after
//! numbers), so a kernel evaluation of a predicate is bit-for-bit equivalent
//! to the row-at-a-time interpreter.
//!
//! Every comparison kernel has a `*_range` variant evaluating only the rows
//! of one [`Morsel`](crate::Morsel) into a morsel-local mask (bit `i` of the
//! result is row `start + i`); the whole-column kernels are the `0..len`
//! special case. Morsel-local masks reassemble with [`SelectionMask::append`],
//! which is a word-level `memcpy` whenever the running mask's length is a
//! multiple of 64 — the invariant morsel iteration guarantees.

use crate::{Column, Rid, Value};
use std::cmp::Ordering;

/// Comparison operators understood by the kernels (the storage-level mirror
/// of the engine's comparison ops, so the storage crate stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelCmp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl KernelCmp {
    /// Whether an [`Ordering`] satisfies this operator.
    #[inline]
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            KernelCmp::Eq => ord == Ordering::Equal,
            KernelCmp::Ne => ord != Ordering::Equal,
            KernelCmp::Lt => ord == Ordering::Less,
            KernelCmp::Le => ord != Ordering::Greater,
            KernelCmp::Gt => ord == Ordering::Greater,
            KernelCmp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with its operands swapped: `a OP b` ⟺ `b OP.flip() a`.
    #[inline]
    pub fn flip(self) -> KernelCmp {
        match self {
            KernelCmp::Eq => KernelCmp::Eq,
            KernelCmp::Ne => KernelCmp::Ne,
            KernelCmp::Lt => KernelCmp::Gt,
            KernelCmp::Le => KernelCmp::Ge,
            KernelCmp::Gt => KernelCmp::Lt,
            KernelCmp::Ge => KernelCmp::Le,
        }
    }
}

/// A selection bitmap over the rows of a relation.
///
/// One bit per row, packed into 64-bit words; bits beyond `len` are always
/// zero so popcounts and combinators need no tail special-casing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionMask {
    words: Vec<u64>,
    len: usize,
}

impl SelectionMask {
    /// An all-false mask over `len` rows.
    pub fn all_false(len: usize) -> Self {
        SelectionMask {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// An all-true mask over `len` rows.
    pub fn all_true(len: usize) -> Self {
        let mut mask = SelectionMask {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        mask.clear_tail();
        mask
    }

    /// A constant mask (used when a comparison's outcome is type-determined,
    /// e.g. a string column compared to a numeric literal).
    pub fn constant(len: usize, value: bool) -> Self {
        if value {
            SelectionMask::all_true(len)
        } else {
            SelectionMask::all_false(len)
        }
    }

    /// Zeroes the bits beyond `len` in the last word (the invariant every
    /// combinator relies on).
    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of rows covered by the mask.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the bit for `row`.
    #[inline]
    pub fn set(&mut self, row: usize) {
        debug_assert!(row < self.len);
        self.words[row / 64] |= 1u64 << (row % 64);
    }

    /// The bit for `row` (`false` when out of bounds).
    #[inline]
    pub fn get(&self, row: usize) -> bool {
        row < self.len && (self.words[row / 64] >> (row % 64)) & 1 == 1
    }

    /// Number of selected rows.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self &= other` (both masks must cover the same rows).
    pub fn and_assign(&mut self, other: &SelectionMask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other` (both masks must cover the same rows).
    pub fn or_assign(&mut self, other: &SelectionMask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= !other` (both masks must cover the same rows).
    pub fn and_not_assign(&mut self, other: &SelectionMask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `self = !self`.
    pub fn not_assign(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        self.clear_tail();
    }

    /// Calls `f` with every selected row index, in ascending order.
    #[inline]
    pub fn for_each_one(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }

    /// Materializes the selected rows as a rid list, allocated exactly.
    pub fn to_rids(&self) -> Vec<Rid> {
        let mut out = Vec::with_capacity(self.count_ones());
        self.for_each_one(|row| out.push(row as Rid));
        out
    }

    /// Appends `other`'s bits after this mask's rows (mask stitching): bit `i`
    /// of `other` becomes bit `self.len() + i` of `self`.
    ///
    /// When `self.len()` is a multiple of 64 — always the case when stitching
    /// morsel-local masks back together, because morsel boundaries are
    /// 64-aligned (see [`crate::morsel`]) — the append is a straight word
    /// copy. Unaligned lengths take a bit-shifting slow path.
    pub fn append(&mut self, other: &SelectionMask) {
        let shift = self.len % 64;
        if shift == 0 {
            self.words.extend_from_slice(&other.words);
        } else {
            for &w in &other.words {
                *self.words.last_mut().expect("len % 64 != 0 implies a word") |= w << shift;
                self.words.push(w >> (64 - shift));
            }
        }
        self.len += other.len;
        // The shifting path can push one word more than the new length needs;
        // both paths preserve the cleared-tail invariant after the trim.
        self.words.truncate(self.len.div_ceil(64));
        self.clear_tail();
    }
}

/// Compares every row of `col` against a literal, producing a selection mask.
///
/// Mixed string/numeric comparisons have a type-determined outcome (strings
/// order after numbers under [`Value::total_cmp`]), so they produce a
/// constant mask rather than touching the data.
pub fn cmp_col_lit(col: &Column, op: KernelCmp, lit: &Value) -> SelectionMask {
    cmp_col_lit_range(col, op, lit, 0, col.len())
}

/// [`cmp_col_lit`] restricted to rows `start..end`: bit `i` of the result is
/// row `start + i`.
pub fn cmp_col_lit_range(
    col: &Column,
    op: KernelCmp,
    lit: &Value,
    start: usize,
    end: usize,
) -> SelectionMask {
    let len = end - start;
    match (col, lit) {
        (Column::Int(v), Value::Int(x)) => {
            let mut mask = SelectionMask::all_false(len);
            for (i, a) in v[start..end].iter().enumerate() {
                if op.matches(a.cmp(x)) {
                    mask.set(i);
                }
            }
            mask
        }
        (Column::Int(v), Value::Float(x)) => {
            let mut mask = SelectionMask::all_false(len);
            for (i, &a) in v[start..end].iter().enumerate() {
                if op.matches((a as f64).total_cmp(x)) {
                    mask.set(i);
                }
            }
            mask
        }
        (Column::Float(v), Value::Float(x)) => {
            let mut mask = SelectionMask::all_false(len);
            for (i, a) in v[start..end].iter().enumerate() {
                if op.matches(a.total_cmp(x)) {
                    mask.set(i);
                }
            }
            mask
        }
        (Column::Float(v), Value::Int(x)) => {
            let x = *x as f64;
            let mut mask = SelectionMask::all_false(len);
            for (i, a) in v[start..end].iter().enumerate() {
                if op.matches(a.total_cmp(&x)) {
                    mask.set(i);
                }
            }
            mask
        }
        (Column::Str(v), Value::Str(x)) => {
            let mut mask = SelectionMask::all_false(len);
            for (i, a) in v[start..end].iter().enumerate() {
                if op.matches(a.as_str().cmp(x.as_str())) {
                    mask.set(i);
                }
            }
            mask
        }
        // Strings order after numbers: the per-row ordering is constant.
        (Column::Str(_), _) => SelectionMask::constant(len, op.matches(Ordering::Greater)),
        (_, Value::Str(_)) => SelectionMask::constant(len, op.matches(Ordering::Less)),
    }
}

/// Compares two columns row-wise, producing a selection mask. The columns
/// must have the same length.
pub fn cmp_col_col(left: &Column, op: KernelCmp, right: &Column) -> SelectionMask {
    cmp_col_col_range(left, op, right, 0, left.len())
}

/// [`cmp_col_col`] restricted to rows `start..end`: bit `i` of the result is
/// row `start + i`.
pub fn cmp_col_col_range(
    left: &Column,
    op: KernelCmp,
    right: &Column,
    start: usize,
    end: usize,
) -> SelectionMask {
    let len = end - start;
    debug_assert_eq!(left.len(), right.len(), "column length mismatch");
    match (left, right) {
        (Column::Int(a), Column::Int(b)) => {
            let mut mask = SelectionMask::all_false(len);
            for (i, (x, y)) in a[start..end].iter().zip(&b[start..end]).enumerate() {
                if op.matches(x.cmp(y)) {
                    mask.set(i);
                }
            }
            mask
        }
        (Column::Int(a), Column::Float(b)) => {
            let mut mask = SelectionMask::all_false(len);
            for (i, (&x, y)) in a[start..end].iter().zip(&b[start..end]).enumerate() {
                if op.matches((x as f64).total_cmp(y)) {
                    mask.set(i);
                }
            }
            mask
        }
        (Column::Float(a), Column::Int(b)) => {
            let mut mask = SelectionMask::all_false(len);
            for (i, (x, &y)) in a[start..end].iter().zip(&b[start..end]).enumerate() {
                if op.matches(x.total_cmp(&(y as f64))) {
                    mask.set(i);
                }
            }
            mask
        }
        (Column::Float(a), Column::Float(b)) => {
            let mut mask = SelectionMask::all_false(len);
            for (i, (x, y)) in a[start..end].iter().zip(&b[start..end]).enumerate() {
                if op.matches(x.total_cmp(y)) {
                    mask.set(i);
                }
            }
            mask
        }
        (Column::Str(a), Column::Str(b)) => {
            let mut mask = SelectionMask::all_false(len);
            for (i, (x, y)) in a[start..end].iter().zip(&b[start..end]).enumerate() {
                if op.matches(x.cmp(y)) {
                    mask.set(i);
                }
            }
            mask
        }
        (Column::Str(_), _) => SelectionMask::constant(len, op.matches(Ordering::Greater)),
        (_, Column::Str(_)) => SelectionMask::constant(len, op.matches(Ordering::Less)),
    }
}

/// `IN`-list membership over a column, producing a selection mask.
///
/// Matches the interpreter's semantics: a row matches when any list element
/// compares [`Ordering::Equal`] under [`Value::total_cmp`]. Int–Int
/// comparisons are exact (no float round-trip); Int–Float and Float–Float
/// equality holds iff the coerced bit patterns coincide (`f64::total_cmp`
/// distinguishes `0.0` from `-0.0`); string/numeric pairs never match.
pub fn in_list(col: &Column, list: &[Value]) -> SelectionMask {
    in_list_range(col, list, 0, col.len())
}

/// [`in_list`] restricted to rows `start..end`: bit `i` of the result is row
/// `start + i`.
pub fn in_list_range(col: &Column, list: &[Value], start: usize, end: usize) -> SelectionMask {
    let len = end - start;
    match col {
        Column::Int(v) => {
            let int_targets: Vec<i64> = list.iter().filter_map(Value::as_int).collect();
            let float_bits: Vec<u64> = list
                .iter()
                .filter_map(|x| match x {
                    Value::Float(f) => Some(f.to_bits()),
                    _ => None,
                })
                .collect();
            let mut mask = SelectionMask::all_false(len);
            for (i, &a) in v[start..end].iter().enumerate() {
                let hit = int_targets.contains(&a)
                    || (!float_bits.is_empty() && float_bits.contains(&(a as f64).to_bits()));
                if hit {
                    mask.set(i);
                }
            }
            mask
        }
        Column::Float(v) => {
            // `total_cmp == Equal` iff identical bit patterns, so numeric list
            // elements reduce to a bit-pattern membership test.
            let bits: Vec<u64> = list
                .iter()
                .filter_map(|x| x.as_float().map(f64::to_bits))
                .collect();
            let mut mask = SelectionMask::all_false(len);
            for (i, a) in v[start..end].iter().enumerate() {
                if bits.contains(&a.to_bits()) {
                    mask.set(i);
                }
            }
            mask
        }
        Column::Str(v) => {
            let strs: Vec<&str> = list.iter().filter_map(Value::as_str).collect();
            let mut mask = SelectionMask::all_false(len);
            for (i, a) in v[start..end].iter().enumerate() {
                if strs.contains(&a.as_str()) {
                    mask.set(i);
                }
            }
            mask
        }
    }
}

/// Typed single-column group/join-key extraction: the key column viewed as a
/// plain `i64` slice, when the key is exactly one integer column.
pub fn int_keys<'a>(columns: &[&'a Column]) -> Option<&'a [i64]> {
    match columns {
        [Column::Int(v)] => Some(v),
        _ => None,
    }
}

/// Typed two-column group/join-key extraction: the key columns zipped into
/// `(i64, i64)` pairs, when both key columns are integers.
pub fn int_key_pairs(columns: &[&Column]) -> Option<Vec<(i64, i64)>> {
    match columns {
        [Column::Int(a), Column::Int(b)] => {
            Some(a.iter().copied().zip(b.iter().copied()).collect())
        }
        _ => None,
    }
}

/// Typed single-column string-key extraction (borrowed, so hash-join build
/// and probe phases can key without cloning strings).
pub fn str_keys<'a>(columns: &[&'a Column]) -> Option<&'a [String]> {
    match columns {
        [Column::Str(v)] => Some(v),
        _ => None,
    }
}

/// `(min, max)` of an integer key slice in one pass; `None` when empty.
pub fn int_min_max(keys: &[i64]) -> Option<(i64, i64)> {
    let mut it = keys.iter();
    let first = *it.next()?;
    let mut min = first;
    let mut max = first;
    for &k in it {
        if k < min {
            min = k;
        }
        if k > max {
            max = k;
        }
    }
    Some((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col() -> Column {
        Column::Int(vec![3, -1, 7, 3, 0])
    }

    fn float_col() -> Column {
        Column::Float(vec![0.5, -2.0, 7.0, f64::NAN, -0.0])
    }

    fn str_col() -> Column {
        Column::Str(vec!["b".into(), "a".into(), "c".into()])
    }

    /// Reference row-wise evaluation through `Value::total_cmp`.
    fn reference(col: &Column, op: KernelCmp, lit: &Value) -> Vec<bool> {
        (0..col.len())
            .map(|i| op.matches(col.value(i).total_cmp(lit)))
            .collect()
    }

    fn mask_bits(mask: &SelectionMask) -> Vec<bool> {
        (0..mask.len()).map(|i| mask.get(i)).collect()
    }

    #[test]
    fn mask_basics_and_tail_invariant() {
        let mut m = SelectionMask::all_false(70);
        assert_eq!(m.count_ones(), 0);
        m.set(0);
        m.set(69);
        assert_eq!(m.count_ones(), 2);
        assert!(m.get(69) && !m.get(68));
        assert!(!m.get(700), "out of bounds reads are false");
        assert_eq!(m.to_rids(), vec![0, 69]);

        let t = SelectionMask::all_true(70);
        assert_eq!(t.count_ones(), 70);
        m.not_assign();
        assert_eq!(m.count_ones(), 68, "tail bits stay clear through NOT");
        let empty = SelectionMask::all_true(0);
        assert_eq!(empty.count_ones(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn mask_combinators() {
        let mut a = SelectionMask::all_false(10);
        let mut b = SelectionMask::all_false(10);
        for i in [1, 3, 5] {
            a.set(i);
        }
        for i in [3, 5, 7] {
            b.set(i);
        }
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.to_rids(), vec![3, 5]);
        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(or.to_rids(), vec![1, 3, 5, 7]);
        a.and_not_assign(&b);
        assert_eq!(a.to_rids(), vec![1]);
        b.not_assign();
        assert_eq!(b.to_rids(), vec![0, 1, 2, 4, 6, 8, 9]);
    }

    #[test]
    fn cmp_col_lit_matches_value_semantics() {
        let cases: Vec<(Column, Value)> = vec![
            (int_col(), Value::Int(3)),
            (int_col(), Value::Float(2.5)),
            (float_col(), Value::Float(0.5)),
            (float_col(), Value::Int(0)),
            (str_col(), Value::Str("b".into())),
            (str_col(), Value::Int(100)),
            (int_col(), Value::Str("a".into())),
        ];
        for (col, lit) in &cases {
            for op in [
                KernelCmp::Eq,
                KernelCmp::Ne,
                KernelCmp::Lt,
                KernelCmp::Le,
                KernelCmp::Gt,
                KernelCmp::Ge,
            ] {
                let mask = cmp_col_lit(col, op, lit);
                assert_eq!(
                    mask_bits(&mask),
                    reference(col, op, lit),
                    "col {col:?} {op:?} {lit:?}"
                );
            }
        }
    }

    #[test]
    fn cmp_col_col_matches_value_semantics() {
        let pairs: Vec<(Column, Column)> = vec![
            (Column::Int(vec![1, 5, 3]), Column::Int(vec![2, 5, 1])),
            (
                Column::Int(vec![1, 5, 3]),
                Column::Float(vec![1.0, 4.5, 9.0]),
            ),
            (
                Column::Float(vec![1.0, f64::NAN, -0.0]),
                Column::Float(vec![1.0, f64::NAN, 0.0]),
            ),
            (
                Column::Float(vec![2.0, 0.5, -3.0]),
                Column::Int(vec![2, 0, 1]),
            ),
            (
                Column::Str(vec!["a".into(), "b".into()]),
                Column::Str(vec!["b".into(), "b".into()]),
            ),
            (
                Column::Str(vec!["a".into(), "b".into()]),
                Column::Int(vec![1, 2]),
            ),
            (
                Column::Int(vec![1, 2]),
                Column::Str(vec!["a".into(), "b".into()]),
            ),
        ];
        for (l, r) in &pairs {
            for op in [
                KernelCmp::Eq,
                KernelCmp::Ne,
                KernelCmp::Lt,
                KernelCmp::Le,
                KernelCmp::Gt,
                KernelCmp::Ge,
            ] {
                let mask = cmp_col_col(l, op, r);
                let expect: Vec<bool> = (0..l.len())
                    .map(|i| op.matches(l.value(i).total_cmp(&r.value(i))))
                    .collect();
                assert_eq!(mask_bits(&mask), expect, "{l:?} {op:?} {r:?}");
            }
        }
    }

    #[test]
    fn flip_is_consistent_with_swapped_operands() {
        let a = Value::Int(3);
        let col = int_col();
        for op in [
            KernelCmp::Eq,
            KernelCmp::Ne,
            KernelCmp::Lt,
            KernelCmp::Le,
            KernelCmp::Gt,
            KernelCmp::Ge,
        ] {
            // lit OP col[i]  ==  col[i] OP.flip() lit
            let flipped = cmp_col_lit(&col, op.flip(), &a);
            let expect: Vec<bool> = (0..col.len())
                .map(|i| op.matches(a.total_cmp(&col.value(i))))
                .collect();
            assert_eq!(mask_bits(&flipped), expect, "{op:?}");
        }
    }

    #[test]
    fn in_list_semantics() {
        // Int column: exact int matches, float matches only on exact coercion.
        let col = Column::Int(vec![1, 2, 3, i64::MAX]);
        let mask = in_list(
            &col,
            &[Value::Int(2), Value::Float(3.0), Value::Str("2".into())],
        );
        assert_eq!(mask.to_rids(), vec![1, 2]);

        // i64::MAX is not representable as f64 exactly; the interpreter
        // compares through total_cmp on the coerced float, so mirror it.
        let reference: Vec<bool> = (0..col.len())
            .map(|i| {
                [Value::Int(2), Value::Float(3.0), Value::Str("2".into())]
                    .iter()
                    .any(|x| col.value(i).total_cmp(x) == Ordering::Equal)
            })
            .collect();
        assert_eq!(mask_bits(&mask), reference);

        // Float column distinguishes -0.0 from 0.0 (total_cmp semantics).
        let col = Column::Float(vec![0.0, -0.0, 2.0]);
        let mask = in_list(&col, &[Value::Float(0.0), Value::Int(2)]);
        assert_eq!(mask.to_rids(), vec![0, 2]);

        // String column.
        let mask = in_list(&str_col(), &[Value::Str("a".into()), Value::Int(1)]);
        assert_eq!(mask.to_rids(), vec![1]);
    }

    #[test]
    fn append_stitches_morsel_masks() {
        // Word-aligned path: 64-row first mask, arbitrary second.
        let mut acc = SelectionMask::all_false(64);
        acc.set(0);
        acc.set(63);
        let mut tail = SelectionMask::all_false(70);
        tail.set(1);
        tail.set(69);
        acc.append(&tail);
        assert_eq!(acc.len(), 134);
        assert_eq!(acc.to_rids(), vec![0, 63, 65, 133]);

        // Unaligned path: first mask not a multiple of 64.
        let mut acc = SelectionMask::all_false(10);
        acc.set(9);
        let tail = tail_mask(&(0..130).filter(|&i| i != 64).collect::<Vec<_>>(), 130);
        acc.append(&tail);
        assert_eq!(acc.len(), 140);
        let expect: Vec<Rid> = std::iter::once(9)
            .chain((10..140).filter(|&i| i != 74))
            .collect();
        assert_eq!(acc.to_rids(), expect);

        // Appending an empty mask is a no-op; appending to empty copies.
        let mut acc = SelectionMask::all_false(0);
        acc.append(&tail_mask(&[0, 2], 3));
        acc.append(&SelectionMask::all_false(0));
        assert_eq!(acc.to_rids(), vec![0, 2]);
        assert_eq!(acc.len(), 3);
    }

    fn tail_mask(bits: &[usize], len: usize) -> SelectionMask {
        let mut m = SelectionMask::all_false(len);
        for &b in bits {
            m.set(b);
        }
        m
    }

    #[test]
    fn range_kernels_agree_with_whole_column() {
        let cases: Vec<(Column, Value)> = vec![
            (int_col(), Value::Int(3)),
            (float_col(), Value::Float(0.5)),
            (str_col(), Value::Str("b".into())),
            (int_col(), Value::Str("a".into())),
        ];
        for (col, lit) in &cases {
            let whole = cmp_col_lit(col, KernelCmp::Ge, lit);
            for start in 0..col.len() {
                for end in start..=col.len() {
                    let part = cmp_col_lit_range(col, KernelCmp::Ge, lit, start, end);
                    assert_eq!(part.len(), end - start);
                    for i in 0..part.len() {
                        assert_eq!(part.get(i), whole.get(start + i), "{col:?} {start}..{end}");
                    }
                }
            }
        }

        let a = Column::Int(vec![1, 5, 3, 2, 2]);
        let b = Column::Float(vec![1.0, 4.5, 9.0, 2.0, -1.0]);
        let whole = cmp_col_col(&a, KernelCmp::Lt, &b);
        let part = cmp_col_col_range(&a, KernelCmp::Lt, &b, 1, 4);
        for i in 0..3 {
            assert_eq!(part.get(i), whole.get(1 + i));
        }

        let list = [Value::Int(3), Value::Float(0.5)];
        let whole = in_list(&int_col(), &list);
        let part = in_list_range(&int_col(), &list, 2, 5);
        for i in 0..3 {
            assert_eq!(part.get(i), whole.get(2 + i));
        }
    }

    #[test]
    fn typed_key_extraction() {
        let a = Column::Int(vec![1, 2, 3]);
        let b = Column::Int(vec![9, 8, 7]);
        let s = Column::Str(vec!["x".into()]);
        assert_eq!(int_keys(&[&a]), Some(&[1, 2, 3][..]));
        assert_eq!(int_keys(&[&s]), None);
        assert_eq!(int_keys(&[&a, &b]), None);
        assert_eq!(int_key_pairs(&[&a, &b]), Some(vec![(1, 9), (2, 8), (3, 7)]));
        assert_eq!(int_key_pairs(&[&a]), None);
        assert_eq!(str_keys(&[&s]).map(|v| v.len()), Some(1));
        assert_eq!(str_keys(&[&a]), None);
        assert_eq!(int_min_max(&[3, -1, 7]), Some((-1, 7)));
        assert_eq!(int_min_max(&[]), None);
    }
}
