//! A named catalog of relations.

use std::collections::BTreeMap;

use crate::{Relation, Result, StorageError};

/// A simple in-memory catalog mapping relation names to [`Relation`]s.
///
/// Base queries read base relations from a `Database`; derived outputs (views)
/// can be registered back so that lineage-consuming queries can treat them as
/// base queries in turn (paper §2.1).
#[derive(Debug, Default, Clone)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Registers a relation under its own name. Fails on duplicates.
    pub fn register(&mut self, relation: Relation) -> Result<()> {
        let name = relation.name().to_string();
        if self.relations.contains_key(&name) {
            return Err(StorageError::DuplicateRelation(name));
        }
        self.relations.insert(name, relation);
        Ok(())
    }

    /// Registers or replaces a relation under its own name.
    pub fn register_or_replace(&mut self, relation: Relation) {
        self.relations.insert(relation.name().to_string(), relation);
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Whether a relation with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Names of all registered relations, sorted.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Removes a relation from the catalog, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// Total approximate heap footprint of all relations, in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.relations.values().map(Relation::heap_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Value};

    fn rel(name: &str) -> Relation {
        Relation::builder(name)
            .column("x", DataType::Int)
            .row(vec![Value::Int(1)])
            .build()
            .unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut db = Database::new();
        db.register(rel("a")).unwrap();
        db.register(rel("b")).unwrap();
        assert!(db.contains("a"));
        assert_eq!(db.relation("b").unwrap().len(), 1);
        assert_eq!(db.relation_names(), vec!["a", "b"]);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut db = Database::new();
        db.register(rel("a")).unwrap();
        assert!(matches!(
            db.register(rel("a")),
            Err(StorageError::DuplicateRelation(_))
        ));
        // register_or_replace always succeeds.
        db.register_or_replace(rel("a"));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn missing_relation_errors() {
        let db = Database::new();
        assert!(matches!(
            db.relation("nope"),
            Err(StorageError::UnknownRelation(_))
        ));
        assert!(db.is_empty());
    }

    #[test]
    fn remove_returns_relation() {
        let mut db = Database::new();
        db.register(rel("a")).unwrap();
        let removed = db.remove("a").unwrap();
        assert_eq!(removed.name(), "a");
        assert!(db.remove("a").is_none());
    }
}
