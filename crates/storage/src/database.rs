//! A named catalog of relations, optionally operating under a memory budget.

use std::collections::BTreeMap;
use std::sync::Arc;

use smoke_pager::{BufferPool, ReplacementPolicy, SegmentStore, PAGE_SIZE};

use crate::{PagedRelation, Relation, Result, StorageError};

/// A simple in-memory catalog mapping relation names to [`Relation`]s.
///
/// Base queries read base relations from a `Database`; derived outputs (views)
/// can be registered back so that lineage-consuming queries can treat them as
/// base queries in turn (paper §2.1).
///
/// By default every relation is fully resident. Setting a **memory budget**
/// ([`Database::set_memory_budget`]) attaches a [`BufferPool`] to the
/// catalog and transparently spills relations: every registered relation's
/// numeric columns move to the pool's segment store, and at most
/// `budget / PAGE_SIZE` pages of them are resident at any instant.
/// Spilled relations are served via [`Database::paged_relation`]; looking
/// one up through [`Database::relation`] yields the typed
/// [`StorageError::RelationSpilled`] so in-RAM code paths cannot silently
/// read a relation that no longer lives in RAM.
#[derive(Debug, Default, Clone)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
    paged: BTreeMap<String, PagedRelation>,
    pool: Option<Arc<BufferPool>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Attaches a memory budget: a buffer pool of `budget_bytes / PAGE_SIZE`
    /// frames (at least one) over a fresh temp-file segment store, using
    /// `policy` for replacement. Relations already registered — and every
    /// relation registered afterwards — are transparently spilled.
    pub fn set_memory_budget(
        &mut self,
        budget_bytes: usize,
        policy: ReplacementPolicy,
    ) -> Result<()> {
        let store = SegmentStore::temp("db")?;
        self.attach_pool(store, budget_bytes, policy)
    }

    /// Like [`Database::set_memory_budget`] but backed by an in-memory
    /// segment (tests, Miri runs).
    pub fn set_memory_budget_in_memory(
        &mut self,
        budget_bytes: usize,
        policy: ReplacementPolicy,
    ) -> Result<()> {
        self.attach_pool(SegmentStore::in_memory(), budget_bytes, policy)
    }

    fn attach_pool(
        &mut self,
        store: SegmentStore,
        budget_bytes: usize,
        policy: ReplacementPolicy,
    ) -> Result<()> {
        if self.pool.is_some() {
            return Err(StorageError::Pager(
                "memory budget already configured for this database".to_string(),
            ));
        }
        let budget_pages = (budget_bytes / PAGE_SIZE).max(1);
        // Database pools carry the background prefetcher: paged operators
        // hint their upcoming page runs and cold scans overlap I/O.
        let pool = Arc::new(BufferPool::with_prefetch(
            store,
            budget_pages,
            policy,
            smoke_pager::DEFAULT_PREFETCH_THREADS,
        ));
        // Spill everything already registered.
        let resident = std::mem::take(&mut self.relations);
        for (name, relation) in resident {
            let paged = PagedRelation::spill(&relation, &pool)?;
            self.paged.insert(name, paged);
        }
        self.pool = Some(pool);
        Ok(())
    }

    /// The buffer pool serving spilled relations, if a budget is set.
    pub fn pool(&self) -> Option<&Arc<BufferPool>> {
        self.pool.as_ref()
    }

    /// Registers a relation under its own name. Fails on duplicates. With a
    /// memory budget configured the relation is spilled on the way in.
    pub fn register(&mut self, relation: Relation) -> Result<()> {
        let name = relation.name().to_string();
        if self.relations.contains_key(&name) || self.paged.contains_key(&name) {
            return Err(StorageError::DuplicateRelation(name));
        }
        match &self.pool {
            Some(pool) => {
                let paged = PagedRelation::spill(&relation, pool)?;
                self.paged.insert(name, paged);
            }
            None => {
                self.relations.insert(name, relation);
            }
        }
        Ok(())
    }

    /// Registers or replaces a relation under its own name (spilling it
    /// when a budget is configured).
    pub fn register_or_replace(&mut self, relation: Relation) {
        let name = relation.name().to_string();
        match &self.pool {
            Some(pool) => {
                // Spill failures surface as a typed error from `register`;
                // the replace variant keeps its infallible signature by
                // falling back to resident storage if the spill fails.
                match PagedRelation::spill(&relation, pool) {
                    Ok(paged) => {
                        self.relations.remove(&name);
                        self.paged.insert(name, paged);
                    }
                    Err(_) => {
                        self.paged.remove(&name);
                        self.relations.insert(name, relation);
                    }
                }
            }
            None => {
                self.relations.insert(name, relation);
            }
        }
    }

    /// Looks up a resident relation by name. Spilled relations yield
    /// [`StorageError::RelationSpilled`] (use [`Database::paged_relation`]).
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        match self.relations.get(name) {
            Some(rel) => Ok(rel),
            None if self.paged.contains_key(name) => {
                Err(StorageError::RelationSpilled(name.to_string()))
            }
            None => Err(StorageError::UnknownRelation(name.to_string())),
        }
    }

    /// Looks up a spilled relation by name.
    pub fn paged_relation(&self, name: &str) -> Result<&PagedRelation> {
        self.paged
            .get(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Whether `name` is registered and spilled to paged storage.
    pub fn is_paged(&self, name: &str) -> bool {
        self.paged.contains_key(name)
    }

    /// Whether a relation with this name exists (resident or spilled).
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name) || self.paged.contains_key(name)
    }

    /// Names of all registered relations (resident and spilled), sorted.
    pub fn relation_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .relations
            .keys()
            .chain(self.paged.keys())
            .map(String::as_str)
            .collect();
        names.sort_unstable();
        names
    }

    /// Number of registered relations (resident and spilled).
    pub fn len(&self) -> usize {
        self.relations.len() + self.paged.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty() && self.paged.is_empty()
    }

    /// Removes a resident relation from the catalog, returning it if
    /// present. Spilled relations are removed with
    /// [`Database::remove_paged`].
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// Removes a spilled relation from the catalog.
    pub fn remove_paged(&mut self, name: &str) -> Option<PagedRelation> {
        self.paged.remove(name)
    }

    /// Total approximate heap footprint: resident relations in full, plus
    /// the resident remainder (string columns, metadata) of spilled ones.
    /// Frame memory is bounded by the pool budget and accounted separately.
    pub fn heap_bytes(&self) -> usize {
        self.relations
            .values()
            .map(Relation::heap_bytes)
            .sum::<usize>()
            + self
                .paged
                .values()
                .map(PagedRelation::heap_bytes)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Value};

    fn rel(name: &str) -> Relation {
        Relation::builder(name)
            .column("x", DataType::Int)
            .row(vec![Value::Int(1)])
            .build()
            .unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut db = Database::new();
        db.register(rel("a")).unwrap();
        db.register(rel("b")).unwrap();
        assert!(db.contains("a"));
        assert_eq!(db.relation("b").unwrap().len(), 1);
        assert_eq!(db.relation_names(), vec!["a", "b"]);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut db = Database::new();
        db.register(rel("a")).unwrap();
        assert!(matches!(
            db.register(rel("a")),
            Err(StorageError::DuplicateRelation(_))
        ));
        // register_or_replace always succeeds.
        db.register_or_replace(rel("a"));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn missing_relation_errors() {
        let db = Database::new();
        assert!(matches!(
            db.relation("nope"),
            Err(StorageError::UnknownRelation(_))
        ));
        assert!(db.is_empty());
    }

    #[test]
    fn remove_returns_relation() {
        let mut db = Database::new();
        db.register(rel("a")).unwrap();
        let removed = db.remove("a").unwrap();
        assert_eq!(removed.name(), "a");
        assert!(db.remove("a").is_none());
    }

    #[test]
    fn budget_spills_existing_and_future_registrations() {
        let mut db = Database::new();
        db.register(rel("a")).unwrap();
        db.set_memory_budget_in_memory(PAGE_SIZE, ReplacementPolicy::Sieve)
            .unwrap();
        // Pre-existing relation was spilled.
        assert!(db.is_paged("a"));
        assert!(matches!(
            db.relation("a"),
            Err(StorageError::RelationSpilled(_))
        ));
        assert_eq!(db.paged_relation("a").unwrap().len(), 1);
        // Future registrations spill on the way in.
        db.register(rel("b")).unwrap();
        assert!(db.is_paged("b"));
        assert_eq!(db.relation_names(), vec!["a", "b"]);
        assert_eq!(db.len(), 2);
        assert!(db.contains("b"));
        // Duplicate detection spans both maps.
        assert!(matches!(
            db.register(rel("a")),
            Err(StorageError::DuplicateRelation(_))
        ));
        // Spilled relations round-trip through materialize.
        let back = db.paged_relation("a").unwrap().materialize().unwrap();
        assert_eq!(back.len(), 1);
        // A second budget is rejected.
        assert!(db
            .set_memory_budget_in_memory(PAGE_SIZE, ReplacementPolicy::Sieve)
            .is_err());
    }

    #[test]
    fn register_or_replace_spills_under_budget() {
        let mut db = Database::new();
        db.set_memory_budget_in_memory(PAGE_SIZE, ReplacementPolicy::Clock)
            .unwrap();
        db.register_or_replace(rel("a"));
        assert!(db.is_paged("a"));
        db.register_or_replace(rel("a"));
        assert_eq!(db.len(), 1);
        assert!(db.remove_paged("a").is_some());
        assert!(db.is_empty());
    }
}
