//! Morsel iteration: fixed-size row ranges for partition-parallel execution.
//!
//! A *morsel* is a contiguous rid range of a relation, the unit of work a
//! parallel operator driver hands to a worker thread (Leis et al.'s
//! morsel-driven parallelism, adapted to Smoke's fused lineage capture).
//! Morsel boundaries are always multiples of 64 rows so that the per-morsel
//! [`SelectionMask`](crate::SelectionMask) bitmaps produced by the range
//! kernels stitch back together word-aligned — appending a morsel's mask to
//! the running mask is a plain `memcpy` of `u64` words, never a bit shift.

/// A contiguous rid range `[start, end)` of one relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// First rid of the range (inclusive).
    pub start: usize,
    /// One past the last rid of the range (exclusive).
    pub end: usize,
}

impl Morsel {
    /// Number of rows in the morsel.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the morsel covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Default morsel size in rows. Large enough that per-morsel scheduling and
/// merge overheads vanish against the scan work, small enough that a 1M-row
/// relation still yields good load balancing across 8+ workers.
pub const DEFAULT_MORSEL_ROWS: usize = 64 * 1024;

/// Rounds a requested morsel size up to the mask-word alignment every parallel
/// driver relies on: a positive multiple of 64.
pub fn align_morsel_rows(rows: usize) -> usize {
    rows.max(1).div_ceil(64) * 64
}

/// Splits `len` rows into fixed-size morsels.
///
/// `morsel_rows` is aligned via [`align_morsel_rows`] first, so every morsel
/// except possibly the last covers a multiple of 64 rows and starts on a
/// 64-row boundary. `len == 0` yields no morsels.
pub fn morsels(len: usize, morsel_rows: usize) -> Vec<Morsel> {
    let step = align_morsel_rows(morsel_rows);
    let mut out = Vec::with_capacity(len.div_ceil(step.max(1)));
    let mut start = 0;
    while start < len {
        let end = (start + step).min(len);
        out.push(Morsel { start, end });
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_cover_the_range_exactly_once() {
        let ms = morsels(1_000, 256);
        assert_eq!(ms.len(), 4);
        assert_eq!(ms[0], Morsel { start: 0, end: 256 });
        assert_eq!(
            ms[3],
            Morsel {
                start: 768,
                end: 1_000
            }
        );
        assert_eq!(ms.iter().map(Morsel::len).sum::<usize>(), 1_000);
        for w in ms.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn morsel_rows_are_aligned_to_64() {
        assert_eq!(align_morsel_rows(1), 64);
        assert_eq!(align_morsel_rows(64), 64);
        assert_eq!(align_morsel_rows(65), 128);
        assert_eq!(align_morsel_rows(0), 64);
        let ms = morsels(300, 100); // aligned up to 128
        assert_eq!(ms.len(), 3);
        assert!(ms[0].start.is_multiple_of(64) && ms[1].start.is_multiple_of(64));
    }

    #[test]
    fn empty_and_single_morsel_inputs() {
        assert!(morsels(0, 64).is_empty());
        let ms = morsels(10, DEFAULT_MORSEL_ROWS);
        assert_eq!(ms, vec![Morsel { start: 0, end: 10 }]);
        assert!(!ms[0].is_empty());
    }
}
