//! Scalar values and data types.

use std::cmp::Ordering;
use std::fmt;

/// The data type of a column or scalar expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "STRING"),
        }
    }
}

/// A dynamically-typed scalar value.
///
/// The engine is row-at-a-time; operators that are on the hot path (group-by
/// keys, join keys) avoid `Value` and work directly on the typed column
/// vectors, but plan construction, predicates over heterogeneous rows and
/// result presentation use `Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer value.
    Int(i64),
    /// 64-bit float value.
    Float(f64),
    /// String value.
    Str(String),
}

impl Value {
    /// The data type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload, coercing integers, if numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Total ordering used by comparison predicates. Numeric types compare by
    /// numeric value (ints coerce to floats when mixed); strings compare
    /// lexicographically; mixed string/numeric comparisons order strings last.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(_), _) => Ordering::Greater,
            (_, Value::Str(_)) => Ordering::Less,
        }
    }

    /// A stable string used as a grouping/partitioning key for this value.
    ///
    /// Floats are formatted with full precision; this is only used for
    /// low-cardinality partitioning attributes (paper §4.2 notes partitioning
    /// attributes are categorical or discretized).
    pub fn group_key(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format!("{v:?}"),
            Value::Str(v) => v.clone(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_of_values() {
        assert_eq!(Value::Int(1).data_type(), DataType::Int);
        assert_eq!(Value::Float(1.0).data_type(), DataType::Float);
        assert_eq!(Value::Str("a".into()).data_type(), DataType::Str);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Str("x".into()).as_int(), None);
    }

    #[test]
    fn ordering_mixed_numeric() {
        assert_eq!(Value::Int(1).total_cmp(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(Value::Float(2.0).total_cmp(&Value::Int(2)), Ordering::Equal);
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Str("b".into())),
            Ordering::Less
        );
    }

    #[test]
    fn ordering_strings_after_numbers() {
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Int(100)),
            Ordering::Greater
        );
        assert_eq!(
            Value::Int(100).total_cmp(&Value::Str("a".into())),
            Ordering::Less
        );
    }

    #[test]
    fn group_keys_are_distinct_per_value() {
        assert_ne!(Value::Int(1).group_key(), Value::Int(2).group_key());
        assert_ne!(Value::Float(1.0).group_key(), Value::Float(1.5).group_key());
    }

    #[test]
    fn conversions() {
        let v: Value = 3i64.into();
        assert_eq!(v, Value::Int(3));
        let v: Value = 3.5f64.into();
        assert_eq!(v, Value::Float(3.5));
        let v: Value = "hi".into();
        assert_eq!(v, Value::Str("hi".into()));
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Str("abc".into()).to_string(), "abc");
        assert_eq!(DataType::Int.to_string(), "INT");
    }
}
