//! Storage error types.

use std::fmt;

use crate::DataType;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A referenced column does not exist in the schema.
    UnknownColumn {
        /// Name of the missing column.
        column: String,
        /// Relation in which the lookup happened.
        relation: String,
    },
    /// A referenced relation does not exist in the catalog.
    UnknownRelation(String),
    /// A value of the wrong type was appended to a column.
    TypeMismatch {
        /// Column that rejected the value.
        column: String,
        /// Declared column type.
        expected: DataType,
        /// Type of the offending value.
        actual: DataType,
    },
    /// A row had a different arity than the schema.
    ArityMismatch {
        /// Number of fields in the schema.
        expected: usize,
        /// Number of values provided.
        actual: usize,
    },
    /// Columns of a relation have inconsistent lengths.
    RaggedColumns {
        /// Relation name.
        relation: String,
    },
    /// A relation with the same name already exists in the catalog.
    DuplicateRelation(String),
    /// A duplicate column name was declared in a schema.
    DuplicateColumn(String),
    /// The relation exists but was spilled to paged storage; callers must
    /// use the paged execution path ([`crate::Database::paged_relation`]).
    RelationSpilled(String),
    /// A paged-storage operation failed (wrapped `smoke_pager` error or
    /// paging-specific misuse, flattened to keep this enum `Clone + Eq`).
    Pager(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownColumn { column, relation } => {
                write!(f, "unknown column `{column}` in relation `{relation}`")
            }
            StorageError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            StorageError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch for column `{column}`: expected {expected}, got {actual}"
            ),
            StorageError::ArityMismatch { expected, actual } => {
                write!(f, "row arity mismatch: expected {expected}, got {actual}")
            }
            StorageError::RaggedColumns { relation } => {
                write!(
                    f,
                    "columns of relation `{relation}` have inconsistent lengths"
                )
            }
            StorageError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` already exists")
            }
            StorageError::DuplicateColumn(name) => {
                write!(f, "duplicate column `{name}` in schema")
            }
            StorageError::RelationSpilled(name) => {
                write!(
                    f,
                    "relation `{name}` is spilled to paged storage; use the paged execution path"
                )
            }
            StorageError::Pager(msg) => write!(f, "paged storage failure: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = StorageError::UnknownColumn {
            column: "z".into(),
            relation: "zipf".into(),
        };
        assert!(err.to_string().contains("z"));
        assert!(err.to_string().contains("zipf"));

        let err = StorageError::TypeMismatch {
            column: "v".into(),
            expected: DataType::Float,
            actual: DataType::Str,
        };
        assert!(err.to_string().contains("FLOAT"));
        assert!(err.to_string().contains("STRING"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&StorageError::UnknownRelation("x".into()));
    }
}
