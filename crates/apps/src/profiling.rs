//! Data profiling over lineage (paper §6.5.2).
//!
//! Task: given a functional dependency `A → B` over a table `T`, find the
//! distinct values of `A` that violate the FD and build a bipartite graph
//! connecting each violation `a` with the tuples `{t ∈ T | t.A = a}`.
//!
//! * `Smoke-CD` — run `SELECT A FROM T GROUP BY A HAVING COUNT(DISTINCT B) >
//!   1` with Inject capture; the backward index of the violating groups *is*
//!   the bipartite graph.
//! * `Smoke-UG` — UGuide's algorithm expressed in lineage terms: compute
//!   `SELECT DISTINCT A` and `SELECT DISTINCT B` with capture, backward-trace
//!   each distinct `A` value to `T` and forward-trace the resulting tuples to
//!   the distinct-`B` view; more than one distinct `B` output means a
//!   violation.
//! * `Metanome-UG` — the same UG algorithm, but with the overheads the paper
//!   attributes to the Metanome/UGuide implementation: lineage edges are
//!   emitted through virtual calls, and every attribute is modeled as a
//!   string (so uniqueness checks pay string-handling costs even for integer
//!   columns such as NPI).

use std::collections::{BTreeSet, HashMap};
use std::time::{Duration, Instant};

use smoke_core::baselines::physical::{LineageSink, PhysMemSink};
use smoke_core::ops::groupby::{group_by, GroupByOptions};
use smoke_core::{AggExpr, Result};
use smoke_datagen::physician::FunctionalDependency;
use smoke_planner::{LineagePlanner, LineageQuery};
use smoke_storage::{Column, DataType, Field, Relation, Rid, Schema};

/// The data-profiling techniques compared in the paper's Figure 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfilingTechnique {
    /// `Smoke-CD`: group-by A having COUNT(DISTINCT B) > 1.
    SmokeCd,
    /// `Smoke-UG`: per-attribute distinct views plus backward/forward traces.
    SmokeUg,
    /// `Metanome-UG`: UG with virtual-call capture and all-string values.
    MetanomeUg,
}

/// The violations of one FD plus the bipartite graph connecting them to the
/// tuples responsible.
#[derive(Debug, Clone)]
pub struct FdViolationReport {
    /// The checked functional dependency.
    pub fd: FunctionalDependency,
    /// The violating left-hand-side values (rendered as group keys), sorted.
    pub violations: Vec<String>,
    /// For every violating value, the rids of the tuples with that value.
    pub bipartite: HashMap<String, Vec<Rid>>,
    /// Wall-clock time to evaluate the FD and build the graph.
    pub elapsed: Duration,
}

impl FdViolationReport {
    /// Number of violating left-hand-side values.
    pub fn violation_count(&self) -> usize {
        self.violations.len()
    }

    /// Total number of edges in the bipartite graph.
    pub fn edge_count(&self) -> usize {
        self.bipartite.values().map(Vec::len).sum()
    }
}

/// Checks a functional dependency with the chosen technique.
pub fn check_fd(
    table: &Relation,
    fd: &FunctionalDependency,
    technique: ProfilingTechnique,
) -> Result<FdViolationReport> {
    let start = Instant::now();
    let mut report = match technique {
        ProfilingTechnique::SmokeCd => check_cd(table, fd)?,
        ProfilingTechnique::SmokeUg => check_ug(table, fd, false)?,
        ProfilingTechnique::MetanomeUg => check_ug(table, fd, true)?,
    };
    report.elapsed = start.elapsed();
    Ok(report)
}

/// `Smoke-CD`: one instrumented group-by on the determinant column; the
/// violating groups' backward traces (the bipartite graph edges) are served
/// as one planner batch, which fans the per-violation rid sets out over
/// `std::thread` workers.
fn check_cd(table: &Relation, fd: &FunctionalDependency) -> Result<FdViolationReport> {
    let result = group_by(
        table,
        std::slice::from_ref(&fd.lhs),
        &[AggExpr::count_distinct(&fd.rhs, "distinct_rhs")],
        &GroupByOptions::inject(),
    )?;
    let distinct_col = result.output.column_by_name("distinct_rhs")?.as_int();

    let mut violations = Vec::new();
    let mut violating_sets: Vec<Vec<Rid>> = Vec::new();
    for (gid, &distinct) in distinct_col.iter().enumerate() {
        if distinct > 1 {
            violations.push(result.output.value(gid, 0).group_key());
            violating_sets.push(vec![gid as Rid]);
        }
    }
    let planner = LineagePlanner::new(table, &result.output)
        .backward_index(result.lineage.input(0).backward());
    let traced = planner.execute_batch(&LineageQuery::backward(), &violating_sets)?;
    let bipartite: HashMap<String, Vec<Rid>> = violations.iter().cloned().zip(traced).collect();
    violations.sort();
    Ok(FdViolationReport {
        fd: fd.clone(),
        violations,
        bipartite,
        elapsed: Duration::ZERO,
    })
}

/// `Smoke-UG` / `Metanome-UG`: distinct views per attribute plus traces.
fn check_ug(
    table: &Relation,
    fd: &FunctionalDependency,
    metanome: bool,
) -> Result<FdViolationReport> {
    // Q_{ug,A} and Q_{ug,B}: SELECT DISTINCT attr FROM T, with lineage.
    let lhs_view = distinct_with_lineage(table, &fd.lhs, metanome)?;
    let rhs_view = distinct_with_lineage(table, &fd.rhs, metanome)?;

    // Backward trace every distinct A value to its base tuples in one
    // planner batch (parallel across distinct values).
    let planner =
        LineagePlanner::new(table, &lhs_view.output).backward_index(&lhs_view.backward_index);
    let sets: Vec<Vec<Rid>> = (0..lhs_view.len() as Rid).map(|a| vec![a]).collect();
    let all_tuples = planner.execute_batch(&LineageQuery::backward(), &sets)?;

    let mut violations = Vec::new();
    let mut bipartite = HashMap::new();
    for (a, tuples) in all_tuples.into_iter().enumerate() {
        // ...then forward trace each tuple to the distinct-B view and count
        // distinct B outputs.
        let mut distinct_b: BTreeSet<Rid> = BTreeSet::new();
        for &rid in &tuples {
            if let Some(b) = rhs_view.forward(rid) {
                distinct_b.insert(b);
            }
            if distinct_b.len() > 1 && !metanome {
                // Smoke-UG can stop as soon as a second distinct value shows
                // up; the Metanome-style implementation materializes the full
                // set (string-keyed) before checking.
                break;
            }
        }
        if metanome {
            // Model Metanome's all-strings data model: uniqueness is checked
            // over stringified values rather than rid-encoded outputs.
            let string_values: BTreeSet<String> = tuples
                .iter()
                .map(|&rid| table.value(rid as usize, rhs_view.column_index).group_key())
                .collect();
            if string_values.len() <= 1 {
                continue;
            }
        } else if distinct_b.len() <= 1 {
            continue;
        }
        let key = lhs_view.key(a);
        bipartite.insert(key.clone(), tuples);
        violations.push(key);
    }
    violations.sort();
    Ok(FdViolationReport {
        fd: fd.clone(),
        violations,
        bipartite,
        elapsed: Duration::ZERO,
    })
}

/// A `SELECT DISTINCT attr` view plus lineage, optionally captured through
/// the virtual-call sink (Metanome simulation).
///
/// The distinct values live only in the output relation's first column; keys
/// are rendered on demand instead of being duplicated in a parallel vector.
struct DistinctView {
    /// The distinct view's output relation (one row per distinct value).
    output: Relation,
    column_index: usize,
    backward_index: smoke_lineage::LineageIndex,
    forward_index: smoke_lineage::LineageIndex,
}

impl DistinctView {
    /// Number of distinct values.
    fn len(&self) -> usize {
        self.output.len()
    }

    /// The group key of the `a`-th distinct value.
    fn key(&self, a: usize) -> String {
        self.output.value(a, 0).group_key()
    }

    fn forward(&self, rid: Rid) -> Option<Rid> {
        self.forward_index.lookup(rid).first().copied()
    }
}

fn distinct_with_lineage(table: &Relation, attr: &str, metanome: bool) -> Result<DistinctView> {
    let column_index = table.column_index(attr)?;
    if metanome {
        // Build the distinct view while emitting every lineage edge through a
        // dyn sink, as the physical baselines do; group keys are strings.
        let mut sink = PhysMemSink::new();
        let mut key_to_gid: HashMap<String, Rid> = HashMap::new();
        let mut output_keys: Vec<String> = Vec::new();
        for rid in 0..table.len() {
            let key = table.value(rid, column_index).group_key();
            let gid = match key_to_gid.get(&key) {
                Some(&g) => g,
                None => {
                    let g = output_keys.len() as Rid;
                    key_to_gid.insert(key.clone(), g);
                    output_keys.push(key);
                    g
                }
            };
            let sink_dyn: &mut dyn LineageSink = &mut sink;
            sink_dyn.emit_backward(gid, rid as Rid);
            sink_dyn.emit_forward(rid as Rid, gid);
        }
        let lineage = sink.into_lineage("table");
        let input = lineage.table("table").expect("registered above");
        // Metanome models every attribute as a string; the collected keys
        // move into the relation's column without re-allocation.
        let schema = Schema::new(vec![Field::new(attr.to_string(), DataType::Str)])?;
        let output = Relation::from_columns(
            format!("distinct({attr})"),
            schema,
            vec![Column::Str(output_keys)],
        )?;
        Ok(DistinctView {
            output,
            column_index,
            backward_index: input.backward().finalized(),
            forward_index: input.forward().finalized(),
        })
    } else {
        let result = group_by(table, &[attr.to_string()], &[], &GroupByOptions::inject())?;
        let lin = result.lineage.input(0);
        Ok(DistinctView {
            output: result.output,
            column_index,
            backward_index: lin.backward().finalized(),
            forward_index: lin.forward().finalized(),
        })
    }
}

/// Checks all FDs of the paper with one technique, returning the per-FD
/// reports in order (the two-level bipartite graph of the paper's task).
pub fn check_all_fds(
    table: &Relation,
    fds: &[FunctionalDependency],
    technique: ProfilingTechnique,
) -> Result<Vec<FdViolationReport>> {
    fds.iter()
        .map(|fd| check_fd(table, fd, technique))
        .collect()
}

/// Utility: ground-truth violating LHS values computed with plain hash maps
/// (used by tests to validate every technique).
pub fn reference_violations(table: &Relation, fd: &FunctionalDependency) -> Vec<String> {
    let lhs = table.column_by_name(&fd.lhs).expect("lhs exists");
    let rhs = table.column_by_name(&fd.rhs).expect("rhs exists");
    let mut map: HashMap<String, BTreeSet<String>> = HashMap::new();
    for rid in 0..table.len() {
        map.entry(lhs.value(rid).group_key())
            .or_default()
            .insert(rhs.value(rid).group_key());
    }
    let mut out: Vec<String> = map
        .into_iter()
        .filter(|(_, v)| v.len() > 1)
        .map(|(k, _)| k)
        .collect();
    out.sort();
    out
}

/// Convenience check used by examples: whether a tuple participates in any
/// violation of the given report.
pub fn tuple_is_suspect(report: &FdViolationReport, rid: Rid) -> bool {
    report.bipartite.values().any(|rids| rids.contains(&rid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_datagen::physician::{paper_fds, PhysicianSpec};
    use smoke_storage::{DataType, Value};

    fn table() -> Relation {
        PhysicianSpec {
            rows: 8_000,
            practices: 400,
            violation_rate: 0.05,
            seed: 3,
        }
        .generate()
    }

    #[test]
    fn all_techniques_find_the_same_violations() {
        let t = table();
        for fd in paper_fds() {
            let expected = reference_violations(&t, &fd);
            for technique in [
                ProfilingTechnique::SmokeCd,
                ProfilingTechnique::SmokeUg,
                ProfilingTechnique::MetanomeUg,
            ] {
                let report = check_fd(&t, &fd, technique).unwrap();
                assert_eq!(report.violations, expected, "{fd:?} with {technique:?}");
            }
        }
    }

    #[test]
    fn bipartite_graph_connects_violations_to_their_tuples() {
        let t = table();
        let fd = FunctionalDependency::new("zip", "state");
        let report = check_fd(&t, &fd, ProfilingTechnique::SmokeCd).unwrap();
        let zip_col = t.column_by_name("zip").unwrap();
        for violation in &report.violations {
            let rids = &report.bipartite[violation];
            assert!(!rids.is_empty());
            for &rid in rids {
                assert_eq!(&zip_col.value(rid as usize).group_key(), violation);
            }
            // Every tuple with this zip is in the graph.
            let expected: usize = (0..t.len())
                .filter(|&rid| &zip_col.value(rid).group_key() == violation)
                .count();
            assert_eq!(rids.len(), expected);
        }
        assert_eq!(
            report.edge_count(),
            report.bipartite.values().map(Vec::len).sum()
        );
    }

    #[test]
    fn clean_table_has_no_violations() {
        let t = PhysicianSpec {
            rows: 2_000,
            practices: 100,
            violation_rate: 0.0,
            seed: 9,
        }
        .generate();
        for technique in [
            ProfilingTechnique::SmokeCd,
            ProfilingTechnique::SmokeUg,
            ProfilingTechnique::MetanomeUg,
        ] {
            let report =
                check_fd(&t, &FunctionalDependency::new("zip", "state"), technique).unwrap();
            assert_eq!(report.violation_count(), 0);
        }
    }

    #[test]
    fn check_all_fds_reports_in_order() {
        let t = table();
        let reports = check_all_fds(&t, &paper_fds(), ProfilingTechnique::SmokeUg).unwrap();
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].fd.lhs, "npi");
        assert_eq!(reports[3].fd.lhs, "lbn");
    }

    #[test]
    fn tuple_suspect_helper() {
        let mut b = Relation::builder("t")
            .column("a", DataType::Str)
            .column("b", DataType::Str);
        for (a, v) in [("x", "1"), ("x", "2"), ("y", "3")] {
            b = b.row(vec![Value::Str(a.into()), Value::Str(v.into())]);
        }
        let t = b.build().unwrap();
        let report = check_fd(
            &t,
            &FunctionalDependency::new("a", "b"),
            ProfilingTechnique::SmokeCd,
        )
        .unwrap();
        assert_eq!(report.violations, vec!["x".to_string()]);
        assert!(tuple_is_suspect(&report, 0));
        assert!(tuple_is_suspect(&report, 1));
        assert!(!tuple_is_suspect(&report, 2));
    }
}
