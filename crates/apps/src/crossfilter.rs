//! Crossfilter visualizations over lineage (paper §6.5.1, Appendix D).
//!
//! Multiple group-by COUNT views are rendered over the same base table. When
//! the user highlights a bar in one view, every other view must be refreshed
//! to show the counts over only the subset of the base table that contributed
//! to the highlighted bar. Expressed in lineage terms:
//!
//! * `Lazy` — no capture: each interaction re-runs the group-by queries with
//!   a shared selection scan over the base table;
//! * `BT` — capture backward indexes for each view: the interaction traces
//!   the highlighted bar back to its base rids and re-runs the group-bys over
//!   that subset (an index scan, but hash tables are rebuilt);
//! * `BT+FT` — additionally capture forward indexes: each base rid in the
//!   lineage subset is mapped *directly* to its output bar in every other
//!   view, so counts are updated incrementally with no hash tables at all;
//! * `PartialCube` — precompute pairwise (dimension × dimension) count cubes
//!   during capture (the group-by push-down optimization); interactions are
//!   pure lookups, at the cost of a substantial offline construction phase.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use smoke_core::ops::groupby::{group_by, GroupByOptions};
use smoke_core::query::consume_aggregate;
use smoke_core::{AggExpr, CaptureMode, DirectionFilter, EngineError, Result};
use smoke_lineage::LineageIndex;
use smoke_planner::{LineagePlanner, LineageQuery};
use smoke_storage::{Column, DataType, Field, Relation, Rid, Schema, Value};

/// The crossfilter evaluation techniques compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossfilterTechnique {
    /// Re-run group-bys with a shared selection scan (no capture).
    Lazy,
    /// Backward-trace then re-aggregate over the lineage subset.
    BackwardTrace,
    /// Backward-trace then incrementally update via forward indexes.
    BackwardForwardTrace,
    /// Pairwise partial data cubes built during capture.
    PartialCube,
}

/// Pairwise sparse count cubes: `cubes[i][j][bar_i][bar_j]` is the number of
/// base tuples landing in bar `bar_i` of view `i` and bar `bar_j` of view `j`.
type PairwiseCubes = Vec<Vec<HashMap<Rid, HashMap<Rid, u64>>>>;

/// One crossfilter view: a group-by COUNT over a single dimension.
#[derive(Debug, Clone)]
pub struct View {
    /// The grouped dimension column.
    pub dimension: String,
    /// The view's rendered output: one row per bar (dimension value, count).
    pub output: Relation,
    backward: Option<LineageIndex>,
    forward: Option<LineageIndex>,
    /// Dimension value (as a group key string) → bar rid.
    bar_index: HashMap<String, Rid>,
}

impl View {
    /// Number of bars in this view.
    pub fn bars(&self) -> usize {
        self.output.len()
    }

    /// The bar rid for a dimension value, if present.
    pub fn bar_for(&self, value: &Value) -> Option<Rid> {
        self.bar_index.get(&value.group_key()).copied()
    }
}

/// A crossfilter session: the base table, its views, and whatever state the
/// chosen technique captured.
#[derive(Debug, Clone)]
pub struct CrossfilterSession {
    base: Relation,
    technique: CrossfilterTechnique,
    views: Vec<View>,
    /// Pairwise sparse cubes: `cube[i][j][bar_i]` maps bars of view `j` to
    /// counts, for `i != j`. Present only for [`CrossfilterTechnique::PartialCube`].
    cube: Option<PairwiseCubes>,
    /// Wall-clock time spent building views and capturing lineage / cubes.
    pub build_time: Duration,
}

impl CrossfilterSession {
    /// Builds the initial views over `base` for the given dimensions with the
    /// chosen technique, capturing lineage (or cubes) as required.
    pub fn build(
        base: Relation,
        dimensions: &[&str],
        technique: CrossfilterTechnique,
    ) -> Result<Self> {
        let start = Instant::now();
        let mut views = Vec::with_capacity(dimensions.len());
        for dim in dimensions {
            let mut opts = GroupByOptions {
                mode: match technique {
                    CrossfilterTechnique::Lazy => CaptureMode::Baseline,
                    _ => CaptureMode::Inject,
                },
                ..Default::default()
            };
            opts.directions = match technique {
                CrossfilterTechnique::Lazy => DirectionFilter::None,
                CrossfilterTechnique::BackwardTrace => DirectionFilter::BackwardOnly,
                CrossfilterTechnique::BackwardForwardTrace | CrossfilterTechnique::PartialCube => {
                    DirectionFilter::Both
                }
            };
            let result = group_by(&base, &[dim.to_string()], &[AggExpr::count("cnt")], &opts)?;
            let mut bar_index = HashMap::new();
            for rid in 0..result.output.len() {
                bar_index.insert(result.output.value(rid, 0).group_key(), rid as Rid);
            }
            let (backward, forward) = if technique == CrossfilterTechnique::Lazy {
                (None, None)
            } else {
                // Capture is done once per session; finalize the indexes into
                // CSR so every subsequent interaction traces flat buffers.
                let lin = result.lineage.input(0);
                (
                    lin.backward.as_ref().map(LineageIndex::finalized),
                    lin.forward.as_ref().map(LineageIndex::finalized),
                )
            };
            views.push(View {
                dimension: dim.to_string(),
                output: result.output,
                backward,
                forward,
                bar_index,
            });
        }

        // Partial cube construction: one pass over the base table updating
        // every ordered pair of views, using the forward indexes as perfect
        // hash functions from base rid to bar.
        let cube = if technique == CrossfilterTechnique::PartialCube {
            let n = views.len();
            let mut cube: PairwiseCubes = vec![vec![HashMap::new(); n]; n];
            for rid in 0..base.len() as Rid {
                let bars: Vec<Option<Rid>> = views
                    .iter()
                    .map(|v| v.forward.as_ref().and_then(|f| f.single(rid)))
                    .collect();
                for i in 0..n {
                    let Some(bi) = bars[i] else { continue };
                    for (j, bar_j) in bars.iter().enumerate() {
                        if i == j {
                            continue;
                        }
                        let Some(bj) = bar_j else { continue };
                        *cube[i][j].entry(bi).or_default().entry(*bj).or_insert(0) += 1;
                    }
                }
            }
            Some(cube)
        } else {
            None
        };

        Ok(CrossfilterSession {
            base,
            technique,
            views,
            cube,
            build_time: start.elapsed(),
        })
    }

    /// The views of this session.
    pub fn views(&self) -> &[View] {
        &self.views
    }

    /// The technique this session was built with.
    pub fn technique(&self) -> CrossfilterTechnique {
        self.technique
    }

    /// Handles a brushing interaction: the user highlights bar `bar` of view
    /// `view_idx`; returns the refreshed outputs of every *other* view (in
    /// view order), each a relation `(dimension value, cnt)` restricted to the
    /// lineage subset of the highlighted bar.
    pub fn interact(&self, view_idx: usize, bar: Rid) -> Result<Vec<Relation>> {
        if view_idx >= self.views.len() {
            return Err(EngineError::InvalidPlan(format!(
                "view index {view_idx} out of range"
            )));
        }
        // A bar that does not exist traces to nothing: refresh every other
        // view to an empty result instead of panicking on the user-supplied
        // position (consistent with out-of-bounds lineage lookups).
        if bar as usize >= self.views[view_idx].bars() {
            return self
                .other_views(view_idx)
                .map(|(_, view)| materialize_counts(view, &[]))
                .collect();
        }
        match self.technique {
            CrossfilterTechnique::Lazy => self.interact_lazy(view_idx, bar),
            CrossfilterTechnique::BackwardTrace => self.interact_bt(view_idx, bar),
            CrossfilterTechnique::BackwardForwardTrace => self.interact_btft(view_idx, bar),
            CrossfilterTechnique::PartialCube => self.interact_cube(view_idx, bar),
        }
    }

    fn other_views(&self, view_idx: usize) -> impl Iterator<Item = (usize, &View)> {
        self.views
            .iter()
            .enumerate()
            .filter(move |(i, _)| *i != view_idx)
    }

    /// Lazy: shared selection scan over the base table, updating the counts
    /// of all other views in a single pass.
    fn interact_lazy(&self, view_idx: usize, bar: Rid) -> Result<Vec<Relation>> {
        let brushed = &self.views[view_idx];
        let brushed_value = brushed.output.value(bar as usize, 0);
        let dim_idx = self.base.column_index(&brushed.dimension)?;

        let other: Vec<(usize, &View)> = self.other_views(view_idx).collect();
        let mut counts: Vec<HashMap<String, u64>> = vec![HashMap::new(); other.len()];
        let other_dim_idx: Vec<usize> = other
            .iter()
            .map(|(_, v)| self.base.column_index(&v.dimension))
            .collect::<std::result::Result<_, _>>()?;

        for rid in 0..self.base.len() {
            if self.base.value(rid, dim_idx) != brushed_value {
                continue;
            }
            for (k, &col) in other_dim_idx.iter().enumerate() {
                *counts[k]
                    .entry(self.base.value(rid, col).group_key())
                    .or_insert(0) += 1;
            }
        }
        other
            .iter()
            .zip(counts)
            .map(|((_, view), count_map)| refresh_view(view, &count_map, &self.base))
            .collect()
    }

    /// The lineage planner over the brushed view's captured indexes.
    fn planner_for<'s>(&'s self, view: &'s View, need: &str) -> Result<LineagePlanner<'s>> {
        let backward = view.backward.as_ref().ok_or_else(|| {
            EngineError::InvalidPlan(format!("{need} interaction requires backward lineage"))
        })?;
        let mut planner = LineagePlanner::new(&self.base, &view.output).backward_index(backward);
        if let Some(forward) = view.forward.as_ref() {
            planner = planner.forward_index(forward);
        }
        Ok(planner)
    }

    /// BT: one planner-compiled backward trace of the highlighted bar (an
    /// `EagerTrace` index scan), then a per-dimension re-aggregation of the
    /// shared rid set for every other view (rebuilding group-by hash tables).
    fn interact_bt(&self, view_idx: usize, bar: Rid) -> Result<Vec<Relation>> {
        let planner = self.planner_for(&self.views[view_idx], "BT")?;
        let rids = planner.execute(&LineageQuery::backward().rids([bar]))?.rids;
        self.other_views(view_idx)
            .map(|(_, view)| {
                consume_aggregate(
                    &self.base,
                    &rids,
                    std::slice::from_ref(&view.dimension),
                    &[AggExpr::count("cnt")],
                )
            })
            .collect()
    }

    /// BT+FT: backward-trace through the planner, then use forward indexes as
    /// perfect hash functions from base rids to bars — no hash tables are
    /// rebuilt.
    fn interact_btft(&self, view_idx: usize, bar: Rid) -> Result<Vec<Relation>> {
        let planner = self.planner_for(&self.views[view_idx], "BT+FT")?;
        let rids = planner.execute(&LineageQuery::backward().rids([bar]))?.rids;

        let other: Vec<(usize, &View)> = self.other_views(view_idx).collect();
        let mut counts: Vec<Vec<u64>> = other.iter().map(|(_, v)| vec![0u64; v.bars()]).collect();
        for &rid in &rids {
            for (k, (_, view)) in other.iter().enumerate() {
                if let Some(out) = view.forward.as_ref().and_then(|f| f.single(rid)) {
                    counts[k][out as usize] += 1;
                }
            }
        }
        other
            .iter()
            .zip(counts)
            .map(|((_, view), c)| materialize_counts(view, &c))
            .collect()
    }

    /// Partial cube: pure lookups.
    fn interact_cube(&self, view_idx: usize, bar: Rid) -> Result<Vec<Relation>> {
        let cube = self.cube.as_ref().ok_or_else(|| {
            EngineError::InvalidPlan("cube interaction requires a constructed cube".into())
        })?;
        self.other_views(view_idx)
            .map(|(j, view)| {
                let mut counts = vec![0u64; view.bars()];
                if let Some(per_bar) = cube[view_idx][j].get(&bar) {
                    for (&bj, &c) in per_bar {
                        counts[bj as usize] = c;
                    }
                }
                materialize_counts(view, &counts)
            })
            .collect()
    }
}

/// Builds a refreshed view relation from a dimension-value → count map,
/// keeping only non-zero bars (the paper's `remove_non_affected_groups`).
fn refresh_view(view: &View, counts: &HashMap<String, u64>, base: &Relation) -> Result<Relation> {
    let dim_idx = base.column_index(&view.dimension)?;
    let dim_type = base.schema().field(dim_idx).data_type;
    let mut builder = Relation::builder(format!("crossfilter({})", view.dimension))
        .column(view.dimension.clone(), dim_type)
        .column("cnt", DataType::Int);
    for rid in 0..view.output.len() {
        let value = view.output.value(rid, 0);
        if let Some(&c) = counts.get(&value.group_key()) {
            if c > 0 {
                builder = builder.row(vec![value, Value::Int(c as i64)]);
            }
        }
    }
    Ok(builder.build()?)
}

/// Builds a refreshed view relation from per-bar counts.
fn materialize_counts(view: &View, counts: &[u64]) -> Result<Relation> {
    let dim_type = view.output.schema().field(0).data_type;
    let schema = Schema::new(vec![
        Field::new(view.dimension.clone(), dim_type),
        Field::new("cnt", DataType::Int),
    ])?;
    let mut dim_col = Column::new(dim_type);
    let mut cnt_col: Vec<i64> = Vec::new();
    for (bar, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        dim_col.push(view.output.value(bar, 0))?;
        cnt_col.push(c as i64);
    }
    Ok(Relation::from_columns(
        format!("crossfilter({})", view.dimension),
        schema,
        vec![dim_col, Column::Int(cnt_col)],
    )?)
}

/// Sorts a refreshed view's rows into `(dimension value, count)` pairs for
/// order-insensitive comparisons in tests and benchmarks.
pub fn normalized_counts(view: &Relation) -> Vec<(String, i64)> {
    let mut rows: Vec<(String, i64)> = (0..view.len())
        .map(|rid| {
            (
                view.value(rid, 0).group_key(),
                view.value(rid, 1).as_int().unwrap_or(0),
            )
        })
        .collect();
    rows.sort();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_datagen::OntimeSpec;

    fn base() -> Relation {
        OntimeSpec {
            rows: 3_000,
            seed: 5,
        }
        .generate()
    }

    fn dims() -> Vec<&'static str> {
        vec!["delay_bin", "carrier", "date_bin"]
    }

    #[test]
    fn views_are_group_by_counts() {
        let session =
            CrossfilterSession::build(base(), &dims(), CrossfilterTechnique::Lazy).unwrap();
        assert_eq!(session.views().len(), 3);
        let delay_view = &session.views()[0];
        assert!(delay_view.bars() <= 8);
        let total: i64 = (0..delay_view.output.len())
            .map(|rid| delay_view.output.value(rid, 1).as_int().unwrap())
            .sum();
        assert_eq!(total, 3_000);
        assert!(delay_view.bar_for(&Value::Int(0)).is_some());
    }

    #[test]
    fn all_techniques_agree_on_interactions() {
        let base = base();
        let lazy =
            CrossfilterSession::build(base.clone(), &dims(), CrossfilterTechnique::Lazy).unwrap();
        let bt =
            CrossfilterSession::build(base.clone(), &dims(), CrossfilterTechnique::BackwardTrace)
                .unwrap();
        let btft = CrossfilterSession::build(
            base.clone(),
            &dims(),
            CrossfilterTechnique::BackwardForwardTrace,
        )
        .unwrap();
        let cube =
            CrossfilterSession::build(base, &dims(), CrossfilterTechnique::PartialCube).unwrap();

        // Highlight a few bars of the carrier view (index 1) and compare.
        for bar in 0..3u32 {
            let expected: Vec<_> = lazy
                .interact(1, bar)
                .unwrap()
                .iter()
                .map(normalized_counts)
                .collect();
            for session in [&bt, &btft, &cube] {
                let got: Vec<_> = session
                    .interact(1, bar)
                    .unwrap()
                    .iter()
                    .map(normalized_counts)
                    .collect();
                assert_eq!(got, expected, "technique {:?}", session.technique());
            }
        }
    }

    #[test]
    fn interaction_counts_sum_to_bar_count() {
        let session =
            CrossfilterSession::build(base(), &dims(), CrossfilterTechnique::BackwardForwardTrace)
                .unwrap();
        let brushed = &session.views()[0];
        for bar in 0..brushed.bars() as Rid {
            let bar_count = brushed.output.value(bar as usize, 1).as_int().unwrap();
            let refreshed = session.interact(0, bar).unwrap();
            for view in &refreshed {
                let total: i64 = (0..view.len())
                    .map(|rid| view.value(rid, 1).as_int().unwrap())
                    .sum();
                assert_eq!(total, bar_count);
            }
        }
    }

    #[test]
    fn cube_build_is_slower_but_interactions_work() {
        let base = base();
        let btft = CrossfilterSession::build(
            base.clone(),
            &dims(),
            CrossfilterTechnique::BackwardForwardTrace,
        )
        .unwrap();
        let cube =
            CrossfilterSession::build(base, &dims(), CrossfilterTechnique::PartialCube).unwrap();
        // The cube technique must also pay for the pairwise cube pass.
        assert!(cube.build_time >= btft.build_time / 4);
        assert!(!cube.interact(2, 0).unwrap().is_empty());
    }

    #[test]
    fn invalid_view_index_is_rejected() {
        let session =
            CrossfilterSession::build(base(), &dims(), CrossfilterTechnique::Lazy).unwrap();
        assert!(session.interact(99, 0).is_err());
    }

    #[test]
    fn out_of_range_bar_refreshes_to_empty_views() {
        // A user-supplied bar beyond the view's range must not panic in any
        // technique; it traces to nothing, so every refreshed view is empty.
        let base = base();
        for technique in [
            CrossfilterTechnique::Lazy,
            CrossfilterTechnique::BackwardTrace,
            CrossfilterTechnique::BackwardForwardTrace,
            CrossfilterTechnique::PartialCube,
        ] {
            let session = CrossfilterSession::build(base.clone(), &dims(), technique).unwrap();
            let refreshed = session.interact(0, 9_999).unwrap();
            assert_eq!(refreshed.len(), session.views().len() - 1);
            for view in &refreshed {
                assert_eq!(view.len(), 0, "technique {technique:?}");
            }
        }
    }

    #[test]
    fn captured_indexes_are_finalized_to_csr() {
        let session =
            CrossfilterSession::build(base(), &dims(), CrossfilterTechnique::BackwardTrace)
                .unwrap();
        for view in session.views() {
            assert!(matches!(view.backward, Some(LineageIndex::Csr(_))));
        }
    }
}
