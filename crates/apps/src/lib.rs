//! # smoke-apps
//!
//! Real-world applications expressed in lineage terms on top of the Smoke
//! engine, reproducing the application studies of the paper (§6.5):
//!
//! * [`crossfilter`] — linked cross-filtered visualizations over the
//!   Ontime-like dataset, with the `Lazy`, `BT` (backward-trace), `BT+FT`
//!   (backward + forward trace) and partial-data-cube techniques;
//! * [`profiling`] — data profiling: functional-dependency violation
//!   detection and bipartite-graph construction with the `Smoke-CD`,
//!   `Smoke-UG`, and `Metanome-UG` (simulated) techniques;
//! * [`brushing`] — the linked-brushing interaction of the paper's Figure 1,
//!   expressed as a backward query followed by a forward query, served as a
//!   single composed-index trace.
//!
//! All three applications issue their lineage(-consuming) queries through
//! the declarative [`smoke_planner`] API rather than raw index calls, so the
//! cost-based planner owns the strategy choice.

#![warn(missing_docs)]

pub mod brushing;
pub mod crossfilter;
pub mod profiling;

pub use brushing::LinkedViews;
pub use crossfilter::{CrossfilterSession, CrossfilterTechnique};
pub use profiling::{check_fd, FdViolationReport, ProfilingTechnique};
