//! Background read-ahead for page runs.
//!
//! [`crate::BufferPool::prefetch`] feeds advisory [`PageId`] hints to a
//! small pool of worker threads owned by the pool. Hints are sorted,
//! deduplicated, and coalesced into contiguous runs — bridging gaps of up
//! to [`MAX_COALESCE_GAP`] pages, capped at [`MAX_RUN_PAGES`] pages per run
//! — and each run is fetched from the [`crate::SegmentStore`] with one
//! vectored [`crate::SegmentStore::read_run_pages`] call into page-sized
//! buffers that are swapped into unpinned frames wholesale.
//!
//! Everything here is best-effort: a full queue drops hints, an I/O error
//! drops the run, a fully pinned pool installs nothing, and a run larger
//! than the pool stops rather than cycling through its own pages. The
//! demand path never waits on the prefetcher and never observes an error
//! from it; a dropped hint just means the next pin pays the read itself.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::page::{PageId, PAGE_SIZE};
use crate::pool::PoolCore;

/// Longest run a single batched read covers, in pages (2 MiB). Every
/// per-run fixed cost — the readv syscall, the pool's one O(capacity)
/// eviction sweep, queue locking, and the worker wake-up — amortizes over
/// this many pages, so longer runs directly lower the per-page install
/// cost; 2 MiB keeps a run well under any realistic pool budget.
pub(crate) const MAX_RUN_PAGES: u32 = 256;

/// Hints this close together are bridged into one run: reading a few extra
/// contiguous pages is cheaper than a second seek.
pub(crate) const MAX_COALESCE_GAP: u32 = 4;

/// Queue depth bound; hints beyond it are dropped (they are advisory).
const MAX_QUEUED_RUNS: usize = 4096;

/// `(first_page, page_count)` of one coalesced run.
type Run = (u32, u32);

struct Queue {
    runs: VecDeque<Run>,
    /// Workers currently reading/installing a run.
    active: usize,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signalled when work arrives or shutdown begins.
    work: Condvar,
    /// Signalled when the queue drains and no worker is active.
    idle: Condvar,
}

/// Handle to the worker pool; dropping it shuts the workers down and joins
/// them.
pub(crate) struct Prefetcher {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // The queue holds plain bookkeeping; recover it rather than letting one
    // panicked worker poison every future hint.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Prefetcher {
    /// Spawns `threads` (at least one) workers sharing `core`.
    pub(crate) fn spawn(core: Arc<PoolCore>, threads: usize) -> Prefetcher {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                runs: VecDeque::new(),
                active: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .filter_map(|_| {
                let core = Arc::clone(&core);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("smoke-prefetch".into())
                    .spawn(move || worker(core, shared))
                    .ok()
            })
            .collect();
        Prefetcher { shared, workers }
    }

    /// Coalesces `pages` into runs and queues them. Non-blocking; excess
    /// runs beyond the queue bound are dropped.
    pub(crate) fn enqueue(&self, pages: &[PageId]) {
        if pages.is_empty() {
            return;
        }
        let mut ids: Vec<u32> = pages.iter().map(|p| p.0).collect();
        ids.sort_unstable();
        ids.dedup();
        let mut queued = false;
        {
            let mut q = relock(&self.shared.queue);
            if q.shutdown {
                return;
            }
            let mut i = 0;
            while i < ids.len() {
                let first = ids.get(i).copied().unwrap_or_default();
                let mut last = first;
                let mut j = i + 1;
                while let Some(&next) = ids.get(j) {
                    if next - last > MAX_COALESCE_GAP + 1 || next - first >= MAX_RUN_PAGES {
                        break;
                    }
                    last = next;
                    j += 1;
                }
                if q.runs.len() < MAX_QUEUED_RUNS {
                    q.runs.push_back((first, last - first + 1));
                    queued = true;
                }
                i = j;
            }
        }
        if queued {
            self.shared.work.notify_all();
        }
    }

    /// Blocks until the queue is empty and no worker is mid-run.
    pub(crate) fn quiesce(&self) {
        let mut q = relock(&self.shared.queue);
        while !(q.runs.is_empty() && q.active == 0) {
            q = self
                .shared
                .idle
                .wait(q)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        {
            let mut q = relock(&self.shared.queue);
            q.shutdown = true;
            q.runs.clear();
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker(core: Arc<PoolCore>, shared: Arc<Shared>) {
    // One page-sized buffer per run slot: the install path swaps these into
    // frames wholesale and hands back each frame's displaced buffer, so
    // steady-state prefetching recycles allocations instead of copying a
    // flat slab into frames a second time.
    let mut scratch: Vec<Vec<u8>> = (0..MAX_RUN_PAGES).map(|_| vec![0u8; PAGE_SIZE]).collect();
    loop {
        let (first, len) = {
            let mut q = relock(&shared.queue);
            loop {
                if let Some(run) = q.runs.pop_front() {
                    q.active += 1;
                    break run;
                }
                if q.shutdown {
                    return;
                }
                q = shared
                    .work
                    .wait(q)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        core.prefetch_run(PageId(first), len.min(MAX_RUN_PAGES), &mut scratch);
        let mut q = relock(&shared.queue);
        q.active -= 1;
        if q.runs.is_empty() && q.active == 0 {
            shared.idle.notify_all();
        }
    }
}
