//! The segment store: a flat array of fixed-size pages on disk (or in
//! memory for tests and Miri runs).
//!
//! The store owns allocation (a bump counter of page ids) and raw page I/O;
//! caching, pinning, and replacement live in [`crate::BufferPool`]. Pages
//! that were allocated but never written read back as zeroes, so callers can
//! allocate contiguous runs up front and fill them lazily.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::process;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::error::PagerError;
use crate::page::{PageId, PAGE_SIZE};

/// Monotonic counter so concurrently created temp segments get distinct
/// file names within one process.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Recovers a mutex guard even if a previous holder panicked; the protected
/// state is a plain file handle / byte buffer, valid regardless.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One read of the still-unread tail of `bufs` (the first `skip` bytes
/// across the run are already filled), returning the byte count read. The
/// native build issues a single vectored read over every unfinished page;
/// Miri has no `readv` shim, so under Miri this degrades to one plain read
/// into the first unfinished page (same bytes, one page per call).
#[cfg(not(miri))]
fn read_tail(f: &mut File, bufs: &mut [Vec<u8>], skip: usize) -> std::io::Result<usize> {
    let mut slices: Vec<std::io::IoSliceMut<'_>> = Vec::with_capacity(bufs.len());
    let mut skip = skip;
    for buf in bufs.iter_mut() {
        if skip >= buf.len() {
            skip -= buf.len();
            continue;
        }
        slices.push(std::io::IoSliceMut::new(&mut buf[skip..]));
        skip = 0;
    }
    f.read_vectored(&mut slices)
}

#[cfg(miri)]
fn read_tail(f: &mut File, bufs: &mut [Vec<u8>], skip: usize) -> std::io::Result<usize> {
    let page = skip / PAGE_SIZE;
    let off = skip % PAGE_SIZE;
    match bufs.get_mut(page) {
        Some(buf) => f.read(&mut buf[off..]),
        None => Ok(0),
    }
}

enum Backend {
    /// A real file. Seek-based I/O (not `pread`) keeps the store portable
    /// and Miri-friendly; the mutex serializes the shared cursor.
    File {
        file: Mutex<File>,
        path: PathBuf,
        delete_on_drop: bool,
    },
    /// An in-memory byte vector with file semantics. Used by unit tests,
    /// property tests, and Miri runs where temp-file churn is unwanted.
    Mem(Mutex<Vec<u8>>),
}

/// A file-backed (or memory-backed) array of fixed-size pages.
pub struct SegmentStore {
    backend: Backend,
    next_page: AtomicU32,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl SegmentStore {
    /// Opens a store over a fresh temporary file under the OS temp
    /// directory. The file is deleted when the store is dropped.
    pub fn temp(label: &str) -> Result<Self, PagerError> {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let name = format!("smoke-pager-{}-{n}-{label}.seg", process::id());
        let path = std::env::temp_dir().join(name);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| PagerError::io(format!("create segment {}", path.display()), &e))?;
        Ok(SegmentStore {
            backend: Backend::File {
                file: Mutex::new(file),
                path,
                delete_on_drop: true,
            },
            next_page: AtomicU32::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// Opens a store backed by an in-memory buffer. Behaves exactly like a
    /// file-backed store (including the read/write counters) without
    /// touching the filesystem.
    pub fn in_memory() -> Self {
        SegmentStore {
            backend: Backend::Mem(Mutex::new(Vec::new())),
            next_page: AtomicU32::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Allocates a contiguous run of `n` pages, returning the first id.
    /// Allocation only bumps a counter; pages materialize on first write.
    pub fn allocate(&self, n: u32) -> PageId {
        PageId(self.next_page.fetch_add(n, Ordering::Relaxed))
    }

    /// Number of pages allocated so far.
    pub fn page_count(&self) -> u32 {
        self.next_page.load(Ordering::Relaxed)
    }

    /// Physical page reads served since creation.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Physical page writes since creation.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    fn check_page(&self, page: PageId) -> Result<(), PagerError> {
        let allocated = self.page_count();
        if page.0 >= allocated {
            return Err(PagerError::PageOutOfBounds { page, allocated });
        }
        Ok(())
    }

    /// Reads page `page` into `buf` (which must be exactly `PAGE_SIZE`
    /// bytes). Allocated-but-never-written pages read back as zeroes.
    pub fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<(), PagerError> {
        if buf.len() != PAGE_SIZE {
            return Err(PagerError::BadBufferLength { actual: buf.len() });
        }
        self.check_page(page)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        match &self.backend {
            Backend::File { file, path, .. } => {
                let mut f = relock(file);
                let ctx = || format!("read page {page} of {}", path.display());
                f.seek(SeekFrom::Start(page.offset()))
                    .map_err(|e| PagerError::io(ctx(), &e))?;
                // The file may be shorter than the page's extent (allocated
                // but unwritten tail): read what exists, zero the rest.
                let mut filled = 0usize;
                loop {
                    let n = f
                        .read(&mut buf[filled..])
                        .map_err(|e| PagerError::io(ctx(), &e))?;
                    if n == 0 {
                        break;
                    }
                    filled += n;
                    if filled == PAGE_SIZE {
                        break;
                    }
                }
                buf[filled..].fill(0);
                Ok(())
            }
            Backend::Mem(bytes) => {
                let bytes = relock(bytes);
                let start = page.offset() as usize;
                let have = bytes.len().saturating_sub(start).min(PAGE_SIZE);
                if have > 0 {
                    buf[..have].copy_from_slice(&bytes[start..start + have]);
                }
                buf[have..].fill(0);
                Ok(())
            }
        }
    }

    /// Reads the `len`-page run starting at `first` into `buf` (which must
    /// be exactly `len × PAGE_SIZE` bytes) with a single backend read —
    /// one seek instead of one per page. This is the batched read behind
    /// the buffer pool's background prefetcher. Allocated-but-unwritten
    /// tails read back as zeroes, exactly like [`SegmentStore::read_page`].
    pub fn read_run(&self, first: PageId, len: u32, buf: &mut [u8]) -> Result<(), PagerError> {
        let expected = len as usize * PAGE_SIZE;
        if buf.len() != expected {
            return Err(PagerError::BadBufferLength { actual: buf.len() });
        }
        if len == 0 {
            return Ok(());
        }
        let last = PageId(first.0.saturating_add(len - 1));
        self.check_page(first)?;
        self.check_page(last)?;
        self.reads.fetch_add(u64::from(len), Ordering::Relaxed);
        match &self.backend {
            Backend::File { file, path, .. } => {
                let mut f = relock(file);
                let ctx = || format!("read run [{first}; {len} pages] of {}", path.display());
                f.seek(SeekFrom::Start(first.offset()))
                    .map_err(|e| PagerError::io(ctx(), &e))?;
                let mut filled = 0usize;
                loop {
                    let n = f
                        .read(&mut buf[filled..])
                        .map_err(|e| PagerError::io(ctx(), &e))?;
                    if n == 0 {
                        break;
                    }
                    filled += n;
                    if filled == expected {
                        break;
                    }
                }
                buf[filled..].fill(0);
                Ok(())
            }
            Backend::Mem(bytes) => {
                let bytes = relock(bytes);
                let start = first.offset() as usize;
                let have = bytes.len().saturating_sub(start).min(expected);
                if have > 0 {
                    buf[..have].copy_from_slice(&bytes[start..start + have]);
                }
                buf[have..].fill(0);
                Ok(())
            }
        }
    }

    /// Reads the `len`-page run starting at `first` into `len` per-page
    /// buffers (each exactly `PAGE_SIZE` bytes) with one seek plus one
    /// vectored read — the zero-extra-copy variant of
    /// [`SegmentStore::read_run`]. The buffer pool's prefetcher reads into
    /// page-sized buffers it can move into frames wholesale, instead of
    /// copying pages out of a flat scratch slab a second time.
    /// Allocated-but-unwritten tails read back as zeroes.
    pub fn read_run_pages(
        &self,
        first: PageId,
        len: u32,
        bufs: &mut [Vec<u8>],
    ) -> Result<(), PagerError> {
        let expected = len as usize * PAGE_SIZE;
        if bufs.len() != len as usize || bufs.iter().any(|b| b.len() != PAGE_SIZE) {
            let actual = bufs.iter().map(Vec::len).sum();
            return Err(PagerError::BadBufferLength { actual });
        }
        if len == 0 {
            return Ok(());
        }
        let last = PageId(first.0.saturating_add(len - 1));
        self.check_page(first)?;
        self.check_page(last)?;
        self.reads.fetch_add(u64::from(len), Ordering::Relaxed);
        match &self.backend {
            Backend::File { file, path, .. } => {
                let mut f = relock(file);
                let ctx = || format!("read run [{first}; {len} pages] of {}", path.display());
                f.seek(SeekFrom::Start(first.offset()))
                    .map_err(|e| PagerError::io(ctx(), &e))?;
                let mut filled = 0usize;
                while filled < expected {
                    let n =
                        read_tail(&mut f, bufs, filled).map_err(|e| PagerError::io(ctx(), &e))?;
                    if n == 0 {
                        break;
                    }
                    filled += n;
                }
                // The file may be shorter than the run's extent (allocated
                // but unwritten tail): zero everything past what it held.
                for (i, buf) in bufs.iter_mut().enumerate() {
                    let done = filled.saturating_sub(i * PAGE_SIZE).min(PAGE_SIZE);
                    buf[done..].fill(0);
                }
                Ok(())
            }
            Backend::Mem(bytes) => {
                let bytes = relock(bytes);
                let start = first.offset() as usize;
                let have = bytes.len().saturating_sub(start).min(expected);
                for (i, buf) in bufs.iter_mut().enumerate() {
                    let lo = (i * PAGE_SIZE).min(have);
                    let hi = ((i + 1) * PAGE_SIZE).min(have);
                    buf[..hi - lo].copy_from_slice(&bytes[start + lo..start + hi]);
                    buf[hi - lo..].fill(0);
                }
                Ok(())
            }
        }
    }

    /// Writes `buf` (exactly `PAGE_SIZE` bytes) as page `page`.
    pub fn write_page(&self, page: PageId, buf: &[u8]) -> Result<(), PagerError> {
        if buf.len() != PAGE_SIZE {
            return Err(PagerError::BadBufferLength { actual: buf.len() });
        }
        self.check_page(page)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        match &self.backend {
            Backend::File { file, path, .. } => {
                let mut f = relock(file);
                let ctx = || format!("write page {page} of {}", path.display());
                f.seek(SeekFrom::Start(page.offset()))
                    .map_err(|e| PagerError::io(ctx(), &e))?;
                f.write_all(buf).map_err(|e| PagerError::io(ctx(), &e))
            }
            Backend::Mem(bytes) => {
                let mut bytes = relock(bytes);
                let start = page.offset() as usize;
                if bytes.len() < start + PAGE_SIZE {
                    bytes.resize(start + PAGE_SIZE, 0);
                }
                bytes[start..start + PAGE_SIZE].copy_from_slice(buf);
                Ok(())
            }
        }
    }

    /// Total bytes the backing segment occupies (pages allocated × page
    /// size) — the "raw data on disk" figure benchmarks report against.
    pub fn allocated_bytes(&self) -> u64 {
        u64::from(self.page_count()) * PAGE_SIZE as u64
    }
}

impl Drop for SegmentStore {
    fn drop(&mut self) {
        if let Backend::File {
            path,
            delete_on_drop: true,
            ..
        } = &self.backend
        {
            // Best-effort cleanup; a leaked temp file is not worth a panic
            // in a destructor.
            let _ = std::fs::remove_file(path);
        }
    }
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.backend {
            Backend::File { path, .. } => format!("file:{}", path.display()),
            Backend::Mem(_) => "mem".to_string(),
        };
        f.debug_struct("SegmentStore")
            .field("backend", &kind)
            .field("pages", &self.page_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(store: &SegmentStore) {
        let first = store.allocate(3);
        assert_eq!(first, PageId(0));
        assert_eq!(store.page_count(), 3);

        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        store.write_page(PageId(1), &page).unwrap();

        let mut back = vec![0xFFu8; PAGE_SIZE];
        store.read_page(PageId(1), &mut back).unwrap();
        assert_eq!(back, page);

        // Allocated but never written: reads back as zeroes.
        store.read_page(PageId(2), &mut back).unwrap();
        assert!(back.iter().all(|&b| b == 0));

        assert_eq!(store.reads(), 2);
        assert_eq!(store.writes(), 1);
    }

    #[test]
    fn memory_store_round_trips() {
        round_trip(&SegmentStore::in_memory());
    }

    #[test]
    fn file_store_round_trips() {
        round_trip(&SegmentStore::temp("round-trip").unwrap());
    }

    #[test]
    fn out_of_bounds_and_bad_buffers_are_typed_errors() {
        let store = SegmentStore::in_memory();
        store.allocate(1);
        let mut buf = vec![0u8; PAGE_SIZE];
        assert_eq!(
            store.read_page(PageId(5), &mut buf),
            Err(PagerError::PageOutOfBounds {
                page: PageId(5),
                allocated: 1
            })
        );
        let mut short = vec![0u8; 16];
        assert_eq!(
            store.read_page(PageId(0), &mut short),
            Err(PagerError::BadBufferLength { actual: 16 })
        );
        assert_eq!(
            store.write_page(PageId(0), &short),
            Err(PagerError::BadBufferLength { actual: 16 })
        );
    }

    #[test]
    fn temp_files_are_deleted_on_drop() {
        let store = SegmentStore::temp("drop-test").unwrap();
        let path = match &store.backend {
            Backend::File { path, .. } => path.clone(),
            Backend::Mem(_) => unreachable!(),
        };
        store.allocate(1);
        store.write_page(PageId(0), &vec![1u8; PAGE_SIZE]).unwrap();
        assert!(path.exists());
        drop(store);
        assert!(!path.exists());
    }

    fn run_round_trip(store: &SegmentStore) {
        store.allocate(4);
        for p in 0..3u32 {
            store
                .write_page(PageId(p), &vec![p as u8 + 1; PAGE_SIZE])
                .unwrap();
        }
        // Page 3 stays unwritten: the run's tail reads back as zeroes.
        let mut buf = vec![0xFFu8; 3 * PAGE_SIZE];
        store.read_run(PageId(1), 3, &mut buf).unwrap();
        assert!(buf[..PAGE_SIZE].iter().all(|&b| b == 2));
        assert!(buf[PAGE_SIZE..2 * PAGE_SIZE].iter().all(|&b| b == 3));
        assert!(buf[2 * PAGE_SIZE..].iter().all(|&b| b == 0));
        // One logical call, `len` physical page reads counted.
        assert_eq!(store.reads(), 3);
    }

    #[test]
    fn memory_store_reads_runs() {
        run_round_trip(&SegmentStore::in_memory());
    }

    #[test]
    fn file_store_reads_runs() {
        run_round_trip(&SegmentStore::temp("run-read").unwrap());
    }

    fn paged_run_round_trip(store: &SegmentStore) {
        store.allocate(4);
        for p in 0..3u32 {
            store
                .write_page(PageId(p), &vec![p as u8 + 1; PAGE_SIZE])
                .unwrap();
        }
        // Page 3 stays unwritten: the run's tail pages read back as zeroes.
        let mut bufs = vec![vec![0xFFu8; PAGE_SIZE]; 3];
        store.read_run_pages(PageId(1), 3, &mut bufs).unwrap();
        assert!(bufs[0].iter().all(|&b| b == 2));
        assert!(bufs[1].iter().all(|&b| b == 3));
        assert!(bufs[2].iter().all(|&b| b == 0));
        assert_eq!(store.reads(), 3);
        // Per-page results match the flat-slab variant byte for byte.
        let mut flat = vec![0u8; 3 * PAGE_SIZE];
        store.read_run(PageId(1), 3, &mut flat).unwrap();
        assert_eq!(bufs.concat(), flat);
    }

    #[test]
    fn memory_store_reads_runs_into_page_buffers() {
        paged_run_round_trip(&SegmentStore::in_memory());
    }

    #[test]
    fn file_store_reads_runs_into_page_buffers() {
        paged_run_round_trip(&SegmentStore::temp("run-read-pages").unwrap());
    }

    #[test]
    fn paged_run_reads_validate_bounds_and_buffers() {
        let store = SegmentStore::in_memory();
        store.allocate(2);
        let mut bufs = vec![vec![0u8; PAGE_SIZE]; 2];
        assert_eq!(
            store.read_run_pages(PageId(1), 2, &mut bufs),
            Err(PagerError::PageOutOfBounds {
                page: PageId(2),
                allocated: 2
            })
        );
        // Wrong buffer count and wrong per-buffer length are both typed
        // errors, not partial reads.
        assert_eq!(
            store.read_run_pages(PageId(0), 1, &mut bufs),
            Err(PagerError::BadBufferLength {
                actual: 2 * PAGE_SIZE
            })
        );
        let mut short = vec![vec![0u8; 16]];
        assert_eq!(
            store.read_run_pages(PageId(0), 1, &mut short),
            Err(PagerError::BadBufferLength { actual: 16 })
        );
        // Zero-length runs are trivially fine and cost no reads.
        assert_eq!(store.read_run_pages(PageId(0), 0, &mut []), Ok(()));
        assert_eq!(store.reads(), 0);
    }

    #[test]
    fn run_reads_validate_bounds_and_buffers() {
        let store = SegmentStore::in_memory();
        store.allocate(2);
        let mut buf = vec![0u8; 2 * PAGE_SIZE];
        assert_eq!(
            store.read_run(PageId(1), 2, &mut buf),
            Err(PagerError::PageOutOfBounds {
                page: PageId(2),
                allocated: 2
            })
        );
        assert_eq!(
            store.read_run(PageId(0), 1, &mut buf),
            Err(PagerError::BadBufferLength {
                actual: 2 * PAGE_SIZE
            })
        );
        // Zero-length runs are trivially fine and cost no reads.
        assert_eq!(store.read_run(PageId(0), 0, &mut []), Ok(()));
        assert_eq!(store.reads(), 0);
    }

    #[test]
    fn allocated_bytes_tracks_page_count() {
        let store = SegmentStore::in_memory();
        store.allocate(4);
        assert_eq!(store.allocated_bytes(), 4 * PAGE_SIZE as u64);
    }
}
