//! Pager error types.

use std::fmt;

use crate::page::PageId;

/// Errors raised by the segment store and buffer pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PagerError {
    /// An underlying file operation failed. The `std::io::Error` is flattened
    /// to a string so the error stays `Clone + PartialEq` like every other
    /// typed error in the workspace.
    Io {
        /// What the pager was doing when the I/O failed.
        context: String,
        /// The OS error message.
        cause: String,
    },
    /// Every frame in the pool is pinned; nothing can be evicted to make
    /// room. Callers hold too many guards for the configured budget.
    PoolExhausted {
        /// The pool's page-count budget.
        capacity: usize,
    },
    /// A page id outside the allocated segment was referenced.
    PageOutOfBounds {
        /// The offending page.
        page: PageId,
        /// Number of pages currently allocated.
        allocated: u32,
    },
    /// A buffer of the wrong length was handed to a page read or write.
    BadBufferLength {
        /// Length the caller supplied.
        actual: usize,
    },
}

impl fmt::Display for PagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PagerError::Io { context, cause } => {
                write!(f, "pager I/O failure ({context}): {cause}")
            }
            PagerError::PoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted: all {capacity} frames are pinned")
            }
            PagerError::PageOutOfBounds { page, allocated } => write!(
                f,
                "page {page} out of bounds: only {allocated} pages allocated"
            ),
            PagerError::BadBufferLength { actual } => write!(
                f,
                "page buffer must be exactly PAGE_SIZE bytes, got {actual}"
            ),
        }
    }
}

impl std::error::Error for PagerError {}

impl PagerError {
    /// Wraps an `io::Error` with a description of the failed operation.
    pub fn io(context: impl Into<String>, err: &std::io::Error) -> Self {
        PagerError::Io {
            context: context.into(),
            cause: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = PagerError::PoolExhausted { capacity: 4 };
        assert!(err.to_string().contains('4'));
        let err = PagerError::PageOutOfBounds {
            page: PageId(9),
            allocated: 3,
        };
        assert!(err.to_string().contains('9'));
        assert!(err.to_string().contains('3'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&PagerError::PoolExhausted { capacity: 1 });
    }
}
