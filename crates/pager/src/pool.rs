//! The budgeted buffer pool: at most `capacity` pages resident at once.
//!
//! [`BufferPool::pin`] returns a [`PageGuard`] — an RAII pin whose `Deref`
//! is the page's bytes. A pinned frame is never evicted; dropping the guard
//! unpins it. Reads off a guard take no lock (the guard holds an `Arc` to
//! the frame's buffer); all pool bookkeeping happens under one internal
//! mutex at pin/unpin time. Writes go through [`BufferPool::with_page_mut`],
//! which marks the frame dirty; dirty pages are written back to the
//! [`SegmentStore`] on eviction or [`BufferPool::flush`].

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::error::PagerError;
use crate::page::{PageId, PAGE_SIZE};
use crate::replacer::{ReplacementPolicy, Replacer};
use crate::store::SegmentStore;

/// Counter snapshot of a pool's behaviour since creation (or the last
/// [`BufferPool::reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pins served from a resident frame.
    pub hits: u64,
    /// Pins that had to load the page from the store.
    pub misses: u64,
    /// Resident pages pushed out to make room.
    pub evictions: u64,
    /// Physical page reads issued to the store.
    pub disk_reads: u64,
    /// Physical page writes issued to the store (write-back + flush).
    pub disk_writes: u64,
}

impl PoolStats {
    /// Hit fraction in `[0, 1]`; `1.0` for an untouched pool.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    page: Option<PageId>,
    data: Arc<Vec<u8>>,
    dirty: bool,
    pins: u32,
}

struct PoolInner {
    frames: Vec<Frame>,
    /// page id → frame index for resident pages.
    table: HashMap<u32, usize>,
    replacer: Box<dyn Replacer>,
    stats: PoolStats,
}

/// A fixed-budget page cache over a [`SegmentStore`].
pub struct BufferPool {
    store: SegmentStore,
    inner: Mutex<PoolInner>,
    capacity: usize,
    policy: ReplacementPolicy,
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic while holding the pool mutex can only come from a replacer or
    // allocator bug; the bookkeeping it protects is still structurally
    // valid, so recover the guard rather than poisoning every future pin.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl BufferPool {
    /// A pool of `budget_pages` frames over `store`, using `policy` for
    /// replacement. The budget is a hard cap: the pool allocates exactly
    /// `budget_pages × PAGE_SIZE` bytes of frame memory up front and never
    /// more.
    pub fn new(store: SegmentStore, budget_pages: usize, policy: ReplacementPolicy) -> Self {
        let capacity = budget_pages.max(1);
        let frames = (0..capacity)
            .map(|_| Frame {
                page: None,
                data: Arc::new(vec![0u8; PAGE_SIZE]),
                dirty: false,
                pins: 0,
            })
            .collect();
        BufferPool {
            store,
            inner: Mutex::new(PoolInner {
                frames,
                table: HashMap::with_capacity(capacity),
                replacer: policy.replacer(capacity),
                stats: PoolStats::default(),
            }),
            capacity,
            policy,
        }
    }

    /// The pool's page-count budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The replacement policy this pool was built with.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// The backing store (for allocation and raw-size queries).
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }

    /// Allocates a contiguous run of `n` fresh pages in the backing store.
    pub fn allocate(&self, n: u32) -> PageId {
        self.store.allocate(n)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        relock(&self.inner).stats
    }

    /// Zeroes the counters (the benches do this between cold and warm runs).
    pub fn reset_stats(&self) {
        relock(&self.inner).stats = PoolStats::default();
    }

    /// Whether `page` is currently resident (no pin taken).
    pub fn is_resident(&self, page: PageId) -> bool {
        relock(&self.inner).table.contains_key(&page.0)
    }

    /// Fraction of `pages` currently resident, in `[0, 1]`. The planner's
    /// I/O cost term uses this to discount already-cached reads.
    pub fn resident_fraction(&self, pages: &[PageId]) -> f64 {
        if pages.is_empty() {
            return 1.0;
        }
        let inner = relock(&self.inner);
        let hits = pages
            .iter()
            .filter(|p| inner.table.contains_key(&p.0))
            .count();
        hits as f64 / pages.len() as f64
    }

    /// Ensures `page` is resident and returns its frame index with the pin
    /// count already incremented. Caller holds the lock.
    fn pin_frame(&self, inner: &mut PoolInner, page: PageId) -> Result<usize, PagerError> {
        if let Some(&f) = inner.table.get(&page.0) {
            inner.stats.hits += 1;
            inner.replacer.on_access(f);
            if let Some(frame) = inner.frames.get_mut(f) {
                frame.pins += 1;
            }
            return Ok(f);
        }
        inner.stats.misses += 1;
        // Prefer an empty frame; otherwise ask the replacer for a victim.
        let f = match inner.frames.iter().position(|fr| fr.page.is_none()) {
            Some(f) => f,
            None => {
                let evictable: Vec<bool> = inner
                    .frames
                    .iter()
                    .map(|fr| fr.page.is_some() && fr.pins == 0)
                    .collect();
                let Some(f) = inner.replacer.victim(&evictable) else {
                    return Err(PagerError::PoolExhausted {
                        capacity: self.capacity,
                    });
                };
                f
            }
        };
        // Write back and unmap the evicted page.
        if let Some(frame) = inner.frames.get_mut(f) {
            if let Some(old) = frame.page.take() {
                if frame.dirty {
                    self.store.write_page(old, &frame.data)?;
                    inner.stats.disk_writes += 1;
                    frame.dirty = false;
                }
                inner.table.remove(&old.0);
                inner.stats.evictions += 1;
            }
        }
        // Load the requested page. The frame's buffer is exclusively owned
        // here (pins == 0 and no live guards), so `make_mut` is in-place.
        if let Some(frame) = inner.frames.get_mut(f) {
            let buf = Arc::make_mut(&mut frame.data);
            self.store.read_page(page, buf)?;
            inner.stats.disk_reads += 1;
            frame.page = Some(page);
            frame.pins += 1;
        }
        inner.table.insert(page.0, f);
        inner.replacer.on_admit(f);
        Ok(f)
    }

    /// Pins `page`, loading it from the store on a miss (evicting an
    /// unpinned frame if the pool is full). Fails with
    /// [`PagerError::PoolExhausted`] when every frame is pinned.
    pub fn pin(&self, page: PageId) -> Result<PageGuard<'_>, PagerError> {
        let mut inner = relock(&self.inner);
        let f = self.pin_frame(&mut inner, page)?;
        let data = inner
            .frames
            .get(f)
            .map(|fr| Arc::clone(&fr.data))
            .unwrap_or_default();
        Ok(PageGuard {
            pool: self,
            frame: f,
            page,
            data,
        })
    }

    /// Runs `mutate` over the bytes of `page` (loading it first if needed)
    /// and marks the frame dirty. Readers holding guards on the same page
    /// keep their pre-mutation snapshot; new pins observe the mutation.
    pub fn with_page_mut<R>(
        &self,
        page: PageId,
        mutate: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, PagerError> {
        let mut inner = relock(&self.inner);
        let f = self.pin_frame(&mut inner, page)?;
        match inner.frames.get_mut(f) {
            Some(frame) => {
                frame.dirty = true;
                let r = mutate(Arc::make_mut(&mut frame.data).as_mut_slice());
                frame.pins = frame.pins.saturating_sub(1);
                Ok(r)
            }
            None => Err(PagerError::PageOutOfBounds {
                page,
                allocated: self.store.page_count(),
            }),
        }
    }

    /// Writes every dirty resident page back to the store.
    pub fn flush(&self) -> Result<(), PagerError> {
        let mut inner = relock(&self.inner);
        let mut writes = 0u64;
        for frame in inner.frames.iter_mut() {
            if let (Some(page), true) = (frame.page, frame.dirty) {
                self.store.write_page(page, &frame.data)?;
                frame.dirty = false;
                writes += 1;
            }
        }
        inner.stats.disk_writes += writes;
        Ok(())
    }

    fn unpin(&self, frame: usize) {
        let mut inner = relock(&self.inner);
        if let Some(fr) = inner.frames.get_mut(frame) {
            fr.pins = fr.pins.saturating_sub(1);
        }
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("policy", &self.policy)
            .field("stats", &self.stats())
            .finish()
    }
}

/// An RAII pin on one page. Deref yields the page's `PAGE_SIZE` bytes;
/// dropping the guard unpins the frame. Holding a guard pins real budget —
/// never hold one across blocking I/O or another long-lived acquisition
/// (the `pin-guard-no-io` lint enforces this on the server's request path).
pub struct PageGuard<'a> {
    pool: &'a BufferPool,
    frame: usize,
    page: PageId,
    data: Arc<Vec<u8>>,
}

impl PageGuard<'_> {
    /// The pinned page's id.
    pub fn page(&self) -> PageId {
        self.page
    }
}

impl Deref for PageGuard<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.frame);
    }
}

impl std::fmt::Debug for PageGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGuard")
            .field("page", &self.page)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(pages: u32, budget: usize, policy: ReplacementPolicy) -> BufferPool {
        let store = SegmentStore::in_memory();
        let first = store.allocate(pages);
        assert_eq!(first, PageId(0));
        let pool = BufferPool::new(store, budget, policy);
        for p in 0..pages {
            pool.with_page_mut(PageId(p), |buf| buf.fill(p as u8))
                .unwrap();
        }
        pool.flush().unwrap();
        pool.reset_stats();
        pool
    }

    #[test]
    fn pins_read_page_contents() {
        let pool = pool(4, 2, ReplacementPolicy::Clock);
        for p in 0..4u32 {
            let g = pool.pin(PageId(p)).unwrap();
            assert_eq!(g.len(), PAGE_SIZE);
            assert!(g.iter().all(|&b| b == p as u8), "page {p}");
            assert_eq!(g.page(), PageId(p));
        }
    }

    #[test]
    fn budget_is_a_hard_cap_with_eviction() {
        let pool = pool(8, 2, ReplacementPolicy::Lru);
        for p in 0..8u32 {
            pool.pin(PageId(p)).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.misses, 8);
        assert_eq!(s.hits, 0);
        // The fill loop left the pool full, so every miss evicts.
        assert_eq!(s.evictions, 8);
        // Re-touch the two resident pages: hits, no I/O.
        pool.pin(PageId(6)).unwrap();
        pool.pin(PageId(7)).unwrap();
        let s = pool.stats();
        assert_eq!(s.hits, 2);
        assert!(pool.is_resident(PageId(7)));
        assert!(!pool.is_resident(PageId(0)));
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let pool = pool(3, 2, ReplacementPolicy::Clock);
        let g0 = pool.pin(PageId(0)).unwrap();
        let g1 = pool.pin(PageId(1)).unwrap();
        // Both frames pinned: a third pin must fail, not evict.
        assert_eq!(
            pool.pin(PageId(2)).map(|_| ()),
            Err(PagerError::PoolExhausted { capacity: 2 })
        );
        drop(g1);
        // Now one frame is evictable.
        let g2 = pool.pin(PageId(2)).unwrap();
        assert!(g2.iter().all(|&b| b == 2));
        assert!(g0.iter().all(|&b| b == 0));
    }

    #[test]
    fn dirty_pages_write_back_on_eviction() {
        let store = SegmentStore::in_memory();
        store.allocate(3);
        let pool = BufferPool::new(store, 1, ReplacementPolicy::Sieve);
        pool.with_page_mut(PageId(0), |buf| buf.fill(0xAA)).unwrap();
        // Budget of one page: pinning page 1 evicts dirty page 0.
        pool.pin(PageId(1)).unwrap();
        assert_eq!(pool.stats().disk_writes, 1);
        let g = pool.pin(PageId(0)).unwrap();
        assert!(g.iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn concurrent_readers_share_frames() {
        let pool = std::sync::Arc::new(pool(4, 4, ReplacementPolicy::Clock));
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = std::sync::Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for round in 0..50u32 {
                    let p = (t + round) % 4;
                    let g = pool.pin(PageId(p)).unwrap();
                    assert!(g.iter().all(|&b| b == p as u8));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 200);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn stats_reset_and_hit_rate() {
        // After the fill loop only pages 2 and 3 are resident.
        let pool = pool(4, 2, ReplacementPolicy::Lru);
        pool.pin(PageId(0)).unwrap();
        pool.pin(PageId(0)).unwrap();
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
        pool.reset_stats();
        assert_eq!(pool.stats(), PoolStats::default());
        assert_eq!(PoolStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn resident_fraction_discounts_cached_pages() {
        let pool = pool(4, 2, ReplacementPolicy::Lru);
        pool.pin(PageId(0)).unwrap();
        pool.pin(PageId(1)).unwrap();
        let all: Vec<PageId> = (0..4).map(PageId).collect();
        assert!((pool.resident_fraction(&all) - 0.5).abs() < 1e-9);
        assert_eq!(pool.resident_fraction(&[]), 1.0);
    }

    #[test]
    fn every_policy_sees_identical_page_contents() {
        for policy in ReplacementPolicy::ALL {
            let pool = pool(16, 4, policy);
            // A looping scan with a hot page mixed in.
            for round in 0..3 {
                for p in 0..16u32 {
                    let g = pool.pin(PageId(p)).unwrap();
                    assert!(g.iter().all(|&b| b == p as u8), "{policy} round {round}");
                    drop(g);
                    let hot = pool.pin(PageId(0)).unwrap();
                    assert!(hot.iter().all(|&b| b == 0));
                }
            }
            let s = pool.stats();
            assert_eq!(s.hits + s.misses, 96);
            assert!(s.misses >= 16, "{policy}: {s:?}");
        }
    }
}
