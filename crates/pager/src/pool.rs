//! The budgeted buffer pool: at most `capacity` pages resident at once.
//!
//! [`BufferPool::pin`] returns a [`PageGuard`] — an RAII pin whose `Deref`
//! is the page's bytes. A pinned frame is never evicted; dropping the guard
//! unpins it. Reads off a guard take no lock (the guard holds an `Arc` to
//! the frame's buffer); all pool bookkeeping happens under one internal
//! mutex at pin/unpin time. Writes go through [`BufferPool::with_page_mut`],
//! which marks the frame dirty; dirty pages are written back to the
//! [`SegmentStore`] on eviction or [`BufferPool::flush`].
//!
//! Pools built with [`BufferPool::with_prefetch`] additionally own a small
//! background [`crate::prefetch`] worker pool: [`BufferPool::prefetch`]
//! accepts advisory page hints, which the workers coalesce into contiguous
//! runs, read with one batched store read each, and install into unpinned
//! frames ahead of the demand pins. Prefetching never evicts a pinned frame
//! and never fails a query: every prefetch error is swallowed and the next
//! demand pin simply pays the read itself.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::error::PagerError;
use crate::page::{PageId, PAGE_SIZE};
use crate::prefetch::Prefetcher;
use crate::replacer::{ReplacementPolicy, Replacer};
use crate::store::SegmentStore;

/// Worker threads a [`BufferPool::with_prefetch`] pool spawns by default.
pub const DEFAULT_PREFETCH_THREADS: usize = 2;

/// Counter snapshot of a pool's behaviour since creation (or the last
/// [`BufferPool::reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pins served from a resident frame.
    pub hits: u64,
    /// Pins that had to load the page from the store.
    pub misses: u64,
    /// Resident pages pushed out to make room.
    pub evictions: u64,
    /// Physical page reads issued to the store (demand misses and
    /// prefetcher batch reads alike).
    pub disk_reads: u64,
    /// Physical page writes issued to the store (write-back + flush).
    pub disk_writes: u64,
    /// Pages the background prefetcher installed into frames.
    pub prefetch_loads: u64,
    /// Pins served from a frame the prefetcher loaded (counted once, on the
    /// first demand pin that touches the prefetched page).
    pub prefetch_hits: u64,
    /// Prefetched pages evicted before any demand pin touched them.
    pub prefetch_wasted: u64,
}

impl PoolStats {
    /// Hit fraction in `[0, 1]`. A zero-access window has hit nothing, so
    /// an untouched pool reports `0.0` (never `NaN`).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    page: Option<PageId>,
    data: Arc<Vec<u8>>,
    dirty: bool,
    pins: u32,
    /// Loaded by the prefetcher and not yet touched by a demand pin.
    prefetched: bool,
}

struct PoolInner {
    frames: Vec<Frame>,
    /// page id → frame index for resident pages.
    table: HashMap<u32, usize>,
    replacer: Box<dyn Replacer>,
    stats: PoolStats,
    /// Frames currently holding a page. Kept exact (decremented when a
    /// frame's page is taken, incremented when one is installed) so a full
    /// pool skips the O(capacity) empty-frame scan on every miss.
    occupied: usize,
}

impl PoolInner {
    /// Lowest-indexed empty frame, if any. O(1) on a full pool.
    fn empty_frame(&self) -> Option<usize> {
        if self.occupied >= self.frames.len() {
            return None;
        }
        self.frames.iter().position(|fr| fr.page.is_none())
    }
}

/// The part of the pool shared between the owning [`BufferPool`] handle and
/// the background prefetch workers.
pub(crate) struct PoolCore {
    store: SegmentStore,
    inner: Mutex<PoolInner>,
    capacity: usize,
    policy: ReplacementPolicy,
}

/// A fixed-budget page cache over a [`SegmentStore`].
pub struct BufferPool {
    core: Arc<PoolCore>,
    prefetcher: Option<Prefetcher>,
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic while holding the pool mutex can only come from a replacer or
    // allocator bug; the bookkeeping it protects is still structurally
    // valid, so recover the guard rather than poisoning every future pin.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// What [`PoolCore::install_prefetched`] did with one prefetched page.
enum Admit {
    /// Installed into the chosen frame.
    Installed,
    /// The run cannot make further progress (a dirty write-back failed or
    /// the frame's buffer is unusable).
    Stop,
}

impl PoolCore {
    /// Ensures `page` is resident and returns its frame index with the pin
    /// count already incremented. Caller holds the lock.
    fn pin_frame(&self, inner: &mut PoolInner, page: PageId) -> Result<usize, PagerError> {
        if let Some(&f) = inner.table.get(&page.0) {
            inner.stats.hits += 1;
            inner.replacer.on_access(f);
            let mut was_prefetched = false;
            if let Some(frame) = inner.frames.get_mut(f) {
                frame.pins += 1;
                was_prefetched = std::mem::take(&mut frame.prefetched);
            }
            if was_prefetched {
                inner.stats.prefetch_hits += 1;
            }
            return Ok(f);
        }
        inner.stats.misses += 1;
        // Prefer an empty frame; otherwise ask the replacer for a victim.
        let f = match inner.empty_frame() {
            Some(f) => f,
            None => {
                let evictable: Vec<bool> = inner
                    .frames
                    .iter()
                    .map(|fr| fr.page.is_some() && fr.pins == 0)
                    .collect();
                let Some(f) = inner.replacer.victim(&evictable) else {
                    return Err(PagerError::PoolExhausted {
                        capacity: self.capacity,
                    });
                };
                f
            }
        };
        // Write back and unmap the evicted page.
        if let Some(frame) = inner.frames.get_mut(f) {
            if let Some(old) = frame.page.take() {
                inner.occupied -= 1;
                if frame.dirty {
                    self.store.write_page(old, &frame.data)?;
                    inner.stats.disk_writes += 1;
                    frame.dirty = false;
                }
                if std::mem::take(&mut frame.prefetched) {
                    inner.stats.prefetch_wasted += 1;
                }
                inner.table.remove(&old.0);
                inner.stats.evictions += 1;
            }
        }
        // Load the requested page. The frame's buffer is exclusively owned
        // here (pins == 0 and no live guards), so `make_mut` is in-place.
        if let Some(frame) = inner.frames.get_mut(f) {
            let buf = Arc::make_mut(&mut frame.data);
            self.store.read_page(page, buf)?;
            inner.stats.disk_reads += 1;
            frame.page = Some(page);
            inner.occupied += 1;
            frame.pins += 1;
        }
        inner.table.insert(page.0, f);
        inner.replacer.on_admit(f);
        Ok(f)
    }

    fn unpin(&self, frame: usize) {
        let mut inner = relock(&self.inner);
        if let Some(fr) = inner.frames.get_mut(frame) {
            fr.pins = fr.pins.saturating_sub(1);
        }
    }

    /// Reads the run `[first, first + len)` from the store with one batched
    /// read and installs the non-resident pages into unpinned frames.
    /// Best-effort on behalf of the prefetch workers: every failure mode
    /// (out-of-bounds hint, I/O error, fully pinned pool) silently drops the
    /// run — a demand pin will pay the read instead.
    pub(crate) fn prefetch_run(&self, first: PageId, len: u32, scratch: &mut [Vec<u8>]) {
        let allocated = self.store.page_count();
        if first.0 >= allocated || len == 0 {
            return;
        }
        let len = len.min(allocated - first.0);
        {
            // Fully resident runs need no I/O at all.
            let inner = relock(&self.inner);
            if (0..len).all(|i| inner.table.contains_key(&(first.0 + i))) {
                return;
            }
        }
        let Some(bufs) = scratch.get_mut(..len as usize) else {
            return;
        };
        if self.store.read_run_pages(first, len, bufs).is_err() {
            return;
        }
        let mut inner = relock(&self.inner);
        inner.stats.disk_reads += u64::from(len);
        // One O(capacity) sweep for the whole run, not one per page: empty
        // frames are collected up front, and the evictability bitmap is
        // built once and consumed victim by victim. Clearing a chosen
        // frame's bit keeps it from being re-victimized, which also stops a
        // run larger than the pool from cycling through its own pages. This
        // amortization is what makes a prefetched install cheaper than the
        // demand miss it replaces — a 32-page run pays one sweep where 32
        // demand misses pay 32. Pins cannot change mid-run (the lock is
        // held throughout), so the bitmap never goes stale.
        let mut empties: Vec<usize> = Vec::new();
        let mut evictable: Vec<bool> = Vec::with_capacity(inner.frames.len());
        for (f, fr) in inner.frames.iter().enumerate() {
            if fr.page.is_none() {
                empties.push(f);
            }
            evictable.push(fr.page.is_some() && fr.pins == 0);
        }
        empties.reverse(); // pop() fills lowest-indexed frames first
        let mut installed = 0u64;
        for (i, buf) in bufs.iter_mut().enumerate() {
            let page = PageId(first.0 + i as u32);
            if inner.table.contains_key(&page.0) {
                continue;
            }
            let f = match empties.pop() {
                Some(f) => f,
                None => {
                    let Some(f) = inner.replacer.victim(&evictable) else {
                        break;
                    };
                    f
                }
            };
            if let Some(slot) = evictable.get_mut(f) {
                *slot = false;
            }
            match self.install_prefetched(&mut inner, f, page, buf) {
                Admit::Installed => installed += 1,
                Admit::Stop => break,
            }
        }
        inner.stats.prefetch_loads += installed;
    }

    /// Installs one prefetched page into frame `f` without pinning it,
    /// swapping `buf` — the page's freshly read bytes — into the frame and
    /// leaving the frame's displaced buffer in `buf` for the worker to
    /// recycle. The run's bytes therefore move exactly once (store → buf);
    /// the demand path's second copy into the frame never happens. Caller
    /// holds the lock and guarantees `f` is unpinned — an empty frame or a
    /// victim the replacer just surrendered.
    fn install_prefetched(
        &self,
        inner: &mut PoolInner,
        f: usize,
        page: PageId,
        buf: &mut Vec<u8>,
    ) -> Admit {
        if buf.len() != PAGE_SIZE {
            return Admit::Stop;
        }
        if let Some(frame) = inner.frames.get_mut(f) {
            if let Some(old) = frame.page.take() {
                inner.occupied -= 1;
                if frame.dirty {
                    if self.store.write_page(old, &frame.data).is_err() {
                        // Never lose a dirty page for an advisory read; the
                        // frame keeps its page, so re-register it with the
                        // replacer (`victim` may have dequeued it).
                        frame.page = Some(old);
                        inner.occupied += 1;
                        inner.replacer.on_admit(f);
                        return Admit::Stop;
                    }
                    inner.stats.disk_writes += 1;
                    frame.dirty = false;
                }
                if std::mem::take(&mut frame.prefetched) {
                    inner.stats.prefetch_wasted += 1;
                }
                inner.table.remove(&old.0);
                inner.stats.evictions += 1;
            }
        }
        if let Some(frame) = inner.frames.get_mut(f) {
            let fresh = Arc::new(std::mem::take(buf));
            let old = Arc::try_unwrap(std::mem::replace(&mut frame.data, fresh));
            // Recycle the displaced allocation as the worker's next scratch
            // buffer. A guard mid-drop (unpinned, `Arc` not yet released)
            // can keep the old buffer alive; that rare race costs one fresh
            // allocation, never a stale read.
            *buf = old.unwrap_or_else(|_| vec![0u8; PAGE_SIZE]);
            frame.page = Some(page);
            inner.occupied += 1;
            frame.prefetched = true;
        }
        inner.table.insert(page.0, f);
        inner.replacer.on_admit(f);
        Admit::Installed
    }
}

impl BufferPool {
    /// A pool of `budget_pages` frames over `store`, using `policy` for
    /// replacement. The budget is a hard cap: the pool allocates exactly
    /// `budget_pages × PAGE_SIZE` bytes of frame memory up front and never
    /// more. No prefetcher is spawned; [`BufferPool::prefetch`] is a no-op.
    pub fn new(store: SegmentStore, budget_pages: usize, policy: ReplacementPolicy) -> Self {
        Self::build(store, budget_pages, policy, 0)
    }

    /// Like [`BufferPool::new`], plus a background prefetcher of `threads`
    /// workers (at least one) serving [`BufferPool::prefetch`] hints.
    pub fn with_prefetch(
        store: SegmentStore,
        budget_pages: usize,
        policy: ReplacementPolicy,
        threads: usize,
    ) -> Self {
        Self::build(store, budget_pages, policy, threads.max(1))
    }

    fn build(
        store: SegmentStore,
        budget_pages: usize,
        policy: ReplacementPolicy,
        prefetch_threads: usize,
    ) -> Self {
        let capacity = budget_pages.max(1);
        let frames = (0..capacity)
            .map(|_| Frame {
                page: None,
                data: Arc::new(vec![0u8; PAGE_SIZE]),
                dirty: false,
                pins: 0,
                prefetched: false,
            })
            .collect();
        let core = Arc::new(PoolCore {
            store,
            inner: Mutex::new(PoolInner {
                frames,
                table: HashMap::with_capacity(capacity),
                replacer: policy.replacer(capacity),
                stats: PoolStats::default(),
                occupied: 0,
            }),
            capacity,
            policy,
        });
        let prefetcher =
            (prefetch_threads > 0).then(|| Prefetcher::spawn(Arc::clone(&core), prefetch_threads));
        BufferPool { core, prefetcher }
    }

    /// The pool's page-count budget.
    pub fn capacity(&self) -> usize {
        self.core.capacity
    }

    /// The replacement policy this pool was built with.
    pub fn policy(&self) -> ReplacementPolicy {
        self.core.policy
    }

    /// The backing store (for allocation and raw-size queries).
    pub fn store(&self) -> &SegmentStore {
        &self.core.store
    }

    /// Allocates a contiguous run of `n` fresh pages in the backing store.
    pub fn allocate(&self, n: u32) -> PageId {
        self.core.store.allocate(n)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        relock(&self.core.inner).stats
    }

    /// Zeroes the counters (the benches do this between cold and warm runs).
    pub fn reset_stats(&self) {
        relock(&self.core.inner).stats = PoolStats::default();
    }

    /// Whether this pool was built with a background prefetcher.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetcher.is_some()
    }

    /// Hints that `pages` are about to be read. Advisory and non-blocking:
    /// the hints are coalesced into contiguous runs and served by the
    /// background workers; without a prefetcher (or for already-resident
    /// pages) this is a no-op. Prefetching never evicts a pinned frame.
    pub fn prefetch(&self, pages: &[PageId]) {
        if let Some(pf) = &self.prefetcher {
            pf.enqueue(pages);
        }
    }

    /// Blocks until every queued prefetch hint has been processed. Tests
    /// and cold/warm bench transitions use this to make the asynchronous
    /// prefetcher deterministic; a pool without one returns immediately.
    pub fn prefetch_quiesce(&self) {
        if let Some(pf) = &self.prefetcher {
            pf.quiesce();
        }
    }

    /// Whether `page` is currently resident (no pin taken).
    pub fn is_resident(&self, page: PageId) -> bool {
        relock(&self.core.inner).table.contains_key(&page.0)
    }

    /// Fraction of `pages` currently resident, in `[0, 1]`. The planner's
    /// I/O cost term uses this to discount already-cached reads. An empty
    /// page set has no resident pages, so it reports `0.0` (never `NaN`).
    pub fn resident_fraction(&self, pages: &[PageId]) -> f64 {
        if pages.is_empty() {
            return 0.0;
        }
        let inner = relock(&self.core.inner);
        let hits = pages
            .iter()
            .filter(|p| inner.table.contains_key(&p.0))
            .count();
        hits as f64 / pages.len() as f64
    }

    /// Pins `page`, loading it from the store on a miss (evicting an
    /// unpinned frame if the pool is full). Fails with
    /// [`PagerError::PoolExhausted`] when every frame is pinned.
    pub fn pin(&self, page: PageId) -> Result<PageGuard<'_>, PagerError> {
        let mut inner = relock(&self.core.inner);
        let f = self.core.pin_frame(&mut inner, page)?;
        let data = inner
            .frames
            .get(f)
            .map(|fr| Arc::clone(&fr.data))
            .unwrap_or_default();
        Ok(PageGuard {
            core: &self.core,
            frame: f,
            page,
            data,
        })
    }

    /// Runs `mutate` over the bytes of `page` (loading it first if needed)
    /// and marks the frame dirty. Readers holding guards on the same page
    /// keep their pre-mutation snapshot; new pins observe the mutation.
    pub fn with_page_mut<R>(
        &self,
        page: PageId,
        mutate: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, PagerError> {
        let mut inner = relock(&self.core.inner);
        let f = self.core.pin_frame(&mut inner, page)?;
        match inner.frames.get_mut(f) {
            Some(frame) => {
                frame.dirty = true;
                let r = mutate(Arc::make_mut(&mut frame.data).as_mut_slice());
                frame.pins = frame.pins.saturating_sub(1);
                Ok(r)
            }
            None => Err(PagerError::PageOutOfBounds {
                page,
                allocated: self.core.store.page_count(),
            }),
        }
    }

    /// Writes every dirty resident page back to the store.
    pub fn flush(&self) -> Result<(), PagerError> {
        let mut inner = relock(&self.core.inner);
        let mut writes = 0u64;
        for frame in inner.frames.iter_mut() {
            if let (Some(page), true) = (frame.page, frame.dirty) {
                self.core.store.write_page(page, &frame.data)?;
                frame.dirty = false;
                writes += 1;
            }
        }
        inner.stats.disk_writes += writes;
        Ok(())
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.core.capacity)
            .field("policy", &self.core.policy)
            .field("prefetch", &self.prefetch_enabled())
            .field("stats", &self.stats())
            .finish()
    }
}

/// An RAII pin on one page. Deref yields the page's `PAGE_SIZE` bytes;
/// dropping the guard unpins the frame. Holding a guard pins real budget —
/// never hold one across blocking I/O or another long-lived acquisition
/// (the `pin-guard-no-io` lint enforces this on the server's request path).
pub struct PageGuard<'a> {
    core: &'a PoolCore,
    frame: usize,
    page: PageId,
    data: Arc<Vec<u8>>,
}

impl PageGuard<'_> {
    /// The pinned page's id.
    pub fn page(&self) -> PageId {
        self.page
    }
}

impl Deref for PageGuard<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        self.core.unpin(self.frame);
    }
}

impl std::fmt::Debug for PageGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGuard")
            .field("page", &self.page)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(pool: &BufferPool, pages: u32) {
        let first = pool.allocate(pages);
        assert_eq!(first, PageId(0));
        for p in 0..pages {
            pool.with_page_mut(PageId(p), |buf| buf.fill(p as u8))
                .unwrap();
        }
        pool.flush().unwrap();
        pool.reset_stats();
    }

    fn pool(pages: u32, budget: usize, policy: ReplacementPolicy) -> BufferPool {
        let pool = BufferPool::new(SegmentStore::in_memory(), budget, policy);
        fill(&pool, pages);
        pool
    }

    fn prefetch_pool(pages: u32, budget: usize, policy: ReplacementPolicy) -> BufferPool {
        let pool = BufferPool::with_prefetch(SegmentStore::in_memory(), budget, policy, 2);
        fill(&pool, pages);
        pool
    }

    #[test]
    fn oversized_prefetch_run_never_wedges_demand_eviction() {
        // A run larger than the pool trips the self-cycling guard after the
        // first install. SIEVE's `victim` dequeues the chosen frame, so the
        // guard must re-register it — otherwise the replacer believes the
        // pool is empty and every later demand miss is a spurious
        // `PoolExhausted`. Regression test for exactly that wedge.
        for policy in ReplacementPolicy::ALL {
            let pool = prefetch_pool(8, 1, policy);
            let ids: Vec<PageId> = (0..8).map(PageId).collect();
            for _ in 0..3 {
                pool.prefetch(&ids);
                pool.prefetch_quiesce();
            }
            for p in 0..8u32 {
                let g = pool.pin(PageId(p)).unwrap_or_else(|e| {
                    panic!("demand pin of page {p} wedged under {policy:?}: {e}")
                });
                assert!(g.iter().all(|&b| b == p as u8));
            }
        }
    }

    #[test]
    fn pins_read_page_contents() {
        let pool = pool(4, 2, ReplacementPolicy::Clock);
        for p in 0..4u32 {
            let g = pool.pin(PageId(p)).unwrap();
            assert_eq!(g.len(), PAGE_SIZE);
            assert!(g.iter().all(|&b| b == p as u8), "page {p}");
            assert_eq!(g.page(), PageId(p));
        }
    }

    #[test]
    fn budget_is_a_hard_cap_with_eviction() {
        let pool = pool(8, 2, ReplacementPolicy::Lru);
        for p in 0..8u32 {
            pool.pin(PageId(p)).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.misses, 8);
        assert_eq!(s.hits, 0);
        // The fill loop left the pool full, so every miss evicts.
        assert_eq!(s.evictions, 8);
        // Re-touch the two resident pages: hits, no I/O.
        pool.pin(PageId(6)).unwrap();
        pool.pin(PageId(7)).unwrap();
        let s = pool.stats();
        assert_eq!(s.hits, 2);
        assert!(pool.is_resident(PageId(7)));
        assert!(!pool.is_resident(PageId(0)));
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let pool = pool(3, 2, ReplacementPolicy::Clock);
        let g0 = pool.pin(PageId(0)).unwrap();
        let g1 = pool.pin(PageId(1)).unwrap();
        // Both frames pinned: a third pin must fail, not evict.
        assert_eq!(
            pool.pin(PageId(2)).map(|_| ()),
            Err(PagerError::PoolExhausted { capacity: 2 })
        );
        drop(g1);
        // Now one frame is evictable.
        let g2 = pool.pin(PageId(2)).unwrap();
        assert!(g2.iter().all(|&b| b == 2));
        assert!(g0.iter().all(|&b| b == 0));
    }

    #[test]
    fn dirty_pages_write_back_on_eviction() {
        let store = SegmentStore::in_memory();
        store.allocate(3);
        let pool = BufferPool::new(store, 1, ReplacementPolicy::Sieve);
        pool.with_page_mut(PageId(0), |buf| buf.fill(0xAA)).unwrap();
        // Budget of one page: pinning page 1 evicts dirty page 0.
        pool.pin(PageId(1)).unwrap();
        assert_eq!(pool.stats().disk_writes, 1);
        let g = pool.pin(PageId(0)).unwrap();
        assert!(g.iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn concurrent_readers_share_frames() {
        let pool = std::sync::Arc::new(pool(4, 4, ReplacementPolicy::Clock));
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = std::sync::Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for round in 0..50u32 {
                    let p = (t + round) % 4;
                    let g = pool.pin(PageId(p)).unwrap();
                    assert!(g.iter().all(|&b| b == p as u8));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 200);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn stats_reset_and_hit_rate() {
        // After the fill loop only pages 2 and 3 are resident.
        let pool = pool(4, 2, ReplacementPolicy::Lru);
        pool.pin(PageId(0)).unwrap();
        pool.pin(PageId(0)).unwrap();
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
        pool.reset_stats();
        assert_eq!(pool.stats(), PoolStats::default());
        // A zero-access window is a well-defined 0.0, not NaN and not a
        // phantom perfect score.
        assert_eq!(PoolStats::default().hit_rate(), 0.0);
        assert!(!PoolStats::default().hit_rate().is_nan());
    }

    #[test]
    fn resident_fraction_discounts_cached_pages() {
        let pool = pool(4, 2, ReplacementPolicy::Lru);
        pool.pin(PageId(0)).unwrap();
        pool.pin(PageId(1)).unwrap();
        let all: Vec<PageId> = (0..4).map(PageId).collect();
        assert!((pool.resident_fraction(&all) - 0.5).abs() < 1e-9);
        // An empty page set is a well-defined 0.0, never NaN.
        assert_eq!(pool.resident_fraction(&[]), 0.0);
        assert!(!pool.resident_fraction(&[]).is_nan());
    }

    #[test]
    fn every_policy_sees_identical_page_contents() {
        for policy in ReplacementPolicy::ALL {
            let pool = pool(16, 4, policy);
            // A looping scan with a hot page mixed in.
            for round in 0..3 {
                for p in 0..16u32 {
                    let g = pool.pin(PageId(p)).unwrap();
                    assert!(g.iter().all(|&b| b == p as u8), "{policy} round {round}");
                    drop(g);
                    let hot = pool.pin(PageId(0)).unwrap();
                    assert!(hot.iter().all(|&b| b == 0));
                }
            }
            let s = pool.stats();
            assert_eq!(s.hits + s.misses, 96);
            assert!(s.misses >= 16, "{policy}: {s:?}");
        }
    }

    #[test]
    fn prefetched_pages_are_resident_and_hit() {
        // Budget 4 of 8 pages: after the fill loop pages 4..8 are resident,
        // so the prefetched run 0..4 does real loads.
        let pool = prefetch_pool(8, 4, ReplacementPolicy::Clock);
        let hints: Vec<PageId> = (0..4).map(PageId).collect();
        pool.prefetch(&hints);
        pool.prefetch_quiesce();
        let s = pool.stats();
        assert_eq!(s.prefetch_loads, 4, "{s:?}");
        assert_eq!(s.disk_reads, 4);
        for p in 0..4u32 {
            assert!(pool.is_resident(PageId(p)));
            let g = pool.pin(PageId(p)).unwrap();
            assert!(g.iter().all(|&b| b == p as u8), "page {p}");
        }
        let s = pool.stats();
        assert_eq!(s.hits, 4);
        assert_eq!(s.misses, 0);
        assert_eq!(s.prefetch_hits, 4);
        // Re-pinning is a plain hit: prefetch_hits counts first touches only.
        pool.pin(PageId(0)).unwrap();
        assert_eq!(pool.stats().prefetch_hits, 4);
    }

    #[test]
    fn prefetcher_never_victimizes_a_pinned_frame() {
        // One frame, and it is pinned: the prefetcher must skip, not evict
        // and not error.
        let pool = prefetch_pool(4, 1, ReplacementPolicy::Sieve);
        let guard = pool.pin(PageId(0)).unwrap();
        pool.prefetch(&[PageId(1), PageId(2)]);
        pool.prefetch_quiesce();
        assert!(pool.is_resident(PageId(0)));
        assert!(!pool.is_resident(PageId(1)));
        assert!(!pool.is_resident(PageId(2)));
        assert_eq!(pool.stats().prefetch_loads, 0);
        // The pinned guard still reads its original page.
        assert!(guard.iter().all(|&b| b == 0));
        drop(guard);
        // Unpinned, the same hints land.
        pool.prefetch(&[PageId(1)]);
        pool.prefetch_quiesce();
        assert!(pool.is_resident(PageId(1)));
        assert_eq!(pool.stats().prefetch_loads, 1);
    }

    #[test]
    fn untouched_prefetched_pages_count_as_wasted_on_eviction() {
        let pool = prefetch_pool(8, 2, ReplacementPolicy::Lru);
        pool.prefetch(&[PageId(0), PageId(1)]);
        pool.prefetch_quiesce();
        assert_eq!(pool.stats().prefetch_loads, 2);
        // Demand-pin two other pages: both prefetched frames are evicted
        // before any pin touched them.
        pool.pin(PageId(6)).unwrap();
        pool.pin(PageId(7)).unwrap();
        let s = pool.stats();
        assert_eq!(s.prefetch_wasted, 2, "{s:?}");
        assert_eq!(s.prefetch_hits, 0);
    }

    #[test]
    fn prefetch_hints_coalesce_across_small_gaps() {
        let pool = prefetch_pool(8, 4, ReplacementPolicy::Clock);
        // Pages 0 and 2: the gap page 1 rides along in one batched read.
        pool.prefetch(&[PageId(2), PageId(0)]);
        pool.prefetch_quiesce();
        assert!(pool.is_resident(PageId(0)));
        assert!(pool.is_resident(PageId(1)));
        assert!(pool.is_resident(PageId(2)));
        let g = pool.pin(PageId(1)).unwrap();
        assert!(g.iter().all(|&b| b == 1));
    }

    #[test]
    fn prefetch_out_of_bounds_hints_are_dropped() {
        let pool = prefetch_pool(2, 2, ReplacementPolicy::Clock);
        pool.prefetch(&[PageId(1000)]);
        pool.prefetch_quiesce();
        assert_eq!(pool.stats().prefetch_loads, 0);
        // The pool still works.
        let g = pool.pin(PageId(0)).unwrap();
        assert!(g.iter().all(|&b| b == 0));
    }

    #[test]
    fn prefetch_is_a_noop_without_a_prefetcher() {
        let pool = pool(4, 2, ReplacementPolicy::Clock);
        assert!(!pool.prefetch_enabled());
        pool.prefetch(&[PageId(0)]);
        pool.prefetch_quiesce();
        assert_eq!(pool.stats(), PoolStats::default());
    }
}
