//! `smoke-pager`: a file-backed segment store of fixed-size pages behind a
//! budgeted buffer pool.
//!
//! This is the out-of-core foundation of the Smoke workspace: paged columns
//! ([`smoke_storage::paged`]), compressed CSR lineage blocks
//! ([`smoke_lineage`]'s paged index), and the planner's I/O cost term all
//! sit on these three pieces:
//!
//! * [`SegmentStore`] — a flat array of [`PAGE_SIZE`]-byte pages on disk
//!   (or in memory for tests/Miri), with bump allocation and physical
//!   read/write counters;
//! * [`BufferPool`] — at most `budget_pages` pages resident at once, with
//!   pin/unpin RAII [`PageGuard`]s, dirty write-back, and hit / miss /
//!   eviction counters ([`PoolStats`]);
//! * [`Replacer`] — the pluggable replacement policy behind the pool:
//!   Clock (second chance), SIEVE, and exact LRU, selected by
//!   [`ReplacementPolicy`].
//!
//! Pools built with [`BufferPool::with_prefetch`] additionally run a small
//! background prefetcher: [`BufferPool::prefetch`] takes advisory page
//! hints, coalesces them into contiguous runs, and reads each run with one
//! vectored [`SegmentStore::read_run_pages`] call ahead of the demand pins,
//! swapping the freshly read buffers straight into frames.
//!
//! The crate is dependency-free, `unsafe`-free, and panic-free outside
//! tests (enforced by `smoke-lint`'s no-panic scope): every failure mode is
//! a typed [`PagerError`].
//!
//! ```
//! use smoke_pager::{BufferPool, PageId, ReplacementPolicy, SegmentStore, PAGE_SIZE};
//!
//! let store = SegmentStore::in_memory();
//! store.allocate(8);
//! let pool = BufferPool::new(store, 2, ReplacementPolicy::Sieve);
//! pool.with_page_mut(PageId(3), |bytes| bytes[0] = 42).unwrap();
//!
//! let guard = pool.pin(PageId(3)).unwrap(); // RAII pin
//! assert_eq!(guard[0], 42);
//! assert_eq!(guard.len(), PAGE_SIZE);
//! drop(guard); // unpin; the frame becomes evictable again
//! assert!(pool.stats().hits >= 1);
//! ```
//!
//! [`smoke_storage::paged`]: https://docs.rs/smoke-storage
//! [`smoke_lineage`]: https://docs.rs/smoke-lineage

#![warn(missing_docs)]

pub mod error;
pub mod page;
pub mod pool;
mod prefetch;
pub mod replacer;
pub mod store;

pub use error::PagerError;
pub use page::{PageId, PAGE_SIZE};
pub use pool::{BufferPool, PageGuard, PoolStats, DEFAULT_PREFETCH_THREADS};
pub use replacer::{Clock, Lru, ReplacementPolicy, Replacer, Sieve};
pub use store::SegmentStore;
