//! Page identifiers and the fixed page geometry.

use std::fmt;

/// Size of every page in bytes. 8 KiB holds 1024 fixed-width 8-byte values,
/// which keeps page-aligned column chunks a multiple of the 64-row morsel
/// alignment the parallel kernels assume.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of one fixed-size page inside a [`crate::SegmentStore`].
///
/// Page `p` lives at byte offset `p * PAGE_SIZE` of the backing segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Byte offset of this page in the backing segment.
    pub fn offset(self) -> u64 {
        u64::from(self.0) * PAGE_SIZE as u64
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_page_multiples() {
        assert_eq!(PageId(0).offset(), 0);
        assert_eq!(PageId(3).offset(), 3 * PAGE_SIZE as u64);
    }

    #[test]
    fn page_size_is_morsel_aligned() {
        // 8-byte values per page must be a multiple of the 64-row morsel
        // alignment (see smoke_storage::morsel).
        assert_eq!((PAGE_SIZE / 8) % 64, 0);
    }
}
