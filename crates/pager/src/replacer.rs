//! Pluggable page-replacement policies.
//!
//! The buffer pool reports frame events (`on_admit`, `on_access`,
//! `on_evict`) and asks the policy for a victim when a miss needs a frame.
//! `victim` receives an evictability mask (a frame is evictable when it
//! holds a page and its pin count is zero) and must only return frames the
//! mask allows. Three policies ship: Clock (second chance), SIEVE (lazy
//! promotion / FIFO with a sweeping hand — Zhang et al., NSDI'24), and an
//! exact LRU.

use std::fmt;

/// A page-replacement policy over a fixed set of `capacity` frames.
pub trait Replacer: Send {
    /// Stable short name for stats and bench output.
    fn name(&self) -> &'static str;
    /// A resident frame was hit.
    fn on_access(&mut self, frame: usize);
    /// A page was loaded into `frame`.
    fn on_admit(&mut self, frame: usize);
    /// `frame` was emptied outside of `victim` (pool shutdown paths).
    fn on_evict(&mut self, frame: usize);
    /// Chooses a frame to evict. `evictable[f]` is true when frame `f`
    /// holds an unpinned page. Returns `None` when no frame is evictable.
    fn victim(&mut self, evictable: &[bool]) -> Option<usize>;
}

/// Which [`Replacer`] a pool uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Second-chance clock: one reference bit per frame, a sweeping hand.
    Clock,
    /// SIEVE: FIFO order with a hand that spares visited pages once and
    /// never moves objects on hit.
    Sieve,
    /// Exact least-recently-used via per-frame timestamps.
    Lru,
}

impl ReplacementPolicy {
    /// All shipped policies, in bench-report order.
    pub const ALL: [ReplacementPolicy; 3] = [
        ReplacementPolicy::Clock,
        ReplacementPolicy::Sieve,
        ReplacementPolicy::Lru,
    ];

    /// Stable lowercase name (`clock` / `sieve` / `lru`).
    pub fn as_str(self) -> &'static str {
        match self {
            ReplacementPolicy::Clock => "clock",
            ReplacementPolicy::Sieve => "sieve",
            ReplacementPolicy::Lru => "lru",
        }
    }

    /// Parses a policy name as produced by [`ReplacementPolicy::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "clock" => Some(ReplacementPolicy::Clock),
            "sieve" => Some(ReplacementPolicy::Sieve),
            "lru" => Some(ReplacementPolicy::Lru),
            _ => None,
        }
    }

    /// Builds the policy's replacer for a pool of `capacity` frames.
    pub fn replacer(self, capacity: usize) -> Box<dyn Replacer> {
        match self {
            ReplacementPolicy::Clock => Box::new(Clock::new(capacity)),
            ReplacementPolicy::Sieve => Box::new(Sieve::new(capacity)),
            ReplacementPolicy::Lru => Box::new(Lru::new(capacity)),
        }
    }
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Second-chance clock replacement.
pub struct Clock {
    referenced: Vec<bool>,
    hand: usize,
}

impl Clock {
    /// A clock over `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        Clock {
            referenced: vec![false; capacity.max(1)],
            hand: 0,
        }
    }
}

impl Replacer for Clock {
    fn name(&self) -> &'static str {
        "clock"
    }

    fn on_access(&mut self, frame: usize) {
        if let Some(bit) = self.referenced.get_mut(frame) {
            *bit = true;
        }
    }

    fn on_admit(&mut self, frame: usize) {
        self.on_access(frame);
    }

    fn on_evict(&mut self, frame: usize) {
        if let Some(bit) = self.referenced.get_mut(frame) {
            *bit = false;
        }
    }

    fn victim(&mut self, evictable: &[bool]) -> Option<usize> {
        let n = self.referenced.len().min(evictable.len());
        if n == 0 || !evictable.iter().take(n).any(|&e| e) {
            return None;
        }
        // Two sweeps suffice: the first clears every referenced bit on an
        // evictable frame, the second must then find one.
        for _ in 0..2 * n + 1 {
            let f = self.hand;
            self.hand = (self.hand + 1) % n;
            if !evictable.get(f).copied().unwrap_or(false) {
                continue;
            }
            if self.referenced.get(f).copied().unwrap_or(false) {
                if let Some(bit) = self.referenced.get_mut(f) {
                    *bit = false;
                }
            } else {
                return Some(f);
            }
        }
        None
    }
}

/// SIEVE replacement: FIFO insertion order, a `visited` bit set on hit, and
/// a hand sweeping old→older that spares visited pages once. Unlike clock,
/// the hand does not wrap over freshly admitted pages mid-sweep, and hits
/// never move objects.
///
/// The queue is an intrusive doubly-linked list over frame indices
/// (`newer`/`older` neighbor arrays), so `on_admit` and eviction unlink in
/// O(1). This matters on big pools: a 10k-frame pool admits a page on every
/// miss *and* on every prefetch install, and a `Vec`-backed queue would pay
/// an O(capacity) scan-and-shift on each one.
pub struct Sieve {
    /// `newer[f]` / `older[f]`: list neighbors of frame `f`, [`Sieve::NONE`]
    /// at the ends. Head = newest admission, tail = oldest.
    newer: Vec<usize>,
    older: Vec<usize>,
    /// Whether frame `f` is currently linked into the queue.
    linked: Vec<bool>,
    visited: Vec<bool>,
    head: usize,
    tail: usize,
    /// Frame the hand points at (the next eviction candidate); `NONE` means
    /// the next sweep (re)starts at the tail.
    hand: usize,
    len: usize,
}

impl Sieve {
    /// Sentinel for "no frame" in the neighbor arrays and the hand.
    const NONE: usize = usize::MAX;

    /// A SIEVE over `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Sieve {
            newer: vec![Self::NONE; capacity],
            older: vec![Self::NONE; capacity],
            linked: vec![false; capacity],
            visited: vec![false; capacity],
            head: Self::NONE,
            tail: Self::NONE,
            hand: Self::NONE,
            len: 0,
        }
    }

    /// Removes `frame` from the queue. The hand, if parked on `frame`,
    /// steps to its newer neighbor — the same frame the sweep would visit
    /// next.
    fn unlink(&mut self, frame: usize) {
        if !self.linked.get(frame).copied().unwrap_or(false) {
            return;
        }
        let nw = self.newer.get(frame).copied().unwrap_or(Self::NONE);
        let ol = self.older.get(frame).copied().unwrap_or(Self::NONE);
        match self.newer.get_mut(ol) {
            Some(slot) => *slot = nw,
            None => self.tail = nw,
        }
        match self.older.get_mut(nw) {
            Some(slot) => *slot = ol,
            None => self.head = ol,
        }
        if let Some(l) = self.linked.get_mut(frame) {
            *l = false;
        }
        if self.hand == frame {
            self.hand = nw;
        }
        self.len -= 1;
    }
}

impl Replacer for Sieve {
    fn name(&self) -> &'static str {
        "sieve"
    }

    fn on_access(&mut self, frame: usize) {
        if let Some(bit) = self.visited.get_mut(frame) {
            *bit = true;
        }
    }

    fn on_admit(&mut self, frame: usize) {
        if frame >= self.linked.len() {
            return;
        }
        // New objects enter at the head unvisited. A re-admitted frame
        // (dirty write-back failure re-registering its page) moves there.
        self.unlink(frame);
        if let Some(slot) = self.older.get_mut(frame) {
            *slot = self.head;
        }
        if let Some(slot) = self.newer.get_mut(frame) {
            *slot = Self::NONE;
        }
        match self.newer.get_mut(self.head) {
            Some(slot) => *slot = frame,
            None => self.tail = frame,
        }
        self.head = frame;
        if let Some(l) = self.linked.get_mut(frame) {
            *l = true;
        }
        if let Some(bit) = self.visited.get_mut(frame) {
            *bit = false;
        }
        self.len += 1;
    }

    fn on_evict(&mut self, frame: usize) {
        self.unlink(frame);
    }

    fn victim(&mut self, evictable: &[bool]) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        // At most two passes over the queue: one clears visited bits, one
        // must find an unvisited evictable frame (if any frame is evictable).
        for _ in 0..2 * self.len + 1 {
            let frame = if self.linked.get(self.hand).copied().unwrap_or(false) {
                self.hand
            } else {
                self.tail // (re)start at the tail = oldest
            };
            if frame == Self::NONE {
                return None;
            }
            if !evictable.get(frame).copied().unwrap_or(false) {
                // Pinned or empty: skip without touching its visited bit.
                self.hand = self.newer.get(frame).copied().unwrap_or(Self::NONE);
                continue;
            }
            if self.visited.get(frame).copied().unwrap_or(false) {
                if let Some(bit) = self.visited.get_mut(frame) {
                    *bit = false;
                }
                self.hand = self.newer.get(frame).copied().unwrap_or(Self::NONE);
            } else {
                self.unlink(frame);
                return Some(frame);
            }
        }
        None
    }
}

/// Exact LRU via monotonically increasing access stamps.
pub struct Lru {
    stamp: Vec<u64>,
    clock: u64,
}

impl Lru {
    /// An LRU over `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        Lru {
            stamp: vec![0; capacity.max(1)],
            clock: 0,
        }
    }
}

impl Replacer for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn on_access(&mut self, frame: usize) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(s) = self.stamp.get_mut(frame) {
            *s = clock;
        }
    }

    fn on_admit(&mut self, frame: usize) {
        self.on_access(frame);
    }

    fn on_evict(&mut self, frame: usize) {
        if let Some(s) = self.stamp.get_mut(frame) {
            *s = 0;
        }
    }

    fn victim(&mut self, evictable: &[bool]) -> Option<usize> {
        self.stamp
            .iter()
            .enumerate()
            .take(evictable.len())
            .filter(|(f, _)| evictable.get(*f).copied().unwrap_or(false))
            .min_by_key(|(_, &s)| s)
            .map(|(f, _)| f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(n: usize, pinned: &[usize]) -> Vec<bool> {
        (0..n).map(|f| !pinned.contains(&f)).collect()
    }

    #[test]
    fn policy_names_round_trip() {
        for p in ReplacementPolicy::ALL {
            assert_eq!(ReplacementPolicy::parse(p.as_str()), Some(p));
            assert_eq!(p.replacer(4).name(), p.as_str());
        }
        assert_eq!(ReplacementPolicy::parse("mru"), None);
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut c = Clock::new(3);
        for f in 0..3 {
            c.on_admit(f);
        }
        // All referenced: first sweep clears, second evicts frame 0.
        assert_eq!(c.victim(&mask(3, &[])), Some(0));
        // Re-admit 0; access 1 so it survives over 2.
        c.on_admit(0);
        c.on_access(1);
        assert_eq!(c.victim(&mask(3, &[])), Some(2));
    }

    #[test]
    fn clock_respects_pins() {
        let mut c = Clock::new(2);
        c.on_admit(0);
        c.on_admit(1);
        assert_eq!(c.victim(&mask(2, &[0])), Some(1));
        assert_eq!(c.victim(&[false, false]), None);
    }

    #[test]
    fn sieve_evicts_oldest_unvisited() {
        let mut s = Sieve::new(3);
        s.on_admit(0); // oldest
        s.on_admit(1);
        s.on_admit(2); // newest
        s.on_access(0); // oldest is visited → spared once
        assert_eq!(s.victim(&mask(3, &[])), Some(1));
        // Hand stays put: next eviction continues toward the head.
        assert_eq!(s.victim(&mask(3, &[])), Some(2));
        // Only 0 remains; its visited bit was cleared by the first sweep.
        assert_eq!(s.victim(&mask(3, &[])), Some(0));
        assert_eq!(s.victim(&mask(3, &[])), None);
    }

    #[test]
    fn sieve_skips_pinned_without_clearing() {
        let mut s = Sieve::new(3);
        s.on_admit(0);
        s.on_admit(1);
        s.on_admit(2);
        s.on_access(1);
        // 0 pinned; 1 visited (spared); 2 evicted.
        assert_eq!(s.victim(&mask(3, &[0])), Some(2));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut l = Lru::new(3);
        l.on_admit(0);
        l.on_admit(1);
        l.on_admit(2);
        l.on_access(0);
        assert_eq!(l.victim(&mask(3, &[])), Some(1));
        assert_eq!(l.victim(&mask(3, &[1])), Some(2));
        assert_eq!(l.victim(&[false, false, false]), None);
    }
}
