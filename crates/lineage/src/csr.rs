//! Compressed-sparse-row rid indexes: the cache-friendly 1-to-N
//! representation.
//!
//! A [`crate::RidIndex`] stores one heap-allocated [`crate::RidArray`] per
//! entry, which is what the write path wants (entries grow independently
//! while the operator runs). Once an index is *finished*, however, the
//! pointer-chasing layout costs on every read: each lookup dereferences a
//! `Vec` header, entries are scattered across the heap, and each entry pays
//! its own allocation slack. `CsrRidIndex` packs the same mapping into two
//! contiguous, exactly-sized buffers:
//!
//! * `offsets[i]..offsets[i + 1]` delimits the rids of entry `i`;
//! * `rids` holds every lineage edge back to back.
//!
//! Lookups are two adjacent `u32` reads plus one slice; a full traversal is
//! one linear scan. The Defer capture paths, which know per-entry
//! cardinalities before writing a single rid, build CSR directly through
//! [`CsrBuilder`] with zero resizes; Inject paths build a [`crate::RidIndex`]
//! and convert with [`CsrRidIndex::from`] (or [`crate::RidIndex::finalize`])
//! in one pass.

use smoke_storage::Rid;

use crate::rid_index::RidIndex;

/// A 1-to-N lineage index stored in compressed-sparse-row form.
///
/// Invariant: `offsets` has `len + 1` entries, is non-decreasing, starts at
/// `0`, and ends at `rids.len()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrRidIndex {
    offsets: Vec<u32>,
    rids: Vec<Rid>,
}

impl Default for CsrRidIndex {
    fn default() -> Self {
        CsrRidIndex::new()
    }
}

impl CsrRidIndex {
    /// Creates an empty CSR index.
    pub fn new() -> Self {
        CsrRidIndex {
            offsets: vec![0],
            rids: Vec::new(),
        }
    }

    /// Assembles a CSR index from raw parts (used by composition fast paths
    /// that compute both buffers themselves).
    ///
    /// Panics (in debug builds) when the offsets invariant does not hold.
    pub fn from_parts(offsets: Vec<u32>, rids: Vec<Rid>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().unwrap() as usize, rids.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        CsrRidIndex { offsets, rids }
    }

    /// Number of entries (e.g. number of output groups).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// The rids at entry `pos`. Panics when `pos` is out of bounds, matching
    /// [`RidIndex::get`].
    #[inline]
    pub fn get(&self, pos: usize) -> &[Rid] {
        let lo = self.offsets[pos] as usize;
        let hi = self.offsets[pos + 1] as usize;
        &self.rids[lo..hi]
    }

    /// The rids at entry `pos`, or an empty slice when out of bounds.
    #[inline]
    pub fn get_checked(&self, pos: usize) -> &[Rid] {
        if pos + 1 < self.offsets.len() {
            self.get(pos)
        } else {
            &[]
        }
    }

    /// Calls `f` for every rid at entry `pos` without allocating.
    #[inline]
    pub fn for_each(&self, pos: usize, mut f: impl FnMut(Rid)) {
        for &r in self.get_checked(pos) {
            f(r);
        }
    }

    /// Iterates over `(position, rids)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[Rid])> + '_ {
        (0..self.len()).map(|i| (i, self.get(i)))
    }

    /// Total number of rids stored (number of lineage edges represented).
    pub fn edge_count(&self) -> usize {
        self.rids.len()
    }

    /// The flat rid buffer (every edge, entry after entry).
    pub fn rids(&self) -> &[Rid] {
        &self.rids
    }

    /// The offsets buffer (`len + 1` entries).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Approximate heap footprint in bytes: two exactly-sized flat buffers,
    /// with none of the per-entry `Vec` headers or allocation slack a
    /// [`RidIndex`] pays.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.rids.capacity() * std::mem::size_of::<Rid>()
    }

    /// Merges per-partition CSR indexes into one global index — the
    /// finalize step of parallel lineage capture.
    ///
    /// Each worker of a morsel-parallel operator captures lineage into its
    /// own private CSR whose entries are numbered in a partition-local id
    /// space. `maps[p][local]` rebases partition `p`'s local entry id to the
    /// global entry id (`0..entries`); several partitions may map onto the
    /// same global entry (a group whose rows straddle morsel boundaries).
    ///
    /// Because CSR stores every edge in one flat buffer, the merge is a
    /// *memcpy-with-rebase*: a counting pass sums per-global-entry
    /// cardinalities, then each partition's per-entry rid slice is copied
    /// verbatim into its pre-computed window — no per-edge hashing or
    /// re-bucketing. Partitions are drained in slice order, so when callers
    /// pass partitions in morsel order the rids within each global entry
    /// stay in ascending rid order, matching sequential capture bit for bit.
    pub fn merge_remapped(parts: &[CsrRidIndex], maps: &[Vec<u32>], entries: usize) -> CsrRidIndex {
        debug_assert_eq!(parts.len(), maps.len());
        let mut counts = vec![0usize; entries];
        for (part, map) in parts.iter().zip(maps) {
            debug_assert_eq!(part.len(), map.len());
            for (local, &global) in map.iter().enumerate() {
                counts[global as usize] += part.get(local).len();
            }
        }
        let mut builder = CsrBuilder::with_counts(counts);
        for (part, map) in parts.iter().zip(maps) {
            for (local, &global) in map.iter().enumerate() {
                builder.append_slice(global as usize, part.get(local));
            }
        }
        builder.finish()
    }
}

/// Asserts (in release builds too) that an edge total fits the `u32` offset
/// space; a silently wrapped offset buffer would corrupt every lookup.
#[inline]
pub(crate) fn checked_offset(total: u64) -> u32 {
    assert!(
        total <= u32::MAX as u64,
        "lineage index exceeds the u32 edge capacity of CSR offsets"
    );
    total as u32
}

impl From<&RidIndex> for CsrRidIndex {
    /// Converts a built rid index into CSR in one pass over its entries.
    fn from(index: &RidIndex) -> Self {
        let mut offsets = Vec::with_capacity(index.len() + 1);
        offsets.push(0u32);
        let mut total = 0u64;
        for (_, entry) in index.iter() {
            total += entry.len() as u64;
            offsets.push(checked_offset(total));
        }
        let mut rids = Vec::with_capacity(total as usize);
        for (_, entry) in index.iter() {
            rids.extend_from_slice(entry);
        }
        CsrRidIndex { offsets, rids }
    }
}

/// Direct builder for capture paths that know every entry's cardinality up
/// front (group-by / join Defer): the two flat buffers are allocated exactly
/// once and filled through per-entry write cursors — zero resizes, no
/// intermediate `Vec<RidArray>`.
#[derive(Debug)]
pub struct CsrBuilder {
    offsets: Vec<u32>,
    cursors: Vec<u32>,
    rids: Vec<Rid>,
}

impl CsrBuilder {
    /// Starts a builder from exact per-entry cardinalities.
    pub fn with_counts(counts: impl IntoIterator<Item = usize>) -> Self {
        let mut offsets = vec![0u32];
        let mut total = 0u64;
        for c in counts {
            total += c as u64;
            offsets.push(checked_offset(total));
        }
        let cursors = offsets[..offsets.len() - 1].to_vec();
        CsrBuilder {
            offsets,
            cursors,
            rids: vec![0; total as usize],
        }
    }

    /// Appends `rid` to entry `pos`. Entries may be filled in any interleaved
    /// order; each must receive exactly the count it was declared with.
    #[inline]
    pub fn append(&mut self, pos: usize, rid: Rid) {
        let cursor = self.cursors[pos];
        debug_assert!(
            cursor < self.offsets[pos + 1],
            "entry {pos} overflows its declared cardinality"
        );
        self.rids[cursor as usize] = rid;
        self.cursors[pos] = cursor + 1;
    }

    /// Appends a whole rid slice to entry `pos` in one `copy_from_slice` —
    /// the per-entry unit of the parallel merge in
    /// [`CsrRidIndex::merge_remapped`]. Counts toward the entry's declared
    /// cardinality exactly like `rids.len()` calls to [`CsrBuilder::append`].
    #[inline]
    pub fn append_slice(&mut self, pos: usize, rids: &[Rid]) {
        let cursor = self.cursors[pos] as usize;
        debug_assert!(
            cursor + rids.len() <= self.offsets[pos + 1] as usize,
            "entry {pos} overflows its declared cardinality"
        );
        self.rids[cursor..cursor + rids.len()].copy_from_slice(rids);
        self.cursors[pos] = (cursor + rids.len()) as u32;
    }

    /// Finishes the build. Panics when any entry received a different number
    /// of rids than declared: `rids` is pre-filled with rid 0, so letting an
    /// undercounted build through would silently attribute outputs to base
    /// row 0. The check is O(entries), off the per-edge hot path.
    pub fn finish(self) -> CsrRidIndex {
        assert!(
            self.cursors
                .iter()
                .zip(&self.offsets[1..])
                .all(|(c, end)| c == end),
            "an entry received a different number of rids than its declared cardinality"
        );
        CsrRidIndex {
            offsets: self.offsets,
            rids: self.rids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RidIndex {
        RidIndex::from_entries(vec![vec![1, 2, 3], vec![], vec![3, 4]])
    }

    #[test]
    fn conversion_preserves_entries() {
        let idx = sample();
        let csr = CsrRidIndex::from(&idx);
        assert_eq!(csr.len(), 3);
        assert_eq!(csr.edge_count(), 5);
        assert_eq!(csr.get(0), &[1, 2, 3]);
        assert_eq!(csr.get(1), &[] as &[Rid]);
        assert_eq!(csr.get(2), &[3, 4]);
        assert_eq!(csr.get_checked(99), &[] as &[Rid]);
        assert_eq!(csr.offsets(), &[0, 3, 3, 5]);
        assert_eq!(csr.rids(), &[1, 2, 3, 3, 4]);
    }

    #[test]
    fn for_each_and_iter_match_get() {
        let csr = CsrRidIndex::from(&sample());
        for (pos, slice) in csr.iter() {
            let mut collected = Vec::new();
            csr.for_each(pos, |r| collected.push(r));
            assert_eq!(collected, slice.to_vec());
        }
    }

    #[test]
    fn builder_fills_interleaved_entries_without_resizes() {
        let mut b = CsrBuilder::with_counts([2usize, 0, 3]);
        b.append(2, 10);
        b.append(0, 5);
        b.append(2, 11);
        b.append(0, 6);
        b.append(2, 12);
        let csr = b.finish();
        assert_eq!(csr.get(0), &[5, 6]);
        assert_eq!(csr.get(1), &[] as &[Rid]);
        assert_eq!(csr.get(2), &[10, 11, 12]);
    }

    #[test]
    fn append_slice_matches_per_rid_appends() {
        let mut a = CsrBuilder::with_counts([3usize, 2]);
        a.append_slice(1, &[7, 8]);
        a.append_slice(0, &[1]);
        a.append_slice(0, &[2, 3]);
        let mut b = CsrBuilder::with_counts([3usize, 2]);
        for r in [7, 8] {
            b.append(1, r);
        }
        for r in [1, 2, 3] {
            b.append(0, r);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn merge_remapped_rebases_partition_local_entries() {
        // Two partitions over morsels [0,4) and [4,8); three global groups.
        // Partition 0 saw groups A(=0) and B(=1) locally as 0 and 1;
        // partition 1 saw B and C first, so locally B=0, C=1, A=2.
        let p0 = CsrBuilder::with_counts([2usize, 2]);
        let mut p0 = p0;
        p0.append_slice(0, &[0, 3]); // A
        p0.append_slice(1, &[1, 2]); // B
        let p0 = p0.finish();
        let mut p1 = CsrBuilder::with_counts([1usize, 2, 1]);
        p1.append_slice(0, &[5]); // B
        p1.append_slice(1, &[4, 7]); // C
        p1.append_slice(2, &[6]); // A
        let p1 = p1.finish();

        let merged = CsrRidIndex::merge_remapped(&[p0, p1], &[vec![0, 1], vec![1, 2, 0]], 3);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.get(0), &[0, 3, 6], "A: ascending across morsels");
        assert_eq!(merged.get(1), &[1, 2, 5], "B: straddles the boundary");
        assert_eq!(merged.get(2), &[4, 7], "C: second morsel only");
    }

    #[test]
    fn merge_remapped_handles_empty_partitions() {
        let merged = CsrRidIndex::merge_remapped(&[], &[], 2);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.get(0), &[] as &[Rid]);
        let empty = CsrRidIndex::new();
        let merged = CsrRidIndex::merge_remapped(&[empty], &[vec![]], 0);
        assert!(merged.is_empty());
    }

    #[test]
    fn heap_bytes_is_strictly_below_vec_of_vecs() {
        // 100 entries of 10 rids each: the Vec<RidArray> layout pays one
        // header + allocation per entry, CSR pays two flat buffers.
        let entries: Vec<Vec<Rid>> = (0..100).map(|i| (i * 10..(i + 1) * 10).collect()).collect();
        let idx = RidIndex::from_entries(entries);
        let csr = CsrRidIndex::from(&idx);
        assert!(csr.heap_bytes() < idx.heap_bytes());
        assert_eq!(csr.edge_count(), idx.edge_count());
    }

    #[test]
    fn empty_index() {
        let csr = CsrRidIndex::new();
        assert!(csr.is_empty());
        assert_eq!(csr.len(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(csr.get_checked(0), &[] as &[Rid]);
        let from_empty = CsrRidIndex::from(&RidIndex::new());
        assert_eq!(from_empty, csr);
    }
}
