//! Per-operator and end-to-end (query-level) lineage containers.

use std::collections::BTreeMap;

use smoke_storage::Rid;

use crate::index::LineageIndex;
use crate::stats::CaptureStats;

/// The lineage of one operator (or of an end-to-end query) with respect to a
/// single input relation: a backward index (output rid → input rids) and a
/// forward index (input rid → output rids).
///
/// Either direction may be absent when instrumentation pruning (§4.1) disabled
/// its capture.
#[derive(Debug, Clone, Default)]
pub struct InputLineage {
    /// Output rid → input rids.
    pub backward: Option<LineageIndex>,
    /// Input rid → output rids.
    pub forward: Option<LineageIndex>,
}

impl InputLineage {
    /// Creates lineage with both directions captured.
    pub fn new(backward: LineageIndex, forward: LineageIndex) -> Self {
        InputLineage {
            backward: Some(backward),
            forward: Some(forward),
        }
    }

    /// Creates lineage with only the backward direction captured.
    pub fn backward_only(backward: LineageIndex) -> Self {
        InputLineage {
            backward: Some(backward),
            forward: None,
        }
    }

    /// Creates lineage with only the forward direction captured.
    pub fn forward_only(forward: LineageIndex) -> Self {
        InputLineage {
            backward: None,
            forward: Some(forward),
        }
    }

    /// Backward index, panicking with a clear message when it was pruned.
    pub fn backward(&self) -> &LineageIndex {
        self.backward
            .as_ref()
            .expect("backward lineage was not captured (pruned)")
    }

    /// Forward index, panicking with a clear message when it was pruned.
    pub fn forward(&self) -> &LineageIndex {
        self.forward
            .as_ref()
            .expect("forward lineage was not captured (pruned)")
    }

    /// Approximate heap footprint in bytes of the captured indexes.
    pub fn heap_bytes(&self) -> usize {
        self.backward.as_ref().map_or(0, LineageIndex::heap_bytes)
            + self.forward.as_ref().map_or(0, LineageIndex::heap_bytes)
    }

    /// Total rid-array resizes across the captured indexes.
    pub fn resizes(&self) -> u64 {
        self.backward.as_ref().map_or(0, LineageIndex::resizes)
            + self.forward.as_ref().map_or(0, LineageIndex::resizes)
    }

    /// Finalizes both captured directions into read-optimized representations
    /// (`Index` → `Csr`; everything else is already compact).
    pub fn finalize(self) -> Self {
        InputLineage {
            backward: self.backward.map(LineageIndex::finalize),
            forward: self.forward.map(LineageIndex::finalize),
        }
    }
}

/// The lineage captured while executing one physical operator, keyed by the
/// operator's input position (0 for unary operators; 0 = left / build side and
/// 1 = right / probe side for binary operators).
#[derive(Debug, Clone, Default)]
pub struct OperatorLineage {
    inputs: Vec<InputLineage>,
    /// Capture statistics for this operator.
    pub stats: CaptureStats,
}

impl OperatorLineage {
    /// Creates lineage for a unary operator.
    pub fn unary(lineage: InputLineage) -> Self {
        OperatorLineage {
            inputs: vec![lineage],
            stats: CaptureStats::default(),
        }
    }

    /// Creates lineage for a binary operator.
    pub fn binary(left: InputLineage, right: InputLineage) -> Self {
        OperatorLineage {
            inputs: vec![left, right],
            stats: CaptureStats::default(),
        }
    }

    /// Creates an empty container (used by the Baseline / no-capture mode).
    pub fn none() -> Self {
        OperatorLineage::default()
    }

    /// Lineage w.r.t. the input at `pos`.
    pub fn input(&self, pos: usize) -> &InputLineage {
        &self.inputs[pos]
    }

    /// Mutable lineage w.r.t. the input at `pos`.
    pub fn input_mut(&mut self, pos: usize) -> &mut InputLineage {
        &mut self.inputs[pos]
    }

    /// Number of inputs this operator captured lineage for.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Whether no lineage was captured at all.
    pub fn is_none(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Approximate heap footprint in bytes of all captured indexes.
    pub fn heap_bytes(&self) -> usize {
        self.inputs.iter().map(InputLineage::heap_bytes).sum()
    }
}

/// End-to-end lineage of an executed query: for every **base relation** the
/// query reads, a backward index (query-output rid → base rids) and a forward
/// index (base rid → query-output rids).
///
/// This is what remains after the multi-operator propagation of §3.3 — the
/// intermediate per-operator indexes have been composed and discarded.
#[derive(Debug, Clone, Default)]
pub struct QueryLineage {
    tables: BTreeMap<String, InputLineage>,
    /// Aggregated capture statistics for the whole query.
    pub stats: CaptureStats,
}

impl QueryLineage {
    /// Creates an empty query lineage.
    pub fn new() -> Self {
        QueryLineage::default()
    }

    /// Registers the lineage for a base relation.
    pub fn insert(&mut self, table: impl Into<String>, lineage: InputLineage) {
        self.tables.insert(table.into(), lineage);
    }

    /// The lineage w.r.t. the named base relation, if captured.
    pub fn table(&self, table: &str) -> Option<&InputLineage> {
        self.tables.get(table)
    }

    /// Names of all base relations with captured lineage.
    pub fn tables(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Whether any lineage was captured.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Evaluates a backward lineage query `Lb(output_rids, table)`: the base
    /// rids of `table` that contributed to the given output rids.
    pub fn backward(&self, output_rids: &[Rid], table: &str) -> Vec<Rid> {
        match self.tables.get(table).and_then(|l| l.backward.as_ref()) {
            Some(idx) => idx.trace_set(output_rids),
            None => Vec::new(),
        }
    }

    /// Evaluates a forward lineage query `Lf(base_rids, table)`: the output
    /// rids that depend on the given base rids of `table`.
    pub fn forward(&self, base_rids: &[Rid], table: &str) -> Vec<Rid> {
        match self.tables.get(table).and_then(|l| l.forward.as_ref()) {
            Some(idx) => idx.trace_set(base_rids),
            None => Vec::new(),
        }
    }

    /// Approximate heap footprint in bytes of all captured indexes.
    pub fn heap_bytes(&self) -> usize {
        self.tables.values().map(InputLineage::heap_bytes).sum()
    }

    /// Total rid-array resizes across all captured indexes.
    pub fn resizes(&self) -> u64 {
        self.tables.values().map(InputLineage::resizes).sum()
    }

    /// Finalizes every captured index into its read-optimized representation
    /// (`Index` → `Csr`), shrinking steady-state memory once capture is done.
    pub fn finalize(mut self) -> Self {
        self.tables = self
            .tables
            .into_iter()
            .map(|(table, lineage)| (table, lineage.finalize()))
            .collect();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rid_array::RidArray;
    use crate::rid_index::RidIndex;

    fn groupby_like_lineage() -> InputLineage {
        // 2 output groups over 5 input rows.
        let backward = LineageIndex::Index(RidIndex::from_entries(vec![vec![0, 2, 4], vec![1, 3]]));
        let forward = LineageIndex::Array(RidArray::from_vec(vec![0, 1, 0, 1, 0]));
        InputLineage::new(backward, forward)
    }

    #[test]
    fn unary_operator_lineage() {
        let op = OperatorLineage::unary(groupby_like_lineage());
        assert_eq!(op.input_count(), 1);
        assert_eq!(op.input(0).backward().lookup(0), vec![0, 2, 4]);
        assert_eq!(op.input(0).forward().lookup(3), vec![1]);
        assert!(op.heap_bytes() > 0);
        assert!(!op.is_none());
        assert!(OperatorLineage::none().is_none());
    }

    #[test]
    fn query_lineage_backward_forward() {
        let mut q = QueryLineage::new();
        q.insert("zipf", groupby_like_lineage());
        assert_eq!(q.tables(), vec!["zipf"]);
        assert_eq!(q.backward(&[0], "zipf"), vec![0, 2, 4]);
        assert_eq!(q.backward(&[0, 1], "zipf"), vec![0, 2, 4, 1, 3]);
        assert_eq!(q.forward(&[1, 3], "zipf"), vec![1]);
        // Unknown table -> empty result rather than panic.
        assert!(q.backward(&[0], "nope").is_empty());
        assert!(!q.is_empty());
    }

    #[test]
    fn pruned_directions_are_absent() {
        let lin = InputLineage::backward_only(LineageIndex::Identity(3));
        assert!(lin.forward.is_none());
        assert_eq!(lin.backward().lookup(1), vec![1]);

        let lin = InputLineage::forward_only(LineageIndex::Identity(3));
        assert!(lin.backward.is_none());
        assert_eq!(lin.forward().lookup(2), vec![2]);
    }

    #[test]
    #[should_panic(expected = "backward lineage was not captured")]
    fn pruned_backward_panics_with_message() {
        let lin = InputLineage::forward_only(LineageIndex::Identity(1));
        let _ = lin.backward();
    }

    #[test]
    fn finalize_converts_index_directions_to_csr() {
        let mut q = QueryLineage::new();
        q.insert("zipf", groupby_like_lineage());
        let before_bytes = q.heap_bytes();
        let q = q.finalize();
        let lin = q.table("zipf").unwrap();
        assert!(matches!(lin.backward, Some(LineageIndex::Csr(_))));
        // The forward array was already compact and stays an array.
        assert!(matches!(lin.forward, Some(LineageIndex::Array(_))));
        assert!(q.heap_bytes() < before_bytes);
        assert_eq!(lin.backward().lookup(0), vec![0, 2, 4]);

        let input = groupby_like_lineage().finalize();
        assert!(matches!(input.backward, Some(LineageIndex::Csr(_))));
        assert_eq!(input.resizes(), 0);
    }
}
