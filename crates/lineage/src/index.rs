//! Direction-agnostic lineage index wrapper.

use smoke_storage::Rid;

use crate::csr::CsrRidIndex;
use crate::rid_array::{RidArray, NO_RID};
use crate::rid_index::RidIndex;

/// A lineage mapping from positions (rids of one relation) to rids of another
/// relation, in either the backward or forward direction.
///
/// The representation mirrors paper §3.1:
/// * [`LineageIndex::Array`] — 1-to-(0|1) relationships (rid array);
/// * [`LineageIndex::Index`] — 1-to-N relationships (rid index), the write
///   side: entries grow independently while the operator runs;
/// * [`LineageIndex::Csr`] — 1-to-N relationships in compressed-sparse-row
///   form, the read side: two contiguous exactly-sized buffers, built
///   directly by Defer capture (cardinalities known up front) or by
///   [`LineageIndex::finalize`] after an Inject build;
/// * [`LineageIndex::Identity`] — the identity mapping used by bag-semantics
///   projection where input and output rids coincide, stored without any
///   materialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineageIndex {
    /// One (or zero, via the [`NO_RID`] sentinel) related rid per position.
    Array(RidArray),
    /// Many related rids per position.
    Index(RidIndex),
    /// Many related rids per position, in compressed-sparse-row form.
    Csr(CsrRidIndex),
    /// Identity mapping over `len` positions.
    Identity(usize),
}

impl LineageIndex {
    /// Number of positions covered by this index.
    pub fn len(&self) -> usize {
        match self {
            LineageIndex::Array(a) => a.len(),
            LineageIndex::Index(i) => i.len(),
            LineageIndex::Csr(c) => c.len(),
            LineageIndex::Identity(n) => *n,
        }
    }

    /// Whether the index covers no positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The rids related to position `pos`, as an owned vector.
    pub fn lookup(&self, pos: Rid) -> Vec<Rid> {
        match self {
            LineageIndex::Array(a) => match a.get_checked(pos as usize) {
                Some(r) => vec![r],
                None => vec![],
            },
            LineageIndex::Index(i) => i.get_checked(pos as usize).to_vec(),
            LineageIndex::Csr(c) => c.get_checked(pos as usize).to_vec(),
            LineageIndex::Identity(n) => {
                if (pos as usize) < *n {
                    vec![pos]
                } else {
                    vec![]
                }
            }
        }
    }

    /// Calls `f` for every rid related to position `pos` without allocating.
    #[inline]
    pub fn for_each(&self, pos: Rid, mut f: impl FnMut(Rid)) {
        match self {
            LineageIndex::Array(a) => {
                if let Some(r) = a.get_checked(pos as usize) {
                    f(r);
                }
            }
            LineageIndex::Index(i) => {
                for &r in i.get_checked(pos as usize) {
                    f(r);
                }
            }
            LineageIndex::Csr(c) => {
                for &r in c.get_checked(pos as usize) {
                    f(r);
                }
            }
            LineageIndex::Identity(n) => {
                if (pos as usize) < *n {
                    f(pos);
                }
            }
        }
    }

    /// The single rid related to `pos`, if the relationship is 1-to-1.
    pub fn single(&self, pos: Rid) -> Option<Rid> {
        match self {
            LineageIndex::Array(a) => a.get_checked(pos as usize),
            LineageIndex::Identity(n) => ((pos as usize) < *n).then_some(pos),
            LineageIndex::Index(i) => {
                let rids = i.get_checked(pos as usize);
                if rids.len() == 1 {
                    Some(rids[0])
                } else {
                    None
                }
            }
            LineageIndex::Csr(c) => {
                let rids = c.get_checked(pos as usize);
                if rids.len() == 1 {
                    Some(rids[0])
                } else {
                    None
                }
            }
        }
    }

    /// Traces a set of positions and returns the union (with duplicates
    /// removed, order of first appearance) of their related rids.
    pub fn trace_set(&self, positions: &[Rid]) -> Vec<Rid> {
        let mut seen = vec![];
        let mut out = Vec::new();
        for &p in positions {
            self.for_each(p, |r| {
                // Deduplicate with a bitmap sized lazily; positions sets are
                // usually small, fall back to linear scan for tiny results.
                if out.len() < 64 {
                    if !out.contains(&r) {
                        out.push(r);
                    }
                } else {
                    if seen.is_empty() {
                        // The bitmap must cover every rid already recorded in
                        // `out`, not just the hint and the current rid —
                        // otherwise large early rids are never marked and get
                        // emitted again on their next occurrence.
                        let mut size = self.max_target_hint().max(r as usize + 1);
                        for &o in &out {
                            size = size.max(o as usize + 1);
                        }
                        seen = vec![false; size];
                        for &o in &out {
                            seen[o as usize] = true;
                        }
                    }
                    if (r as usize) >= seen.len() {
                        seen.resize(r as usize + 1, false);
                    }
                    if !seen[r as usize] {
                        seen[r as usize] = true;
                        out.push(r);
                    }
                }
            });
        }
        out
    }

    /// Traces a set of positions and returns all related rids *with*
    /// duplicates (multiset semantics, needed by why/how provenance and by
    /// aggregate refresh).
    pub fn trace_multiset(&self, positions: &[Rid]) -> Vec<Rid> {
        let mut out = Vec::new();
        for &p in positions {
            self.for_each(p, |r| out.push(r));
        }
        out
    }

    /// Total number of lineage edges represented by this index.
    pub fn edge_count(&self) -> usize {
        match self {
            LineageIndex::Array(a) => a.iter().filter(|&r| r != NO_RID).count(),
            LineageIndex::Index(i) => i.edge_count(),
            LineageIndex::Csr(c) => c.edge_count(),
            LineageIndex::Identity(n) => *n,
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        match self {
            LineageIndex::Array(a) => a.heap_bytes(),
            LineageIndex::Index(i) => i.heap_bytes(),
            LineageIndex::Csr(c) => c.heap_bytes(),
            LineageIndex::Identity(_) => 0,
        }
    }

    /// Total number of rid-array resizes incurred while building this index.
    pub fn resizes(&self) -> u64 {
        match self {
            LineageIndex::Array(a) => a.resizes() as u64,
            LineageIndex::Index(i) => i.resizes(),
            // CSR indexes are allocated exactly once by construction.
            LineageIndex::Csr(_) => 0,
            LineageIndex::Identity(_) => 0,
        }
    }

    /// Converts the write-optimized [`LineageIndex::Index`] representation
    /// into read-optimized [`LineageIndex::Csr`] form in one pass; all other
    /// representations are returned unchanged (they are already compact).
    pub fn finalize(self) -> LineageIndex {
        match self {
            LineageIndex::Index(i) => LineageIndex::Csr(CsrRidIndex::from(&i)),
            other => other,
        }
    }

    /// Borrowing form of [`LineageIndex::finalize`]: converts an `Index`
    /// straight from the borrowed entries instead of deep-cloning the
    /// per-entry arrays first.
    pub fn finalized(&self) -> LineageIndex {
        match self {
            LineageIndex::Index(i) => LineageIndex::Csr(CsrRidIndex::from(i)),
            other => other.clone(),
        }
    }

    fn max_target_hint(&self) -> usize {
        match self {
            LineageIndex::Identity(n) => *n,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array_index() -> LineageIndex {
        let mut a = RidArray::filled(4);
        a.set(0, 10);
        a.set(1, 11);
        a.set(3, 13);
        LineageIndex::Array(a)
    }

    fn rid_index() -> LineageIndex {
        LineageIndex::Index(RidIndex::from_entries(vec![
            vec![1, 2, 3],
            vec![],
            vec![3, 4],
        ]))
    }

    #[test]
    fn array_lookup() {
        let idx = array_index();
        assert_eq!(idx.lookup(0), vec![10]);
        assert_eq!(idx.lookup(2), Vec::<Rid>::new()); // NO_RID sentinel
        assert_eq!(idx.single(3), Some(13));
        assert_eq!(idx.single(2), None);
        assert_eq!(idx.edge_count(), 3);
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn index_lookup() {
        let idx = rid_index();
        assert_eq!(idx.lookup(0), vec![1, 2, 3]);
        assert_eq!(idx.lookup(1), Vec::<Rid>::new());
        assert_eq!(idx.single(2), None);
        assert_eq!(idx.edge_count(), 5);
    }

    #[test]
    fn identity_lookup() {
        let idx = LineageIndex::Identity(3);
        assert_eq!(idx.lookup(2), vec![2]);
        assert_eq!(idx.lookup(3), Vec::<Rid>::new());
        assert_eq!(idx.single(1), Some(1));
        assert_eq!(idx.edge_count(), 3);
        assert!(!idx.is_empty());
    }

    #[test]
    fn trace_set_deduplicates() {
        let idx = rid_index();
        let traced = idx.trace_set(&[0, 2]);
        assert_eq!(traced, vec![1, 2, 3, 4]);
    }

    #[test]
    fn trace_multiset_keeps_duplicates() {
        let idx = rid_index();
        let traced = idx.trace_multiset(&[0, 2]);
        assert_eq!(traced, vec![1, 2, 3, 3, 4]);
    }

    #[test]
    fn trace_set_handles_large_results() {
        // Force the bitmap path (> 64 distinct results).
        let entries: Vec<Vec<Rid>> = (0..10).map(|i| (i * 20..(i + 1) * 20).collect()).collect();
        let idx = LineageIndex::Index(RidIndex::from_entries(entries));
        let positions: Vec<Rid> = (0..10).collect();
        let mut traced = idx.trace_set(&positions);
        // Trace again including duplicates of the same positions.
        let doubled: Vec<Rid> = positions.iter().chain(positions.iter()).copied().collect();
        let traced2 = idx.trace_set(&doubled);
        traced.sort_unstable();
        let mut t2 = traced2.clone();
        t2.sort_unstable();
        assert_eq!(traced, (0..200).collect::<Vec<Rid>>());
        assert_eq!(t2, (0..200).collect::<Vec<Rid>>());
    }

    #[test]
    fn trace_set_keeps_large_early_rids_marked() {
        // Regression: rid 5000 shows up among the first 64 distinct results
        // (while dedup is still the linear scan) and again after the bitmap
        // path engages. The bitmap used to be sized from the hint (0 for
        // Index) and the current rid only, so 5000 was never marked and its
        // second occurrence was emitted twice.
        let mut entries: Vec<Vec<Rid>> = vec![vec![5000]];
        entries.extend((0..70).map(|i| vec![i as Rid]));
        entries.push(vec![5000]);
        let idx = LineageIndex::Index(RidIndex::from_entries(entries));
        let positions: Vec<Rid> = (0..idx.len() as Rid).collect();
        let traced = idx.trace_set(&positions);
        assert_eq!(
            traced.iter().filter(|&&r| r == 5000).count(),
            1,
            "rid 5000 must be emitted exactly once"
        );
        assert_eq!(traced.len(), 71);
        assert_eq!(traced[0], 5000); // order of first appearance
    }

    #[test]
    fn csr_variant_matches_index_variant() {
        let idx = rid_index();
        let csr = idx.clone().finalize();
        assert!(matches!(csr, LineageIndex::Csr(_)));
        assert_eq!(csr.len(), idx.len());
        assert_eq!(csr.edge_count(), idx.edge_count());
        assert_eq!(csr.resizes(), 0);
        for pos in 0..idx.len() as Rid + 2 {
            assert_eq!(csr.lookup(pos), idx.lookup(pos));
            assert_eq!(csr.single(pos), idx.single(pos));
        }
        assert_eq!(csr.trace_set(&[0, 2, 0]), idx.trace_set(&[0, 2, 0]));
        // finalize leaves the other representations alone.
        assert_eq!(array_index().finalize(), array_index());
        assert_eq!(
            LineageIndex::Identity(4).finalize(),
            LineageIndex::Identity(4)
        );
    }

    #[test]
    fn for_each_matches_lookup() {
        for idx in [
            array_index(),
            rid_index(),
            rid_index().finalize(),
            LineageIndex::Identity(5),
        ] {
            for pos in 0..idx.len() as Rid {
                let mut collected = Vec::new();
                idx.for_each(pos, |r| collected.push(r));
                assert_eq!(collected, idx.lookup(pos));
            }
        }
    }
}
