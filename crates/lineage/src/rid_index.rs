//! Rid indexes: the 1-to-N lineage representation.

use smoke_storage::Rid;

use crate::rid_array::RidArray;

/// An inverted index whose `i`-th entry holds the rids related to position
/// `i` (paper §3.1).
///
/// For the backward lineage of a group-by, entry `i` holds the input rids of
/// the `i`-th output group; for the forward lineage of a join, entry `i`
/// holds the output rids produced by input rid `i`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RidIndex {
    entries: Vec<RidArray>,
}

impl RidIndex {
    /// Creates an empty rid index.
    pub fn new() -> Self {
        RidIndex {
            entries: Vec::new(),
        }
    }

    /// Creates a rid index with `len` empty entries.
    pub fn with_len(len: usize) -> Self {
        RidIndex {
            entries: vec![RidArray::new(); len],
        }
    }

    /// Creates a rid index with `len` entries, each pre-allocated to the
    /// capacity returned by `cap(i)` (used when cardinality statistics are
    /// known up-front).
    pub fn with_capacities(len: usize, mut cap: impl FnMut(usize) -> usize) -> Self {
        RidIndex {
            entries: (0..len).map(|i| RidArray::with_capacity(cap(i))).collect(),
        }
    }

    /// Builds a rid index directly from per-entry rid vectors.
    pub fn from_entries(entries: Vec<Vec<Rid>>) -> Self {
        RidIndex {
            entries: entries.into_iter().map(RidArray::from_vec).collect(),
        }
    }

    /// Builds a rid index from already-constructed rid arrays, preserving
    /// their resize accounting (used by operators that assemble per-position
    /// arrays out of order and wrap them at the end).
    pub fn from_arrays(entries: Vec<RidArray>) -> Self {
        RidIndex { entries }
    }

    /// Number of entries (e.g. number of output groups).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an already-built rid array as the next entry and returns its
    /// position. This is the "reuse" path: group-by Inject moves the i_rids
    /// array out of the hash table entry instead of copying it.
    pub fn push_entry(&mut self, entry: RidArray) -> usize {
        self.entries.push(entry);
        self.entries.len() - 1
    }

    /// Ensures the index covers position `pos`, extending with empty entries.
    pub fn ensure_len(&mut self, len: usize) {
        if self.entries.len() < len {
            self.entries.resize(len, RidArray::new());
        }
    }

    /// Appends `rid` to the entry at `pos`, extending the index if needed.
    #[inline]
    pub fn append(&mut self, pos: usize, rid: Rid) {
        if pos >= self.entries.len() {
            self.entries.resize(pos + 1, RidArray::new());
        }
        self.entries[pos].push(rid);
    }

    /// The rids at entry `pos`.
    #[inline]
    pub fn get(&self, pos: usize) -> &[Rid] {
        self.entries[pos].as_slice()
    }

    /// The rids at entry `pos`, or an empty slice when out of bounds.
    #[inline]
    pub fn get_checked(&self, pos: usize) -> &[Rid] {
        self.entries.get(pos).map(RidArray::as_slice).unwrap_or(&[])
    }

    /// Iterates over `(position, rids)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[Rid])> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.as_slice()))
    }

    /// Total number of rids stored across all entries (number of lineage
    /// edges represented).
    pub fn edge_count(&self) -> usize {
        self.entries.iter().map(RidArray::len).sum()
    }

    /// Total resizes across all entries.
    pub fn resizes(&self) -> u64 {
        self.entries.iter().map(|e| e.resizes() as u64).sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.entries.iter().map(RidArray::heap_bytes).sum::<usize>()
            + self.entries.capacity() * std::mem::size_of::<RidArray>()
    }

    /// Converts this write-optimized index into read-optimized
    /// compressed-sparse-row form in one pass over its entries.
    pub fn finalize(&self) -> crate::CsrRidIndex {
        crate::CsrRidIndex::from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_get() {
        let mut idx = RidIndex::with_len(3);
        idx.append(0, 5);
        idx.append(0, 6);
        idx.append(2, 9);
        assert_eq!(idx.get(0), &[5, 6]);
        assert_eq!(idx.get(1), &[] as &[Rid]);
        assert_eq!(idx.get(2), &[9]);
        assert_eq!(idx.edge_count(), 3);
    }

    #[test]
    fn append_beyond_len_extends() {
        let mut idx = RidIndex::new();
        idx.append(4, 1);
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.get_checked(4), &[1]);
        assert_eq!(idx.get_checked(99), &[] as &[Rid]);
    }

    #[test]
    fn push_entry_reuses_arrays() {
        let mut idx = RidIndex::new();
        let entry: RidArray = (0..4).collect();
        let pos = idx.push_entry(entry);
        assert_eq!(pos, 0);
        assert_eq!(idx.get(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn with_capacities_avoids_resizes() {
        let mut idx = RidIndex::with_capacities(2, |i| (i + 1) * 100);
        for i in 0..100 {
            idx.append(0, i);
        }
        for i in 0..200 {
            idx.append(1, i);
        }
        assert_eq!(idx.resizes(), 0);

        let mut unsized_idx = RidIndex::with_len(2);
        for i in 0..200 {
            unsized_idx.append(1, i);
        }
        assert!(unsized_idx.resizes() > 0);
    }

    #[test]
    fn from_entries_and_iter() {
        let idx = RidIndex::from_entries(vec![vec![1, 2], vec![], vec![3]]);
        let collected: Vec<(usize, Vec<Rid>)> = idx.iter().map(|(i, r)| (i, r.to_vec())).collect();
        assert_eq!(collected, vec![(0, vec![1, 2]), (1, vec![]), (2, vec![3])]);
        assert!(idx.heap_bytes() > 0);
    }

    #[test]
    fn ensure_len_only_grows() {
        let mut idx = RidIndex::with_len(2);
        idx.ensure_len(5);
        assert_eq!(idx.len(), 5);
        idx.ensure_len(1);
        assert_eq!(idx.len(), 5);
    }
}
