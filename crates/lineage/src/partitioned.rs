//! Partitioned rid indexes: the physical design behind the data-skipping and
//! group-by push-down optimizations (paper §4.2).
//!
//! A [`PartitionedRidIndex`] is a backward rid index whose per-output rid
//! arrays are further split by the value of a *partition attribute* (the
//! templated predicate attribute for data skipping, or the extra group-by
//! attribute for aggregation push-down). A lineage-consuming query with a
//! parameterized predicate `attr = :p` then scans only the partition matching
//! `:p` instead of the whole rid array.

use std::collections::BTreeMap;

use smoke_storage::Rid;

/// The value of a partition attribute, normalized to a string key.
///
/// Partition attributes are categorical or discretized (the paper notes
/// user-facing output is ultimately discretized at pixel granularity), so a
/// string key over a bounded domain is an appropriate representation.
pub type PartitionKey = String;

/// A backward rid index partitioned by an attribute value.
#[derive(Debug, Clone, Default)]
pub struct PartitionedRidIndex {
    /// `entries[out_rid]` maps partition key → rids of the input records in
    /// that partition that contributed to output `out_rid`.
    entries: Vec<BTreeMap<PartitionKey, Vec<Rid>>>,
    attribute: String,
}

impl PartitionedRidIndex {
    /// Creates an empty partitioned index over the given partition attribute.
    pub fn new(attribute: impl Into<String>) -> Self {
        PartitionedRidIndex {
            entries: Vec::new(),
            attribute: attribute.into(),
        }
    }

    /// Creates a partitioned index with `len` output entries.
    pub fn with_len(attribute: impl Into<String>, len: usize) -> Self {
        PartitionedRidIndex {
            entries: vec![BTreeMap::new(); len],
            attribute: attribute.into(),
        }
    }

    /// The partition attribute this index was built on.
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// Number of output entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index has no output entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an input rid to the partition `key` of output `out_rid`,
    /// growing the index as necessary.
    pub fn append(&mut self, out_rid: usize, key: &str, rid: Rid) {
        if out_rid >= self.entries.len() {
            self.entries.resize(out_rid + 1, BTreeMap::new());
        }
        self.entries[out_rid]
            .entry(key.to_string())
            .or_default()
            .push(rid);
    }

    /// The rids of output `out_rid` whose partition attribute equals `key`.
    pub fn partition(&self, out_rid: usize, key: &str) -> &[Rid] {
        self.entries
            .get(out_rid)
            .and_then(|m| m.get(key))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All partition keys present for output `out_rid`.
    pub fn keys(&self, out_rid: usize) -> Vec<&str> {
        self.entries
            .get(out_rid)
            .map(|m| m.keys().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Iterates over `(partition key, rids)` pairs for output `out_rid`.
    pub fn partitions(&self, out_rid: usize) -> impl Iterator<Item = (&str, &[Rid])> + '_ {
        self.entries
            .get(out_rid)
            .into_iter()
            .flat_map(|m| m.iter().map(|(k, v)| (k.as_str(), v.as_slice())))
    }

    /// All rids of output `out_rid` across partitions (equivalent to the
    /// unpartitioned backward rid array entry).
    pub fn all(&self, out_rid: usize) -> Vec<Rid> {
        let mut out = Vec::new();
        for (_, rids) in self.partitions(out_rid) {
            out.extend_from_slice(rids);
        }
        out
    }

    /// Total number of lineage edges stored.
    pub fn edge_count(&self) -> usize {
        self.entries
            .iter()
            .map(|m| m.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|m| {
                m.iter()
                    .map(|(k, v)| k.capacity() + v.capacity() * std::mem::size_of::<Rid>() + 48)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Flattens the partitioned index into an unpartitioned CSR backward
    /// index: entry `i` holds all rids of output `i` across its partitions
    /// (in partition-key order), equivalent to calling [`Self::all`] for
    /// every output but stored in two exactly-sized flat buffers.
    pub fn finalize(&self) -> crate::CsrRidIndex {
        let mut offsets = Vec::with_capacity(self.entries.len() + 1);
        offsets.push(0u32);
        let mut rids = Vec::with_capacity(self.edge_count());
        for entry in &self.entries {
            for v in entry.values() {
                rids.extend_from_slice(v);
            }
            offsets.push(crate::csr::checked_offset(rids.len() as u64));
        }
        crate::CsrRidIndex::from_parts(offsets, rids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PartitionedRidIndex {
        let mut idx = PartitionedRidIndex::with_len("l_shipmode", 2);
        idx.append(0, "AIR", 1);
        idx.append(0, "AIR", 3);
        idx.append(0, "MAIL", 2);
        idx.append(1, "MAIL", 4);
        idx
    }

    #[test]
    fn partition_scans_only_matching_rids() {
        let idx = sample();
        assert_eq!(idx.partition(0, "AIR"), &[1, 3]);
        assert_eq!(idx.partition(0, "MAIL"), &[2]);
        assert_eq!(idx.partition(0, "SHIP"), &[] as &[Rid]);
        assert_eq!(idx.partition(1, "MAIL"), &[4]);
        assert_eq!(idx.attribute(), "l_shipmode");
    }

    #[test]
    fn all_reconstructs_full_backward_entry() {
        let idx = sample();
        let mut all = idx.all(0);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3]);
        assert_eq!(idx.edge_count(), 4);
    }

    #[test]
    fn append_extends_index() {
        let mut idx = PartitionedRidIndex::new("attr");
        assert!(idx.is_empty());
        idx.append(3, "x", 9);
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.partition(3, "x"), &[9]);
        assert_eq!(idx.partition(0, "x"), &[] as &[Rid]);
    }

    #[test]
    fn finalize_flattens_to_csr() {
        let idx = sample();
        let csr = idx.finalize();
        assert_eq!(csr.len(), 2);
        assert_eq!(csr.edge_count(), idx.edge_count());
        for out_rid in 0..idx.len() {
            let mut expected = idx.all(out_rid);
            expected.sort_unstable();
            let mut got = csr.get(out_rid).to_vec();
            got.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn keys_and_partitions_enumerate_consistently() {
        let idx = sample();
        assert_eq!(idx.keys(0), vec!["AIR", "MAIL"]);
        let collected: Vec<(String, usize)> = idx
            .partitions(0)
            .map(|(k, v)| (k.to_string(), v.len()))
            .collect();
        assert_eq!(collected, vec![("AIR".into(), 2), ("MAIL".into(), 1)]);
        assert!(idx.heap_bytes() > 0);
    }
}
