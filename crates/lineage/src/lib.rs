//! # smoke-lineage
//!
//! Write-efficient lineage index representations used by the Smoke engine
//! (Psallidas & Wu, VLDB 2018, §3.1).
//!
//! Lineage maps *rids* (row identifiers) of an operator's (or query's) output
//! to the rids of its input(s) — the **backward** direction — and vice versa —
//! the **forward** direction. Smoke stores these mappings in two simple
//! structures:
//!
//! * [`RidArray`] — one rid per entry, for 1-to-1 relationships (e.g. the
//!   backward lineage of a selection);
//! * [`RidIndex`] — an inverted index whose `i`-th entry is a rid array, for
//!   1-to-N relationships (e.g. the backward lineage of a group-by);
//! * [`CsrRidIndex`] — the same 1-to-N mapping finalized into two contiguous
//!   exactly-sized buffers (compressed sparse row) for read-heavy tracing;
//! * [`CompressedCsrIndex`] — a finished CSR spilled out of core: resident
//!   offsets over delta + bit-packed rid blocks in a buffer-pool-backed
//!   segment store, decoding only the blocks a trace touches.
//!
//! Following the paper (and the high-performance vector libraries it cites),
//! rid arrays start with capacity 10 and grow by 1.5× on overflow; the resize
//! accounting exposed by [`CaptureStats`] is what the cardinality-statistics
//! experiments measure.
//!
//! Higher-level structures combine these representations:
//!
//! * [`LineageIndex`] — a direction-agnostic mapping with identity and
//!   single/multi variants;
//! * [`OperatorLineage`] / [`QueryLineage`] — per-operator and end-to-end
//!   (output ↔ base relation) lineage;
//! * [`PartitionedRidIndex`] — rid arrays partitioned by an attribute, the
//!   physical design used by the data-skipping and group-by push-down
//!   optimizations of §4.2;
//! * [`semantics`] — which/why/how provenance derived from backward indexes
//!   (Appendix E).

#![warn(missing_docs)]

mod compose;
mod compressed;
mod csr;
mod index;
mod operator;
mod partitioned;
mod rid_array;
mod rid_index;
pub mod semantics;
mod stats;

pub use compose::{compose_backward, compose_forward};
pub use compressed::{CompressedCsrIndex, EDGES_PER_BLOCK};
pub use csr::{CsrBuilder, CsrRidIndex};
pub use index::LineageIndex;
pub use operator::{InputLineage, OperatorLineage, QueryLineage};
pub use partitioned::{PartitionKey, PartitionedRidIndex};
pub use rid_array::{RidArray, NO_RID};
pub use rid_index::RidIndex;
pub use stats::CaptureStats;

pub use smoke_storage::Rid;
