//! Capture statistics: what the paper's overhead figures measure.

use std::time::Duration;

/// Statistics collected while capturing lineage for one operator or query.
///
/// The paper's central measurements are (a) the base-query latency with and
/// without capture, and (b) where the overhead goes (rid-array resizes being
/// the dominant cost). `CaptureStats` carries both so the benchmark harness
/// can report the same breakdowns.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CaptureStats {
    /// Wall-clock time spent executing the (instrumented) base query.
    pub base_query: Duration,
    /// Wall-clock time spent in deferred lineage construction (Defer plans);
    /// zero for Inject plans.
    pub deferred: Duration,
    /// Number of rid-array capacity growths triggered during capture.
    pub rid_resizes: u64,
    /// Number of lineage edges written.
    pub edges: u64,
    /// Approximate bytes of lineage index storage produced.
    pub lineage_bytes: u64,
}

impl CaptureStats {
    /// Total capture-side latency: base query plus any deferred work.
    pub fn total(&self) -> Duration {
        self.base_query + self.deferred
    }

    /// Relative overhead of this run versus an uninstrumented baseline
    /// latency, as a ratio (e.g. `0.7` means the instrumented run was 1.7×
    /// the baseline). Returns `f64::INFINITY` for a zero baseline.
    pub fn relative_overhead(&self, baseline: Duration) -> f64 {
        if baseline.is_zero() {
            return f64::INFINITY;
        }
        (self.total().as_secs_f64() - baseline.as_secs_f64()) / baseline.as_secs_f64()
    }

    /// Merges another stats record into this one (used when aggregating
    /// per-operator stats into query-level stats).
    pub fn merge(&mut self, other: &CaptureStats) {
        self.base_query += other.base_query;
        self.deferred += other.deferred;
        self.rid_resizes += other.rid_resizes;
        self.edges += other.edges;
        self.lineage_bytes += other.lineage_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_overhead() {
        let stats = CaptureStats {
            base_query: Duration::from_millis(150),
            deferred: Duration::from_millis(50),
            ..Default::default()
        };
        assert_eq!(stats.total(), Duration::from_millis(200));
        let overhead = stats.relative_overhead(Duration::from_millis(100));
        assert!((overhead - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_baseline_is_infinite_overhead() {
        let stats = CaptureStats {
            base_query: Duration::from_millis(10),
            ..Default::default()
        };
        assert!(stats.relative_overhead(Duration::ZERO).is_infinite());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CaptureStats {
            base_query: Duration::from_millis(10),
            rid_resizes: 3,
            edges: 100,
            lineage_bytes: 400,
            ..Default::default()
        };
        let b = CaptureStats {
            base_query: Duration::from_millis(5),
            deferred: Duration::from_millis(2),
            rid_resizes: 1,
            edges: 50,
            lineage_bytes: 200,
        };
        a.merge(&b);
        assert_eq!(a.base_query, Duration::from_millis(15));
        assert_eq!(a.deferred, Duration::from_millis(2));
        assert_eq!(a.rid_resizes, 4);
        assert_eq!(a.edges, 150);
        assert_eq!(a.lineage_bytes, 600);
    }
}
