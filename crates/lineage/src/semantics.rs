//! Provenance semantics derived from Smoke's lineage indexes (Appendix E).
//!
//! Smoke captures *transformational* lineage: for each output rid and each
//! input relation, the (multiset of) input rids that contributed to it. The
//! backward indexes of the different input relations are **positionally
//! aligned** for join-like operators — the `k`-th rid in the backward lineage
//! of output `o` w.r.t. relation `A` pairs with the `k`-th rid w.r.t. relation
//! `B` to form one derivation witness. From that encoding the classic
//! provenance semantics are simple lineage-consuming computations:
//!
//! * **which-provenance**: set union of the backward rids per relation;
//! * **why-provenance**: the set of witnesses (one tuple of rids per aligned
//!   position);
//! * **how-provenance**: the provenance polynomial obtained by summing the
//!   products of the witnesses.

use std::collections::BTreeSet;

use smoke_storage::Rid;

/// A single derivation witness: one contributing rid per input relation, in
/// the order the relations were supplied.
pub type Witness = Vec<Rid>;

/// Which-provenance: the set of contributing rids per input relation
/// (duplicates removed, sorted for determinism).
pub fn which_provenance(backward_per_relation: &[Vec<Rid>]) -> Vec<Vec<Rid>> {
    backward_per_relation
        .iter()
        .map(|rids| {
            let set: BTreeSet<Rid> = rids.iter().copied().collect();
            set.into_iter().collect()
        })
        .collect()
}

/// Why-provenance: the witnesses obtained by aligning the backward lineage of
/// each relation position by position.
///
/// All relations must report the same number of contributing rids (the number
/// of witnesses); relations that are not part of a witness (e.g. pruned
/// relations) should not be passed.
pub fn why_provenance(backward_per_relation: &[Vec<Rid>]) -> Vec<Witness> {
    if backward_per_relation.is_empty() {
        return Vec::new();
    }
    let n = backward_per_relation[0].len();
    debug_assert!(
        backward_per_relation.iter().all(|r| r.len() == n),
        "positionally-aligned backward indexes must have equal lengths"
    );
    let mut witnesses: BTreeSet<Witness> = BTreeSet::new();
    for k in 0..n {
        witnesses.insert(
            backward_per_relation
                .iter()
                .map(|rids| rids[k])
                .collect::<Vec<Rid>>(),
        );
    }
    witnesses.into_iter().collect()
}

/// How-provenance: the provenance polynomial of one output record, rendered as
/// a canonical string such as `a1·b1 + a1·b2`.
///
/// `relation_names` supplies the variable prefix per relation (e.g. `a`, `b`).
pub fn how_provenance(backward_per_relation: &[Vec<Rid>], relation_names: &[&str]) -> String {
    let witnesses = why_provenance(backward_per_relation);
    if witnesses.is_empty() {
        return "0".to_string();
    }
    let monomials: Vec<String> = witnesses
        .iter()
        .map(|w| {
            w.iter()
                .enumerate()
                .map(|(i, rid)| format!("{}{}", relation_names.get(i).unwrap_or(&"r"), rid))
                .collect::<Vec<_>>()
                .join("·")
        })
        .collect();
    monomials.join(" + ")
}

#[cfg(test)]
mod tests {
    use super::*;

    // Paper Appendix E example: output o1 = (COUNT=2, Bob, iPhone) derives
    // from A rid a1 twice, paired with B rids b1 and b2.
    fn paper_example() -> Vec<Vec<Rid>> {
        vec![vec![1, 1], vec![1, 2]]
    }

    #[test]
    fn which_provenance_unions_rids() {
        let which = which_provenance(&paper_example());
        assert_eq!(which, vec![vec![1], vec![1, 2]]);
    }

    #[test]
    fn why_provenance_builds_witnesses() {
        let why = why_provenance(&paper_example());
        assert_eq!(why, vec![vec![1, 1], vec![1, 2]]);
    }

    #[test]
    fn how_provenance_renders_polynomial() {
        let how = how_provenance(&paper_example(), &["a", "b"]);
        assert_eq!(how, "a1·b1 + a1·b2");
    }

    #[test]
    fn empty_inputs() {
        assert!(why_provenance(&[]).is_empty());
        assert_eq!(how_provenance(&[], &[]), "0");
        assert!(which_provenance(&[]).is_empty());
    }

    #[test]
    fn single_relation_group_by() {
        // Group with input rids {4, 7, 9}: which = sorted set, why = single
        // rid witnesses, how = sum of variables.
        let backward = vec![vec![9, 4, 7]];
        assert_eq!(which_provenance(&backward), vec![vec![4, 7, 9]]);
        assert_eq!(why_provenance(&backward), vec![vec![4], vec![7], vec![9]]);
        assert_eq!(how_provenance(&backward, &["t"]), "t4 + t7 + t9");
    }

    #[test]
    fn duplicate_witnesses_collapse() {
        let backward = vec![vec![1, 1], vec![2, 2]];
        assert_eq!(why_provenance(&backward), vec![vec![1, 2]]);
        assert_eq!(how_provenance(&backward, &["a", "b"]), "a1·b2");
    }
}
