//! Composition of lineage indexes across operators (multi-operator
//! propagation, paper §3.3).
//!
//! For a two-operator plan `op_p(op_c(R))`, the parent's lineage maps parent
//! output rids to the *intermediate* relation `op_c(R)`. Composing the
//! parent's backward index through the child's backward index produces an
//! index that maps parent output rids directly to rids of the base relation
//! `R`; the child's indexes can then be garbage collected.

use crate::index::LineageIndex;
use crate::rid_array::{RidArray, NO_RID};
use crate::rid_index::RidIndex;

/// Composes a parent backward index (parent-output → intermediate) with a
/// child backward index (intermediate → base) into a backward index from
/// parent output rids to base rids.
pub fn compose_backward(parent: &LineageIndex, child: &LineageIndex) -> LineageIndex {
    // Identity parent: result is exactly the child's mapping.
    if let LineageIndex::Identity(_) = parent {
        return child.clone();
    }
    // Identity child: result is exactly the parent's mapping.
    if let LineageIndex::Identity(_) = child {
        return parent.clone();
    }

    let one_to_one = matches!(parent, LineageIndex::Array(_))
        && matches!(child, LineageIndex::Array(_) | LineageIndex::Identity(_));

    if one_to_one {
        let mut out = RidArray::with_capacity(parent.len());
        for pos in 0..parent.len() {
            match parent.single(pos as u32).and_then(|mid| child.single(mid)) {
                Some(base) => out.push(base),
                None => out.push(NO_RID),
            }
        }
        LineageIndex::Array(out)
    } else {
        let mut out = RidIndex::with_len(parent.len());
        for pos in 0..parent.len() {
            parent.for_each(pos as u32, |mid| {
                child.for_each(mid, |base| out.append(pos, base));
            });
        }
        LineageIndex::Index(out)
    }
}

/// Composes a child forward index (base → intermediate) with a parent forward
/// index (intermediate → parent output) into a forward index from base rids to
/// parent output rids.
///
/// This is the same composition as [`compose_backward`] with the roles of the
/// arguments swapped: the traversal starts from base rids.
pub fn compose_forward(child: &LineageIndex, parent: &LineageIndex) -> LineageIndex {
    compose_backward(child, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_storage::Rid;

    #[test]
    fn backward_through_selection_then_groupby() {
        // Child: selection over 6 base rows keeping rids [1,3,5]
        // (intermediate rid i -> base rid).
        let child = LineageIndex::Array(RidArray::from_vec(vec![1, 3, 5]));
        // Parent: group-by over the 3 intermediate rows producing 2 groups.
        let parent = LineageIndex::Index(RidIndex::from_entries(vec![vec![0, 2], vec![1]]));

        let composed = compose_backward(&parent, &child);
        assert_eq!(composed.lookup(0), vec![1, 5]);
        assert_eq!(composed.lookup(1), vec![3]);
    }

    #[test]
    fn forward_through_selection_then_groupby() {
        // Child forward: base rid -> intermediate rid (NO_RID for filtered).
        let mut fwd = RidArray::filled(6);
        fwd.set(1, 0);
        fwd.set(3, 1);
        fwd.set(5, 2);
        let child = LineageIndex::Array(fwd);
        // Parent forward: intermediate rid -> output group.
        let parent = LineageIndex::Array(RidArray::from_vec(vec![0, 1, 0]));

        let composed = compose_forward(&child, &parent);
        assert_eq!(composed.lookup(1), vec![0]);
        assert_eq!(composed.lookup(3), vec![1]);
        assert_eq!(composed.lookup(5), vec![0]);
        assert_eq!(composed.lookup(0), Vec::<Rid>::new());
    }

    #[test]
    fn identity_is_neutral() {
        let idx = LineageIndex::Index(RidIndex::from_entries(vec![vec![2, 3], vec![4]]));
        let through_identity = compose_backward(&idx, &LineageIndex::Identity(10));
        assert_eq!(through_identity.lookup(0), vec![2, 3]);
        let identity_first = compose_backward(&LineageIndex::Identity(2), &idx);
        assert_eq!(identity_first.lookup(1), vec![4]);
    }

    #[test]
    fn one_to_one_chain_stays_array() {
        let child = LineageIndex::Array(RidArray::from_vec(vec![5, 6, 7]));
        let parent = LineageIndex::Array(RidArray::from_vec(vec![2, 0]));
        let composed = compose_backward(&parent, &child);
        assert!(matches!(composed, LineageIndex::Array(_)));
        assert_eq!(composed.lookup(0), vec![7]);
        assert_eq!(composed.lookup(1), vec![5]);
    }

    #[test]
    fn missing_links_propagate_as_empty() {
        let mut child = RidArray::filled(3);
        child.set(0, 9);
        let child = LineageIndex::Array(child);
        let parent = LineageIndex::Array(RidArray::from_vec(vec![0, 1]));
        let composed = compose_backward(&parent, &child);
        assert_eq!(composed.lookup(0), vec![9]);
        assert_eq!(composed.lookup(1), Vec::<Rid>::new());
    }
}
