//! Composition of lineage indexes across operators (multi-operator
//! propagation, paper §3.3).
//!
//! For a two-operator plan `op_p(op_c(R))`, the parent's lineage maps parent
//! output rids to the *intermediate* relation `op_c(R)`. Composing the
//! parent's backward index through the child's backward index produces an
//! index that maps parent output rids directly to rids of the base relation
//! `R`; the child's indexes can then be garbage collected.

use crate::csr::CsrRidIndex;
use crate::index::LineageIndex;
use crate::rid_array::{RidArray, NO_RID};
use crate::rid_index::RidIndex;
use smoke_storage::Rid;

/// Composes a parent backward index (parent-output → intermediate) with a
/// child backward index (intermediate → base) into a backward index from
/// parent output rids to base rids.
///
/// The composed index always covers exactly `parent.len()` positions, and its
/// targets are always rids the child actually maps — identity indexes are
/// truncated/filtered to their declared length rather than blindly cloned
/// through.
pub fn compose_backward(parent: &LineageIndex, child: &LineageIndex) -> LineageIndex {
    // Identity parent: the result is the child's mapping over exactly the
    // parent's `n` positions.
    if let LineageIndex::Identity(n) = parent {
        return restrict_positions(child, *n);
    }
    // Identity child: the result is the parent's mapping, minus any target
    // outside the identity's domain `0..n`.
    if let LineageIndex::Identity(n) = child {
        return restrict_targets(parent, *n);
    }

    match (parent, child) {
        // 1-to-1 chain stays an array. (Identity children were fully handled
        // above, so they no longer appear in this match.)
        (LineageIndex::Array(_), LineageIndex::Array(_)) => {
            let mut out = RidArray::with_capacity(parent.len());
            for pos in 0..parent.len() {
                match parent.single(pos as u32).and_then(|mid| child.single(mid)) {
                    Some(base) => out.push(base),
                    None => out.push(NO_RID),
                }
            }
            LineageIndex::Array(out)
        }
        // CSR parent: per-position output cardinalities are computable from
        // the child in a first pass, so the composed index is built directly
        // in CSR form — two exactly-sized buffers, zero resizes.
        (LineageIndex::Csr(p), _) => LineageIndex::Csr(compose_csr(p, child)),
        _ => {
            let mut out = RidIndex::with_len(parent.len());
            for pos in 0..parent.len() {
                parent.for_each(pos as u32, |mid| {
                    child.for_each(mid, |base| out.append(pos, base));
                });
            }
            LineageIndex::Index(out)
        }
    }
}

/// Composes a child forward index (base → intermediate) with a parent forward
/// index (intermediate → parent output) into a forward index from base rids to
/// parent output rids.
///
/// This is the same composition as [`compose_backward`] with the roles of the
/// arguments swapped: the traversal starts from base rids.
pub fn compose_forward(child: &LineageIndex, parent: &LineageIndex) -> LineageIndex {
    compose_backward(child, parent)
}

/// CSR×(Array|CSR|Index) composition: count pass over the flat buffers, then
/// a sequential fill into exactly-sized output buffers.
fn compose_csr(parent: &CsrRidIndex, child: &LineageIndex) -> CsrRidIndex {
    // The child representation is dispatched ONCE, into a per-mid slice
    // accessor shared by the count and fill passes — the two can never
    // disagree on per-mid cardinality, and each variant gets its own
    // monomorphized pair of tight loops.
    fn build<'c>(parent: &CsrRidIndex, get: impl Fn(Rid) -> &'c [Rid]) -> CsrRidIndex {
        let mut offsets = Vec::with_capacity(parent.len() + 1);
        offsets.push(0u32);
        let mut total = 0u64;
        for pos in 0..parent.len() {
            for &mid in parent.get(pos) {
                total += get(mid).len() as u64;
            }
            offsets.push(crate::csr::checked_offset(total));
        }
        let mut rids: Vec<Rid> = Vec::with_capacity(total as usize);
        for pos in 0..parent.len() {
            for &mid in parent.get(pos) {
                rids.extend_from_slice(get(mid));
            }
        }
        CsrRidIndex::from_parts(offsets, rids)
    }

    match child {
        // Array's 1-to-(0|1) targets are viewed as sub-slices of its backing
        // buffer (empty at NO_RID gaps) so it flows through the same shared
        // count/fill passes as the other variants.
        LineageIndex::Array(a) => build(parent, |mid| a.slice_checked(mid as usize)),
        LineageIndex::Csr(c) => build(parent, |mid| c.get_checked(mid as usize)),
        LineageIndex::Index(i) => build(parent, |mid| i.get_checked(mid as usize)),
        LineageIndex::Identity(_) => unreachable!("identity children are handled earlier"),
    }
}

/// `Identity(n) ∘ child`: the child's mapping restricted (or extended with
/// empty entries) to exactly `n` positions.
fn restrict_positions(child: &LineageIndex, n: usize) -> LineageIndex {
    if n == child.len() {
        return child.clone();
    }
    match child {
        LineageIndex::Array(a) => {
            let mut data: Vec<Rid> = a.iter().take(n).collect();
            data.resize(n, NO_RID);
            LineageIndex::Array(RidArray::from_vec(data))
        }
        LineageIndex::Index(i) => LineageIndex::Index(RidIndex::from_entries(
            (0..n).map(|p| i.get_checked(p).to_vec()).collect(),
        )),
        LineageIndex::Csr(c) => {
            let (offsets, rids) = if n < c.len() {
                let offsets: Vec<u32> = c.offsets()[..=n].to_vec();
                let end = offsets[n] as usize;
                (offsets, c.rids()[..end].to_vec())
            } else {
                let mut offsets = c.offsets().to_vec();
                offsets.resize(n + 1, *offsets.last().expect("offsets never empty"));
                (offsets, c.rids().to_vec())
            };
            LineageIndex::Csr(CsrRidIndex::from_parts(offsets, rids))
        }
        LineageIndex::Identity(m) => {
            if n <= *m {
                LineageIndex::Identity(n)
            } else {
                // The child covers fewer positions: the tail has no lineage.
                let mut data: Vec<Rid> = (0..*m as Rid).collect();
                data.resize(n, NO_RID);
                LineageIndex::Array(RidArray::from_vec(data))
            }
        }
    }
}

/// `parent ∘ Identity(n)`: the parent's mapping with every target outside the
/// identity's domain `0..n` dropped.
fn restrict_targets(parent: &LineageIndex, n: usize) -> LineageIndex {
    let in_domain = |r: Rid| (r as usize) < n;
    match parent {
        LineageIndex::Array(a) => {
            let clean = a.iter().all(|r| r == NO_RID || in_domain(r));
            if clean {
                parent.clone()
            } else {
                LineageIndex::Array(RidArray::from_vec(
                    a.iter()
                        .map(|r| {
                            if r != NO_RID && in_domain(r) {
                                r
                            } else {
                                NO_RID
                            }
                        })
                        .collect(),
                ))
            }
        }
        LineageIndex::Index(i) => {
            let clean = i
                .iter()
                .all(|(_, rids)| rids.iter().copied().all(in_domain));
            if clean {
                parent.clone()
            } else {
                LineageIndex::Index(RidIndex::from_entries(
                    i.iter()
                        .map(|(_, rids)| rids.iter().copied().filter(|&r| in_domain(r)).collect())
                        .collect(),
                ))
            }
        }
        LineageIndex::Csr(c) => {
            let survivors = c.rids().iter().copied().filter(|&r| in_domain(r)).count();
            if survivors == c.edge_count() {
                parent.clone()
            } else {
                // Pre-counted so both buffers stay exactly sized, preserving
                // the CSR contract that `heap_bytes` carries no slack.
                let mut offsets = Vec::with_capacity(c.len() + 1);
                offsets.push(0u32);
                let mut rids = Vec::with_capacity(survivors);
                for (_, entry) in c.iter() {
                    rids.extend(entry.iter().copied().filter(|&r| in_domain(r)));
                    offsets.push(crate::csr::checked_offset(rids.len() as u64));
                }
                LineageIndex::Csr(CsrRidIndex::from_parts(offsets, rids))
            }
        }
        LineageIndex::Identity(_) => unreachable!("identity parents are handled earlier"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_storage::Rid;

    #[test]
    fn backward_through_selection_then_groupby() {
        // Child: selection over 6 base rows keeping rids [1,3,5]
        // (intermediate rid i -> base rid).
        let child = LineageIndex::Array(RidArray::from_vec(vec![1, 3, 5]));
        // Parent: group-by over the 3 intermediate rows producing 2 groups.
        let parent = LineageIndex::Index(RidIndex::from_entries(vec![vec![0, 2], vec![1]]));

        let composed = compose_backward(&parent, &child);
        assert_eq!(composed.lookup(0), vec![1, 5]);
        assert_eq!(composed.lookup(1), vec![3]);
    }

    #[test]
    fn forward_through_selection_then_groupby() {
        // Child forward: base rid -> intermediate rid (NO_RID for filtered).
        let mut fwd = RidArray::filled(6);
        fwd.set(1, 0);
        fwd.set(3, 1);
        fwd.set(5, 2);
        let child = LineageIndex::Array(fwd);
        // Parent forward: intermediate rid -> output group.
        let parent = LineageIndex::Array(RidArray::from_vec(vec![0, 1, 0]));

        let composed = compose_forward(&child, &parent);
        assert_eq!(composed.lookup(1), vec![0]);
        assert_eq!(composed.lookup(3), vec![1]);
        assert_eq!(composed.lookup(5), vec![0]);
        assert_eq!(composed.lookup(0), Vec::<Rid>::new());
    }

    #[test]
    fn identity_is_neutral() {
        let idx = LineageIndex::Index(RidIndex::from_entries(vec![vec![2, 3], vec![4]]));
        let through_identity = compose_backward(&idx, &LineageIndex::Identity(10));
        assert_eq!(through_identity.lookup(0), vec![2, 3]);
        let identity_first = compose_backward(&LineageIndex::Identity(2), &idx);
        assert_eq!(identity_first.lookup(1), vec![4]);
    }

    #[test]
    fn identity_parent_truncates_longer_child() {
        // Identity(2) parent over a child covering 4 positions: the composed
        // index must cover exactly 2 positions.
        let child = LineageIndex::Array(RidArray::from_vec(vec![7, 8, 9, 10]));
        let composed = compose_backward(&LineageIndex::Identity(2), &child);
        assert_eq!(composed.len(), 2);
        assert_eq!(composed.lookup(0), vec![7]);
        assert_eq!(composed.lookup(1), vec![8]);
        assert_eq!(composed.lookup(2), Vec::<Rid>::new());

        let child_idx = LineageIndex::Index(RidIndex::from_entries(vec![
            vec![1, 2],
            vec![3],
            vec![4, 5],
        ]));
        let composed = compose_backward(&LineageIndex::Identity(1), &child_idx);
        assert_eq!(composed.len(), 1);
        assert_eq!(composed.lookup(0), vec![1, 2]);
        assert_eq!(composed.edge_count(), 2);

        let child_csr = child_idx.finalize();
        let composed_csr = compose_backward(&LineageIndex::Identity(1), &child_csr);
        assert_eq!(composed_csr.len(), 1);
        assert_eq!(composed_csr.lookup(0), vec![1, 2]);
    }

    #[test]
    fn identity_parent_extends_shorter_child_with_empty_lineage() {
        let child = LineageIndex::Array(RidArray::from_vec(vec![7, 8]));
        let composed = compose_backward(&LineageIndex::Identity(4), &child);
        assert_eq!(composed.len(), 4);
        assert_eq!(composed.lookup(1), vec![8]);
        assert_eq!(composed.lookup(2), Vec::<Rid>::new());
        assert_eq!(composed.lookup(3), Vec::<Rid>::new());
    }

    #[test]
    fn identity_child_drops_out_of_domain_targets() {
        // Parent maps to intermediate rids {0,1,2,5}; Identity(3) child only
        // covers intermediate rids 0..3, so target 5 must be dropped.
        let parent = LineageIndex::Index(RidIndex::from_entries(vec![vec![0, 5], vec![1, 2]]));
        let composed = compose_backward(&parent, &LineageIndex::Identity(3));
        assert_eq!(composed.len(), 2);
        assert_eq!(composed.lookup(0), vec![0]);
        assert_eq!(composed.lookup(1), vec![1, 2]);
        assert_eq!(composed.edge_count(), 3);

        // Same through an array parent: out-of-domain becomes NO_RID.
        let parent = LineageIndex::Array(RidArray::from_vec(vec![2, 9, 0]));
        let composed = compose_backward(&parent, &LineageIndex::Identity(3));
        assert_eq!(composed.len(), 3);
        assert_eq!(composed.lookup(0), vec![2]);
        assert_eq!(composed.lookup(1), Vec::<Rid>::new());
        assert_eq!(composed.lookup(2), vec![0]);

        // And through a CSR parent.
        let parent =
            LineageIndex::Index(RidIndex::from_entries(vec![vec![0, 5], vec![1, 2]])).finalize();
        let composed = compose_backward(&parent, &LineageIndex::Identity(3));
        assert!(matches!(composed, LineageIndex::Csr(_)));
        assert_eq!(composed.lookup(0), vec![0]);
        assert_eq!(composed.lookup(1), vec![1, 2]);
    }

    #[test]
    fn csr_parent_fast_paths_match_general_composition() {
        let parent_entries = vec![vec![0, 2], vec![1], vec![], vec![2, 0, 1]];
        let parent_idx = LineageIndex::Index(RidIndex::from_entries(parent_entries));
        let parent_csr = parent_idx.clone().finalize();

        // CSR×Array.
        let mut child_arr = RidArray::filled(3);
        child_arr.set(0, 10);
        child_arr.set(2, 12);
        let child = LineageIndex::Array(child_arr);
        let general = compose_backward(&parent_idx, &child);
        let fast = compose_backward(&parent_csr, &child);
        assert!(matches!(fast, LineageIndex::Csr(_)));
        assert_eq!(fast.len(), general.len());
        for pos in 0..general.len() as Rid {
            assert_eq!(fast.lookup(pos), general.lookup(pos));
        }

        // CSR×CSR.
        let child_n =
            LineageIndex::Index(RidIndex::from_entries(vec![vec![5, 6], vec![], vec![7]]));
        let child_csr = child_n.clone().finalize();
        let general = compose_backward(&parent_idx, &child_n);
        let fast = compose_backward(&parent_csr, &child_csr);
        assert!(matches!(fast, LineageIndex::Csr(_)));
        for pos in 0..general.len() as Rid {
            assert_eq!(fast.lookup(pos), general.lookup(pos));
        }
        assert_eq!(fast.edge_count(), general.edge_count());
    }

    #[test]
    fn one_to_one_chain_stays_array() {
        let child = LineageIndex::Array(RidArray::from_vec(vec![5, 6, 7]));
        let parent = LineageIndex::Array(RidArray::from_vec(vec![2, 0]));
        let composed = compose_backward(&parent, &child);
        assert!(matches!(composed, LineageIndex::Array(_)));
        assert_eq!(composed.lookup(0), vec![7]);
        assert_eq!(composed.lookup(1), vec![5]);
    }

    #[test]
    fn missing_links_propagate_as_empty() {
        let mut child = RidArray::filled(3);
        child.set(0, 9);
        let child = LineageIndex::Array(child);
        let parent = LineageIndex::Array(RidArray::from_vec(vec![0, 1]));
        let composed = compose_backward(&parent, &child);
        assert_eq!(composed.lookup(0), vec![9]);
        assert_eq!(composed.lookup(1), Vec::<Rid>::new());
    }
}
