//! Out-of-core compressed CSR lineage: delta + bit-packed rid blocks behind
//! a buffer pool.
//!
//! A [`CsrRidIndex`] holds every lineage edge in one flat in-RAM buffer —
//! 4 bytes per edge. For the out-of-core engine that buffer is the dominant
//! lineage cost at scale, so [`CompressedCsrIndex`] spills it to the pool's
//! segment store in self-contained **blocks** of [`EDGES_PER_BLOCK`] edges,
//! one page per block:
//!
//! * the `offsets` buffer (4 bytes per *entry*, typically orders of
//!   magnitude smaller than the edge buffer for skewed workloads) stays
//!   resident, so locating an entry's edges never touches a page;
//! * each block encodes its slice of the rid buffer as **zigzag deltas**
//!   bit-packed to the block's widest delta. Backward lineage rids are
//!   ascending within an entry (capture order), so deltas are small and
//!   skewed group-by indexes compress far below 4 bytes/edge;
//! * a block whose packed form would not beat raw layout falls back to
//!   verbatim little-endian `u32`s — the per-block `tag` byte makes every
//!   block self-describing, so adversarial rid patterns cost at most raw
//!   size plus the 4-byte header;
//! * [`CompressedCsrIndex::lookup`] pins and decodes **only the blocks the
//!   requested entry overlaps** — a backward trace of one group touches
//!   `O(edges(group) / EDGES_PER_BLOCK)` pages, not the whole index.
//!
//! [`CompressedCsrIndex::compressed_bytes`] vs
//! [`CompressedCsrIndex::raw_bytes`] is the compressed-vs-raw `lineage_bytes`
//! comparison the paged benchmarks report.

use std::sync::Arc;

use smoke_pager::{BufferPool, PageId, PagerError, PAGE_SIZE};
use smoke_storage::Rid;

use crate::csr::CsrRidIndex;

/// Edges per compressed block. Raw fallback needs `4 + 4 * 1024` bytes and
/// the widest possible packed form `4 + ceil(1024 * 33 / 8)` bytes — both
/// comfortably under [`PAGE_SIZE`], so every block always fits its page.
pub const EDGES_PER_BLOCK: usize = 1024;

/// Block header byte for raw (verbatim `u32`) payloads.
const TAG_RAW: u8 = 0;
/// Block header byte for zigzag-delta bit-packed payloads.
const TAG_PACKED: u8 = 1;

/// A 1-to-N lineage index whose offsets stay in RAM while the edge buffer
/// lives compressed in a [`BufferPool`]-backed segment store.
#[derive(Debug, Clone)]
pub struct CompressedCsrIndex {
    offsets: Vec<u32>,
    first_page: PageId,
    blocks: u32,
    edge_count: usize,
    compressed_bytes: usize,
    pool: Arc<BufferPool>,
}

impl CompressedCsrIndex {
    /// Spills `csr`'s edge buffer into `pool`'s segment store, one encoded
    /// block per page. Pages are written directly to the store (bypassing
    /// pool frames) so spilling an index cannot evict a query's working set.
    pub fn spill(csr: &CsrRidIndex, pool: &Arc<BufferPool>) -> Result<Self, PagerError> {
        let rids = csr.rids();
        let blocks = rids.len().div_ceil(EDGES_PER_BLOCK) as u32;
        let first_page = pool.allocate(blocks);
        let mut page_buf = vec![0u8; PAGE_SIZE];
        let mut compressed_bytes = 0usize;
        for (b, block) in rids.chunks(EDGES_PER_BLOCK).enumerate() {
            let used = encode_block(block, &mut page_buf);
            compressed_bytes += used;
            for slot in page_buf.iter_mut().skip(used) {
                *slot = 0;
            }
            pool.store()
                .write_page(PageId(first_page.0 + b as u32), &page_buf)?;
        }
        Ok(CompressedCsrIndex {
            offsets: csr.offsets().to_vec(),
            first_page,
            blocks,
            edge_count: rids.len(),
            compressed_bytes,
            pool: Arc::clone(pool),
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of edges stored.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of pages the edge buffer occupies.
    pub fn pages(&self) -> u32 {
        self.blocks
    }

    /// Encoded size of the edge blocks in bytes (headers included).
    pub fn compressed_bytes(&self) -> usize {
        self.compressed_bytes
    }

    /// What the same edges cost in raw (in-RAM CSR) form: 4 bytes per edge.
    pub fn raw_bytes(&self) -> usize {
        self.edge_count * std::mem::size_of::<Rid>()
    }

    /// Resident footprint: the offsets buffer plus metadata. The edge pages
    /// live in the segment store, bounded by the pool budget.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
    }

    /// The distinct blocks (pages) entry `pos` overlaps — what a backward
    /// trace of that entry must pin and decode.
    pub fn blocks_touched(&self, pos: usize) -> usize {
        let (lo, hi) = match self.entry_range(pos) {
            Some(range) => range,
            None => return 0,
        };
        if lo == hi {
            return 0;
        }
        (hi - 1) / EDGES_PER_BLOCK - lo / EDGES_PER_BLOCK + 1
    }

    fn entry_range(&self, pos: usize) -> Option<(usize, usize)> {
        let lo = *self.offsets.get(pos)? as usize;
        let hi = *self.offsets.get(pos + 1)? as usize;
        Some((lo, hi))
    }

    /// Blocks per prefetch window: half the pool budget — so a landed
    /// window is never evicted by its own successor mid-decode — capped at
    /// one coalesced read run.
    fn prefetch_window(&self) -> usize {
        (self.pool.capacity() / 2).clamp(1, 32)
    }

    /// Hints the prefetcher at blocks `[block, block + window)` (clamped to
    /// `last`, inclusive) and waits for them to land, so the pins that
    /// follow read a batched sequential run instead of one random page read
    /// per block. Windowed rather than whole-range: hinting more blocks
    /// than the pool holds would evict the range's own head before the
    /// decode loop reaches it. A no-op on pools without a prefetcher, or
    /// for a lone block (no run to batch).
    fn prefetch_blocks(&self, block: usize, last: usize, window: usize) {
        if !self.pool.prefetch_enabled() {
            return;
        }
        let end = (block + window).min(last + 1);
        if end <= block + 1 {
            return;
        }
        let run: Vec<PageId> = (block..end)
            .map(|b| PageId(self.first_page.0 + b as u32))
            .collect();
        self.pool.prefetch(&run);
        self.pool.prefetch_quiesce();
    }

    /// The rids of entry `pos` (empty when out of bounds), pinning and
    /// decoding only the blocks the entry overlaps.
    pub fn lookup(&self, pos: usize) -> Result<Vec<Rid>, PagerError> {
        let Some((lo, hi)) = self.entry_range(pos) else {
            return Ok(Vec::new());
        };
        if lo >= hi {
            return Ok(Vec::new());
        }
        let first_block = lo / EDGES_PER_BLOCK;
        let last_block = (hi - 1) / EDGES_PER_BLOCK;
        let window = self.prefetch_window();
        let mut out = Vec::with_capacity(hi - lo);
        let mut edge = lo;
        let mut decoded = Vec::with_capacity(EDGES_PER_BLOCK);
        while edge < hi {
            let block = edge / EDGES_PER_BLOCK;
            if (block - first_block).is_multiple_of(window) {
                self.prefetch_blocks(block, last_block, window);
            }
            let block_end = ((block + 1) * EDGES_PER_BLOCK).min(hi);
            {
                let guard = self.pool.pin(PageId(self.first_page.0 + block as u32))?;
                decode_block(&guard, &mut decoded)?;
            }
            let base = block * EDGES_PER_BLOCK;
            out.extend_from_slice(
                decoded
                    .get(edge - base..block_end - base)
                    .unwrap_or_default(),
            );
            edge = block_end;
        }
        Ok(out)
    }

    /// Reads every block back into an in-RAM [`CsrRidIndex`] — the inverse
    /// of [`CompressedCsrIndex::spill`], used by round-trip tests.
    pub fn materialize(&self) -> Result<CsrRidIndex, PagerError> {
        let window = self.prefetch_window();
        let last = (self.blocks as usize).saturating_sub(1);
        let mut rids = Vec::with_capacity(self.edge_count);
        let mut decoded = Vec::with_capacity(EDGES_PER_BLOCK);
        for b in 0..self.blocks {
            if (b as usize).is_multiple_of(window) {
                self.prefetch_blocks(b as usize, last, window);
            }
            let guard = self.pool.pin(PageId(self.first_page.0 + b))?;
            decode_block(&guard, &mut decoded)?;
            rids.extend_from_slice(&decoded);
        }
        rids.truncate(self.edge_count);
        Ok(CsrRidIndex::from_parts(self.offsets.clone(), rids))
    }
}

#[inline]
fn zigzag(delta: i64) -> u64 {
    ((delta << 1) ^ (delta >> 63)) as u64
}

#[inline]
fn unzigzag(zz: u64) -> i64 {
    ((zz >> 1) as i64) ^ -((zz & 1) as i64)
}

/// Encodes one block of rids into `buf`, returning the number of bytes
/// used.
///
/// Packed layout: `[tag=1, width, count u16 LE, first u32 LE, bits...]` —
/// the first rid is stored verbatim and the remaining `count - 1` values as
/// zigzag deltas bit-packed to the block's widest delta, so a block that
/// starts mid-entry (large absolute rid, small strides) still packs to the
/// stride width. Raw layout: `[tag=0, 0, count u16 LE, u32 LE...]`.
fn encode_block(rids: &[Rid], buf: &mut [u8]) -> usize {
    let count = rids.len() as u16;
    let raw_len = 4 + rids.len() * 4;
    let (first, rest) = match rids.split_first() {
        Some((&first, rest)) => (first, rest),
        None => (0, rids),
    };
    let mut width = 0u32;
    let mut prev = first as i64;
    for &rid in rest {
        let zz = zigzag(rid as i64 - prev);
        width = width.max(64 - zz.leading_zeros());
        prev = rid as i64;
    }
    let packed_len = 8 + (rest.len() * width as usize).div_ceil(8);
    if !rids.is_empty() && packed_len < raw_len {
        if let Some(h) = buf.get_mut(..4) {
            h.copy_from_slice(&[TAG_PACKED, width as u8, count as u8, (count >> 8) as u8]);
        }
        if let Some(h) = buf.get_mut(4..8) {
            h.copy_from_slice(&first.to_le_bytes());
        }
        // LSB-first bit packing. `width <= 33` and the accumulator is
        // drained below 8 bits each step, so `acc` never overflows.
        let mut acc = 0u64;
        let mut nbits = 0u32;
        let mut at = 8usize;
        let mut prev = first as i64;
        for &rid in rest {
            acc |= zigzag(rid as i64 - prev) << nbits;
            nbits += width;
            prev = rid as i64;
            while nbits >= 8 {
                if let Some(slot) = buf.get_mut(at) {
                    *slot = acc as u8;
                }
                at += 1;
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            if let Some(slot) = buf.get_mut(at) {
                *slot = acc as u8;
            }
            at += 1;
        }
        at
    } else {
        if let Some(h) = buf.get_mut(..4) {
            h.copy_from_slice(&[TAG_RAW, 0, count as u8, (count >> 8) as u8]);
        }
        let mut at = 4usize;
        for &rid in rids {
            if let Some(slot) = buf.get_mut(at..at + 4) {
                slot.copy_from_slice(&rid.to_le_bytes());
            }
            at += 4;
        }
        at
    }
}

/// Decodes one block page into `out` (cleared first).
fn decode_block(page: &[u8], out: &mut Vec<Rid>) -> Result<(), PagerError> {
    out.clear();
    let corrupt = || {
        PagerError::io(
            "decode compressed lineage block",
            &std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed block header"),
        )
    };
    let [tag, width, count_lo, count_hi] = *page.get(..4).ok_or_else(corrupt)? else {
        return Err(corrupt());
    };
    let count = u16::from_le_bytes([count_lo, count_hi]) as usize;
    if count > EDGES_PER_BLOCK {
        return Err(corrupt());
    }
    let payload = page.get(4..).ok_or_else(corrupt)?;
    match tag {
        TAG_RAW => {
            let bytes = payload.get(..count * 4).ok_or_else(corrupt)?;
            for quad in bytes.chunks_exact(4) {
                let [a, b, c, d] = *quad else {
                    return Err(corrupt());
                };
                out.push(u32::from_le_bytes([a, b, c, d]));
            }
            Ok(())
        }
        TAG_PACKED => {
            let width = width as u32;
            if width > 33 || count == 0 {
                return Err(corrupt());
            }
            let first_bytes = payload.get(..4).ok_or_else(corrupt)?;
            let [a, b, c, d] = *first_bytes else {
                return Err(corrupt());
            };
            let first = u32::from_le_bytes([a, b, c, d]);
            out.push(first);
            let mask = if width == 0 { 0 } else { (1u64 << width) - 1 };
            let mut acc = 0u64;
            let mut nbits = 0u32;
            let mut at = 4usize;
            let mut prev = first as i64;
            for _ in 1..count {
                while nbits < width {
                    let byte = *payload.get(at).ok_or_else(corrupt)?;
                    acc |= (byte as u64) << nbits;
                    at += 1;
                    nbits += 8;
                }
                let zz = acc & mask;
                acc >>= width;
                nbits -= width;
                let value = prev + unzigzag(zz);
                if !(0..=u32::MAX as i64).contains(&value) {
                    return Err(corrupt());
                }
                out.push(value as u32);
                prev = value;
            }
            Ok(())
        }
        _ => Err(corrupt()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;
    use smoke_pager::{ReplacementPolicy, SegmentStore};

    fn pool(budget: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(
            SegmentStore::in_memory(),
            budget,
            ReplacementPolicy::Sieve,
        ))
    }

    /// A skewed group-by-shaped CSR: entry g holds the ascending rids
    /// congruent to g modulo the group count.
    fn skewed_csr(groups: usize, rows: usize) -> CsrRidIndex {
        let counts: Vec<usize> = (0..groups)
            .map(|g| rows / groups + usize::from(g < rows % groups))
            .collect();
        let mut b = CsrBuilder::with_counts(counts);
        for rid in 0..rows {
            b.append(rid % groups, rid as Rid);
        }
        b.finish()
    }

    #[test]
    fn round_trip_equals_source() {
        let csr = skewed_csr(7, 5000);
        let p = pool(2);
        let comp = CompressedCsrIndex::spill(&csr, &p).unwrap();
        assert_eq!(comp.len(), csr.len());
        assert_eq!(comp.edge_count(), csr.edge_count());
        assert_eq!(comp.materialize().unwrap(), csr);
        for g in 0..csr.len() {
            assert_eq!(comp.lookup(g).unwrap(), csr.get(g), "entry {g}");
        }
        assert_eq!(comp.lookup(99).unwrap(), Vec::<Rid>::new());
    }

    #[test]
    fn skewed_index_compresses_below_half_raw() {
        // Constant stride 7 within each entry → tiny zigzag deltas.
        let csr = skewed_csr(7, 100_000);
        let comp = CompressedCsrIndex::spill(&csr, &pool(2)).unwrap();
        assert!(
            comp.compressed_bytes() * 2 <= comp.raw_bytes(),
            "compressed {} vs raw {}",
            comp.compressed_bytes(),
            comp.raw_bytes()
        );
    }

    #[test]
    fn adversarial_rids_fall_back_to_raw() {
        // Alternating extremes make every delta ~2^32: packing would need 33
        // bits/edge, worse than raw, so blocks must fall back.
        let rids: Vec<Rid> = (0..3000)
            .map(|i| if i % 2 == 0 { 0 } else { u32::MAX })
            .collect();
        let n = rids.len();
        let mut b = CsrBuilder::with_counts([n]);
        for r in rids {
            b.append(0, r);
        }
        let csr = b.finish();
        let comp = CompressedCsrIndex::spill(&csr, &pool(2)).unwrap();
        assert!(comp.compressed_bytes() <= comp.raw_bytes() + 4 * comp.pages() as usize);
        assert_eq!(comp.materialize().unwrap(), csr);
    }

    #[test]
    fn lookup_touches_only_overlapping_blocks() {
        let csr = skewed_csr(10, 20_480); // 2048 edges per entry, 20 blocks
        let p = pool(4);
        let comp = CompressedCsrIndex::spill(&csr, &p).unwrap();
        assert_eq!(comp.pages(), 20);
        p.reset_stats();
        let got = comp.lookup(0).unwrap();
        assert_eq!(got.len(), 2048);
        // Entry 0 occupies edges [0, 2048): exactly blocks 0 and 1.
        assert_eq!(comp.blocks_touched(0), 2);
        assert_eq!(p.stats().disk_reads, 2);
    }

    #[test]
    fn empty_and_single_edge_indexes() {
        let p = pool(1);
        let empty = CompressedCsrIndex::spill(&CsrRidIndex::new(), &p).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.pages(), 0);
        assert_eq!(empty.materialize().unwrap(), CsrRidIndex::new());

        let mut b = CsrBuilder::with_counts([1usize]);
        b.append(0, 42);
        let one = b.finish();
        let comp = CompressedCsrIndex::spill(&one, &p).unwrap();
        assert_eq!(comp.lookup(0).unwrap(), vec![42]);
        assert_eq!(comp.blocks_touched(0), 1);
    }

    #[test]
    fn prefetching_pool_traces_identically_and_registers_hits() {
        let csr = skewed_csr(10, 20_480); // 2048 edges/entry → 2-block runs
        let p = Arc::new(BufferPool::with_prefetch(
            SegmentStore::in_memory(),
            8,
            ReplacementPolicy::Sieve,
            2,
        ));
        let comp = CompressedCsrIndex::spill(&csr, &p).unwrap();
        p.reset_stats();
        for g in 0..csr.len() {
            assert_eq!(comp.lookup(g).unwrap(), csr.get(g), "entry {g}");
        }
        let s = p.stats();
        assert!(s.prefetch_hits > 0, "run-ahead never landed: {s:?}");
        assert_eq!(comp.materialize().unwrap(), csr);
    }

    #[test]
    fn u32_extremes_survive() {
        let mut b = CsrBuilder::with_counts([5usize]);
        for r in [0, u32::MAX, 0, 1, u32::MAX - 1] {
            b.append(0, r);
        }
        let csr = b.finish();
        let comp = CompressedCsrIndex::spill(&csr, &pool(1)).unwrap();
        assert_eq!(comp.materialize().unwrap(), csr);
    }
}
