//! Rid arrays: the 1-to-1 lineage representation.

use smoke_storage::Rid;

/// Sentinel rid used in forward rid arrays for input rows that produced no
/// output (e.g. tuples filtered out by a selection).
pub const NO_RID: Rid = Rid::MAX;

/// Initial capacity of a rid array (paper §3.1, following Facebook folly's
/// FBVector guidance).
pub const INITIAL_CAPACITY: usize = 10;

/// Growth factor applied when a rid array overflows its capacity.
pub const GROWTH_FACTOR: f64 = 1.5;

/// An append-only array of rids with the paper's explicit growth policy.
///
/// The array is used both as a standalone index for 1-to-1 relationships
/// (each entry is an input rid) and as the per-entry payload of a
/// [`crate::RidIndex`]. Array resizing dominates lineage capture cost in the
/// paper's experiments, so the structure exposes its resize count and supports
/// exact pre-allocation when cardinality statistics are available.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RidArray {
    data: Vec<Rid>,
    resizes: u32,
}

impl RidArray {
    /// Creates an empty rid array. No allocation happens until the first push.
    pub fn new() -> Self {
        RidArray {
            data: Vec::new(),
            resizes: 0,
        }
    }

    /// Creates a rid array with exact pre-allocated capacity (used when
    /// cardinality statistics are known; avoids all resizes).
    pub fn with_capacity(capacity: usize) -> Self {
        RidArray {
            data: Vec::with_capacity(capacity),
            resizes: 0,
        }
    }

    /// Creates a rid array of length `len` filled with [`NO_RID`], used for
    /// forward rid arrays that are later filled by position.
    pub fn filled(len: usize) -> Self {
        RidArray {
            data: vec![NO_RID; len],
            resizes: 0,
        }
    }

    /// Creates a rid array from existing rids (test/bench convenience).
    pub fn from_vec(data: Vec<Rid>) -> Self {
        RidArray { data, resizes: 0 }
    }

    /// Appends a rid, growing capacity with the paper's policy (start at 10,
    /// grow 1.5×) when full.
    #[inline]
    pub fn push(&mut self, rid: Rid) {
        if self.data.len() == self.data.capacity() {
            let new_cap = if self.data.capacity() == 0 {
                INITIAL_CAPACITY
            } else {
                ((self.data.capacity() as f64 * GROWTH_FACTOR).ceil()) as usize
            };
            self.data.reserve_exact(new_cap - self.data.len());
            self.resizes += 1;
        }
        self.data.push(rid);
    }

    /// Sets the entry at `pos` (the array must already cover `pos`, e.g. via
    /// [`RidArray::filled`]).
    #[inline]
    pub fn set(&mut self, pos: usize, rid: Rid) {
        self.data[pos] = rid;
    }

    /// The rid at `pos`.
    #[inline]
    pub fn get(&self, pos: usize) -> Rid {
        self.data[pos]
    }

    /// The rid at `pos`, or `None` if it is the [`NO_RID`] sentinel or out of
    /// bounds.
    #[inline]
    pub fn get_checked(&self, pos: usize) -> Option<Rid> {
        match self.data.get(pos) {
            Some(&r) if r != NO_RID => Some(r),
            _ => None,
        }
    }

    /// The entry at `pos` viewed as a sub-slice of the backing buffer: one
    /// element, or empty when `pos` is out of bounds or holds the [`NO_RID`]
    /// sentinel. Lets 1-to-(0|1) arrays flow through slice-based code paths
    /// shared with the 1-to-N representations.
    #[inline]
    pub fn slice_checked(&self, pos: usize) -> &[Rid] {
        match self.data.get(pos) {
            Some(&r) if r != NO_RID => &self.data[pos..=pos],
            _ => &[],
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of capacity growths that happened during appends.
    pub fn resizes(&self) -> u32 {
        self.resizes
    }

    /// The entries as a slice.
    pub fn as_slice(&self) -> &[Rid] {
        &self.data
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> impl Iterator<Item = Rid> + '_ {
        self.data.iter().copied()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<Rid>()
    }

    /// Consumes the array and returns the underlying vector.
    pub fn into_vec(self) -> Vec<Rid> {
        self.data
    }
}

impl FromIterator<Rid> for RidArray {
    fn from_iter<T: IntoIterator<Item = Rid>>(iter: T) -> Self {
        RidArray {
            data: iter.into_iter().collect(),
            resizes: 0,
        }
    }
}

impl<'a> IntoIterator for &'a RidArray {
    type Item = Rid;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Rid>>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut a = RidArray::new();
        for i in 0..100 {
            a.push(i);
        }
        assert_eq!(a.len(), 100);
        assert_eq!(a.get(42), 42);
        assert_eq!(a.as_slice()[99], 99);
    }

    #[test]
    fn growth_policy_counts_resizes() {
        let mut a = RidArray::new();
        // First push allocates (1 resize), then every 1.5x overflow counts.
        for i in 0..1000 {
            a.push(i);
        }
        assert!(a.resizes() > 0);

        // Exact pre-allocation avoids all resizes.
        let mut b = RidArray::with_capacity(1000);
        for i in 0..1000 {
            b.push(i);
        }
        assert_eq!(b.resizes(), 0);
        assert!(a.resizes() > b.resizes());
    }

    #[test]
    fn filled_and_set() {
        let mut a = RidArray::filled(5);
        assert_eq!(a.get_checked(3), None);
        a.set(3, 7);
        assert_eq!(a.get_checked(3), Some(7));
        assert_eq!(a.get(3), 7);
        assert_eq!(a.get_checked(99), None);
    }

    #[test]
    fn iteration_and_collect() {
        let a: RidArray = (0..5).collect();
        let v: Vec<Rid> = a.iter().collect();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
        assert_eq!((&a).into_iter().sum::<Rid>(), 10);
        assert_eq!(a.into_vec(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn heap_bytes_tracks_capacity() {
        let a = RidArray::with_capacity(100);
        assert_eq!(a.heap_bytes(), 100 * 4);
        assert!(RidArray::new().heap_bytes() == 0);
    }

    #[test]
    fn growth_is_geometric_not_linear() {
        // With 10 initial slots and 1.5x growth, 10_000 pushes should need
        // on the order of log_1.5(1000) ≈ 18 resizes, far fewer than 10_000.
        let mut a = RidArray::new();
        for i in 0..10_000 {
            a.push(i);
        }
        assert!(a.resizes() < 30, "resizes = {}", a.resizes());
    }
}
