//! Property-based round-trip between `CsrRidIndex` and its paged,
//! delta/bit-packed `CompressedCsrIndex` form.
//!
//! For random rid indexes — including adversarial rid patterns that defeat
//! delta compression and force the per-block raw fallback — spilling to a
//! buffer pool and reading back must agree with the source on every lookup
//! and on a full `materialize()`, even under a single-frame pool budget
//! where every block decode evicts the previous block's page.

use std::sync::Arc;

use proptest::prelude::*;
use smoke_lineage::{CompressedCsrIndex, CsrRidIndex, Rid, RidIndex};
use smoke_pager::{BufferPool, ReplacementPolicy, SegmentStore};

fn pool(budget: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(
        SegmentStore::in_memory(),
        budget,
        ReplacementPolicy::Sieve,
    ))
}

fn assert_round_trip(entries: Vec<Vec<Rid>>, budget: usize) {
    let csr = CsrRidIndex::from(&RidIndex::from_entries(entries));
    let compressed = CompressedCsrIndex::spill(&csr, &pool(budget)).unwrap();

    assert_eq!(compressed.len(), csr.len());
    assert_eq!(compressed.edge_count(), csr.edge_count());
    assert_eq!(compressed.raw_bytes(), 4 * csr.edge_count());
    // Probe past the end to cover the checked path.
    for pos in 0..csr.len() + 2 {
        assert_eq!(
            compressed.lookup(pos).unwrap(),
            csr.get_checked(pos),
            "lookup mismatch at {pos}"
        );
    }
    let back = compressed.materialize().unwrap();
    assert_eq!(back.len(), csr.len());
    assert_eq!(back.edge_count(), csr.edge_count());
    for pos in 0..csr.len() {
        assert_eq!(back.get_checked(pos), csr.get_checked(pos));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compressed_csr_round_trips(
        entries in prop::collection::vec(prop::collection::vec(0u32..5_000, 0..12), 0..40),
        budget in 1usize..5,
    ) {
        assert_round_trip(entries, budget);
    }

    #[test]
    fn adversarial_rids_fall_back_to_raw_blocks_and_still_round_trip(
        // Extreme rid jumps per edge defeat delta packing: widths hit 32
        // bits and blocks take the raw fallback.
        entries in prop::collection::vec(
            prop::collection::vec(0u32..u32::MAX, 0..8),
            0..24,
        ),
        budget in 1usize..5,
    ) {
        assert_round_trip(entries, budget);
    }
}

#[test]
fn dense_sequential_lineage_compresses_and_round_trips() {
    // A group-by-like index: entry g owns every rid ≡ g (mod 64) — small,
    // regular deltas, the best case for bit-packing. Must compress well
    // below raw AND still read back exactly, spanning many 1024-edge blocks.
    let entries: Vec<Vec<Rid>> = (0..64u32)
        .map(|g| (0..100_000u32).filter(|r| r % 64 == g).collect())
        .collect();
    let csr = CsrRidIndex::from(&RidIndex::from_entries(entries.clone()));
    let compressed = CompressedCsrIndex::spill(&csr, &pool(2)).unwrap();
    assert!(
        compressed.compressed_bytes() * 2 <= compressed.raw_bytes(),
        "regular strides must compress to ≤0.5x raw: {} vs {}",
        compressed.compressed_bytes(),
        compressed.raw_bytes()
    );
    for (g, rids) in entries.iter().enumerate() {
        assert_eq!(&compressed.lookup(g).unwrap(), rids);
    }
}
