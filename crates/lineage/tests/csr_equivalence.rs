//! Property-based equivalence between the Vec-of-RidArrays and CSR
//! representations of 1-to-N lineage indexes.
//!
//! For random rid indexes the CSR conversion must agree with the source on
//! every read (`lookup`, `for_each`, `edge_count`, `single`), and
//! `trace_set` must produce identical, duplicate-free, first-appearance
//! ordered output regardless of representation.

use proptest::prelude::*;
use smoke_lineage::{CsrRidIndex, LineageIndex, Rid, RidIndex};

/// Strategy: a random rid index as per-entry rid vectors, with rids large
/// enough to exercise the `trace_set` bitmap path.
fn entries_strategy() -> impl Strategy<Value = Vec<Vec<Rid>>> {
    prop::collection::vec(prop::collection::vec(0u32..5_000, 0..12), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csr_agrees_with_rid_index_on_every_read(entries in entries_strategy()) {
        let idx = RidIndex::from_entries(entries);
        let csr = CsrRidIndex::from(&idx);

        prop_assert_eq!(csr.len(), idx.len());
        prop_assert_eq!(csr.edge_count(), idx.edge_count());
        // Probe two positions past the end to cover the checked paths.
        for pos in 0..idx.len() + 2 {
            prop_assert_eq!(csr.get_checked(pos), idx.get_checked(pos));
            let mut from_csr = Vec::new();
            csr.for_each(pos, |r| from_csr.push(r));
            prop_assert_eq!(from_csr.as_slice(), idx.get_checked(pos));
        }
    }

    #[test]
    fn lineage_index_variants_are_interchangeable(entries in entries_strategy()) {
        let index = LineageIndex::Index(RidIndex::from_entries(entries));
        let csr = index.clone().finalize();

        prop_assert_eq!(csr.len(), index.len());
        prop_assert_eq!(csr.edge_count(), index.edge_count());
        prop_assert_eq!(csr.resizes(), 0);
        for pos in 0..(index.len() + 2) as Rid {
            prop_assert_eq!(csr.lookup(pos), index.lookup(pos));
            prop_assert_eq!(csr.single(pos), index.single(pos));
        }
    }

    #[test]
    fn trace_set_is_duplicate_free_and_order_stable(
        entries in entries_strategy(),
        positions in prop::collection::vec(0u32..50, 0..120),
    ) {
        let index = LineageIndex::Index(RidIndex::from_entries(entries));
        let csr = index.clone().finalize();

        let traced = index.trace_set(&positions);
        // Identical across representations (including result order).
        prop_assert_eq!(&traced, &csr.trace_set(&positions));

        // Duplicate-free.
        let mut dedup = traced.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), traced.len(), "trace_set emitted duplicates");

        // Order-stable: first-appearance order of the underlying multiset.
        let multiset = index.trace_multiset(&positions);
        let mut expected = Vec::new();
        for r in multiset {
            if !expected.contains(&r) {
                expected.push(r);
            }
        }
        prop_assert_eq!(traced, expected);
    }

    #[test]
    fn finalized_indexes_use_strictly_less_heap(entries in entries_strategy()) {
        let idx = RidIndex::from_entries(entries);
        let csr = CsrRidIndex::from(&idx);
        if !idx.is_empty() {
            // Two exactly-sized flat buffers beat one RidArray header per
            // entry for every non-empty index.
            prop_assert!(
                csr.heap_bytes() < idx.heap_bytes(),
                "csr {} >= vec-of-vecs {}",
                csr.heap_bytes(),
                idx.heap_bytes()
            );
        }
    }
}
