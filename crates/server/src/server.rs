//! The concurrent lineage server: sessions, admission control, worker pool.
//!
//! Shape (modeled on multi-front-end-over-one-executor serving systems):
//!
//! ```text
//!  accept thread ──spawns──▶ session threads (one per TCP connection)
//!      session: read frame ─▶ cache probe ─▶ bounded job queue ─▶ reply
//!                                   │  full? ──▶ ServerBusy (load shed)
//!  worker pool (N threads) ◀── pops jobs, executes against Arc<Snapshot>,
//!                               fills the cache, answers the session
//! ```
//!
//! Admission control is a bounded job queue: when it is full the session
//! replies `server_busy` immediately instead of queueing unbounded work —
//! overload sheds, it never hangs. Cache hits bypass admission entirely
//! (repeated interactions — the common case for brushing dashboards — stay
//! interactive even under overload).
//!
//! Shutdown is graceful and drains: the accept loop stops, sessions finish
//! the request they are on (new frames after the flag get `shutting_down`),
//! the queue is closed, and workers drain every admitted job before exiting —
//! an admitted request is always answered.

use std::collections::VecDeque;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use smoke_planner::json::Json;
use smoke_planner::wire::{explain_to_json, result_to_json, QuerySpec};

use crate::cache::QueryCache;
use crate::protocol::{error_response, ok_response, read_frame, write_frame, ErrorCode, Request};
use crate::snapshot::Snapshot;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Bounded job-queue depth; a full queue sheds (`server_busy`).
    pub queue_depth: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            cache_capacity: 256,
        }
    }
}

/// Counters reported by the `STATS` request and [`ServerHandle::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered successfully (including cache hits).
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests answered with a non-busy error.
    pub errors: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Cache evictions.
    pub cache_evictions: u64,
    /// Jobs currently admitted but not yet finished.
    pub in_flight: u64,
}

impl ServerStats {
    /// Fraction of query lookups answered from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// One admitted unit of work: an already-validated query plus the channel
/// its session waits on.
struct Job {
    view: String,
    spec: QuerySpec,
    cache_key: String,
    sleep_ms: u64,
    reply: mpsc::Sender<String>,
}

/// A bounded MPMC job queue (mutex + condvar; `std::sync::mpsc` receivers
/// cannot be shared across a worker pool without serializing it).
///
/// Lock poisoning is recovered everywhere: a panic between guard
/// acquisition and release cannot leave `QueueInner` mid-mutation
/// (`push_back`/`pop_front`/flag stores are each a single effect), and the
/// queue outliving one panicked worker is exactly the availability story
/// the containment layer promises.
struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Why [`JobQueue::try_push`] rejected (and dropped) a job.
enum PushError {
    Full,
    Closed,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits a job unless the queue is full (shed) or closed (shutdown).
    fn try_push(&self, job: Job) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained — workers finish every admitted job before exiting.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.ready.notify_all();
    }

    fn depth(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .jobs
            .len()
    }
}

/// State shared by every thread of one server instance.
struct Shared {
    snapshot: Arc<Snapshot>,
    queue: JobQueue,
    cache: QueryCache,
    config: ServerConfig,
    shutdown: AtomicBool,
    served: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    in_flight: AtomicU64,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let cache = self.cache.counters();
        ServerStats {
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            in_flight: self.in_flight.load(Ordering::Relaxed),
        }
    }

    fn stats_json(&self) -> Json {
        let stats = self.stats();
        let cache = self.cache.counters();
        Json::obj([
            ("served", Json::Int(stats.served as i64)),
            ("shed", Json::Int(stats.shed as i64)),
            ("errors", Json::Int(stats.errors as i64)),
            ("cache_hits", Json::Int(cache.hits as i64)),
            ("cache_misses", Json::Int(cache.misses as i64)),
            ("cache_evictions", Json::Int(cache.evictions as i64)),
            ("cache_entries", Json::Int(cache.entries as i64)),
            ("in_flight", Json::Int(stats.in_flight as i64)),
            ("queue_depth", Json::Int(self.queue.depth() as i64)),
            ("workers", Json::Int(self.config.workers as i64)),
            ("queue_capacity", Json::Int(self.config.queue_depth as i64)),
            (
                "views",
                Json::Arr(
                    self.snapshot
                        .view_names()
                        .into_iter()
                        .map(Json::str)
                        .collect(),
                ),
            ),
            ("heap_bytes", Json::Int(self.snapshot.heap_bytes() as i64)),
        ])
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the threads (the process keeps
/// serving until exit) — tests and benches should shut down explicitly.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Graceful shutdown: stop accepting, let every session finish its
    /// current request, drain all admitted jobs, join every thread. Returns
    /// the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The accept thread notices the flag within one poll tick and
        // returns the session handles it spawned. `accept` is only `None`
        // if shutdown already ran (it consumes `self`, so only via a
        // re-entrant drop path); a panicked accept thread yields no session
        // handles, and the queue close below still drains the workers.
        let Some(accept) = self.accept.take() else {
            return self.shared.stats();
        };
        let sessions = accept.join().unwrap_or_default();
        // Sessions exit at their next idle read timeout (or after answering
        // the request they are processing; workers are still running here).
        for session in sessions {
            let _ = session.join();
        }
        // No sessions remain, so no new jobs can arrive: close the queue and
        // let the workers drain what was admitted.
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.stats()
    }
}

/// The server constructor.
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// the accept loop and worker pool over the given snapshot.
    pub fn serve(
        snapshot: Arc<Snapshot>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            snapshot,
            queue: JobQueue::new(config.queue_depth),
            cache: QueryCache::new(config.cache_capacity),
            config,
            shutdown: AtomicBool::new(false),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
        });

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("smoke-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("smoke-accept".to_string())
            .spawn(move || accept_loop(listener, &accept_shared))?;

        Ok(ServerHandle {
            addr: local,
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

/// Poll interval of the accept loop and the session idle-read timeout; both
/// bound how long shutdown waits on an idle thread.
const POLL_TICK: Duration = Duration::from_millis(20);

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) -> Vec<JoinHandle<()>> {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return sessions;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                // A failed spawn (thread exhaustion) drops the stream: the
                // client sees a closed connection and retries, and the
                // accept loop keeps serving everyone else.
                if let Ok(handle) = std::thread::Builder::new()
                    .name("smoke-session".to_string())
                    .spawn(move || session_loop(stream, &shared))
                {
                    sessions.push(handle);
                }
                // Reap finished sessions so long-running servers do not
                // accumulate handles.
                sessions.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_TICK);
            }
            Err(_) => std::thread::sleep(POLL_TICK),
        }
    }
}

/// One session: a request/response loop over a single connection.
fn session_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        match read_frame(&mut reader) {
            Ok(Some(body)) => {
                let draining = shared.shutdown.load(Ordering::SeqCst);
                let response = if draining {
                    error_response(ErrorCode::ShuttingDown, "server is draining")
                } else {
                    handle_request(&body, shared)
                };
                if write_frame(&mut writer, &response).is_err() {
                    return;
                }
                if draining {
                    return;
                }
            }
            Ok(None) => return,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle tick: keep waiting unless the server is draining.
                if shared.shutdown.load(Ordering::SeqCst) {
                    let _ = writer.flush();
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Parses, admits, and answers one request frame.
fn handle_request(body: &str, shared: &Arc<Shared>) -> String {
    let request = match Request::decode(body) {
        Ok(r) => r,
        Err(e) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            return error_response(ErrorCode::BadRequest, &e.to_string());
        }
    };
    match request {
        Request::Stats => {
            shared.served.fetch_add(1, Ordering::Relaxed);
            ok_response("stats", shared.stats_json())
        }
        Request::Explain { view, spec } => {
            // Explains are cheap (planning only) and feed dashboards'
            // debugging panes; they run inline on the session thread rather
            // than competing with queries for worker slots.
            match shared.snapshot.explain(&view, &spec) {
                Ok(explain) => {
                    shared.served.fetch_add(1, Ordering::Relaxed);
                    ok_response("explain", explain_to_json(&explain))
                }
                Err(e) => error_for(&view, shared, &e),
            }
        }
        Request::Query {
            view,
            spec,
            sleep_ms,
        } => {
            let cache_key = format!("q:{view}:{}", spec.cache_key());
            if let Some(hit) = shared.cache.get(&cache_key) {
                shared.served.fetch_add(1, Ordering::Relaxed);
                return hit;
            }
            let (reply_tx, reply_rx) = mpsc::channel();
            let job = Job {
                view,
                spec,
                cache_key,
                sleep_ms,
                reply: reply_tx,
            };
            shared.in_flight.fetch_add(1, Ordering::Relaxed);
            match shared.queue.try_push(job) {
                Ok(()) => match reply_rx.recv() {
                    Ok(response) => response,
                    Err(_) => {
                        shared.errors.fetch_add(1, Ordering::Relaxed);
                        error_response(ErrorCode::Exec, "worker dropped the request")
                    }
                },
                Err(PushError::Full) => {
                    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                    shared.shed.fetch_add(1, Ordering::Relaxed);
                    error_response(
                        ErrorCode::ServerBusy,
                        "admission queue is full; retry with backoff",
                    )
                }
                Err(PushError::Closed) => {
                    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    error_response(ErrorCode::ShuttingDown, "server is draining")
                }
            }
        }
    }
}

fn error_for(view: &str, shared: &Arc<Shared>, e: &smoke_core::EngineError) -> String {
    shared.errors.fetch_add(1, Ordering::Relaxed);
    let msg = e.to_string();
    if shared.snapshot.view(view).is_none() {
        error_response(ErrorCode::UnknownView, &msg)
    } else {
        error_response(ErrorCode::Exec, &msg)
    }
}

/// Worker: pop admitted jobs, execute against the shared snapshot, fill the
/// cache, answer the session. Exits when the queue is closed and drained.
///
/// Execution runs inside `catch_unwind`: a panicking plan (a planner bug, a
/// corrupt index — or the `server::worker::execute` fail point in tests)
/// answers its session with a typed `exec` error and the worker keeps
/// serving. One poisoned query must never shrink the pool.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        if job.sleep_ms > 0 {
            std::thread::sleep(Duration::from_millis(job.sleep_ms));
        }
        // AssertUnwindSafe: on panic the closure's only shared touchables
        // are the snapshot (immutable) and poison-recovering containers; no
        // broken invariant can escape the unwind.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            smoke_core::failpoint::hit("server::worker::execute");
            shared.snapshot.execute(&job.view, &job.spec)
        }));
        let response = match outcome {
            Ok(Ok(result)) => {
                let body = ok_response("result", result_to_json(&result));
                shared.cache.insert(&job.cache_key, body.clone());
                shared.served.fetch_add(1, Ordering::Relaxed);
                body
            }
            Ok(Err(e)) => error_for(&job.view, shared, &e),
            Err(payload) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                error_response(
                    ErrorCode::Exec,
                    &format!("query execution panicked (contained): {msg}"),
                )
            }
        };
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
        // A session that vanished (client gone) makes this send fail; the
        // work is simply dropped.
        let _ = job.reply.send(response);
    }
}
