//! The plan/result cache: normalized query → encoded response body.
//!
//! Keys come from [`smoke_planner::wire::QuerySpec::cache_key`] (prefixed
//! with the request type and view name by the server), so equivalent queries
//! — same rid set in any order, flipped equality operands, reordered
//! conjunctions — share an entry. Values are complete encoded response
//! bodies, which guarantees a cache hit is byte-for-byte the response the
//! worker pool would have produced.
//!
//! Eviction is least-recently-used via a monotonically increasing touch
//! tick; hit/miss/eviction counters are exposed through the `STATS` request.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counter snapshot of a [`QueryCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

#[derive(Debug)]
struct Entry {
    tick: u64,
    body: String,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Entry>,
    tick: u64,
}

/// A bounded, thread-safe LRU cache of encoded response bodies.
#[derive(Debug)]
pub struct QueryCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` entries. Capacity 0
    /// disables caching entirely (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            inner: Mutex::new(Inner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<String> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // A poisoned lock means a worker panicked while touching the map;
        // every mutation below leaves the map structurally sound at each
        // step, so recovering the guard is safe — and a degraded cache must
        // never take the serving path down with it.
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.tick = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.body.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) an entry, evicting the least recently used one
    /// when full.
    pub fn insert(&self, key: &str, body: String) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(key) {
            entry.tick = tick;
            entry.body = body;
            return;
        }
        if inner.map.len() >= self.capacity {
            // O(n) victim scan — capacities are small (hundreds), and the
            // scan only runs once the cache is full.
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(key.to_string(), Entry { tick, body });
    }

    /// Current counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .map
                .len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction_counting() {
        let cache = QueryCache::new(2);
        assert_eq!(cache.get("a"), None);
        cache.insert("a", "1".into());
        cache.insert("b", "2".into());
        assert_eq!(cache.get("a").as_deref(), Some("1"));
        // `b` is now the least recently used; inserting `c` evicts it.
        cache.insert("c", "3".into());
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a").as_deref(), Some("1"));
        assert_eq!(cache.get("c").as_deref(), Some("3"));
        let counters = cache.counters();
        assert_eq!(counters.hits, 3);
        assert_eq!(counters.misses, 2);
        assert_eq!(counters.evictions, 1);
        assert_eq!(counters.entries, 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let cache = QueryCache::new(2);
        cache.insert("a", "1".into());
        cache.insert("b", "2".into());
        cache.insert("a", "1b".into());
        assert_eq!(cache.counters().evictions, 0);
        assert_eq!(cache.get("a").as_deref(), Some("1b"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = QueryCache::new(0);
        cache.insert("a", "1".into());
        assert_eq!(cache.get("a"), None);
        assert_eq!(cache.counters().entries, 0);
        assert_eq!(cache.counters().hits, 0);
    }
}
