//! The `smoke-server` binary: serve the demo snapshot over TCP.
//!
//! ```text
//! smoke-server [--addr 127.0.0.1:7878] [--rows 100000] [--groups 100]
//!              [--workers 4] [--queue 64] [--cache 256] [--seed 21]
//! ```
//!
//! Builds the zipfian demo snapshot (views `by_z` and `by_bin`), binds the
//! address, and serves until the process is killed. Clients speak the
//! length-prefixed JSON protocol of `smoke_server::protocol`.

use std::sync::Arc;

use smoke_server::{demo_snapshot, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: smoke-server [--addr HOST:PORT] [--rows N] [--groups N] \
         [--workers N] [--queue N] [--cache N] [--seed N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut rows = 100_000usize;
    let mut groups = 100usize;
    let mut seed = 21u64;
    let mut config = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| usage_for(flag));
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--rows" => rows = parse(&value("--rows"), "--rows"),
            "--groups" => groups = parse(&value("--groups"), "--groups"),
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--queue" => config.queue_depth = parse(&value("--queue"), "--queue"),
            "--cache" => config.cache_capacity = parse(&value("--cache"), "--cache"),
            "--seed" => seed = parse(&value("--seed"), "--seed"),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    eprintln!("building demo snapshot: rows={rows} groups={groups} seed={seed} ...");
    let snapshot = match demo_snapshot(rows, groups, seed) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("failed to build the demo snapshot: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "snapshot ready: views={:?}, ~{} KiB",
        snapshot.view_names(),
        snapshot.heap_bytes() / 1024
    );

    let handle = match Server::serve(snapshot, addr.as_str(), config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "serving on {} (workers={}, queue={}, cache={})",
        handle.addr(),
        config.workers,
        config.queue_depth,
        config.cache_capacity
    );
    // Serve until killed.
    loop {
        std::thread::park();
    }
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: {text}");
        std::process::exit(2);
    })
}

fn usage_for(flag: &str) -> String {
    eprintln!("{flag} requires a value");
    std::process::exit(2);
}
