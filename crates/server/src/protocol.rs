//! The wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every message — request or response — is one frame: a 4-byte big-endian
//! length followed by that many bytes of UTF-8 JSON. Length-prefixing keeps
//! the parser trivial (no streaming JSON), bounds memory per frame
//! ([`MAX_FRAME_BYTES`]), and makes request pipelining possible for clients
//! that want it.
//!
//! Requests (one JSON object each):
//!
//! ```text
//! {"type":"query",   "view":"by_z", "query":<QuerySpec>, "sleep_ms":0}
//! {"type":"explain", "view":"by_z", "query":<QuerySpec>}
//! {"type":"stats"}
//! ```
//!
//! `sleep_ms` (optional, default 0) delays execution inside the worker; it
//! exists for soak/shutdown testing (deterministically saturating the worker
//! pool) and is not part of the cache key.
//!
//! Responses:
//!
//! ```text
//! {"status":"ok", "result":<LineageResult>}     // query
//! {"status":"ok", "explain":<Explain>}          // explain
//! {"status":"ok", "stats":{...}}                // stats
//! {"status":"error", "code":"server_busy", "message":"..."}
//! ```
//!
//! Error codes are typed ([`ErrorCode`]); `server_busy` is the admission
//! controller's load-shed signal and the only code clients are expected to
//! retry on.

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

use smoke_core::{EngineError, Result};
use smoke_planner::json::{parse, Json};
use smoke_planner::wire::QuerySpec;

/// Upper bound on a single frame's payload (16 MiB). A peer announcing more
/// is malformed (or hostile) and its connection is dropped.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// How long a frame may stay partially read before the peer is declared
/// stalled and the connection dropped. Generous for real clients and TCP
/// fragmentation; small enough that a slow-loris peer cannot pin a session
/// thread forever.
const FRAME_STALL_TIMEOUT: Duration = Duration::from_secs(5);

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &str) -> io::Result<()> {
    let len = body.len();
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    w.write_all(&(len as u32).to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on clean EOF (peer
/// closed between frames); mid-frame EOFs and stalls surface as errors.
///
/// A `WouldBlock`/`TimedOut` from the *first* byte propagates untouched —
/// that is the idle tick poll loops (the server session loop) key off. Once
/// any byte of a frame has been consumed, short reads are retried until the
/// frame completes or `FRAME_STALL_TIMEOUT` (5 s) elapses: surfacing a timeout
/// mid-frame would make the caller retry from the frame boundary, lose the
/// consumed bytes, and desync framing (a body byte like `{` then reads as a
/// huge length prefix).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    if r.read(&mut len_buf[..1])? == 0 {
        return Ok(None);
    }
    let deadline = Instant::now() + FRAME_STALL_TIMEOUT;
    read_exact_within(r, &mut len_buf[1..], deadline)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame (cap {MAX_FRAME_BYTES})"),
        ));
    }
    let mut body = vec![0u8; len];
    read_exact_within(r, &mut body, deadline)?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// `read_exact`, but `WouldBlock`/`TimedOut` (a short poll-timeout on the
/// underlying socket) retries until `deadline` instead of erroring — and the
/// eventual stall error is `InvalidData`, not a timeout kind, so poll loops
/// cannot mistake a half-read frame for an idle connection.
fn read_exact_within(r: &mut impl Read, mut buf: &mut [u8], deadline: Instant) -> io::Result<()> {
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => buf = &mut buf[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "peer stalled mid-frame",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute a lineage query against a view.
    Query {
        /// Target view name.
        view: String,
        /// The declarative query.
        spec: QuerySpec,
        /// Artificial pre-execution delay (testing knob, default 0).
        sleep_ms: u64,
    },
    /// Plan a query and return the `EXPLAIN` record.
    Explain {
        /// Target view name.
        view: String,
        /// The declarative query.
        spec: QuerySpec,
    },
    /// Server / cache counters.
    Stats,
}

impl Request {
    /// Parses a request frame.
    pub fn decode(body: &str) -> Result<Request> {
        let v = parse(body)?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| EngineError::InvalidPlan("request is missing `type`".to_string()))?;
        match ty {
            "stats" => Ok(Request::Stats),
            "query" | "explain" => {
                let view = v
                    .get("view")
                    .and_then(Json::as_str)
                    .ok_or_else(|| {
                        EngineError::InvalidPlan("request is missing `view`".to_string())
                    })?
                    .to_string();
                let spec = QuerySpec::from_json(v.get("query").ok_or_else(|| {
                    EngineError::InvalidPlan("request is missing `query`".to_string())
                })?)?;
                if ty == "explain" {
                    Ok(Request::Explain { view, spec })
                } else {
                    let sleep_ms = v
                        .get("sleep_ms")
                        .and_then(Json::as_i64)
                        .and_then(|s| u64::try_from(s).ok())
                        .unwrap_or(0);
                    Ok(Request::Query {
                        view,
                        spec,
                        sleep_ms,
                    })
                }
            }
            other => Err(EngineError::InvalidPlan(format!(
                "unknown request type `{other}`"
            ))),
        }
    }

    /// Encodes the request as a frame body.
    pub fn encode(&self) -> String {
        match self {
            Request::Stats => Json::obj([("type", Json::str("stats"))]).render(),
            Request::Explain { view, spec } => Json::obj([
                ("type", Json::str("explain")),
                ("view", Json::str(view.clone())),
                ("query", spec.to_json()),
            ])
            .render(),
            Request::Query {
                view,
                spec,
                sleep_ms,
            } => {
                let mut pairs = vec![
                    ("type", Json::str("query")),
                    ("view", Json::str(view.clone())),
                    ("query", spec.to_json()),
                ];
                if *sleep_ms > 0 {
                    pairs.push(("sleep_ms", Json::Int(*sleep_ms as i64)));
                }
                Json::obj(pairs).render()
            }
        }
    }
}

/// Typed error codes of the `status: error` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control shed the request: the bounded queue is full.
    /// Retryable by design.
    ServerBusy,
    /// The request frame did not parse or failed validation.
    BadRequest,
    /// The named view does not exist in the snapshot.
    UnknownView,
    /// The server is draining; no new work is accepted.
    ShuttingDown,
    /// Planning/execution failed (e.g. an infeasible forced strategy).
    Exec,
}

impl ErrorCode {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::ServerBusy => "server_busy",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownView => "unknown_view",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Exec => "exec",
        }
    }

    /// Parses a wire name back to a code.
    pub fn parse(name: &str) -> Option<ErrorCode> {
        match name {
            "server_busy" => Some(ErrorCode::ServerBusy),
            "bad_request" => Some(ErrorCode::BadRequest),
            "unknown_view" => Some(ErrorCode::UnknownView),
            "shutting_down" => Some(ErrorCode::ShuttingDown),
            "exec" => Some(ErrorCode::Exec),
            _ => None,
        }
    }
}

/// Renders an `{"status":"ok", <key>: <payload>}` response body.
pub fn ok_response(key: &'static str, payload: Json) -> String {
    Json::obj([("status", Json::str("ok")), (key, payload)]).render()
}

/// Renders an error response body.
pub fn error_response(code: ErrorCode, message: &str) -> String {
    Json::obj([
        ("status", Json::str("error")),
        ("code", Json::str(code.as_str())),
        ("message", Json::str(message)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some("hello"));
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn oversized_announcements_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(read_frame(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn truncated_frames_error_rather_than_hang() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_frame(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Stats,
            Request::Query {
                view: "by_z".into(),
                spec: QuerySpec::backward().rids([4, 2]),
                sleep_ms: 0,
            },
            Request::Query {
                view: "by_z".into(),
                spec: QuerySpec::multi_view().rids([0]).then_through("by_bin"),
                sleep_ms: 25,
            },
            Request::Explain {
                view: "by_bin".into(),
                spec: QuerySpec::forward(),
            },
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "{}",
            r#"{"type":"query"}"#,
            r#"{"type":"query","view":"x"}"#,
            r#"{"type":"nope"}"#,
        ] {
            assert!(Request::decode(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::ServerBusy,
            ErrorCode::BadRequest,
            ErrorCode::UnknownView,
            ErrorCode::ShuttingDown,
            ErrorCode::Exec,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
    }
}
