//! `smoke-server`: the concurrent serving layer over finalized lineage.
//!
//! Smoke's capture side finishes with immutable artifacts — output
//! relations, CSR lineage indexes, partitioned rid indexes, pushed-down
//! cubes. This crate puts a server in front of them:
//!
//! - [`snapshot`]: [`Snapshot`]s bundle those artifacts into named, `Arc`-
//!   shared, never-mutated [`View`]s, so the whole worker pool serves one
//!   copy with no locks on the query path.
//! - [`protocol`]: length-prefixed JSON frames carrying declarative
//!   [`smoke_planner::wire::QuerySpec`] queries — the planner API *is* the
//!   wire protocol.
//! - [`server`]: sessions (one thread per connection), a bounded admission
//!   queue that sheds load with a typed `server_busy` error instead of
//!   queueing unbounded work, a fixed worker pool, and graceful drain on
//!   shutdown.
//! - [`cache`]: a normalized-query result cache (LRU, counter-instrumented)
//!   keyed on [`smoke_planner::wire::QuerySpec::cache_key`].
//! - [`client`]: a small blocking client used by benches, tests, and the CI
//!   soak harness.
//! - [`workload`]: the demo snapshot plus the zipf-skewed interactive query
//!   mix (brush / linked views / crossfilter / drilldown / forward traces).

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;
pub mod snapshot;
pub mod workload;

pub use cache::{CacheCounters, QueryCache};
pub use client::{Client, Reply};
pub use protocol::{ErrorCode, Request, MAX_FRAME_BYTES};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
pub use snapshot::{Snapshot, View};
pub use workload::{demo_snapshot, demo_snapshot_paged, QueryMix};
