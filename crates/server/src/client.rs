//! A minimal blocking client for the lineage server.
//!
//! One [`Client`] owns one TCP connection (one server session) and issues
//! synchronous request/response exchanges. Benches and the soak harness run
//! many clients on their own threads to generate concurrency.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use smoke_planner::json::{parse, Json};
use smoke_planner::wire::{result_from_json, QuerySpec};
use smoke_planner::LineageResult;

use crate::protocol::{read_frame, write_frame, ErrorCode, Request};

/// A decoded server response.
#[derive(Debug, Clone)]
pub enum Reply {
    /// A successful query: the lineage result.
    Result(LineageResult),
    /// A successful explain: the raw `EXPLAIN` record.
    Explain(Json),
    /// A successful stats request: the raw counter object.
    Stats(Json),
    /// The admission controller shed the request; retry with backoff.
    Busy(String),
    /// The server is draining and accepts no new work.
    ShuttingDown(String),
    /// Any other error (bad request, unknown view, execution failure).
    Error {
        /// The typed error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Reply {
    /// Extracts a successful query reply, or describes what arrived instead.
    pub fn into_result(self) -> Result<LineageResult, String> {
        match self {
            Reply::Result(r) => Ok(r),
            other => Err(format!("expected a query result, got {other:?}")),
        }
    }

    /// Whether this is the retryable load-shed reply.
    pub fn is_busy(&self) -> bool {
        matches!(self, Reply::Busy(_))
    }
}

/// A blocking connection to a lineage server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Caps how long a single exchange may block on the socket.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Executes a lineage query against a view.
    pub fn query(&mut self, view: &str, spec: QuerySpec) -> io::Result<Reply> {
        self.query_with_sleep(view, spec, 0)
    }

    /// Executes a query with an artificial worker-side delay (testing knob
    /// for saturating the pool deterministically).
    pub fn query_with_sleep(
        &mut self,
        view: &str,
        spec: QuerySpec,
        sleep_ms: u64,
    ) -> io::Result<Reply> {
        self.exchange(&Request::Query {
            view: view.to_string(),
            spec,
            sleep_ms,
        })
    }

    /// Plans a query and returns the server's `EXPLAIN` record.
    pub fn explain(&mut self, view: &str, spec: QuerySpec) -> io::Result<Reply> {
        self.exchange(&Request::Explain {
            view: view.to_string(),
            spec,
        })
    }

    /// Fetches server / cache counters.
    pub fn stats(&mut self) -> io::Result<Reply> {
        self.exchange(&Request::Stats)
    }

    fn exchange(&mut self, request: &Request) -> io::Result<Reply> {
        write_frame(&mut self.stream, &request.encode())?;
        let body = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the session")
        })?;
        decode_reply(&body)
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn decode_reply(body: &str) -> io::Result<Reply> {
    let v = parse(body).map_err(|e| bad(e.to_string()))?;
    match v.get("status").and_then(Json::as_str) {
        Some("ok") => {
            if let Some(result) = v.get("result") {
                let result = result_from_json(result).map_err(|e| bad(e.to_string()))?;
                Ok(Reply::Result(result))
            } else if let Some(explain) = v.get("explain") {
                Ok(Reply::Explain(explain.clone()))
            } else if let Some(stats) = v.get("stats") {
                Ok(Reply::Stats(stats.clone()))
            } else {
                Err(bad("ok response carries no payload"))
            }
        }
        Some("error") => {
            let code = v
                .get("code")
                .and_then(Json::as_str)
                .and_then(ErrorCode::parse)
                .ok_or_else(|| bad("error response carries no known code"))?;
            let message = v
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            Ok(match code {
                ErrorCode::ServerBusy => Reply::Busy(message),
                ErrorCode::ShuttingDown => Reply::ShuttingDown(message),
                _ => Reply::Error { code, message },
            })
        }
        _ => Err(bad("response carries no status")),
    }
}
