//! Immutable, `Arc`-shareable serving snapshots.
//!
//! A [`Snapshot`] is the unit the server shares across its worker pool: a set
//! of named [`View`]s, each bundling a base relation, the view's output
//! relation, and every capture-time artifact the planner can choose among
//! (backward/forward lineage indexes, a partitioned rid index, a pushed-down
//! cube, lazy-rewrite info, capture stats). All fields are owned and never
//! mutated after construction — finalized CSR indexes are read-only by
//! design — so a `Arc<Snapshot>` needs no locks on the query path.

use std::collections::BTreeMap;

use smoke_core::workload::WorkloadArtifacts;
use smoke_core::{EngineError, Result};
use smoke_lineage::{CaptureStats, InputLineage, LineageIndex};
use smoke_planner::wire::QuerySpec;
use smoke_planner::{Explain, IoModel, LineagePlanner, LineageResult, RewriteInfo};
use smoke_storage::Relation;

/// One traced view inside a [`Snapshot`]: a base relation, an output
/// relation, and the capture artifacts the planner consults.
#[derive(Debug, Clone)]
pub struct View {
    base: Relation,
    output: Relation,
    backward: Option<LineageIndex>,
    forward: Option<LineageIndex>,
    artifacts: WorkloadArtifacts,
    rewrite: Option<RewriteInfo>,
    stats: Option<CaptureStats>,
    io: Option<IoModel>,
}

impl View {
    /// Creates a view with no artifacts registered yet.
    pub fn new(base: Relation, output: Relation) -> Self {
        View {
            base,
            output,
            backward: None,
            forward: None,
            artifacts: WorkloadArtifacts::default(),
            rewrite: None,
            stats: None,
            io: None,
        }
    }

    /// Registers both directions of an [`InputLineage`] (cloned into the
    /// snapshot; the capture side keeps its own copy).
    pub fn lineage(mut self, lineage: &InputLineage) -> Self {
        self.backward = lineage.backward.clone();
        self.forward = lineage.forward.clone();
        self
    }

    /// Registers workload-aware capture artifacts (partitioned index / cube).
    pub fn artifacts(mut self, artifacts: &WorkloadArtifacts) -> Self {
        self.artifacts = artifacts.clone();
        self
    }

    /// Registers lazy-rewrite information about the base query.
    pub fn rewrite(mut self, rewrite: RewriteInfo) -> Self {
        self.rewrite = Some(rewrite);
        self
    }

    /// Registers capture statistics (a fallback cardinality source for the
    /// cost model).
    pub fn stats(mut self, stats: CaptureStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Registers the base relation's paged-layout I/O model. Residency is
    /// frozen at snapshot-build time — consistent with everything else in an
    /// immutable snapshot — so served `EXPLAIN`s price page reads against
    /// the pool state the snapshot was built under, and `PartitionPruned`
    /// plans surface their page skipping in wire responses.
    pub fn io(mut self, io: IoModel) -> Self {
        self.io = Some(io);
        self
    }

    /// The view's base relation.
    pub fn base(&self) -> &Relation {
        &self.base
    }

    /// The view's output relation.
    pub fn output(&self) -> &Relation {
        &self.output
    }

    /// The view's forward index (base rid → output rids), used as the target
    /// of `then_through` compose chains.
    pub fn forward_index(&self) -> Option<&LineageIndex> {
        self.forward.as_ref()
    }

    /// A planner over this view's relations and artifacts. Cheap: the
    /// planner borrows, it does not copy.
    pub fn planner(&self) -> LineagePlanner<'_> {
        let mut planner = LineagePlanner::new(&self.base, &self.output).artifacts(&self.artifacts);
        if let Some(b) = &self.backward {
            planner = planner.backward_index(b);
        }
        if let Some(f) = &self.forward {
            planner = planner.forward_index(f);
        }
        if let Some(r) = &self.rewrite {
            planner = planner.rewrite(r.clone());
        }
        if let Some(s) = self.stats {
            planner = planner.stats(s);
        }
        if let Some(io) = self.io {
            planner = planner.with_io(io);
        }
        planner
    }

    /// Approximate heap footprint of the view (relations + indexes), for the
    /// STATS report.
    pub fn heap_bytes(&self) -> usize {
        let idx = |i: &Option<LineageIndex>| i.as_ref().map_or(0, |x| x.edge_count() * 4);
        self.base.heap_bytes() + self.output.heap_bytes() + idx(&self.backward) + idx(&self.forward)
    }
}

/// An immutable set of named views, shared across server workers via `Arc`.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    views: BTreeMap<String, View>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Adds a named view (builder style).
    pub fn with_view(mut self, name: impl Into<String>, view: View) -> Self {
        self.views.insert(name.into(), view);
        self
    }

    /// Looks up a view by name.
    pub fn view(&self, name: &str) -> Option<&View> {
        self.views.get(name)
    }

    /// The names of all views, sorted.
    pub fn view_names(&self) -> Vec<&str> {
        self.views.keys().map(|k| k.as_str()).collect()
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the snapshot holds no views.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Resolves a [`QuerySpec`]'s compose chain against this snapshot: each
    /// chain entry names a view whose *forward* index the trace continues
    /// through.
    fn resolve_chain(&self, name: &str) -> Option<&LineageIndex> {
        self.views.get(name).and_then(|v| v.forward_index())
    }

    /// Plans and executes a wire query against the named view. This is the
    /// sequential reference path: the server's worker pool calls exactly
    /// this, so a concurrent response is correct iff this is.
    pub fn execute(&self, view: &str, spec: &QuerySpec) -> Result<LineageResult> {
        let v = self
            .views
            .get(view)
            .ok_or_else(|| EngineError::InvalidPlan(format!("unknown view `{view}`")))?;
        let planner = v.planner();
        let query = spec.to_query(|name| self.resolve_chain(name))?;
        match spec.strategy {
            Some(strategy) => planner.execute_with(strategy, &query),
            None => planner.execute(&query),
        }
    }

    /// Plans a wire query against the named view and returns the `EXPLAIN`
    /// record.
    pub fn explain(&self, view: &str, spec: &QuerySpec) -> Result<Explain> {
        let v = self
            .views
            .get(view)
            .ok_or_else(|| EngineError::InvalidPlan(format!("unknown view `{view}`")))?;
        let query = spec.to_query(|name| self.resolve_chain(name))?;
        v.planner().explain(&query)
    }

    /// Approximate heap footprint of all views.
    pub fn heap_bytes(&self) -> usize {
        self.views.values().map(View::heap_bytes).sum()
    }
}
