//! The demo serving workload: a snapshot over the zipfian group-by tables
//! and a skewed interactive-query generator.
//!
//! [`demo_snapshot`] materializes the same instrumented workload the planner
//! and bench crates use — a zipf-distributed fact table grouped by `z` (with
//! a `v_bin`-partitioned rid index, a pushed-down cube, and lazy-rewrite
//! info) plus a second `by_bin` view over the same base so multi-view
//! compose chains have somewhere to go.
//!
//! [`QueryMix`] generates the client-side interaction mix of the paper's
//! serving scenarios — brushing, linked views, crossfiltering, drilldowns,
//! forward traces — with zipf-skewed group popularity, which is what makes
//! the result cache earn its keep.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smoke_core::ops::groupby::{group_by, GroupByOptions};
use smoke_core::{AggExpr, AggPushdown, Expr};
use smoke_datagen::zipf::{zipf_table_binned, ZipfSampler, ZipfSpec};
use smoke_pager::ReplacementPolicy;
use smoke_planner::wire::QuerySpec;
use smoke_planner::{IoModel, RewriteInfo};
use smoke_storage::{Database, Relation};

use crate::snapshot::{Snapshot, View};

/// Number of `v_bin` partitions the demo workload templates on.
pub const BINS: usize = 8;

/// Builds the two-view demo snapshot: `by_z` (zipf group-by with every
/// workload-aware artifact) and `by_bin` (group-by on the partition column,
/// the target of compose chains). Fails only if the capture pipeline
/// rejects the generated tables — a bug, but one the embedding process
/// (server binary, bench harness) gets to report instead of panicking over.
pub fn demo_snapshot(rows: usize, groups: usize, seed: u64) -> smoke_core::Result<Snapshot> {
    build_snapshot(demo_table(rows, groups, seed), None)
}

/// Like [`demo_snapshot`], but the base table is additionally spilled
/// through a [`Database`] memory budget (file-backed, SIEVE replacement) and
/// every view carries the paged layout's [`IoModel`]: served `EXPLAIN`s
/// price page reads, and `PartitionPruned` plans report the pages they skip
/// over `EagerTrace` in wire responses. Residency is sampled at build time,
/// matching the snapshot's immutability.
pub fn demo_snapshot_paged(
    rows: usize,
    groups: usize,
    seed: u64,
    budget_bytes: usize,
) -> smoke_core::Result<Snapshot> {
    let table = demo_table(rows, groups, seed);
    let mut db = Database::new();
    db.set_memory_budget(budget_bytes, ReplacementPolicy::Sieve)?;
    db.register(table.clone())?;
    let io = IoModel::from_paged(db.paged_relation(table.name())?);
    build_snapshot(table, Some(io))
}

fn demo_table(rows: usize, groups: usize, seed: u64) -> Relation {
    zipf_table_binned(
        &ZipfSpec {
            theta: 1.0,
            rows,
            groups,
            seed,
        },
        BINS,
    )
}

fn build_snapshot(table: Relation, io: Option<IoModel>) -> smoke_core::Result<Snapshot> {
    let mut opts = GroupByOptions::inject();
    opts.workload.skipping_partition_by = vec!["v_bin".to_string()];
    opts.workload.agg_pushdown = Some(AggPushdown {
        partition_by: vec!["v_bin".to_string()],
        aggs: vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")],
    });
    let by_z = group_by(&table, &["z".to_string()], &[AggExpr::count("cnt")], &opts)?;

    let bin_opts = GroupByOptions::inject();
    let by_bin = group_by(
        &table,
        &["v_bin".to_string()],
        &[AggExpr::count("cnt")],
        &bin_opts,
    )?;

    let mut view_z = View::new(table.clone(), by_z.output.clone())
        .lineage(by_z.lineage.input(0))
        .artifacts(&by_z.artifacts)
        .rewrite(RewriteInfo::new(vec!["z".to_string()], None))
        .stats(by_z.stats);
    let mut view_bin = View::new(table, by_bin.output.clone())
        .lineage(by_bin.lineage.input(0))
        .rewrite(RewriteInfo::new(vec!["v_bin".to_string()], None))
        .stats(by_bin.stats);
    if let Some(io) = io {
        view_z = view_z.io(io);
        view_bin = view_bin.io(io);
    }
    Ok(Snapshot::new()
        .with_view("by_z", view_z)
        .with_view("by_bin", view_bin))
}

/// A generated request: target view plus query.
pub type MixedQuery = (&'static str, QuerySpec);

/// A zipf-skewed generator of the interactive query mix.
///
/// Per draw: ~35% brush (backward over a hot group), ~10% linked views
/// (backward composed forward through `by_bin`), ~25% crossfilter (backward
/// with a `v_bin` filter and aggregation), ~15% drilldown (the cube-shaped
/// aggregate), ~15% forward trace from base rows.
pub struct QueryMix {
    rng: StdRng,
    groups: ZipfSampler,
    n_groups: usize,
    n_rows: usize,
}

impl QueryMix {
    /// Creates a mix over a snapshot with `n_groups` output groups in `by_z`
    /// and `n_rows` base rows. Skew mirrors the data generator (`theta=1`).
    pub fn new(n_groups: usize, n_rows: usize, seed: u64) -> Self {
        QueryMix {
            rng: StdRng::seed_from_u64(seed),
            groups: ZipfSampler::new(n_groups.max(1), 1.0),
            n_groups: n_groups.max(1),
            n_rows: n_rows.max(1),
        }
    }

    /// Draws the next query of the mix.
    pub fn next_query(&mut self) -> MixedQuery {
        // Zipf group popularity: group ids are assigned by the data
        // generator in frequency order, so sampling ranks ≡ sampling groups.
        let group = (self.groups.sample(&mut self.rng) - 1).min(self.n_groups - 1) as u32;
        let roll: f64 = self.rng.gen();
        if roll < 0.35 {
            // Brush: which inputs built this bar?
            ("by_z", QuerySpec::backward().rids([group]))
        } else if roll < 0.45 {
            // Linked views: highlight the same inputs in the binned view.
            (
                "by_z",
                QuerySpec::multi_view().rids([group]).then_through("by_bin"),
            )
        } else if roll < 0.70 {
            // Crossfilter: restrict the trace to one bin, re-aggregate.
            let bin = self.rng.gen_range(0..BINS as i64);
            (
                "by_z",
                QuerySpec::backward()
                    .rids([group])
                    .filter(Expr::col("v_bin").eq(Expr::lit(bin)))
                    .aggregate(&["v_bin"], vec![AggExpr::count("cnt")]),
            )
        } else if roll < 0.85 {
            // Drilldown: the cube-matching aggregate over the group's inputs.
            (
                "by_z",
                QuerySpec::backward().rids([group]).aggregate(
                    &["v_bin"],
                    vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")],
                ),
            )
        } else {
            // Forward trace: which bars does this base row feed?
            let rid = self.rng.gen_range(0..self.n_rows) as u32;
            ("by_z", QuerySpec::forward().rids([rid]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_snapshot_serves_every_mix_shape() {
        let snapshot = demo_snapshot(2_000, 50, 7).expect("demo snapshot");
        assert_eq!(snapshot.view_names(), vec!["by_bin", "by_z"]);
        let n_groups = snapshot.view("by_z").unwrap().output().len();
        let mut mix = QueryMix::new(n_groups, 2_000, 11);
        for _ in 0..200 {
            let (view, spec) = mix.next_query();
            let result = snapshot.execute(view, &spec).expect("mix query executes");
            assert!(result.rids.len() <= 2_000);
        }
    }

    #[test]
    fn paged_snapshot_serves_the_mix_and_prices_pages() {
        // A budget of ~25% of the raw numeric bytes forces a real paged
        // layout behind the snapshot.
        let rows = 2_000usize;
        let snapshot = demo_snapshot_paged(rows, 50, 7, rows * 4 * 8 / 4).expect("paged snapshot");
        let n_groups = snapshot.view("by_z").unwrap().output().len();
        let mut mix = QueryMix::new(n_groups, rows, 11);
        for _ in 0..100 {
            let (view, spec) = mix.next_query();
            snapshot.execute(view, &spec).expect("mix query executes");
        }
        // Served EXPLAINs now carry the I/O model: residency is present and
        // the crossfilter shape charges strictly fewer pages under pruning.
        let spec = QuerySpec::backward()
            .rids([0])
            .filter(Expr::col("v_bin").eq(Expr::lit(3)))
            .aggregate(&["v_bin"], vec![AggExpr::count("cnt")]);
        let explain = snapshot.explain("by_z", &spec).expect("explain");
        assert!(explain.residency.is_some());
        let pruned = explain
            .candidate_pages(smoke_planner::Strategy::PartitionPruned)
            .unwrap();
        let eager = explain
            .candidate_pages(smoke_planner::Strategy::EagerTrace)
            .unwrap();
        assert!(
            pruned < eager,
            "pruning must skip pages in served plans: {pruned} vs {eager}"
        );
        // The resident demo snapshot serves the same shape without a model.
        let resident = demo_snapshot(rows, 50, 7).expect("resident snapshot");
        let explain = resident.explain("by_z", &spec).expect("explain");
        assert!(explain.residency.is_none());
    }

    #[test]
    fn mix_is_skewed_toward_hot_groups() {
        let mut mix = QueryMix::new(100, 1_000, 3);
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            let (_, spec) = mix.next_query();
            if let smoke_planner::wire::SelectionSpec::Rids(rids) = &spec.selection {
                if spec.direction == smoke_planner::Direction::Backward
                    || spec.direction == smoke_planner::Direction::MultiView
                {
                    total += 1;
                    if rids.iter().all(|&r| r < 10) {
                        hot += 1;
                    }
                }
            }
        }
        // Zipf(theta=1) concentrates well over half the mass in the top 10%.
        assert!(hot * 2 > total, "hot={hot} total={total}");
    }
}
