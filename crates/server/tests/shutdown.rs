//! Graceful shutdown: in-flight sessions drain — an admitted request is
//! always answered — while new work is refused with `shutting_down`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use smoke_planner::wire::QuerySpec;
use smoke_server::{demo_snapshot, Client, Reply, Server, ServerConfig};

/// A request already inside the worker pool when shutdown begins still gets
/// its (correct) answer; shutdown waits for it instead of dropping it.
#[test]
fn shutdown_drains_in_flight_requests() {
    let snapshot = Arc::new(demo_snapshot(1_000, 20, 21).expect("demo snapshot"));
    let config = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let handle = Server::serve(Arc::clone(&snapshot), "127.0.0.1:0", config).expect("bind");
    let addr = handle.addr();

    // A slow request (worker sleeps 300ms) issued just before shutdown.
    let spec = QuerySpec::backward().rids([0]);
    let expected = snapshot.execute("by_z", &spec).expect("reference");
    let slow = std::thread::spawn({
        let spec = spec.clone();
        move || {
            let mut client = Client::connect(addr).expect("connect");
            client
                .set_timeout(Some(Duration::from_secs(30)))
                .expect("timeout");
            client
                .query_with_sleep("by_z", spec, 300)
                .expect("exchange")
        }
    });
    // Give the slow request time to be admitted.
    std::thread::sleep(Duration::from_millis(100));

    let start = Instant::now();
    let stats = handle.shutdown();
    // Shutdown blocked on the draining request (still sleeping when it
    // began) rather than returning instantly.
    assert!(stats.in_flight == 0, "drained: {stats:?}");

    let reply = slow.join().expect("slow client thread");
    match reply {
        Reply::Result(result) => assert_eq!(result.rids, expected.rids),
        other => panic!("in-flight request was dropped: {other:?}"),
    }
    // Sanity: the whole drain stayed bounded (no hang).
    assert!(start.elapsed() < Duration::from_secs(10));
}

/// After shutdown completes the port stops accepting connections.
#[test]
fn shutdown_releases_the_port() {
    let snapshot = Arc::new(demo_snapshot(500, 10, 21).expect("demo snapshot"));
    let handle = Server::serve(snapshot, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = handle.addr();
    handle.shutdown();
    // The accept thread is gone; a fresh connection either fails outright or
    // is never answered.
    if let Ok(mut client) = Client::connect(addr) {
        client
            .set_timeout(Some(Duration::from_millis(300)))
            .expect("timeout");
        assert!(client
            .query("by_z", QuerySpec::backward().rids([0]))
            .is_err());
    }
}
