//! The result cache keys on *normalized* queries: semantically equivalent
//! requests hit one entry, distinct requests miss.

use std::sync::Arc;
use std::time::Duration;

use smoke_core::Expr;
use smoke_planner::wire::QuerySpec;
use smoke_server::{demo_snapshot, Client, Server, ServerConfig};

/// Equivalent query spellings — permuted/duplicated rid sets, flipped
/// comparison operands, reordered conjunctions — produce one miss and then
/// only hits; a genuinely different query misses again.
#[test]
fn equivalent_queries_share_a_cache_entry() {
    let snapshot = Arc::new(demo_snapshot(1_000, 20, 21).expect("demo snapshot"));
    let handle = Server::serve(snapshot, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    let spellings = [
        QuerySpec::backward()
            .rids([3, 1, 2])
            .filter(Expr::col("v_bin").eq(Expr::lit(2))),
        QuerySpec::backward()
            .rids([1, 2, 3, 3, 1])
            .filter(Expr::col("v_bin").eq(Expr::lit(2))),
        QuerySpec::backward()
            .rids([2, 3, 1])
            .filter(Expr::lit(2).eq(Expr::col("v_bin"))),
    ];
    let baseline = handle.stats();
    let first = client
        .query("by_z", spellings[0].clone())
        .expect("exchange")
        .into_result()
        .expect("query result");
    for spelling in &spellings[1..] {
        let reply = client
            .query("by_z", spelling.clone())
            .expect("exchange")
            .into_result()
            .expect("query result");
        // Byte-identical caching implies result-identical replies.
        assert_eq!(reply.rids, first.rids);
        assert_eq!(reply.strategy, first.strategy);
    }
    let after = handle.stats();
    assert_eq!(after.cache_misses - baseline.cache_misses, 1);
    assert_eq!(after.cache_hits - baseline.cache_hits, 2);

    // A different rid set is a different key.
    client
        .query("by_z", QuerySpec::backward().rids([1, 2]))
        .expect("exchange")
        .into_result()
        .expect("query result");
    let distinct = handle.stats();
    assert_eq!(distinct.cache_misses - after.cache_misses, 1);

    // Same normalized query on a *different view* is also a different key.
    client
        .query("by_bin", QuerySpec::backward().rids([1, 2, 3]))
        .expect("exchange")
        .into_result()
        .expect("query result");
    let other_view = handle.stats();
    assert_eq!(other_view.cache_misses - distinct.cache_misses, 1);
    handle.shutdown();
}

/// Mirrored inequalities normalize to the same key (`5 < x` ≡ `x > 5`).
#[test]
fn mirrored_inequalities_hit() {
    let snapshot = Arc::new(demo_snapshot(1_000, 20, 21).expect("demo snapshot"));
    let handle = Server::serve(snapshot, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    let a = QuerySpec::backward()
        .rids([0])
        .filter(Expr::lit(5).lt(Expr::col("v")));
    let b = QuerySpec::backward()
        .rids([0])
        .filter(Expr::col("v").gt(Expr::lit(5)));
    assert_eq!(a.cache_key(), b.cache_key());

    let baseline = handle.stats();
    client
        .query("by_z", a)
        .expect("exchange")
        .into_result()
        .expect("query result");
    client
        .query("by_z", b)
        .expect("exchange")
        .into_result()
        .expect("query result");
    let after = handle.stats();
    assert_eq!(after.cache_misses - baseline.cache_misses, 1);
    assert_eq!(after.cache_hits - baseline.cache_hits, 1);
    handle.shutdown();
}

/// With the cache disabled (capacity 0) every request executes; replies stay
/// correct and counters record only misses.
#[test]
fn zero_capacity_cache_still_serves_correctly() {
    let snapshot = Arc::new(demo_snapshot(1_000, 20, 21).expect("demo snapshot"));
    let config = ServerConfig {
        cache_capacity: 0,
        ..ServerConfig::default()
    };
    let handle = Server::serve(Arc::clone(&snapshot), "127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    let spec = QuerySpec::backward().rids([0]);
    let expected = snapshot.execute("by_z", &spec).expect("reference");
    for _ in 0..3 {
        let got = client
            .query("by_z", spec.clone())
            .expect("exchange")
            .into_result()
            .expect("query result");
        assert_eq!(got.rids, expected.rids);
    }
    let stats = handle.stats();
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, 3);
    handle.shutdown();
}
