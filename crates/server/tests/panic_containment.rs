//! Worker panic containment: a query that panics mid-execution answers its
//! session with a typed `exec` error, and the worker thread survives to
//! serve the next request.
//!
//! The request path is panic-free by lint rule `no-panic-on-request-path`,
//! so the panic is injected via the `server::worker::execute` fail point
//! (`smoke_core::failpoint`). Fail points are process-global one-shots,
//! which is why this test lives in its own integration-test binary: no
//! other test's worker can consume the armed point.

use std::sync::Arc;
use std::time::Duration;

use smoke_core::failpoint;
use smoke_planner::wire::QuerySpec;
use smoke_planner::Strategy;
use smoke_server::{demo_snapshot, Client, ErrorCode, Reply, Server, ServerConfig};

#[test]
fn panicking_job_answers_exec_error_and_the_worker_survives() {
    let snapshot = Arc::new(demo_snapshot(1_000, 20, 21).expect("demo snapshot"));
    // One worker: if the panic killed it, no later query could ever answer.
    let config = ServerConfig {
        workers: 1,
        queue_depth: 8,
        cache_capacity: 16,
    };
    let handle = Server::serve(Arc::clone(&snapshot), "127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    // A forced-strategy query, armed to panic inside the worker.
    failpoint::arm("server::worker::execute");
    let spec = QuerySpec::backward().rids([0]).force(Strategy::EagerTrace);
    let reply = client.query("by_z", spec.clone()).expect("exchange");
    match reply {
        Reply::Error { code, message } => {
            assert_eq!(code, ErrorCode::Exec);
            assert!(
                message.contains("panicked (contained)"),
                "unexpected message: {message}"
            );
            assert!(message.contains("server::worker::execute"), "{message}");
        }
        other => panic!("expected a contained exec error, got {other:?}"),
    }

    // The fail point is one-shot; the same worker must now answer the same
    // query correctly, and the reference path must agree.
    let expected = snapshot.execute("by_z", &spec).expect("reference");
    let got = client
        .query("by_z", spec)
        .expect("exchange after panic")
        .into_result()
        .expect("query result after panic");
    assert_eq!(got.rids, expected.rids);
    assert_eq!(got.rows, expected.rows);

    // A few more queries through the single worker for good measure.
    for rid in [1u32, 2, 3] {
        let spec = QuerySpec::backward().rids([rid]);
        let got = client
            .query("by_z", spec.clone())
            .expect("exchange")
            .into_result()
            .expect("query result");
        let expected = snapshot.execute("by_z", &spec).expect("reference");
        assert_eq!(got.rids, expected.rids, "rid {rid}");
    }

    let stats = handle.shutdown();
    assert_eq!(
        stats.errors, 1,
        "exactly the contained panic counts as an error"
    );
    assert!(stats.served >= 4);
    assert_eq!(stats.in_flight, 0, "the panicked job was accounted for");
}
