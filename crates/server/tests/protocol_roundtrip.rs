//! End-to-end protocol round trips: every query shape travels the wire and
//! comes back identical to the sequential reference path
//! ([`Snapshot::execute`]).

use std::sync::Arc;
use std::time::Duration;

use smoke_core::{AggExpr, Expr};
use smoke_planner::wire::QuerySpec;
use smoke_planner::Strategy;
use smoke_server::{demo_snapshot, Client, ErrorCode, Reply, Server, ServerConfig, Snapshot};

fn start(snapshot: Arc<Snapshot>) -> smoke_server::ServerHandle {
    Server::serve(snapshot, "127.0.0.1:0", ServerConfig::default()).expect("bind ephemeral port")
}

/// Every wire query shape — plain traces, predicates, compose chains,
/// filters, aggregates, forced strategies — answers rid-for-rid identically
/// to the sequential planner.
#[test]
fn all_query_shapes_round_trip() {
    let snapshot = Arc::new(demo_snapshot(3_000, 40, 21).expect("demo snapshot"));
    let shapes: Vec<QuerySpec> = vec![
        QuerySpec::backward().rids([0]),
        QuerySpec::backward().rids([5, 1, 5, 2]),
        QuerySpec::backward().matching(Expr::col("cnt").gt(Expr::lit(20))),
        QuerySpec::forward().rids([0, 17, 999]),
        QuerySpec::multi_view().rids([1]).then_through("by_bin"),
        QuerySpec::multi_view()
            .rids([0, 2])
            .then_through("by_bin")
            .then_through("by_z"),
        QuerySpec::backward()
            .rids([1])
            .filter(Expr::col("v_bin").eq(Expr::lit(3))),
        QuerySpec::backward().rids([2]).aggregate(
            &["v_bin"],
            vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")],
        ),
        QuerySpec::backward().rids([0]).force(Strategy::EagerTrace),
        QuerySpec::backward().rids([0]).force(Strategy::LazyRewrite),
        QuerySpec::backward()
            .rids([1])
            .filter(Expr::col("v_bin").eq(Expr::lit(2)))
            .aggregate(&["v_bin"], vec![AggExpr::count("cnt")])
            .force(Strategy::PartitionPruned),
        QuerySpec::backward()
            .rids([3])
            .aggregate(
                &["v_bin"],
                vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")],
            )
            .force(Strategy::CubeHit),
    ];

    let handle = start(Arc::clone(&snapshot));
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    for spec in shapes {
        let expected = snapshot
            .execute("by_z", &spec)
            .unwrap_or_else(|e| panic!("reference path fails for {spec:?}: {e}"));
        let got = client
            .query("by_z", spec.clone())
            .expect("exchange")
            .into_result()
            .expect("query result");
        assert_eq!(got.strategy, expected.strategy, "strategy for {spec:?}");
        assert_eq!(got.rids, expected.rids, "rids for {spec:?}");
        assert_eq!(got.rows, expected.rows, "rows for {spec:?}");
    }
    handle.shutdown();
}

/// Explain and stats requests answer over the same connection as queries.
#[test]
fn explain_and_stats_share_the_session() {
    let snapshot = Arc::new(demo_snapshot(1_000, 20, 21).expect("demo snapshot"));
    let handle = start(snapshot);
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    match client
        .explain("by_z", QuerySpec::backward().rids([0]))
        .expect("exchange")
    {
        Reply::Explain(explain) => {
            let strategy = explain
                .get("strategy")
                .and_then(|s| s.as_str().map(str::to_string));
            assert!(
                strategy.is_some(),
                "explain carries a strategy: {explain:?}"
            );
            assert!(explain.get("candidates").is_some());
        }
        other => panic!("expected an explain, got {other:?}"),
    }

    let _ = client
        .query("by_z", QuerySpec::backward().rids([0]))
        .expect("exchange");
    match client.stats().expect("exchange") {
        Reply::Stats(stats) => {
            let served = stats.get("served").and_then(|s| s.as_i64()).unwrap_or(0);
            assert!(served >= 2, "stats sees earlier requests: {stats:?}");
            let views = stats.get("views").and_then(|v| v.as_arr());
            assert_eq!(views.map(<[_]>::len), Some(2));
        }
        other => panic!("expected stats, got {other:?}"),
    }
    handle.shutdown();
}

/// Typed errors: unknown views, infeasible forced strategies, and unknown
/// chain entries come back as error replies, not hangs or disconnects.
#[test]
fn errors_are_typed_and_the_session_survives_them() {
    let snapshot = Arc::new(demo_snapshot(1_000, 20, 21).expect("demo snapshot"));
    let handle = start(snapshot);
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    match client
        .query("nope", QuerySpec::backward().rids([0]))
        .expect("exchange")
    {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownView),
        other => panic!("expected unknown_view, got {other:?}"),
    }
    match client
        .query(
            "by_z",
            QuerySpec::multi_view().rids([0]).then_through("missing"),
        )
        .expect("exchange")
    {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::Exec),
        other => panic!("expected exec error, got {other:?}"),
    }
    // A forced strategy the view cannot satisfy (no cube-matching aggregate).
    match client
        .query(
            "by_bin",
            QuerySpec::backward().rids([0]).force(Strategy::CubeHit),
        )
        .expect("exchange")
    {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::Exec),
        other => panic!("expected exec error, got {other:?}"),
    }
    // The session is still usable after errors.
    let ok = client
        .query("by_z", QuerySpec::backward().rids([0]))
        .expect("exchange");
    assert!(matches!(ok, Reply::Result(_)));
    handle.shutdown();
}
