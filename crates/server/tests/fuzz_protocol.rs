//! Fuzz-ish protocol hardening: random byte frames, mutated request bodies,
//! truncated and oversized length prefixes. The decode path must answer
//! every one with a typed error (`bad_request`) or a clean connection close
//! — never a panic, never a hang. Deterministically seeded so failures
//! reproduce.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smoke_planner::wire::QuerySpec;
use smoke_server::{demo_snapshot, Client, Request, Server, ServerConfig, ServerHandle};

const ROUNDS: usize = 400;

/// Random printable-ASCII garbage (always valid UTF-8, often JSON-ish
/// because braces/quotes/colons are overweighted).
fn ascii_garbage(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    let jsonish = br#"{}[]\":,truefalsenull0123456789.-"#;
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.5) {
                jsonish[rng.gen_range(0..jsonish.len())] as char
            } else {
                rng.gen_range(0x20u8..0x7f) as char
            }
        })
        .collect()
}

/// A pool of valid request bodies to mutate.
fn valid_bodies() -> Vec<String> {
    vec![
        Request::Stats.encode(),
        Request::Query {
            view: "by_z".into(),
            spec: QuerySpec::backward().rids([4, 2, 0]),
            sleep_ms: 0,
        }
        .encode(),
        Request::Explain {
            view: "by_bin".into(),
            spec: QuerySpec::multi_view().rids([1]).then_through("by_bin"),
        }
        .encode(),
    ]
}

/// Truncations, byte flips, and splices of valid bodies — the mutations a
/// broken client or proxy actually produces.
fn mutate(rng: &mut StdRng, body: &str) -> String {
    let mut bytes = body.as_bytes().to_vec();
    match rng.gen_range(0..3) {
        0 => {
            let at = rng.gen_range(0..bytes.len() + 1);
            bytes.truncate(at);
        }
        1 => {
            if !bytes.is_empty() {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = rng.gen_range(0x20..0x7f);
            }
        }
        _ => {
            let at = rng.gen_range(0..bytes.len() + 1);
            let insert = ascii_garbage(rng, 8);
            bytes.splice(at..at, insert.bytes());
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Direct decode fuzz: `Request::decode` (which drags `QuerySpec::from_json`
/// and the JSON parser along) returns `Ok` or a typed `Err` on every input.
/// A panic anywhere in the decode stack fails the test.
#[test]
fn request_decode_never_panics_on_garbage() {
    let mut rng = StdRng::seed_from_u64(0xF422);
    let bodies = valid_bodies();
    for round in 0..ROUNDS {
        let input = if round % 2 == 0 {
            ascii_garbage(&mut rng, 96)
        } else {
            let base = &bodies[round % bodies.len()];
            mutate(&mut rng, base)
        };
        // Err is expected for almost all inputs; Ok is fine (a mutation can
        // leave a valid request). Only a panic can fail this test.
        let _ = Request::decode(&input);
    }
}

fn start_server() -> ServerHandle {
    let snapshot = Arc::new(demo_snapshot(500, 10, 21).expect("demo snapshot"));
    let config = ServerConfig {
        workers: 2,
        queue_depth: 8,
        cache_capacity: 16,
    };
    Server::serve(snapshot, "127.0.0.1:0", config).expect("bind")
}

fn raw_conn(handle: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream
}

/// Reads one length-prefixed frame off a raw socket; `None` on close.
fn read_raw_frame(stream: &mut TcpStream) -> Option<String> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).ok()?;
    let len = u32::from_be_bytes(len_buf) as usize;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).ok()?;
    Some(String::from_utf8_lossy(&body).into_owned())
}

fn send_frame(stream: &mut TcpStream, body: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(body.len() as u32).to_be_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A live server answers every well-framed garbage body with a typed
/// `bad_request` error on the same connection, and closes the connection on
/// frames it cannot even read (bad UTF-8, oversized announcements,
/// truncated prefixes) — then keeps serving everyone else.
#[test]
fn live_server_survives_random_frames_and_framing_attacks() {
    let handle = start_server();
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let bodies = valid_bodies();

    // Well-framed garbage bodies: every one gets a bad_request reply (or,
    // for mutations that stay valid, an ok/typed-error reply) — the session
    // must never just die mid-frame.
    let mut stream = raw_conn(&handle);
    for round in 0..60 {
        let body = if round % 2 == 0 {
            ascii_garbage(&mut rng, 64)
        } else {
            mutate(&mut rng, &bodies[round % bodies.len()])
        };
        send_frame(&mut stream, body.as_bytes()).expect("send garbage frame");
        let reply = read_raw_frame(&mut stream).unwrap_or_else(|| {
            panic!("server closed the session on a well-formed frame: {body:?}")
        });
        assert!(
            reply.contains("\"status\""),
            "reply is not a protocol response: {reply}"
        );
    }
    drop(stream);

    // Non-UTF-8 body: read_frame rejects it; the connection closes cleanly.
    let mut stream = raw_conn(&handle);
    send_frame(&mut stream, &[0xff, 0xfe, 0x80, 0x00, 0x41]).expect("send non-utf8");
    assert!(
        read_raw_frame(&mut stream).is_none(),
        "non-UTF-8 frames should close the connection"
    );

    // Oversized length announcement: dropped without allocating the body.
    let mut stream = raw_conn(&handle);
    stream
        .write_all(&u32::MAX.to_be_bytes())
        .expect("send oversized prefix");
    stream.flush().expect("flush");
    assert!(
        read_raw_frame(&mut stream).is_none(),
        "oversized announcements should close the connection"
    );

    // Truncated length prefix: write two bytes and shut the write half.
    let mut stream = raw_conn(&handle);
    stream
        .write_all(&[0x00, 0x00])
        .expect("send partial prefix");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("shutdown write half");
    assert!(
        read_raw_frame(&mut stream).is_none(),
        "truncated prefixes should close the connection"
    );

    // The server is still healthy: a real client gets a real answer.
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let result = client
        .query("by_z", QuerySpec::backward().rids([0]))
        .expect("exchange")
        .into_result()
        .expect("query result after fuzzing");
    assert!(!result.rids.is_empty());

    let stats = handle.shutdown();
    assert!(stats.served >= 1, "the post-fuzz query was served");
    assert_eq!(stats.in_flight, 0);
}
