//! The soak harness: concurrent clients against one server, with every
//! response checked rid-for-rid against the sequential planner, plus an
//! overload scenario proving admission control sheds instead of hanging.
//!
//! CI runs this test as a *blocking* step (`cargo test -p smoke-server
//! --test soak`): it is the executable claim that concurrency never changes
//! an answer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use smoke_planner::wire::QuerySpec;
use smoke_server::{demo_snapshot, Client, QueryMix, Reply, Server, ServerConfig};

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 60;

/// N concurrent clients issue the zipf-skewed interactive mix; every reply
/// must match the single-threaded reference path exactly (strategy, rids,
/// and rows), cache hits included.
#[test]
fn concurrent_responses_match_the_sequential_planner() {
    let rows = 4_000;
    let groups = 50;
    let snapshot = Arc::new(demo_snapshot(rows, groups, 21).expect("demo snapshot"));
    let n_groups = snapshot.view("by_z").expect("view").output().len();
    let handle = Server::serve(
        Arc::clone(&snapshot),
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            queue_depth: 32,
            cache_capacity: 64,
        },
    )
    .expect("bind");
    let addr = handle.addr();

    let checked = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let snapshot = Arc::clone(&snapshot);
            let checked = Arc::clone(&checked);
            std::thread::spawn(move || {
                let mut mix = QueryMix::new(n_groups, rows, 100 + c as u64);
                let mut client = Client::connect(addr).expect("connect");
                client
                    .set_timeout(Some(Duration::from_secs(30)))
                    .expect("timeout");
                for _ in 0..QUERIES_PER_CLIENT {
                    let (view, spec) = mix.next_query();
                    let expected = snapshot.execute(view, &spec).expect("reference path");
                    match client.query(view, spec.clone()).expect("exchange") {
                        Reply::Result(got) => {
                            assert_eq!(got.strategy, expected.strategy, "strategy of {spec:?}");
                            assert_eq!(got.rids, expected.rids, "rids of {spec:?}");
                            assert_eq!(got.rows, expected.rows, "rows of {spec:?}");
                            checked.fetch_add(1, Ordering::Relaxed);
                        }
                        Reply::Busy(_) => {
                            // Admission control may shed under this load;
                            // shedding is a legal answer, silence is not.
                        }
                        other => panic!("unexpected reply: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    let total = (CLIENTS * QUERIES_PER_CLIENT) as u64;
    let ok = checked.load(Ordering::Relaxed);
    let stats = handle.shutdown();
    assert_eq!(
        ok + stats.shed,
        total,
        "every request was answered: {stats:?}"
    );
    // The queue is deep relative to this load; the vast majority must have
    // been served, and the skewed mix must have produced real cache hits.
    assert!(ok * 10 >= total * 9, "served {ok}/{total} ({stats:?})");
    assert!(
        stats.cache_hits > 0,
        "skewed mix never hit the cache: {stats:?}"
    );
}

/// Overload: one worker, a depth-1 queue, and slow (50ms) jobs from many
/// concurrent clients. Admission control must shed with `server_busy` —
/// quickly — rather than queueing unboundedly or hanging, and every
/// admitted request must still be answered correctly.
#[test]
fn overload_sheds_instead_of_hanging() {
    let snapshot = Arc::new(demo_snapshot(1_000, 20, 21).expect("demo snapshot"));
    let handle = Server::serve(
        Arc::clone(&snapshot),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            cache_capacity: 0, // no cache: every request must be admitted
        },
    )
    .expect("bind");
    let addr = handle.addr();

    let spec = QuerySpec::backward().rids([0]);
    let expected = snapshot.execute("by_z", &spec).expect("reference");
    let busy = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let threads: Vec<_> = (0..6)
        .map(|_| {
            let spec = spec.clone();
            let expected_rids = expected.rids.clone();
            let busy = Arc::clone(&busy);
            let served = Arc::clone(&served);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .set_timeout(Some(Duration::from_secs(30)))
                    .expect("timeout");
                for _ in 0..5 {
                    match client
                        .query_with_sleep("by_z", spec.clone(), 50)
                        .expect("exchange")
                    {
                        Reply::Result(got) => {
                            assert_eq!(got.rids, expected_rids);
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Reply::Busy(_) => {
                            busy.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unexpected reply: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let elapsed = start.elapsed();
    let stats = handle.shutdown();

    // 6 clients × 5 requests against one worker and a depth-1 queue: most
    // requests MUST be shed, and a shed reply is immediate — the run cannot
    // take anywhere near 30 × 50ms of serialized work.
    assert!(
        busy.load(Ordering::Relaxed) > 0,
        "nothing was shed: {stats:?}"
    );
    assert!(
        served.load(Ordering::Relaxed) > 0,
        "nothing was served: {stats:?}"
    );
    assert_eq!(
        served.load(Ordering::Relaxed),
        stats.served,
        "served counts agree"
    );
    assert_eq!(
        busy.load(Ordering::Relaxed),
        stats.shed,
        "shed counts agree"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "overload must shed fast, took {elapsed:?}"
    );
}
