//! Zipfian microbenchmark tables (paper §5 "Data").
//!
//! `zipf_{θ,n,g}(id, z, v)`: `z` is an integer drawn from a zipfian
//! distribution over `g` distinct values with skew `θ`; `v` is a double drawn
//! uniformly from `[0, 100]`. Tuple widths are deliberately small to stress
//! worst-case lineage capture overheads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smoke_storage::{Column, DataType, Field, Relation, Schema};

/// Parameters of a zipfian microbenchmark table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfSpec {
    /// Zipfian skew θ (0 = uniform).
    pub theta: f64,
    /// Number of tuples.
    pub rows: usize,
    /// Number of distinct `z` values (groups).
    pub groups: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ZipfSpec {
    fn default() -> Self {
        ZipfSpec {
            theta: 1.0,
            rows: 10_000,
            groups: 100,
            seed: 42,
        }
    }
}

/// A seeded zipfian sampler over `1..=n` values with skew `theta`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler by precomputing the cumulative distribution.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf domain must be non-empty");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in weights.iter_mut() {
            acc += *w / total;
            *w = acc;
        }
        ZipfSampler { cdf: weights }
    }

    /// Samples a value in `[1, n]` (1 is the most popular value).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

/// Generates the microbenchmark relation `zipf(id, z, v)`.
pub fn zipf_table(spec: &ZipfSpec) -> Relation {
    zipf_table_named(spec, "zipf")
}

/// Generates a zipfian table with a custom relation name (the M:N join
/// benchmarks use two differently-named instances).
pub fn zipf_table_named(spec: &ZipfSpec, name: &str) -> Relation {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let sampler = ZipfSampler::new(spec.groups.max(1), spec.theta);
    let mut ids = Vec::with_capacity(spec.rows);
    let mut zs = Vec::with_capacity(spec.rows);
    let mut vs = Vec::with_capacity(spec.rows);
    for i in 0..spec.rows {
        ids.push(i as i64);
        zs.push(sampler.sample(&mut rng) as i64);
        vs.push(rng.gen_range(0.0..100.0));
    }
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("z", DataType::Int),
        Field::new("v", DataType::Float),
    ])
    .expect("static schema");
    Relation::from_columns(
        name,
        schema,
        vec![Column::Int(ids), Column::Int(zs), Column::Float(vs)],
    )
    .expect("columns match schema")
}

/// Generates `zipf(id, z, v, v_bin)`: the microbenchmark relation extended
/// with `v_bin`, the value `v` discretized into `bins` equi-width buckets
/// over `[0, 100)`.
///
/// `v_bin` is the categorical partition attribute the workload-aware
/// experiments (data skipping, group-by push-down, and the planner's
/// strategy comparison) template their lineage-consuming queries on; the
/// paper notes such attributes are categorical or discretized (§4.2). The
/// first three columns are [`zipf_table`]'s output itself, so
/// `zipf_table_binned(spec, b)` agrees with `zipf_table(spec)` on `id`,
/// `z`, and `v` by construction.
pub fn zipf_table_binned(spec: &ZipfSpec, bins: usize) -> Relation {
    assert!(bins > 0, "bin count must be positive");
    let plain = zipf_table(spec);
    let width = 100.0 / bins as f64;
    let vbins: Vec<i64> = plain
        .column_by_name("v")
        .expect("zipf_table always has v")
        .as_float()
        .iter()
        .map(|&v| ((v / width) as i64).min(bins as i64 - 1))
        .collect();
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("z", DataType::Int),
        Field::new("v", DataType::Float),
        Field::new("v_bin", DataType::Int),
    ])
    .expect("static schema");
    Relation::from_columns(
        "zipf",
        schema,
        vec![
            plain.column(0).clone(),
            plain.column(1).clone(),
            plain.column(2).clone(),
            Column::Int(vbins),
        ],
    )
    .expect("columns match schema")
}

/// Generates the `gids(id, label)` dimension table referenced by the pk-fk
/// join microbenchmark: one row per distinct group value.
pub fn gids_table(groups: usize) -> Relation {
    let ids: Vec<i64> = (1..=groups as i64).collect();
    let labels: Vec<String> = (1..=groups).map(|g| format!("group_{g}")).collect();
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("label", DataType::Str),
    ])
    .expect("static schema");
    Relation::from_columns("gids", schema, vec![Column::Int(ids), Column::Str(labels)])
        .expect("columns match schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn table_has_requested_shape() {
        let spec = ZipfSpec {
            rows: 1000,
            groups: 10,
            theta: 1.0,
            seed: 7,
        };
        let t = zipf_table(&spec);
        assert_eq!(t.len(), 1000);
        assert_eq!(t.schema().names(), vec!["id", "z", "v"]);
        let zs = t.column_by_name("z").unwrap().as_int();
        assert!(zs.iter().all(|&z| (1..=10).contains(&z)));
        let vs = t.column_by_name("v").unwrap().as_float();
        assert!(vs.iter().all(|&v| (0.0..100.0).contains(&v)));
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = ZipfSpec::default();
        assert_eq!(zipf_table(&spec), zipf_table(&spec));
        let other = ZipfSpec { seed: 43, ..spec };
        assert_ne!(zipf_table(&spec), zipf_table(&other));
    }

    #[test]
    fn skew_concentrates_mass_on_popular_values() {
        let skewed = zipf_table(&ZipfSpec {
            theta: 1.5,
            rows: 20_000,
            groups: 100,
            seed: 1,
        });
        let uniform = zipf_table(&ZipfSpec {
            theta: 0.0,
            rows: 20_000,
            groups: 100,
            seed: 1,
        });
        let count_top = |rel: &Relation| {
            let mut counts: HashMap<i64, usize> = HashMap::new();
            for &z in rel.column_by_name("z").unwrap().as_int() {
                *counts.entry(z).or_insert(0) += 1;
            }
            *counts.get(&1).unwrap_or(&0)
        };
        assert!(count_top(&skewed) > 3 * count_top(&uniform));
    }

    #[test]
    fn uniform_covers_all_groups() {
        let t = zipf_table(&ZipfSpec {
            theta: 0.0,
            rows: 5_000,
            groups: 50,
            seed: 3,
        });
        let distinct: std::collections::HashSet<i64> = t
            .column_by_name("z")
            .unwrap()
            .as_int()
            .iter()
            .copied()
            .collect();
        assert_eq!(distinct.len(), 50);
    }

    #[test]
    fn binned_table_agrees_with_plain_table_and_bounds_bins() {
        let spec = ZipfSpec {
            rows: 2_000,
            groups: 20,
            theta: 1.0,
            seed: 11,
        };
        let plain = zipf_table(&spec);
        let binned = zipf_table_binned(&spec, 4);
        assert_eq!(binned.schema().names(), vec!["id", "z", "v", "v_bin"]);
        assert_eq!(
            plain.column_by_name("z").unwrap().as_int(),
            binned.column_by_name("z").unwrap().as_int()
        );
        assert_eq!(
            plain.column_by_name("v").unwrap().as_float(),
            binned.column_by_name("v").unwrap().as_float()
        );
        let vs = binned.column_by_name("v").unwrap().as_float();
        let bins = binned.column_by_name("v_bin").unwrap().as_int();
        let mut seen = std::collections::HashSet::new();
        for (&v, &b) in vs.iter().zip(bins) {
            assert!((0..4).contains(&b));
            assert_eq!(b, ((v / 25.0) as i64).min(3));
            seen.insert(b);
        }
        // 2000 uniform draws cover every bucket.
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn gids_is_a_primary_key_table() {
        let g = gids_table(100);
        assert_eq!(g.len(), 100);
        let ids: std::collections::HashSet<i64> = g
            .column_by_name("id")
            .unwrap()
            .as_int()
            .iter()
            .copied()
            .collect();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn sampler_respects_domain_bounds() {
        let sampler = ZipfSampler::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let s = sampler.sample(&mut rng);
            assert!((1..=5).contains(&s));
        }
    }
}
