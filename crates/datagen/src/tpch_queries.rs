//! Plans for the TPC-H queries used in the paper's evaluation (Q1, Q3, Q10,
//! Q12) plus the Q1 drill-down variants of §6.4 / Appendix C.
//!
//! The plans are left-deep with the primary-key side as the build side of
//! every join, matching the paper's hash-based execution (no sorts; `ORDER
//! BY` clauses are omitted, as in the paper).

use smoke_core::{microbenchmark_aggs, AggExpr, Expr, LogicalPlan, PlanBuilder};

use crate::tpch::DATE_DOMAIN_DAYS;

/// The cut-off used by Q1's shipdate predicate (`l_shipdate <= '1998-09-02'`);
/// expressed as a day offset covering ~98% of the date domain.
pub fn q1_shipdate_cutoff() -> i64 {
    (DATE_DOMAIN_DAYS as f64 * 0.98) as i64
}

/// TPC-H Q1: pricing summary report over `lineitem`.
pub fn q1() -> LogicalPlan {
    PlanBuilder::scan("lineitem")
        .select(Expr::col("l_shipdate").lt(Expr::lit(q1_shipdate_cutoff())))
        .group_by(
            &["l_returnflag", "l_linestatus"],
            vec![
                AggExpr::sum("l_quantity", "sum_qty"),
                AggExpr::sum("l_extendedprice", "sum_base_price"),
                AggExpr::sum("l_discprice", "sum_disc_price"),
                AggExpr::sum("l_charge", "sum_charge"),
                AggExpr::avg("l_quantity", "avg_qty"),
                AggExpr::avg("l_extendedprice", "avg_price"),
                AggExpr::avg("l_discount", "avg_disc"),
                AggExpr::count("count_order"),
            ],
        )
        .build()
}

/// TPC-H Q3: shipping-priority revenue per order for the BUILDING segment.
pub fn q3() -> LogicalPlan {
    let cutoff = DATE_DOMAIN_DAYS / 2;
    PlanBuilder::scan("customer")
        .select(Expr::col("c_mktsegment").eq(Expr::lit("BUILDING")))
        .join(
            PlanBuilder::scan("orders").select(Expr::col("o_orderdate").lt(Expr::lit(cutoff))),
            &["c_custkey"],
            &["o_custkey"],
        )
        .join(
            PlanBuilder::scan("lineitem").select(Expr::col("l_shipdate").gt(Expr::lit(cutoff))),
            &["o_orderkey"],
            &["l_orderkey"],
        )
        .group_by(
            &["o_orderkey", "o_orderdate", "o_shippriority"],
            vec![AggExpr::sum("l_discprice", "revenue")],
        )
        .build()
}

/// TPC-H Q10: returned-item revenue per customer over a quarter.
pub fn q10() -> LogicalPlan {
    let start = DATE_DOMAIN_DAYS / 3;
    let end = start + 90;
    PlanBuilder::scan("nation")
        .join(
            PlanBuilder::scan("customer"),
            &["n_nationkey"],
            &["c_nationkey"],
        )
        .join(
            PlanBuilder::scan("orders").select(
                Expr::col("o_orderdate")
                    .ge(Expr::lit(start))
                    .and(Expr::col("o_orderdate").lt(Expr::lit(end))),
            ),
            &["c_custkey"],
            &["o_custkey"],
        )
        .join(
            PlanBuilder::scan("lineitem").select(Expr::col("l_returnflag").eq(Expr::lit("R"))),
            &["o_orderkey"],
            &["l_orderkey"],
        )
        .group_by(
            &["c_custkey", "n_name"],
            vec![
                AggExpr::sum("l_discprice", "revenue"),
                AggExpr::count("items"),
            ],
        )
        .build()
}

/// TPC-H Q12: shipping-mode / order-priority counts for MAIL and SHIP.
pub fn q12() -> LogicalPlan {
    let start = DATE_DOMAIN_DAYS / 4;
    let end = start + 365;
    PlanBuilder::scan("orders")
        .join(
            PlanBuilder::scan("lineitem").select(
                Expr::col("l_shipmode")
                    .in_list(vec!["MAIL".into(), "SHIP".into()])
                    .and(Expr::col("l_shipdate").ge(Expr::lit(start)))
                    .and(Expr::col("l_shipdate").lt(Expr::lit(end))),
            ),
            &["o_orderkey"],
            &["l_orderkey"],
        )
        .group_by(
            &["l_shipmode"],
            vec![
                AggExpr::count("line_count"),
                AggExpr::sum("o_shippriority", "priority_sum"),
            ],
        )
        .build()
}

/// All four evaluation queries, with their paper names.
pub fn evaluation_queries() -> Vec<(&'static str, LogicalPlan)> {
    vec![("Q1", q1()), ("Q3", q3()), ("Q10", q10()), ("Q12", q12())]
}

/// The drill-down aggregates used by the Q1a/Q1b/Q1c lineage-consuming
/// queries of §6.4: the same multi-statistic list as the microbenchmark.
pub fn drilldown_aggs() -> Vec<AggExpr> {
    microbenchmark_aggs("l_extendedprice")
}

/// Group-by keys of Q1a: drill down into a Q1 group by ship year and month.
pub fn q1a_keys() -> Vec<String> {
    vec!["l_shipyear".to_string(), "l_shipmonth".to_string()]
}

/// Templated predicate attributes of Q1b (data-skipping experiment).
pub fn q1b_partition_attrs() -> Vec<String> {
    vec!["l_shipmode".to_string(), "l_shipinstruct".to_string()]
}

/// Extra group-by attribute of Q1c (aggregation push-down experiment).
pub fn q1c_extra_key() -> String {
    "l_tax".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::TpchSpec;
    use smoke_core::{CaptureMode, Executor};

    fn db() -> smoke_storage::Database {
        TpchSpec {
            scale_factor: 0.001,
            seed: 11,
        }
        .generate()
    }

    #[test]
    fn q1_produces_four_groups() {
        let out = Executor::new(CaptureMode::Inject)
            .execute(&q1(), &db())
            .unwrap();
        assert_eq!(out.relation.len(), 4);
        assert!(out.lineage.table("lineitem").is_some());
    }

    #[test]
    fn q3_reads_three_relations() {
        let plan = q3();
        assert_eq!(plan.base_tables(), vec!["customer", "orders", "lineitem"]);
        let out = Executor::new(CaptureMode::Inject)
            .execute(&plan, &db())
            .unwrap();
        // Every group's backward lineage into customer is a single customer.
        for o in 0..out.relation.len().min(10) as u32 {
            assert_eq!(out.lineage.backward(&[o], "customer").len(), 1);
        }
    }

    #[test]
    fn q10_reads_four_relations_including_nation() {
        let plan = q10();
        assert_eq!(
            plan.base_tables(),
            vec!["nation", "customer", "orders", "lineitem"]
        );
        let out = Executor::new(CaptureMode::Inject)
            .execute(&plan, &db())
            .unwrap();
        assert!(!out.relation.is_empty());
        assert_eq!(out.lineage.tables().len(), 4);
    }

    #[test]
    fn q12_groups_by_ship_mode() {
        let out = Executor::new(CaptureMode::Inject)
            .execute(&q12(), &db())
            .unwrap();
        assert!(out.relation.len() <= 2);
        for rid in 0..out.relation.len() {
            let mode = out.relation.value(rid, 0);
            assert!(matches!(
                mode,
                smoke_storage::Value::Str(ref s) if s == "MAIL" || s == "SHIP"
            ));
        }
    }

    #[test]
    fn baseline_and_inject_agree_on_all_queries() {
        let db = db();
        for (name, plan) in evaluation_queries() {
            let base = Executor::new(CaptureMode::Baseline)
                .execute(&plan, &db)
                .unwrap();
            let inject = Executor::new(CaptureMode::Inject)
                .execute(&plan, &db)
                .unwrap();
            assert_eq!(base.relation, inject.relation, "{name} results diverge");
        }
    }
}
