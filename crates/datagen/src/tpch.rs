//! TPC-H-like data generator (paper §5, §6.2, §6.4).
//!
//! Generates the four relations touched by TPC-H Q1, Q3, Q10, and Q12 —
//! `lineitem`, `orders`, `customer`, and `nation` — with the columns those
//! queries reference, proper pk-fk relationships, and the group cardinalities
//! that matter for the evaluation (e.g. Q1 produces exactly four
//! `(l_returnflag, l_linestatus)` groups). Scale factor 1 corresponds to the
//! official 6M-row `lineitem`; the generator accepts any (fractional) scale.
//!
//! Because the Smoke engine's aggregates operate over columns, the arithmetic
//! expressions of Q1 (`l_extendedprice * (1 - l_discount)` and
//! `… * (1 + l_tax)`) are materialized as the derived columns `l_discprice`
//! and `l_charge` at generation time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smoke_storage::{Column, DataType, Database, Field, Relation, Schema};

/// The 25 TPC-H nations (by key).
pub const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

/// Ship modes used by `l_shipmode`.
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Ship instructions used by `l_shipinstruct`.
pub const SHIP_INSTRUCTS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Market segments used by `c_mktsegment`.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpchSpec {
    /// Scale factor (1.0 ≈ 6M lineitem rows). The evaluation harness defaults
    /// to a laptop-scale fraction.
    pub scale_factor: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchSpec {
    fn default() -> Self {
        TpchSpec {
            scale_factor: 0.005,
            seed: 7,
        }
    }
}

impl TpchSpec {
    /// A spec with the given scale factor.
    pub fn with_scale(scale_factor: f64) -> Self {
        TpchSpec {
            scale_factor,
            ..Default::default()
        }
    }

    /// Number of `lineitem` rows at this scale.
    pub fn lineitem_rows(&self) -> usize {
        ((6_000_000.0 * self.scale_factor) as usize).max(100)
    }

    /// Number of `orders` rows at this scale.
    pub fn orders_rows(&self) -> usize {
        ((1_500_000.0 * self.scale_factor) as usize).max(25)
    }

    /// Number of `customer` rows at this scale.
    pub fn customer_rows(&self) -> usize {
        ((150_000.0 * self.scale_factor) as usize).max(10)
    }

    /// Generates the full database (lineitem, orders, customer, nation).
    pub fn generate(&self) -> Database {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut db = Database::new();
        db.register(generate_nation()).expect("fresh catalog");
        db.register(generate_customer(self.customer_rows(), &mut rng))
            .expect("fresh catalog");
        db.register(generate_orders(
            self.orders_rows(),
            self.customer_rows(),
            &mut rng,
        ))
        .expect("fresh catalog");
        db.register(generate_lineitem(
            self.lineitem_rows(),
            self.orders_rows(),
            &mut rng,
        ))
        .expect("fresh catalog");
        db
    }
}

/// Total number of day offsets in the generated date domain (1992-01-01 ..
/// 1998-12-01, roughly).
pub const DATE_DOMAIN_DAYS: i64 = 2520;

fn generate_nation() -> Relation {
    let keys: Vec<i64> = (0..NATIONS.len() as i64).collect();
    let names: Vec<String> = NATIONS.iter().map(|s| s.to_string()).collect();
    let schema = Schema::new(vec![
        Field::new("n_nationkey", DataType::Int),
        Field::new("n_name", DataType::Str),
    ])
    .expect("static schema");
    Relation::from_columns(
        "nation",
        schema,
        vec![Column::Int(keys), Column::Str(names)],
    )
    .expect("columns match schema")
}

fn generate_customer(rows: usize, rng: &mut StdRng) -> Relation {
    let keys: Vec<i64> = (0..rows as i64).collect();
    let mut segments = Vec::with_capacity(rows);
    let mut nations = Vec::with_capacity(rows);
    let mut acctbal = Vec::with_capacity(rows);
    for _ in 0..rows {
        segments.push(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_string());
        nations.push(rng.gen_range(0..NATIONS.len() as i64));
        acctbal.push(rng.gen_range(-999.0..10_000.0));
    }
    let schema = Schema::new(vec![
        Field::new("c_custkey", DataType::Int),
        Field::new("c_mktsegment", DataType::Str),
        Field::new("c_nationkey", DataType::Int),
        Field::new("c_acctbal", DataType::Float),
    ])
    .expect("static schema");
    Relation::from_columns(
        "customer",
        schema,
        vec![
            Column::Int(keys),
            Column::Str(segments),
            Column::Int(nations),
            Column::Float(acctbal),
        ],
    )
    .expect("columns match schema")
}

fn generate_orders(rows: usize, customers: usize, rng: &mut StdRng) -> Relation {
    let keys: Vec<i64> = (0..rows as i64).collect();
    let mut cust = Vec::with_capacity(rows);
    let mut dates = Vec::with_capacity(rows);
    let mut prio = Vec::with_capacity(rows);
    let mut total = Vec::with_capacity(rows);
    for _ in 0..rows {
        cust.push(rng.gen_range(0..customers.max(1) as i64));
        dates.push(rng.gen_range(0..DATE_DOMAIN_DAYS));
        prio.push(rng.gen_range(0..5));
        total.push(rng.gen_range(1_000.0..500_000.0));
    }
    let schema = Schema::new(vec![
        Field::new("o_orderkey", DataType::Int),
        Field::new("o_custkey", DataType::Int),
        Field::new("o_orderdate", DataType::Int),
        Field::new("o_shippriority", DataType::Int),
        Field::new("o_totalprice", DataType::Float),
    ])
    .expect("static schema");
    Relation::from_columns(
        "orders",
        schema,
        vec![
            Column::Int(keys),
            Column::Int(cust),
            Column::Int(dates),
            Column::Int(prio),
            Column::Float(total),
        ],
    )
    .expect("columns match schema")
}

fn generate_lineitem(rows: usize, orders: usize, rng: &mut StdRng) -> Relation {
    let mut orderkey = Vec::with_capacity(rows);
    let mut quantity = Vec::with_capacity(rows);
    let mut extprice = Vec::with_capacity(rows);
    let mut discount = Vec::with_capacity(rows);
    let mut tax = Vec::with_capacity(rows);
    let mut discprice = Vec::with_capacity(rows);
    let mut charge = Vec::with_capacity(rows);
    let mut returnflag = Vec::with_capacity(rows);
    let mut linestatus = Vec::with_capacity(rows);
    let mut shipdate = Vec::with_capacity(rows);
    let mut shipyear = Vec::with_capacity(rows);
    let mut shipmonth = Vec::with_capacity(rows);
    let mut shipinstruct = Vec::with_capacity(rows);
    let mut shipmode = Vec::with_capacity(rows);

    for _ in 0..rows {
        orderkey.push(rng.gen_range(0..orders.max(1) as i64));
        let qty = rng.gen_range(1.0_f64..51.0).floor();
        let price: f64 = rng.gen_range(900.0..105_000.0);
        let disc: f64 = rng.gen_range(0.0..0.11);
        let tx = (rng.gen_range(0..9) as f64) / 100.0;
        quantity.push(qty);
        extprice.push(price);
        discount.push(disc);
        tax.push(tx);
        discprice.push(price * (1.0 - disc));
        charge.push(price * (1.0 - disc) * (1.0 + tx));

        let day = rng.gen_range(0..DATE_DOMAIN_DAYS);
        shipdate.push(day);
        shipyear.push(1992 + day / 365);
        shipmonth.push((day % 365) / 31 + 1);

        // Return flag / line status follow TPC-H's date-derived skew: items
        // shipped after the "current date" are (N, O); earlier ones split
        // between (A, F) and (R, F), and a thin slice is (N, F). This yields
        // the four Q1 groups with 48/24/24/~0.06 proportions the paper quotes.
        let frac = day as f64 / DATE_DOMAIN_DAYS as f64;
        let (rf, ls) = if frac > 0.52 {
            ("N", "O")
        } else if frac > 0.515 {
            ("N", "F")
        } else if rng.gen_bool(0.5) {
            ("A", "F")
        } else {
            ("R", "F")
        };
        returnflag.push(rf.to_string());
        linestatus.push(ls.to_string());
        shipinstruct.push(SHIP_INSTRUCTS[rng.gen_range(0..SHIP_INSTRUCTS.len())].to_string());
        shipmode.push(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())].to_string());
    }

    let schema = Schema::new(vec![
        Field::new("l_orderkey", DataType::Int),
        Field::new("l_quantity", DataType::Float),
        Field::new("l_extendedprice", DataType::Float),
        Field::new("l_discount", DataType::Float),
        Field::new("l_tax", DataType::Float),
        Field::new("l_discprice", DataType::Float),
        Field::new("l_charge", DataType::Float),
        Field::new("l_returnflag", DataType::Str),
        Field::new("l_linestatus", DataType::Str),
        Field::new("l_shipdate", DataType::Int),
        Field::new("l_shipyear", DataType::Int),
        Field::new("l_shipmonth", DataType::Int),
        Field::new("l_shipinstruct", DataType::Str),
        Field::new("l_shipmode", DataType::Str),
    ])
    .expect("static schema");
    Relation::from_columns(
        "lineitem",
        schema,
        vec![
            Column::Int(orderkey),
            Column::Float(quantity),
            Column::Float(extprice),
            Column::Float(discount),
            Column::Float(tax),
            Column::Float(discprice),
            Column::Float(charge),
            Column::Str(returnflag),
            Column::Str(linestatus),
            Column::Int(shipdate),
            Column::Int(shipyear),
            Column::Int(shipmonth),
            Column::Str(shipinstruct),
            Column::Str(shipmode),
        ],
    )
    .expect("columns match schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small_db() -> Database {
        TpchSpec {
            scale_factor: 0.002,
            seed: 1,
        }
        .generate()
    }

    #[test]
    fn all_four_relations_present_with_expected_sizes() {
        let db = small_db();
        assert_eq!(
            db.relation_names(),
            vec!["customer", "lineitem", "nation", "orders"]
        );
        assert_eq!(db.relation("nation").unwrap().len(), 25);
        let spec = TpchSpec {
            scale_factor: 0.002,
            seed: 1,
        };
        assert_eq!(db.relation("lineitem").unwrap().len(), spec.lineitem_rows());
        assert_eq!(db.relation("orders").unwrap().len(), spec.orders_rows());
        assert_eq!(db.relation("customer").unwrap().len(), spec.customer_rows());
    }

    #[test]
    fn foreign_keys_reference_existing_primary_keys() {
        let db = small_db();
        let orders = db.relation("orders").unwrap();
        let customers = db.relation("customer").unwrap().len() as i64;
        assert!(orders
            .column_by_name("o_custkey")
            .unwrap()
            .as_int()
            .iter()
            .all(|&k| k < customers));
        let lineitem = db.relation("lineitem").unwrap();
        let norders = orders.len() as i64;
        assert!(lineitem
            .column_by_name("l_orderkey")
            .unwrap()
            .as_int()
            .iter()
            .all(|&k| k < norders));
    }

    #[test]
    fn q1_groups_are_the_four_tpch_groups() {
        let db = small_db();
        let lineitem = db.relation("lineitem").unwrap();
        let rf = lineitem.column_by_name("l_returnflag").unwrap().as_str();
        let ls = lineitem.column_by_name("l_linestatus").unwrap().as_str();
        let groups: HashSet<(String, String)> = rf
            .iter()
            .zip(ls)
            .map(|(a, b)| (a.clone(), b.clone()))
            .collect();
        assert_eq!(groups.len(), 4);
        assert!(groups.contains(&("N".to_string(), "O".to_string())));
        assert!(groups.contains(&("A".to_string(), "F".to_string())));
    }

    #[test]
    fn derived_price_columns_are_consistent() {
        let db = small_db();
        let li = db.relation("lineitem").unwrap();
        let price = li.column_by_name("l_extendedprice").unwrap().as_float();
        let disc = li.column_by_name("l_discount").unwrap().as_float();
        let dp = li.column_by_name("l_discprice").unwrap().as_float();
        for i in 0..100 {
            assert!((dp[i] - price[i] * (1.0 - disc[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TpchSpec::with_scale(0.001).generate();
        let b = TpchSpec::with_scale(0.001).generate();
        assert_eq!(
            a.relation("lineitem").unwrap(),
            b.relation("lineitem").unwrap()
        );
    }
}
