//! Ontime-like flights dataset for the crossfilter experiments (§6.5.1).
//!
//! The paper uses the Airline On-Time Performance dataset (123.5M rows) with
//! four group-by COUNT views: `<lat, lon>` (65,536 bins, of which ~8,100 are
//! non-empty), `<date>` (7,762 bins), `<departure delay>` (8 bins) and
//! `<carrier>` (29 bins). This generator reproduces that structure — the same
//! view dimensions, bin counts, sparsity, and a skewed popularity per bin —
//! at a configurable row count, which is what the crossfilter techniques'
//! relative behaviour depends on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smoke_storage::{Column, DataType, Field, Relation, Schema};

use crate::zipf::ZipfSampler;

/// Carrier codes (29, as in the paper's setup).
pub const CARRIERS: [&str; 29] = [
    "AA", "AS", "B6", "DL", "EV", "F9", "FL", "HA", "MQ", "NK", "OO", "UA", "US", "VX", "WN", "9E",
    "OH", "XE", "YV", "CO", "NW", "TZ", "DH", "HP", "RU", "TW", "AQ", "KH", "PA",
];

/// Number of distinct lat/lon grid bins (256 × 256).
pub const LATLON_BINS: usize = 65_536;
/// Number of lat/lon bins that actually receive data (sparsity of the paper's
/// setup: only ~8,100 bins are non-empty).
pub const LATLON_NONZERO_BINS: usize = 8_100;
/// Number of date bins.
pub const DATE_BINS: usize = 7_762;
/// Number of departure-delay bins.
pub const DELAY_BINS: usize = 8;

/// Generation parameters for the flights table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OntimeSpec {
    /// Number of flight rows to generate.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OntimeSpec {
    fn default() -> Self {
        OntimeSpec {
            rows: 200_000,
            seed: 17,
        }
    }
}

impl OntimeSpec {
    /// A spec with the given row count.
    pub fn with_rows(rows: usize) -> Self {
        OntimeSpec {
            rows,
            ..Default::default()
        }
    }

    /// Generates the `ontime` relation with the four view dimensions.
    pub fn generate(&self) -> Relation {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Popularity per non-empty lat/lon bin is skewed (airports differ by
        // orders of magnitude in traffic); dates are mildly skewed; delays
        // and carriers follow fixed categorical distributions.
        let latlon_sampler = ZipfSampler::new(LATLON_NONZERO_BINS, 1.0);
        let date_sampler = ZipfSampler::new(DATE_BINS, 0.3);
        let carrier_sampler = ZipfSampler::new(CARRIERS.len(), 0.8);

        // Scatter the non-empty bins across the full 65,536-bin grid.
        let mut active_bins: Vec<i64> = Vec::with_capacity(LATLON_NONZERO_BINS);
        let mut used = vec![false; LATLON_BINS];
        while active_bins.len() < LATLON_NONZERO_BINS {
            let bin = rng.gen_range(0..LATLON_BINS);
            if !used[bin] {
                used[bin] = true;
                active_bins.push(bin as i64);
            }
        }

        let mut latlon = Vec::with_capacity(self.rows);
        let mut date = Vec::with_capacity(self.rows);
        let mut delay = Vec::with_capacity(self.rows);
        let mut carrier = Vec::with_capacity(self.rows);
        for _ in 0..self.rows {
            latlon.push(active_bins[latlon_sampler.sample(&mut rng) - 1]);
            date.push((date_sampler.sample(&mut rng) - 1) as i64);
            // Delay bins: most flights are in the low-delay bins.
            let d: f64 = rng.gen();
            delay.push((d * d * DELAY_BINS as f64).floor().min(7.0) as i64);
            carrier.push(CARRIERS[carrier_sampler.sample(&mut rng) - 1].to_string());
        }

        let schema = Schema::new(vec![
            Field::new("latlon_bin", DataType::Int),
            Field::new("date_bin", DataType::Int),
            Field::new("delay_bin", DataType::Int),
            Field::new("carrier", DataType::Str),
        ])
        .expect("static schema");
        Relation::from_columns(
            "ontime",
            schema,
            vec![
                Column::Int(latlon),
                Column::Int(date),
                Column::Int(delay),
                Column::Str(carrier),
            ],
        )
        .expect("columns match schema")
    }
}

/// The four crossfilter view dimensions of the paper's setup, in the order
/// they are reported (lat/lon, date, departure delay, carrier).
pub fn view_dimensions() -> Vec<&'static str> {
    vec!["latlon_bin", "date_bin", "delay_bin", "carrier"]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table_has_four_dimensions_and_requested_rows() {
        let t = OntimeSpec::with_rows(5_000).generate();
        assert_eq!(t.len(), 5_000);
        assert_eq!(
            t.schema().names(),
            vec!["latlon_bin", "date_bin", "delay_bin", "carrier"]
        );
    }

    #[test]
    fn bins_stay_within_domains() {
        let t = OntimeSpec::with_rows(20_000).generate();
        assert!(t
            .column_by_name("latlon_bin")
            .unwrap()
            .as_int()
            .iter()
            .all(|&b| (0..LATLON_BINS as i64).contains(&b)));
        assert!(t
            .column_by_name("delay_bin")
            .unwrap()
            .as_int()
            .iter()
            .all(|&b| (0..DELAY_BINS as i64).contains(&b)));
        let carriers: HashSet<&String> = t
            .column_by_name("carrier")
            .unwrap()
            .as_str()
            .iter()
            .collect();
        assert!(carriers.len() <= 29);
    }

    #[test]
    fn latlon_is_sparse_relative_to_grid() {
        let t = OntimeSpec::with_rows(50_000).generate();
        let bins: HashSet<i64> = t
            .column_by_name("latlon_bin")
            .unwrap()
            .as_int()
            .iter()
            .copied()
            .collect();
        assert!(bins.len() <= LATLON_NONZERO_BINS);
        assert!(bins.len() > 1_000, "expected thousands of non-empty bins");
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            OntimeSpec::with_rows(1_000).generate(),
            OntimeSpec::with_rows(1_000).generate()
        );
    }
}
