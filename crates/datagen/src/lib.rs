//! # smoke-datagen
//!
//! Synthetic workload generators for the Smoke reproduction, covering every
//! dataset the paper's evaluation uses:
//!
//! * [`zipf`] — the microbenchmark tables `zipf_{θ,n,g}(id, z, v)` and the
//!   `gids` dimension table used by the pk-fk join experiments (§5 "Data");
//! * [`tpch`] — a TPC-H-like generator producing the columns needed by
//!   queries Q1, Q3, Q10, and Q12 with pk-fk relationships and realistic
//!   group cardinalities, plus [`tpch_queries`] building those query plans;
//! * [`ontime`] — an Ontime-like flights table with the four crossfilter view
//!   dimensions (lat/lon bins, date bins, departure-delay bins, carriers);
//! * [`physician`] — a Physician-Compare-like table with (mostly-holding)
//!   functional dependencies and injected violations for the data-profiling
//!   experiments.
//!
//! All generators are seeded and deterministic.

#![warn(missing_docs)]

pub mod ontime;
pub mod physician;
pub mod tpch;
pub mod tpch_queries;
pub mod zipf;

pub use ontime::OntimeSpec;
pub use physician::PhysicianSpec;
pub use tpch::TpchSpec;
pub use zipf::{gids_table, zipf_table, zipf_table_binned, ZipfSpec};
