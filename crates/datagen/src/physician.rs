//! Physician-Compare-like dataset for the data-profiling experiments
//! (§6.5.2).
//!
//! The paper checks four functional dependencies over the Physician Compare
//! National dataset (2.2M rows): `NPI → PAC_ID`, `Zip → State`, `Zip → City`,
//! and `LBN1 → CCN1`, and builds a bipartite graph connecting violating
//! left-hand-side values to the tuples responsible. This generator produces a
//! table with the same columns and FDs that hold except for an injected,
//! configurable fraction of violating left-hand-side values.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smoke_storage::{Column, DataType, Field, Relation, Schema};

/// US state codes used for the `state` column domain.
const STATES: [&str; 20] = [
    "NY", "CA", "TX", "FL", "IL", "PA", "OH", "GA", "NC", "MI", "NJ", "VA", "WA", "AZ", "MA", "TN",
    "IN", "MO", "MD", "WI",
];

/// A functional dependency `lhs → rhs` over the physician table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalDependency {
    /// Determinant column.
    pub lhs: String,
    /// Dependent column.
    pub rhs: String,
}

impl FunctionalDependency {
    /// Creates an FD.
    pub fn new(lhs: impl Into<String>, rhs: impl Into<String>) -> Self {
        FunctionalDependency {
            lhs: lhs.into(),
            rhs: rhs.into(),
        }
    }
}

/// The four FDs evaluated in the paper (Figure 15), in report order.
pub fn paper_fds() -> Vec<FunctionalDependency> {
    vec![
        FunctionalDependency::new("npi", "pac_id"),
        FunctionalDependency::new("zip", "state"),
        FunctionalDependency::new("zip", "city"),
        FunctionalDependency::new("lbn", "ccn"),
    ]
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicianSpec {
    /// Number of rows.
    pub rows: usize,
    /// Number of distinct practices (zip/lbn density follows from this).
    pub practices: usize,
    /// Fraction of left-hand-side values that violate each FD.
    pub violation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PhysicianSpec {
    fn default() -> Self {
        PhysicianSpec {
            rows: 50_000,
            practices: 2_000,
            violation_rate: 0.02,
            seed: 23,
        }
    }
}

impl PhysicianSpec {
    /// A spec with the given row count.
    pub fn with_rows(rows: usize) -> Self {
        PhysicianSpec {
            rows,
            practices: (rows / 25).max(10),
            ..Default::default()
        }
    }

    /// Generates the `physician` relation.
    pub fn generate(&self) -> Relation {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let practices = self.practices.max(1);

        // Per-practice attributes; a violating practice gets a second,
        // conflicting value for the dependent attribute of each FD.
        let practice_zip: Vec<String> = (0..practices)
            .map(|p| format!("{:05}", 10_000 + p))
            .collect();
        let practice_state: Vec<&str> = (0..practices).map(|p| STATES[p % STATES.len()]).collect();
        let practice_city: Vec<String> = (0..practices).map(|p| format!("CITY_{p}")).collect();
        let practice_lbn: Vec<String> = (0..practices)
            .map(|p| format!("LEGAL BUSINESS {p}"))
            .collect();
        let practice_ccn: Vec<String> = (0..practices).map(|p| format!("CCN{p:06}")).collect();
        let violates: Vec<bool> = (0..practices)
            .map(|_| rng.gen_bool(self.violation_rate.clamp(0.0, 1.0)))
            .collect();

        let mut npi = Vec::with_capacity(self.rows);
        let mut pac = Vec::with_capacity(self.rows);
        let mut zip = Vec::with_capacity(self.rows);
        let mut state = Vec::with_capacity(self.rows);
        let mut city = Vec::with_capacity(self.rows);
        let mut lbn = Vec::with_capacity(self.rows);
        let mut ccn = Vec::with_capacity(self.rows);

        // Physicians (NPIs) appear on average in ~2 rows (one per practice
        // affiliation), so NPI → PAC_ID mostly holds with a few violations.
        let physicians = (self.rows / 2).max(1);
        let npi_violates: Vec<bool> = (0..physicians)
            .map(|_| rng.gen_bool(self.violation_rate.clamp(0.0, 1.0)))
            .collect();

        for _ in 0..self.rows {
            let doc = rng.gen_range(0..physicians);
            let practice = rng.gen_range(0..practices);
            npi.push(1_000_000_000 + doc as i64);
            let base_pac = 10_000_000 + doc as i64;
            pac.push(if npi_violates[doc] && rng.gen_bool(0.5) {
                base_pac + 7_777
            } else {
                base_pac
            });
            zip.push(practice_zip[practice].clone());
            let conflict = violates[practice] && rng.gen_bool(0.5);
            state.push(if conflict {
                STATES[(practice + 1) % STATES.len()].to_string()
            } else {
                practice_state[practice].to_string()
            });
            city.push(if conflict {
                format!("CITY_{}_ALT", practice)
            } else {
                practice_city[practice].clone()
            });
            lbn.push(practice_lbn[practice].clone());
            ccn.push(if conflict {
                format!("CCN{:06}X", practice)
            } else {
                practice_ccn[practice].clone()
            });
        }

        let schema = Schema::new(vec![
            Field::new("npi", DataType::Int),
            Field::new("pac_id", DataType::Int),
            Field::new("zip", DataType::Str),
            Field::new("state", DataType::Str),
            Field::new("city", DataType::Str),
            Field::new("lbn", DataType::Str),
            Field::new("ccn", DataType::Str),
        ])
        .expect("static schema");
        Relation::from_columns(
            "physician",
            schema,
            vec![
                Column::Int(npi),
                Column::Int(pac),
                Column::Str(zip),
                Column::Str(state),
                Column::Str(city),
                Column::Str(lbn),
                Column::Str(ccn),
            ],
        )
        .expect("columns match schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn violating_lhs(rel: &Relation, fd: &FunctionalDependency) -> usize {
        let lhs = rel.column_by_name(&fd.lhs).unwrap();
        let rhs = rel.column_by_name(&fd.rhs).unwrap();
        let mut map: HashMap<String, HashSet<String>> = HashMap::new();
        for rid in 0..rel.len() {
            map.entry(lhs.value(rid).group_key())
                .or_default()
                .insert(rhs.value(rid).group_key());
        }
        map.values().filter(|s| s.len() > 1).count()
    }

    #[test]
    fn schema_matches_paper_columns() {
        let r = PhysicianSpec::with_rows(1_000).generate();
        assert_eq!(
            r.schema().names(),
            vec!["npi", "pac_id", "zip", "state", "city", "lbn", "ccn"]
        );
        assert_eq!(r.len(), 1_000);
    }

    #[test]
    fn fds_mostly_hold_with_some_violations() {
        let spec = PhysicianSpec {
            rows: 20_000,
            practices: 800,
            violation_rate: 0.05,
            seed: 5,
        };
        let r = spec.generate();
        for fd in paper_fds() {
            let violations = violating_lhs(&r, &fd);
            assert!(violations > 0, "{fd:?} should have injected violations");
            // Violations are a small fraction of the distinct LHS values.
            let distinct_lhs: HashSet<String> = (0..r.len())
                .map(|rid| r.column_by_name(&fd.lhs).unwrap().value(rid).group_key())
                .collect();
            assert!(
                violations * 5 < distinct_lhs.len(),
                "{fd:?} violates too often"
            );
        }
    }

    #[test]
    fn zero_violation_rate_produces_clean_fds() {
        let spec = PhysicianSpec {
            rows: 5_000,
            practices: 300,
            violation_rate: 0.0,
            seed: 5,
        };
        let r = spec.generate();
        for fd in paper_fds() {
            assert_eq!(violating_lhs(&r, &fd), 0, "{fd:?} should hold exactly");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            PhysicianSpec::default().generate(),
            PhysicianSpec::default().generate()
        );
    }
}
