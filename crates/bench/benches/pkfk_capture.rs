//! Criterion bench for Figure 6: pk-fk join lineage capture.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoke_core::ops::join::{hash_join, JoinOptions};
use smoke_datagen::zipf::{gids_table, zipf_table, ZipfSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_pkfk_capture");
    group.sample_size(10);
    for groups in [100usize, 10_000] {
        let left = gids_table(groups);
        let right = zipf_table(&ZipfSpec {
            theta: 1.0,
            rows: 200_000,
            groups,
            seed: 13,
        });
        let lk = vec!["id".to_string()];
        let rk = vec!["z".to_string()];
        for (name, opts) in [
            ("baseline", JoinOptions::baseline()),
            ("smoke_inject", JoinOptions::inject()),
        ] {
            group.bench_with_input(BenchmarkId::new(name, groups), &groups, |b, _| {
                b.iter(|| hash_join(&left, &right, &lk, &rk, &opts).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
