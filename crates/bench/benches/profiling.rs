//! Criterion bench for Figure 15: FD-violation profiling.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoke_apps::profiling::{check_fd, ProfilingTechnique};
use smoke_datagen::physician::{paper_fds, PhysicianSpec};

fn bench(c: &mut Criterion) {
    let table = PhysicianSpec {
        rows: 30_000,
        practices: 1_200,
        violation_rate: 0.02,
        seed: 23,
    }
    .generate();
    let mut group = c.benchmark_group("fig15_profiling");
    group.sample_size(10);
    let fd = &paper_fds()[1]; // zip -> state
    for (name, technique) in [
        ("metanome_ug", ProfilingTechnique::MetanomeUg),
        ("smoke_ug", ProfilingTechnique::SmokeUg),
        ("smoke_cd", ProfilingTechnique::SmokeCd),
    ] {
        group.bench_with_input(BenchmarkId::new(name, &fd.lhs), &table, |b, t| {
            b.iter(|| check_fd(t, fd, technique).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
