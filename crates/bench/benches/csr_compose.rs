//! Criterion bench: multi-operator composition throughput of the
//! Vec-of-RidArrays representation versus CSR (CSR×Array and CSR×CSR fast
//! paths) on the zipfian microbench shape (10k rows, 100 groups).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoke_lineage::{compose_backward, LineageIndex, RidArray, RidIndex};
use smoke_storage::Rid;

/// Group-by-shaped parent: 100 groups over 10k intermediate rids, zipf-ish
/// sizes (group g holds every rid with `rid % 100 == g`).
fn parent_index() -> LineageIndex {
    let mut idx = RidIndex::with_len(100);
    for rid in 0..10_000u32 {
        idx.append((rid % 100) as usize, rid);
    }
    LineageIndex::Index(idx)
}

/// Selection-shaped child: intermediate rid -> base rid over a 20k-row base.
fn child_array() -> LineageIndex {
    LineageIndex::Array(RidArray::from_vec((0..10_000u32).map(|r| r * 2).collect()))
}

/// Join-forward-shaped child: intermediate rid -> two base rids each.
fn child_index() -> LineageIndex {
    let mut idx = RidIndex::with_len(10_000);
    for rid in 0..10_000u32 {
        idx.append(rid as usize, rid * 2);
        idx.append(rid as usize, rid * 2 + 1);
    }
    LineageIndex::Index(idx)
}

fn bench(c: &mut Criterion) {
    let parent = parent_index();
    let parent_csr = parent.clone().finalize();
    let arr = child_array();
    let idx_child = child_index();
    let csr_child = idx_child.clone().finalize();

    // The fast paths must agree with the general path.
    for pos in [0u32, 57, 99] {
        assert_eq!(
            compose_backward(&parent, &arr).lookup(pos),
            compose_backward(&parent_csr, &arr).lookup(pos)
        );
        assert_eq!(
            compose_backward(&parent, &idx_child).lookup(pos),
            compose_backward(&parent_csr, &csr_child).lookup(pos)
        );
    }

    let mut group = c.benchmark_group("csr_compose");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("vec_of_vecs", "x_array"), &(), |b, ()| {
        b.iter(|| compose_backward(&parent, &arr))
    });
    group.bench_with_input(BenchmarkId::new("csr", "x_array"), &(), |b, ()| {
        b.iter(|| compose_backward(&parent_csr, &arr))
    });
    group.bench_with_input(BenchmarkId::new("vec_of_vecs", "x_index"), &(), |b, ()| {
        b.iter(|| compose_backward(&parent, &idx_child))
    });
    group.bench_with_input(BenchmarkId::new("csr", "x_csr"), &(), |b, ()| {
        b.iter(|| compose_backward(&parent_csr, &csr_child))
    });
    group.finish();

    // Keep the composed result shape honest.
    let composed = compose_backward(&parent_csr, &csr_child);
    assert!(matches!(composed, LineageIndex::Csr(_)));
    assert_eq!(composed.len(), 100);
    assert_eq!(composed.edge_count(), 20_000);
    let _ = composed.lookup(0 as Rid);
}

criterion_group!(benches, bench);
criterion_main!(benches);
