//! Criterion bench for Figure 5: group-by aggregation lineage capture.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoke_core::microbenchmark_aggs;
use smoke_core::ops::groupby::{group_by, GroupByOptions};
use smoke_datagen::zipf::{zipf_table, ZipfSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_groupby_capture");
    group.sample_size(10);
    let keys = vec!["z".to_string()];
    let aggs = microbenchmark_aggs("v");
    for groups in [100usize, 10_000] {
        let table = zipf_table(&ZipfSpec {
            theta: 1.0,
            rows: 100_000,
            groups,
            seed: 42,
        });
        for (name, opts) in [
            ("baseline", GroupByOptions::baseline()),
            ("smoke_inject", GroupByOptions::inject()),
            ("smoke_defer", GroupByOptions::defer()),
        ] {
            group.bench_with_input(BenchmarkId::new(name, groups), &table, |b, t| {
                b.iter(|| group_by(t, &keys, &aggs, &opts).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
