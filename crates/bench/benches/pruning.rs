//! Criterion bench for Figures 22-23: instrumentation pruning and selection
//! push-down.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoke_core::{CaptureConfig, DirectionFilter, Executor, Expr, WorkloadOptions};
use smoke_datagen::tpch::TpchSpec;
use smoke_datagen::tpch_queries::{q1, q3};

fn bench(c: &mut Criterion) {
    let db = TpchSpec {
        scale_factor: 0.002,
        seed: 7,
    }
    .generate();
    let mut group = c.benchmark_group("fig22_23_pruning_pushdown");
    group.sample_size(10);

    let q3_plan = q3();
    for (name, cfg) in [
        ("q3_no_capture", CaptureConfig::baseline()),
        ("q3_all_tables", CaptureConfig::inject()),
        (
            "q3_only_lineitem",
            CaptureConfig::inject()
                .default_directions(DirectionFilter::None)
                .prune("lineitem", DirectionFilter::Both),
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("fig22", name), &q3_plan, |b, p| {
            b.iter(|| Executor::with_config(cfg.clone()).execute(p, &db).unwrap())
        });
    }

    let q1_plan = q1();
    let pushdown = CaptureConfig::inject().with_workload(WorkloadOptions {
        selection_pushdown: Some(Expr::col("l_tax").lt(Expr::lit(0.02))),
        ..Default::default()
    });
    for (name, cfg) in [
        ("q1_inject", CaptureConfig::inject()),
        ("q1_selection_pushdown", pushdown),
    ] {
        group.bench_with_input(BenchmarkId::new("fig23", name), &q1_plan, |b, p| {
            b.iter(|| Executor::with_config(cfg.clone()).execute(p, &db).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
