//! Criterion bench for Figures 10-12: workload-aware optimizations.
use criterion::{criterion_group, criterion_main, Criterion};
use smoke_bench::{tpch_exp, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_12_workload_opts");
    group.sample_size(10);
    let scale = Scale {
        factor: 0.3,
        runs: 1,
        warmup: 0,
        budget_bytes: None,
    };
    group.bench_function("fig10_data_skipping_suite", |b| {
        b.iter(|| tpch_exp::fig10(&scale))
    });
    group.bench_function("fig11_12_agg_pushdown_suite", |b| {
        b.iter(|| tpch_exp::fig11_12(&scale))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
