//! Criterion bench: scalar interpreter vs vectorized kernel selection,
//! lineage capture off and on.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoke_core::ops::select::{select, SelectOptions};
use smoke_core::Expr;
use smoke_datagen::zipf::{zipf_table, ZipfSpec};

fn bench(c: &mut Criterion) {
    let table = zipf_table(&ZipfSpec {
        theta: 1.0,
        rows: 200_000,
        groups: 100,
        seed: 33,
    });
    let pred = Expr::col("v")
        .lt(Expr::lit(30.0))
        .or(Expr::col("v").ge(Expr::lit(90.0)));
    let mut group = c.benchmark_group("vectorized_selection");
    group.sample_size(10);
    for capture in [false, true] {
        let cap = if capture { "capture" } else { "baseline" };
        for kernels in [false, true] {
            let path = if kernels { "kernel" } else { "scalar" };
            let mut opts = if capture {
                SelectOptions::inject()
            } else {
                SelectOptions::baseline()
            };
            opts.use_kernels = kernels;
            group.bench_with_input(BenchmarkId::new(path, cap), &table, |b, t| {
                b.iter(|| select(t, &pred, &opts).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
