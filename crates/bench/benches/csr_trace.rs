//! Criterion bench: backward-trace throughput of the Vec-of-RidArrays
//! (`RidIndex`) representation versus the finalized CSR representation on
//! the zipfian group-by microbench table (10k rows, 100 groups).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoke_core::microbenchmark_aggs;
use smoke_core::ops::groupby::{group_by, GroupByOptions};
use smoke_datagen::zipf::{zipf_table, ZipfSpec};
use smoke_storage::Rid;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_trace");
    group.sample_size(10);
    for theta in [0.0f64, 1.0] {
        let table = zipf_table(&ZipfSpec {
            theta,
            rows: 10_000,
            groups: 100,
            seed: 33,
        });
        let captured = group_by(
            &table,
            &["z".to_string()],
            &microbenchmark_aggs("v"),
            &GroupByOptions::inject(),
        )
        .unwrap();
        let vec_of_vecs = captured.lineage.input(0).backward().clone();
        let csr = vec_of_vecs.clone().finalize();
        assert!(
            csr.heap_bytes() < vec_of_vecs.heap_bytes(),
            "CSR must be strictly more compact than Vec<RidArray>"
        );

        let positions: Vec<Rid> = (0..captured.output.len() as Rid).collect();
        group.bench_with_input(
            BenchmarkId::new("vec_of_vecs", theta.to_string()),
            &positions,
            |b, pos| b.iter(|| vec_of_vecs.trace_set(pos)),
        );
        group.bench_with_input(
            BenchmarkId::new("csr", theta.to_string()),
            &positions,
            |b, pos| b.iter(|| csr.trace_set(pos)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
