//! Criterion bench for Figure 21: selection lineage capture.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoke_core::ops::select::{select, SelectOptions};
use smoke_core::Expr;
use smoke_datagen::zipf::{zipf_table, ZipfSpec};

fn bench(c: &mut Criterion) {
    let table = zipf_table(&ZipfSpec {
        theta: 1.0,
        rows: 200_000,
        groups: 100,
        seed: 8,
    });
    let mut group = c.benchmark_group("fig21_selection_capture");
    group.sample_size(10);
    for sel in [0.1f64, 0.5] {
        let pred = Expr::col("v").lt(Expr::lit(100.0 * sel));
        for (name, opts) in [
            ("baseline", SelectOptions::baseline()),
            ("smoke_inject", SelectOptions::inject()),
            ("smoke_inject_ec", SelectOptions::inject_with_estimate(sel)),
        ] {
            group.bench_with_input(BenchmarkId::new(name, sel.to_string()), &table, |b, t| {
                b.iter(|| select(t, &pred, &opts).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
