//! Criterion bench for Figure 9: backward lineage query evaluation.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoke_core::lazy::{backward_predicate, lazy_backward};
use smoke_core::microbenchmark_aggs;
use smoke_core::ops::groupby::{group_by, GroupByOptions};
use smoke_core::query::gather_rows;
use smoke_datagen::zipf::{zipf_table, ZipfSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_lineage_query");
    group.sample_size(10);
    let keys = vec!["z".to_string()];
    for theta in [0.0f64, 1.6] {
        let table = zipf_table(&ZipfSpec {
            theta,
            rows: 100_000,
            groups: 1_000,
            seed: 21,
        });
        let captured = group_by(
            &table,
            &keys,
            &microbenchmark_aggs("v"),
            &GroupByOptions::inject(),
        )
        .unwrap();
        let backward = captured.lineage.input(0).backward().clone();
        group.bench_with_input(
            BenchmarkId::new("smoke_l", theta.to_string()),
            &table,
            |b, t| b.iter(|| gather_rows(t, &backward.lookup(0))),
        );
        let key_value = captured.output.value(0, 0);
        let pred = backward_predicate(&keys, &[key_value], None);
        group.bench_with_input(
            BenchmarkId::new("lazy", theta.to_string()),
            &table,
            |b, t| {
                b.iter(|| {
                    let rids = lazy_backward(t, &pred).unwrap();
                    gather_rows(t, &rids)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
