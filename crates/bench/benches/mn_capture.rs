//! Criterion bench for Figure 7: m:n join lineage capture.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoke_core::ops::join::{hash_join, JoinOptions};
use smoke_datagen::zipf::{zipf_table_named, ZipfSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_mn_capture");
    group.sample_size(10);
    let left = zipf_table_named(
        &ZipfSpec {
            theta: 1.0,
            rows: 1_000,
            groups: 10,
            seed: 3,
        },
        "zipf1",
    );
    let right = zipf_table_named(
        &ZipfSpec {
            theta: 1.0,
            rows: 20_000,
            groups: 100,
            seed: 4,
        },
        "zipf2",
    );
    let k = vec!["z".to_string()];
    for (name, opts) in [
        ("smoke_inject", JoinOptions::inject().without_output()),
        (
            "smoke_defer_forw",
            JoinOptions::defer_forward().without_output(),
        ),
        ("smoke_defer", JoinOptions::defer().without_output()),
    ] {
        group.bench_with_input(BenchmarkId::new(name, "10x20k"), &right, |b, r| {
            b.iter(|| hash_join(&left, r, &k, &k, &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
