//! Criterion bench: the planner's four strategies on one lineage-consuming
//! drill-down over the zipfian group-by workload (10k rows, 100 groups,
//! 8 `v_bin` partitions), plus the planner's own cost-based choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoke_bench::planner_exp::BINS;
use smoke_core::ops::groupby::{group_by, GroupByOptions};
use smoke_core::{AggExpr, AggPushdown, Expr};
use smoke_datagen::zipf::{zipf_table_binned, ZipfSpec};
use smoke_planner::{LineagePlanner, LineageQuery, RewriteInfo, Strategy};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_strategies");
    group.sample_size(10);

    let table = zipf_table_binned(
        &ZipfSpec {
            theta: 1.0,
            rows: 10_000,
            groups: 100,
            seed: 21,
        },
        BINS,
    );
    let mut opts = GroupByOptions::inject();
    opts.workload.skipping_partition_by = vec!["v_bin".to_string()];
    opts.workload.agg_pushdown = Some(AggPushdown {
        partition_by: vec!["v_bin".to_string()],
        aggs: vec![AggExpr::count("cnt")],
    });
    let captured = group_by(&table, &["z".to_string()], &[AggExpr::count("cnt")], &opts).unwrap();
    let planner = LineagePlanner::new(&table, &captured.output)
        .lineage(captured.lineage.input(0))
        .artifacts(&captured.artifacts)
        .rewrite(RewriteInfo::new(vec!["z".to_string()], None))
        .stats(captured.stats);

    let drilldown = LineageQuery::backward()
        .rids([0])
        .aggregate(&["v_bin"], vec![AggExpr::count("cnt")]);
    let skipped = LineageQuery::backward()
        .rids([0])
        .filter(Expr::col("v_bin").eq(Expr::lit(3)))
        .aggregate(&["v_bin"], vec![AggExpr::count("cnt")]);

    for (shape, query) in [("drilldown", &drilldown), ("skipped", &skipped)] {
        let explain = planner.explain(query).unwrap();
        for strategy in [
            Strategy::EagerTrace,
            Strategy::LazyRewrite,
            Strategy::PartitionPruned,
            Strategy::CubeHit,
        ] {
            if explain
                .candidate_cost(strategy)
                .is_none_or(|cost| !cost.is_finite())
            {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(strategy.to_string(), shape),
                query,
                |b, q| b.iter(|| planner.execute_with(strategy, q).unwrap()),
            );
        }
        group.bench_with_input(BenchmarkId::new("PlannerChoice", shape), query, |b, q| {
            b.iter(|| planner.execute(q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
