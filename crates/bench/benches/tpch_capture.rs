//! Criterion bench for Figure 8: TPC-H multi-operator lineage capture.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoke_core::{CaptureMode, Executor};
use smoke_datagen::tpch::TpchSpec;
use smoke_datagen::tpch_queries::evaluation_queries;

fn bench(c: &mut Criterion) {
    let db = TpchSpec {
        scale_factor: 0.002,
        seed: 7,
    }
    .generate();
    let mut group = c.benchmark_group("fig8_tpch_capture");
    group.sample_size(10);
    for (name, plan) in evaluation_queries() {
        for (mode_name, mode) in [
            ("baseline", CaptureMode::Baseline),
            ("smoke_inject", CaptureMode::Inject),
        ] {
            group.bench_with_input(BenchmarkId::new(mode_name, name), &plan, |b, p| {
                b.iter(|| Executor::new(mode).execute(p, &db).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
