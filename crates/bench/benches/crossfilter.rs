//! Criterion bench for Figures 13-14: crossfilter interactions.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoke_apps::crossfilter::{CrossfilterSession, CrossfilterTechnique};
use smoke_datagen::ontime::{view_dimensions, OntimeSpec};

fn bench(c: &mut Criterion) {
    let base = OntimeSpec {
        rows: 50_000,
        seed: 17,
    }
    .generate();
    let dims = view_dimensions();
    let mut group = c.benchmark_group("fig13_14_crossfilter");
    group.sample_size(10);
    for technique in [
        CrossfilterTechnique::Lazy,
        CrossfilterTechnique::BackwardTrace,
        CrossfilterTechnique::BackwardForwardTrace,
    ] {
        let session = CrossfilterSession::build(base.clone(), &dims, technique).unwrap();
        group.bench_with_input(
            BenchmarkId::new("interaction", format!("{technique:?}")),
            &session,
            |b, s| b.iter(|| s.interact(3, 0).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
