//! Edge-case contract tests for the `bench_compare` CLI, pinned to its
//! documented exit codes:
//!
//! - `0` — clean comparison, or no usable baseline (absent / malformed /
//!   missing keys): the first run of a new experiment must not fail CI.
//! - `1` — at least one timing (`*_ms`) or footprint (`*_bytes`) regression.
//! - `2` — usage errors and an unreadable *fresh* artifact (the run just
//!   produced it; it being broken is a harness bug worth failing loudly).

use std::path::PathBuf;
use std::process::Command;

fn bench_compare() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench_compare"))
}

/// A scratch dir unique to this test process; files are keyed by test name.
fn scratch(test: &str, file: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench_compare_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join(format!("{test}_{file}"));
    std::fs::write(&path, contents).expect("write fixture");
    path
}

fn row(metric: &str, value: f64) -> String {
    format!(
        r#"{{"experiment":"exp","config":"cfg","technique":"tech","metric":"{metric}","value":{value}}}"#
    )
}

fn run(args: &[&str]) -> (i32, String, String) {
    let out = bench_compare()
        .args(args)
        .output()
        .expect("spawn bench_compare");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn clean_comparison_exits_zero() {
    let base = scratch("clean", "base.json", &format!("[{}]", row("run_ms", 10.0)));
    let fresh = scratch("clean", "fresh.json", &format!("[{}]", row("run_ms", 11.0)));
    let (code, stdout, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("0 regression(s)"), "{stdout}");
}

#[test]
fn regression_beyond_threshold_exits_one_with_annotation() {
    let base = scratch(
        "regress",
        "base.json",
        &format!("[{}]", row("run_ms", 10.0)),
    );
    let fresh = scratch(
        "regress",
        "fresh.json",
        &format!("[{}]", row("run_ms", 30.0)),
    );
    let (code, stdout, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("::warning"), "{stdout}");
    assert!(stdout.contains("1 regression(s)"), "{stdout}");
}

#[test]
fn absent_baseline_exits_zero() {
    let fresh = scratch("absent", "fresh.json", &format!("[{}]", row("run_ms", 1.0)));
    let (code, stdout, _) = run(&["/nonexistent/baseline.json", fresh.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("no usable baseline"), "{stdout}");
}

#[test]
fn malformed_baseline_exits_zero() {
    let base = scratch("badbase", "base.json", "{not json[");
    let fresh = scratch(
        "badbase",
        "fresh.json",
        &format!("[{}]", row("run_ms", 1.0)),
    );
    let (code, stdout, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("no usable baseline"), "{stdout}");
}

#[test]
fn baseline_row_missing_metric_key_exits_zero() {
    let base = scratch(
        "nokeybase",
        "base.json",
        r#"[{"experiment":"exp","config":"cfg","technique":"tech","value":1.0}]"#,
    );
    let fresh = scratch(
        "nokeybase",
        "fresh.json",
        &format!("[{}]", row("run_ms", 1.0)),
    );
    let (code, stdout, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("missing `metric`"), "{stdout}");
}

#[test]
fn malformed_fresh_artifact_exits_two() {
    let base = scratch(
        "badfresh",
        "base.json",
        &format!("[{}]", row("run_ms", 1.0)),
    );
    let fresh = scratch("badfresh", "fresh.json", "]]]]");
    let (code, stdout, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, 2, "{stdout}");
    assert!(
        stdout.contains("could not read the fresh artifact"),
        "{stdout}"
    );
}

#[test]
fn fresh_row_missing_metric_key_exits_two() {
    let base = scratch(
        "nokeyfresh",
        "base.json",
        &format!("[{}]", row("run_ms", 1.0)),
    );
    let fresh = scratch(
        "nokeyfresh",
        "fresh.json",
        r#"[{"experiment":"exp","config":"cfg","technique":"tech","value":1.0}]"#,
    );
    let (code, stdout, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, 2, "{stdout}");
    assert!(stdout.contains("missing `metric`"), "{stdout}");
}

#[test]
fn zero_baseline_is_noise_not_a_regression() {
    // base == 0 would make any ratio infinite; it is timer noise and skipped.
    let base = scratch(
        "zerobase",
        "base.json",
        &format!("[{}]", row("run_ms", 0.0)),
    );
    let fresh = scratch(
        "zerobase",
        "fresh.json",
        &format!("[{}]", row("run_ms", 100.0)),
    );
    let (code, stdout, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("0 regression(s)"), "{stdout}");
}

#[test]
fn non_timing_metrics_are_not_compared() {
    let base = scratch(
        "counter",
        "base.json",
        &format!("[{}]", row("fanout", 10.0)),
    );
    let fresh = scratch(
        "counter",
        "fresh.json",
        &format!("[{}]", row("fanout", 9999.0)),
    );
    let (code, stdout, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("compared 0 timing"), "{stdout}");
}

#[test]
fn bytes_regression_beyond_threshold_exits_one() {
    // A lineage footprint blowing past 2x baseline (e.g. compression falling
    // back to raw blocks) trips the same wire as a timing regression.
    let base = scratch(
        "bytes",
        "base.json",
        &format!("[{}]", row("lineage_bytes", 1_000_000.0)),
    );
    let fresh = scratch(
        "bytes",
        "fresh.json",
        &format!("[{}]", row("lineage_bytes", 4_000_000.0)),
    );
    let (code, stdout, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("::warning"), "{stdout}");
    assert!(stdout.contains("4000000.000B"), "{stdout}");
}

#[test]
fn bytes_below_floor_are_noise() {
    // Tiny footprints jitter with block boundaries; both sides under the
    // byte floor never regress, and --floor-bytes raises that floor.
    let base = scratch(
        "bytefloor",
        "base.json",
        &format!("[{}]", row("lineage_bytes", 100.0)),
    );
    let fresh = scratch(
        "bytefloor",
        "fresh.json",
        &format!("[{}]", row("lineage_bytes", 4000.0)),
    );
    let (code, stdout, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    let (strict, stdout, _) = run(&[
        base.to_str().unwrap(),
        fresh.to_str().unwrap(),
        "--floor-bytes",
        "50",
    ]);
    assert_eq!(strict, 1, "{stdout}");
}

#[test]
fn count_regression_beyond_threshold_exits_one() {
    // `disk_reads` tripling (e.g. the prefetcher losing residency or a
    // policy evicting its own working set) is a deterministic regression.
    let base = scratch(
        "count",
        "base.json",
        &format!("[{}]", row("disk_reads", 10_000.0)),
    );
    let fresh = scratch(
        "count",
        "fresh.json",
        &format!("[{}]", row("disk_reads", 30_000.0)),
    );
    let (code, stdout, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("::warning"), "{stdout}");
    assert!(stdout.contains("30000.000ops"), "{stdout}");
}

#[test]
fn counts_below_floor_are_noise() {
    // A handful of extra evictions at tiny scale is page-boundary jitter,
    // not a regression; --floor-count raises (or lowers) that bar.
    let base = scratch(
        "countfloor",
        "base.json",
        &format!("[{}]", row("evictions", 8.0)),
    );
    let fresh = scratch(
        "countfloor",
        "fresh.json",
        &format!("[{}]", row("evictions", 60.0)),
    );
    let (code, stdout, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    let (strict, stdout, _) = run(&[
        base.to_str().unwrap(),
        fresh.to_str().unwrap(),
        "--floor-count",
        "4",
    ]);
    assert_eq!(strict, 1, "{stdout}");
}

#[test]
fn prefetch_wasted_is_compared_but_prefetch_hits_is_structural() {
    // Wasted prefetches growing is a regression; hit counts growing is an
    // improvement and must never trip the wire.
    let rows = |wasted: f64, hits: f64| {
        format!(
            "[{},{}]",
            row("prefetch_wasted", wasted),
            row("prefetch_hits", hits)
        )
    };
    let base = scratch("wasted", "base.json", &rows(100.0, 100.0));
    let fresh = scratch("wasted", "fresh.json", &rows(1_000.0, 100_000.0));
    let (code, stdout, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("prefetch_wasted"), "{stdout}");
    assert!(!stdout.contains("prefetch_hits"), "{stdout}");
    assert!(stdout.contains("1 regression(s)"), "{stdout}");
}

#[test]
fn non_numeric_floor_count_exits_two() {
    let (code, _, stderr) = run(&["a.json", "b.json", "--floor-count", "lots"]);
    assert_eq!(code, 2);
    assert!(
        stderr.contains("--floor-count requires a number"),
        "{stderr}"
    );
}

#[test]
fn non_numeric_floor_bytes_exits_two() {
    let (code, _, stderr) = run(&["a.json", "b.json", "--floor-bytes", "big"]);
    assert_eq!(code, 2);
    assert!(
        stderr.contains("--floor-bytes requires a number"),
        "{stderr}"
    );
}

#[test]
fn missing_args_exit_two_with_usage() {
    let (code, _, stderr) = run(&[]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn non_numeric_threshold_exits_two() {
    let (code, _, stderr) = run(&["a.json", "b.json", "--threshold", "fast"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("--threshold requires a number"), "{stderr}");
}

#[test]
fn threshold_flag_is_honored() {
    // 1.5x over baseline: a regression at --threshold 1.2, clean at default 2.0.
    let base = scratch("knob", "base.json", &format!("[{}]", row("run_ms", 10.0)));
    let fresh = scratch("knob", "fresh.json", &format!("[{}]", row("run_ms", 15.0)));
    let (strict, _, _) = run(&[
        base.to_str().unwrap(),
        fresh.to_str().unwrap(),
        "--threshold",
        "1.2",
    ]);
    let (lax, _, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(strict, 1);
    assert_eq!(lax, 0);
}
