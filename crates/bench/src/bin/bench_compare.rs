//! Compares a freshly generated `BENCH_*.json` artifact against a committed
//! baseline and flags latency and footprint regressions.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json> [--threshold 2.0] [--floor-ms 0.05]
//!               [--floor-bytes 4096] [--floor-count 64]
//! ```
//!
//! Rows are keyed on `(experiment, config, technique, metric)`; timing
//! metrics (`*_ms`), footprint metrics (`*_bytes`), and I/O count metrics
//! (`*_reads`/`*_writes`, `evictions`, `prefetch_wasted`) are compared —
//! other counters, ratios, and cost estimates are structural and checked
//! for presence only. A fresh value more than `threshold ×` the baseline
//! (with both above the matching noise floor: `--floor-ms` for timings,
//! `--floor-bytes` for footprints, `--floor-count` for I/O counts) is a
//! regression: it is printed as a GitHub Actions `::warning::` annotation
//! and the exit code is 1, which CI attaches to a `continue-on-error` step
//! so regressions annotate the run without blocking it. Byte and count
//! metrics are deterministic, so a blown-up `lineage_bytes` (compression
//! silently falling back to raw blocks) or a doubled `disk_reads` (a policy
//! or prefetcher losing its residency) trips the same wire as a slow
//! kernel. Count metrics that are *good* when they grow (`prefetch_hits`,
//! `hit_rate`) are deliberately excluded. A missing or unreadable baseline
//! exits 0 (first run of a new experiment).
//!
//! Exit codes: `0` — no regressions, or no usable baseline to compare
//! against; `1` — at least one regression; `2` — usage error (bad
//! flags/arity) or an unreadable/malformed *fresh* artifact.

use std::collections::BTreeMap;
use std::process::ExitCode;

use smoke_planner::json::{parse, Json};

/// `(experiment, config, technique, metric)` → value.
type Rows = BTreeMap<(String, String, String, String), f64>;

fn load(path: &str) -> Result<Rows, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let v = parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let arr = v
        .as_arr()
        .ok_or_else(|| format!("{path}: not a JSON array"))?;
    let mut rows = Rows::new();
    for row in arr {
        let field = |k: &str| {
            row.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{path}: row is missing `{k}`"))
        };
        let key = (
            field("experiment")?,
            field("config")?,
            field("technique")?,
            field("metric")?,
        );
        // `null` marks a non-finite measurement; skip it.
        if let Some(value) = row.get("value").and_then(Json::as_f64) {
            rows.insert(key, value);
        }
    }
    Ok(rows)
}

fn main() -> ExitCode {
    let mut positional = Vec::new();
    let mut threshold = 2.0f64;
    let mut floor_ms = 0.05f64;
    let mut floor_bytes = 4096.0f64;
    let mut floor_count = 64.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => threshold = v,
                None => {
                    eprintln!("--threshold requires a number");
                    return ExitCode::from(2);
                }
            },
            "--floor-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => floor_ms = v,
                None => {
                    eprintln!("--floor-ms requires a number");
                    return ExitCode::from(2);
                }
            },
            "--floor-bytes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => floor_bytes = v,
                None => {
                    eprintln!("--floor-bytes requires a number");
                    return ExitCode::from(2);
                }
            },
            "--floor-count" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => floor_count = v,
                None => {
                    eprintln!("--floor-count requires a number");
                    return ExitCode::from(2);
                }
            },
            other => positional.push(other.to_string()),
        }
    }
    let [baseline_path, fresh_path] = positional.as_slice() else {
        eprintln!(
            "usage: bench_compare <baseline.json> <fresh.json> \
             [--threshold X] [--floor-ms Y] [--floor-bytes Z] [--floor-count W]"
        );
        return ExitCode::from(2);
    };

    // A missing baseline is not a failure: the first run of a new experiment
    // has nothing to compare against.
    let baseline = match load(baseline_path) {
        Ok(rows) => rows,
        Err(e) => {
            println!("no usable baseline ({e}); skipping comparison");
            return ExitCode::SUCCESS;
        }
    };
    let fresh = match load(fresh_path) {
        Ok(rows) => rows,
        Err(e) => {
            println!("::warning::bench_compare could not read the fresh artifact: {e}");
            return ExitCode::from(2);
        }
    };

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (key, &base) in &baseline {
        let (exp, config, technique, metric) = key;
        // Timings regress with noise floors in milliseconds; footprints
        // (`lineage_bytes`, `raw_bytes`, …) with a floor in bytes; I/O
        // counts (`disk_reads`, `evictions`, `prefetch_wasted`, …) with an
        // absolute count floor — tiny-scale runs jitter by a handful of
        // pages, which a ratio test would misread as a blow-up. Anything
        // else is structural. Only counts that are bad-when-larger qualify:
        // `prefetch_hits`/`hit_rate` shrinking is a regression too, but in
        // the other direction, and this tool only flags growth.
        let is_count = metric.ends_with("_reads")
            || metric.ends_with("_writes")
            || metric == "evictions"
            || metric == "prefetch_wasted";
        let (floor, unit) = if metric.ends_with("_ms") {
            (floor_ms, "ms")
        } else if metric.ends_with("_bytes") {
            (floor_bytes, "B")
        } else if is_count {
            (floor_count, "ops")
        } else {
            continue;
        };
        let Some(&now) = fresh.get(key) else {
            // Scale/config drift renames keys; that is a baseline-refresh
            // signal, not a perf regression.
            println!(
                "note: baseline row {exp}/{config}/{technique}/{metric} missing from fresh run"
            );
            continue;
        };
        compared += 1;
        // Both sides below the floor are noise regardless of ratio.
        if now <= floor || base <= 0.0 {
            continue;
        }
        let ratio = now / base.max(floor);
        if ratio > threshold {
            regressions += 1;
            println!(
                "::warning title=bench regression::{exp} {config} {technique} {metric}: \
                 {now:.3}{unit} vs baseline {base:.3}{unit} ({ratio:.2}x > {threshold:.2}x)"
            );
        }
    }
    println!(
        "compared {compared} timing/footprint/count rows against {baseline_path}: \
         {regressions} regression(s)"
    );
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
