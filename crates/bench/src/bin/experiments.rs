//! Experiment driver: regenerates the data behind every figure of the Smoke
//! evaluation and prints it as aligned tables.
//!
//! Usage:
//!
//! ```text
//! experiments [<experiment>...|all] [--scale <factor>] [--runs <n>]
//!             [--budget-bytes <n>] [--json <path>]
//! ```
//!
//! Run `experiments --help` for the experiment list (it is generated from
//! the same registry that dispatches them, so it cannot drift). The default
//! scale keeps the full suite at laptop/CI runtimes; pass `--scale 10` (or
//! more) to approach the paper's dataset sizes.

use smoke_bench::{
    apps_exp, micro, paged_exp, parallel_exp, planner_exp, query_exp, render_json, render_table,
    server_exp, tpch_exp, vectorized_exp, ExpRow, Scale,
};

/// One runnable experiment: its CLI name, the one-line description shown by
/// `--help` and above its output table, and the function that produces its
/// rows. This table is the single source of truth for the subcommand list —
/// the `all` expansion, usage text, and dispatch all derive from it.
struct Experiment {
    name: &'static str,
    describe: &'static str,
    run: fn(&Scale) -> Vec<ExpRow>,
}

fn fig11(scale: &Scale) -> Vec<ExpRow> {
    only(tpch_exp::fig11_12(scale), "fig11")
}

fn fig12(scale: &Scale) -> Vec<ExpRow> {
    only(tpch_exp::fig11_12(scale), "fig12")
}

fn fig13(scale: &Scale) -> Vec<ExpRow> {
    only(apps_exp::fig13_14(scale), "fig13")
}

fn fig14(scale: &Scale) -> Vec<ExpRow> {
    only(apps_exp::fig13_14(scale), "fig14")
}

/// Restricts a shared experiment's rows to one figure.
fn only(rows: Vec<ExpRow>, experiment: &str) -> Vec<ExpRow> {
    rows.into_iter()
        .filter(|r| r.experiment == experiment)
        .collect()
}

const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        name: "fig5",
        describe: "Figure 5: group-by aggregation lineage capture",
        run: micro::fig5,
    },
    Experiment {
        name: "fig6",
        describe: "Figure 6: pk-fk join lineage capture",
        run: micro::fig6,
    },
    Experiment {
        name: "fig7",
        describe: "Figure 7: m:n join lineage capture",
        run: micro::fig7,
    },
    Experiment {
        name: "fig8",
        describe: "Figure 8: TPC-H capture overhead (Smoke-I vs Logic-Idx)",
        run: tpch_exp::fig8,
    },
    Experiment {
        name: "fig9",
        describe: "Figure 9: backward lineage query latency vs skew",
        run: query_exp::fig9,
    },
    Experiment {
        name: "fig10",
        describe: "Figure 10: data skipping for lineage-consuming queries",
        run: tpch_exp::fig10,
    },
    Experiment {
        name: "fig11",
        describe: "Figure 11: aggregation push-down query latency",
        run: fig11,
    },
    Experiment {
        name: "fig12",
        describe: "Figure 12: aggregation push-down capture overhead",
        run: fig12,
    },
    Experiment {
        name: "fig13",
        describe: "Figure 13: crossfilter cumulative latency",
        run: fig13,
    },
    Experiment {
        name: "fig14",
        describe: "Figure 14: crossfilter per-interaction latency",
        run: fig14,
    },
    Experiment {
        name: "fig15",
        describe: "Figure 15: FD-violation profiling latency",
        run: apps_exp::fig15,
    },
    Experiment {
        name: "fig21",
        describe: "Figure 21: selection capture with selectivity estimates",
        run: micro::fig21,
    },
    Experiment {
        name: "fig22",
        describe: "Figure 22: instrumentation pruning per input relation",
        run: tpch_exp::fig22,
    },
    Experiment {
        name: "fig23",
        describe: "Figure 23: selection push-down capture latency",
        run: tpch_exp::fig23,
    },
    Experiment {
        name: "csr",
        describe: "CSR vs Vec-of-RidArrays lineage index representations",
        run: micro::csr,
    },
    Experiment {
        name: "planner",
        describe: "Planner: eager vs lazy vs pruned vs cube strategy latency",
        run: planner_exp::planner,
    },
    Experiment {
        name: "vectorized",
        describe: "Vectorized kernels vs scalar interpreter (capture off/on)",
        run: vectorized_exp::vectorized,
    },
    Experiment {
        name: "parallel",
        describe: "Morsel-parallel select/group-by vs sequential (DOP 1/2/4/8)",
        run: parallel_exp::parallel,
    },
    Experiment {
        name: "server",
        describe: "Concurrent serving: QPS, p50/p99 latency, cache hit rate",
        run: server_exp::server,
    },
    Experiment {
        name: "paged",
        describe: "Out-of-core paged execution: hit rates, cold/warm traces, compressed lineage",
        run: paged_exp::paged,
    },
];

fn find(name: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.name == name)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut scale = Scale::default();
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print_usage();
                return;
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .cloned()
                        .expect("--json requires an output path"),
                );
            }
            "--scale" => {
                i += 1;
                scale.factor = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--scale requires a numeric factor");
            }
            "--runs" => {
                i += 1;
                scale.runs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--runs requires an integer");
            }
            "--budget-bytes" => {
                i += 1;
                scale.budget_bytes = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .expect("--budget-bytes requires a byte count"),
                );
            }
            other => which.push(other.to_string()),
        }
        i += 1;
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = EXPERIMENTS.iter().map(|e| e.name.to_string()).collect();
    }

    let mut all_rows: Vec<ExpRow> = Vec::new();
    for name in &which {
        let Some(exp) = find(name) else {
            eprintln!("unknown experiment `{name}` (run --help for the list)");
            continue;
        };
        let rows = (exp.run)(&scale);
        if rows.is_empty() {
            continue;
        }
        println!("\n== {} ==", exp.describe);
        println!("{}", render_table(&rows));
        all_rows.extend(rows);
    }
    println!("\ntotal measurements: {}", all_rows.len());
    if let Some(path) = json_path {
        std::fs::write(&path, render_json(&all_rows)).expect("failed to write --json output");
        println!("wrote {} rows to {path}", all_rows.len());
    }
}

fn print_usage() {
    println!(
        "Usage: experiments [<experiment>...|all] [--scale <factor>] [--runs <n>] \
         [--budget-bytes <n>] [--json <path>]"
    );
    println!();
    println!("Experiments:");
    for exp in EXPERIMENTS {
        println!("  {:<12} {}", exp.name, exp.describe);
    }
    println!(
        "\nRegenerates the data behind the figures of the Smoke evaluation and\n\
         prints it as aligned tables. The default scale keeps the full suite at\n\
         laptop/CI runtimes; pass --scale 10 (or more) to approach the paper's\n\
         dataset sizes.\n\
         \n\
         Options:\n\
         \x20 --scale <factor>  multiply every default dataset size\n\
         \x20 --runs <n>        timed runs per measurement\n\
         \x20 --budget-bytes <n> absolute buffer-pool budget for `paged`\n\
         \x20                   (default: 25% of the paged column bytes; the\n\
         \x20                   nightly 100M leg runs `--scale 10` with a fixed cap)\n\
         \x20 --json <path>     additionally write all rows to a JSON file\n\
         \x20                   (the CI BENCH_*.json artifacts are produced this way,\n\
         \x20                   e.g. `experiments parallel --json BENCH_parallel.json`)"
    );
}
