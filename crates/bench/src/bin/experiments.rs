//! Experiment driver: regenerates the data behind every figure of the Smoke
//! evaluation and prints it as aligned tables.
//!
//! Usage:
//!
//! ```text
//! experiments [fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig21|fig22|fig23|csr|planner|vectorized|all]
//!             [--scale <factor>] [--runs <n>] [--json <path>]
//! ```
//!
//! The default scale keeps the full suite at laptop/CI runtimes; pass
//! `--scale 10` (or more) to approach the paper's dataset sizes.

use smoke_bench::{
    apps_exp, micro, planner_exp, query_exp, render_json, render_table, tpch_exp, vectorized_exp,
    ExpRow, Scale,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut scale = Scale::default();
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print_usage();
                return;
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .cloned()
                        .expect("--json requires an output path"),
                );
            }
            "--scale" => {
                i += 1;
                scale.factor = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--scale requires a numeric factor");
            }
            "--runs" => {
                i += 1;
                scale.runs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--runs requires an integer");
            }
            other => which.push(other.to_string()),
        }
        i += 1;
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = vec![
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig21",
            "fig22",
            "fig23",
            "csr",
            "planner",
            "vectorized",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }

    let mut all_rows: Vec<ExpRow> = Vec::new();
    for name in &which {
        let rows = run_experiment(name, &scale);
        if rows.is_empty() {
            continue;
        }
        println!("\n== {} ==", describe(name));
        println!("{}", render_table(&rows));
        all_rows.extend(rows);
    }
    println!("\ntotal measurements: {}", all_rows.len());
    if let Some(path) = json_path {
        std::fs::write(&path, render_json(&all_rows)).expect("failed to write --json output");
        println!("wrote {} rows to {path}", all_rows.len());
    }
}

fn print_usage() {
    println!(
        "Usage: experiments [fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig21|fig22|fig23|csr|planner|vectorized|all]\n\
         \x20                  [--scale <factor>] [--runs <n>] [--json <path>]\n\
         \n\
         Regenerates the data behind the figures of the Smoke evaluation and\n\
         prints it as aligned tables. The default scale keeps the full suite at\n\
         laptop/CI runtimes; pass --scale 10 (or more) to approach the paper's\n\
         dataset sizes. `csr` compares the CSR and Vec-of-RidArrays lineage\n\
         representations; `planner` compares the cost-based planner's eager /\n\
         lazy / pruned / cube strategies on the zipfian group-by workload;\n\
         `vectorized` compares the row-at-a-time interpreter against the\n\
         column-kernel execution path (capture off/on); --json additionally\n\
         writes all rows to a JSON file."
    );
}

fn run_experiment(name: &str, scale: &Scale) -> Vec<ExpRow> {
    match name {
        "fig5" => micro::fig5(scale),
        "fig6" => micro::fig6(scale),
        "fig7" => micro::fig7(scale),
        "fig8" => tpch_exp::fig8(scale),
        "fig9" => query_exp::fig9(scale),
        "fig10" => tpch_exp::fig10(scale),
        "fig11" | "fig12" => {
            let rows = tpch_exp::fig11_12(scale);
            rows.into_iter().filter(|r| r.experiment == *name).collect()
        }
        "fig13" | "fig14" => {
            let rows = apps_exp::fig13_14(scale);
            rows.into_iter().filter(|r| r.experiment == *name).collect()
        }
        "fig15" => apps_exp::fig15(scale),
        "fig21" => micro::fig21(scale),
        "csr" => micro::csr(scale),
        "planner" => planner_exp::planner(scale),
        "vectorized" => vectorized_exp::vectorized(scale),
        "fig22" => tpch_exp::fig22(scale),
        "fig23" => tpch_exp::fig23(scale),
        other => {
            eprintln!("unknown experiment `{other}`");
            Vec::new()
        }
    }
}

fn describe(name: &str) -> &'static str {
    match name {
        "fig5" => "Figure 5: group-by aggregation lineage capture",
        "fig6" => "Figure 6: pk-fk join lineage capture",
        "fig7" => "Figure 7: m:n join lineage capture",
        "fig8" => "Figure 8: TPC-H capture overhead (Smoke-I vs Logic-Idx)",
        "fig9" => "Figure 9: backward lineage query latency vs skew",
        "fig10" => "Figure 10: data skipping for lineage-consuming queries",
        "fig11" => "Figure 11: aggregation push-down query latency",
        "fig12" => "Figure 12: aggregation push-down capture overhead",
        "fig13" => "Figure 13: crossfilter cumulative latency",
        "fig14" => "Figure 14: crossfilter per-interaction latency",
        "fig15" => "Figure 15: FD-violation profiling latency",
        "fig21" => "Figure 21: selection capture with selectivity estimates",
        "fig22" => "Figure 22: instrumentation pruning per input relation",
        "fig23" => "Figure 23: selection push-down capture latency",
        "csr" => "CSR vs Vec-of-RidArrays lineage index representations",
        "planner" => "Planner: eager vs lazy vs pruned vs cube strategy latency",
        "vectorized" => "Vectorized kernels vs scalar interpreter (capture off/on)",
        _ => "unknown experiment",
    }
}
