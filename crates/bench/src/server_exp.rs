//! Serving-layer throughput and latency under the interactive query mix.
//!
//! Starts an in-process lineage server on an ephemeral port, drives it with
//! concurrent clients issuing the zipf-skewed brush / linked-view /
//! crossfilter / drilldown / forward mix, and reports sustained QPS,
//! p50/p99 latency, the cache hit rate, and the shed rate — both with the
//! result cache enabled and disabled, so `BENCH_server.json` records what
//! the cache buys on a skewed interactive workload.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use smoke_server::{demo_snapshot, Client, QueryMix, Reply, Server, ServerConfig};

use crate::{ExpRow, Scale};

/// Client threads driving the server.
const CLIENTS: usize = 4;

/// Latency percentile over a sorted sample set.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// The `server` experiment: concurrent serving QPS/latency with the cache
/// on and off.
pub fn server(scale: &Scale) -> Vec<ExpRow> {
    let rows_n = scale.size(50_000, 2_000);
    let groups = 100usize;
    let queries_per_client = scale.size(400, 50);
    let snapshot = Arc::new(demo_snapshot(rows_n, groups, 21).expect("demo snapshot"));
    let n_groups = snapshot.view("by_z").expect("by_z").output().len();
    let config = format!("n={rows_n},g={groups},clients={CLIENTS},q={queries_per_client}");

    let mut out = Vec::new();
    for (technique, cache_capacity) in [("Cached", 256usize), ("Uncached", 0usize)] {
        let handle = Server::serve(
            Arc::clone(&snapshot),
            "127.0.0.1:0",
            ServerConfig {
                workers: 4,
                queue_depth: 64,
                cache_capacity,
            },
        )
        .expect("bind ephemeral port");
        let addr = handle.addr();

        let shed = Arc::new(AtomicU64::new(0));
        let start = Instant::now();
        let threads: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let shed = Arc::clone(&shed);
                std::thread::spawn(move || {
                    let mut mix = QueryMix::new(n_groups, rows_n, 1_000 + c as u64);
                    let mut client = Client::connect(addr).expect("connect");
                    client
                        .set_timeout(Some(Duration::from_secs(60)))
                        .expect("timeout");
                    let mut latencies_ms = Vec::with_capacity(queries_per_client);
                    for _ in 0..queries_per_client {
                        let (view, spec) = mix.next_query();
                        let t = Instant::now();
                        match client.query(view, spec).expect("exchange") {
                            Reply::Result(_) => {
                                latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
                            }
                            Reply::Busy(_) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            other => panic!("unexpected reply: {other:?}"),
                        }
                    }
                    latencies_ms
                })
            })
            .collect();
        let mut latencies: Vec<f64> = threads
            .into_iter()
            .flat_map(|t| t.join().expect("client thread"))
            .collect();
        let elapsed = start.elapsed();
        let stats = handle.shutdown();

        latencies.sort_by(|a, b| a.total_cmp(b));
        let served = latencies.len() as f64;
        let qps = if elapsed.is_zero() {
            0.0
        } else {
            served / elapsed.as_secs_f64()
        };
        let total = (CLIENTS * queries_per_client) as f64;
        out.push(ExpRow::new("server", &config, technique, "qps", qps));
        out.push(ExpRow::new(
            "server",
            &config,
            technique,
            "p50_ms",
            percentile(&latencies, 0.50),
        ));
        out.push(ExpRow::new(
            "server",
            &config,
            technique,
            "p99_ms",
            percentile(&latencies, 0.99),
        ));
        out.push(ExpRow::new(
            "server",
            &config,
            technique,
            "cache_hit_rate",
            stats.cache_hit_rate(),
        ));
        out.push(ExpRow::new(
            "server",
            &config,
            technique,
            "shed_rate",
            shed.load(Ordering::Relaxed) as f64 / total,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_experiment_reports_both_cache_modes() {
        let rows = server(&Scale::tiny());
        for technique in ["Cached", "Uncached"] {
            for metric in ["qps", "p50_ms", "p99_ms", "cache_hit_rate", "shed_rate"] {
                assert!(
                    rows.iter()
                        .any(|r| r.technique == technique && r.metric == metric),
                    "missing {technique}/{metric}"
                );
            }
        }
        // The skewed mix must actually hit an enabled cache, and a disabled
        // cache can never hit.
        let hit_rate = |technique: &str| {
            rows.iter()
                .find(|r| r.technique == technique && r.metric == "cache_hit_rate")
                .map(|r| r.value)
                .unwrap()
        };
        assert!(hit_rate("Cached") > 0.0);
        assert!(hit_rate("Uncached") == 0.0);
        assert!(rows.iter().all(|r| r.value.is_finite()));
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert!((percentile(&sorted, 0.5) - 50.0).abs() <= 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
